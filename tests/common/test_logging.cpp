#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace isop::log {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { setLevel(Level::Info); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  setLevel(Level::Debug);
  EXPECT_EQ(level(), Level::Debug);
  setLevel(Level::Error);
  EXPECT_EQ(level(), Level::Error);
  setLevel(Level::Off);
  EXPECT_EQ(level(), Level::Off);
}

TEST_F(LoggingTest, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("x=", 3, " y=", 1.5), "x=3 y=1.5");
  EXPECT_EQ(detail::concat(), "");
  EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST_F(LoggingTest, LevelFromStringIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(levelFromString("debug"), Level::Debug);
  EXPECT_EQ(levelFromString("INFO"), Level::Info);
  EXPECT_EQ(levelFromString("Warn"), Level::Warn);
  EXPECT_EQ(levelFromString("warning"), Level::Warn);
  EXPECT_EQ(levelFromString("error"), Level::Error);
  EXPECT_EQ(levelFromString("off"), Level::Off);
  EXPECT_EQ(levelFromString("none"), Level::Off);
  EXPECT_EQ(levelFromString("quiet"), Level::Off);
  EXPECT_EQ(levelFromString("bogus"), Level::Info);
  EXPECT_EQ(levelFromString("bogus", Level::Error), Level::Error);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotCrash) {
  setLevel(Level::Off);
  debug("dropped");
  info("dropped");
  warn("dropped");
  error("dropped");
  // Re-enabled: these go to stderr; the test just exercises the paths.
  setLevel(Level::Debug);
  debug("visible debug from LoggingTest");
}

}  // namespace
}  // namespace isop::log
