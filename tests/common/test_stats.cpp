#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace isop::stats {
namespace {

TEST(Stats, MeanAndStdev) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stdev(xs), 2.138089935299395, 1e-12);  // sample (n-1) stdev
}

TEST(Stats, EmptyAndSingleInputs) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stdev(empty), 0.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stdev(one), 0.0);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(minValue(xs), -1.0);
  EXPECT_DOUBLE_EQ(maxValue(xs), 7.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Stats, PearsonPerfectAndAnticorrelated) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8}, z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  std::vector<double> x{1, 2, 3}, c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Stats, R2PerfectPredictionIsOne) {
  std::vector<double> t{1, 2, 3}, p{1, 2, 3};
  EXPECT_DOUBLE_EQ(r2(t, p), 1.0);
}

TEST(Stats, R2MeanPredictorIsZero) {
  std::vector<double> t{1, 2, 3}, p{2, 2, 2};
  EXPECT_NEAR(r2(t, p), 0.0, 1e-12);
}

TEST(Stats, AccumulatorMatchesBatch) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.stdev(), stdev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

}  // namespace
}  // namespace isop::stats
