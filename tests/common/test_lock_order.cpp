// Runtime lock-order detector tests (src/common/lock_order.hpp).
//
// Under ISOP_LOCK_ORDER builds (the Debug/sanitizer presets): ABBA
// inversions and rank-table violations must abort deterministically with
// both acquisition chains in the report, and the real concurrent paths
// (a multi-worker serve job, an EvalEngine batch over the memo shards)
// must pass clean — proving the declared rank table matches what the code
// actually does.
//
// In ordinary builds the detector must be a compile-time no-op: the
// layout probe below pins AnnotatedMutex to the size of a raw std::mutex,
// the same style of zero-cost guarantee tests/common/test_check.cpp pins
// for ISOP_ASSERT.
#include "common/lock_order.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/eval/eval_engine.hpp"
#include "core/simulator_surrogate.hpp"
#include "em/parameter_space.hpp"
#include "serve/scheduler.hpp"
#include "serve/session_manager.hpp"

namespace isop {
namespace {

#if !ISOP_LOCK_ORDER_ENABLED

// Release builds: the name/rank plumbing must vanish entirely. A size
// change here would mean every mutex in the tree grew for a disabled
// feature.
static_assert(sizeof(AnnotatedMutex) == sizeof(std::mutex),
              "disabled lock-order detector must add no per-mutex state");

TEST(LockOrder, DisabledDetectorHooksAreInertNoOps) {
  AnnotatedMutex m("probe.disabled", 99);
  m.lock();
  EXPECT_EQ(lock_order::heldCount(), 0u);  // stub always reports empty
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

#else  // ISOP_LOCK_ORDER_ENABLED

TEST(LockOrder, HeldStackTracksNestingAndRelease) {
  AnnotatedMutex outer("test.outer", lock_order::rank::kScheduler);
  AnnotatedMutex inner("test.inner", lock_order::rank::kLogger);
  EXPECT_EQ(lock_order::heldCount(), 0u);
  {
    MutexLock lockOuter(outer);
    EXPECT_EQ(lock_order::heldCount(), 1u);
    {
      MutexLock lockInner(inner);  // descending rank: legal
      EXPECT_EQ(lock_order::heldCount(), 2u);
    }
    EXPECT_EQ(lock_order::heldCount(), 1u);
  }
  EXPECT_EQ(lock_order::heldCount(), 0u);
}

TEST(LockOrder, TryLockIsTrackedButNeverChecked) {
  AnnotatedMutex low("test.try_low", lock_order::rank::kLogger);
  AnnotatedMutex high("test.try_high", lock_order::rank::kScheduler);
  MutexLock lock(low);
  // A rank-ascending try_lock cannot deadlock (it never blocks), so the
  // detector must let it through while still recording the hold.
  ASSERT_TRUE(high.try_lock());
  EXPECT_EQ(lock_order::heldCount(), 2u);
  high.unlock();
  EXPECT_EQ(lock_order::heldCount(), 1u);
}

// Death tests re-execute through fork; "threadsafe" style is required
// because the test binary runs threads (scheduler workers, thread pool).

TEST(LockOrderDeathTest, AbbaInversionAbortsWithBothChains) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        AnnotatedMutex a("test.abba_a");
        AnnotatedMutex b("test.abba_b");
        {
          MutexLock lockA(a);
          MutexLock lockB(b);  // records a -> b
        }
        {
          MutexLock lockB(b);
          MutexLock lockA(a);  // reverse order: must abort, not deadlock
        }
      },
      "LOCK ORDER inversion: acquiring \"test\\.abba_a\" while holding "
      "\"test\\.abba_b\".*conflicting acquired-after path"
      ".*first established by the acquisition chain");
}

TEST(LockOrderDeathTest, RankInversionAbortsEvenWithoutReverseHistory) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        AnnotatedMutex low("test.rank_low", lock_order::rank::kLogger);
        AnnotatedMutex high("test.rank_high", lock_order::rank::kScheduler);
        MutexLock lockLow(low);
        MutexLock lockHigh(high);  // ascending rank: rejected on first try
      },
      "LOCK RANK inversion: acquiring \"test\\.rank_high\" \\(rank 70\\) "
      "while holding \"test\\.rank_low\" \\(rank 10\\)");
}

TEST(LockOrderDeathTest, SameClassNestingIsAnInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two instances sharing a name (the MemoCache-shard shape): no intra-class
  // order exists, so nesting them at all is flagged.
  EXPECT_DEATH(
      {
        AnnotatedMutex shardA("test.shard");
        AnnotatedMutex shardB("test.shard");
        MutexLock lockA(shardA);
        MutexLock lockB(shardB);
      },
      "LOCK ORDER inversion: acquiring \"test\\.shard\" while holding "
      "\"test\\.shard\"");
}

#endif  // ISOP_LOCK_ORDER_ENABLED

// ---- Clean passes over the real concurrent paths ---------------------------
// These run in every build; under ISOP_LOCK_ORDER they are the positive
// gate that the production rank table matches real acquisition order (any
// mis-ranked or inverted pair aborts the test).

em::StackupParams designAt(double t) {
  const em::ParameterSpace space = em::spaceS1();
  em::StackupParams p;
  for (std::size_t j = 0; j < em::kNumParams; ++j) {
    const auto r = space.range(j);
    p.values[j] = r.lo + t * (r.hi - r.lo);
  }
  return p;
}

TEST(LockOrder, EvalEngineBatchRunsCleanUnderDetector) {
  em::EmSimulator simulator;
  core::SimulatorSurrogate oracle(simulator);
  core::EvalEngine engine(oracle);
  std::vector<em::StackupParams> designs;
  for (int i = 0; i < 32; ++i) designs.push_back(designAt(i / 31.0));
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);  // parallel fan-out + memo shards
  engine.predictMetrics(designs, out);  // memo-hit path
  EXPECT_EQ(out.size(), designs.size());
}

TEST(LockOrder, FourWorkerServeJobsRunCleanUnderDetector) {
  serve::SessionManager sessions;
  std::mutex mutex;
  std::condition_variable done;
  std::size_t completed = 0;
  serve::Scheduler::EventSink sink = [&](const serve::JobEvent& event) {
    if (event.kind == serve::JobEvent::Kind::Done ||
        event.kind == serve::JobEvent::Kind::Failed) {
      std::lock_guard<std::mutex> lock(mutex);
      ++completed;
      done.notify_all();
    }
  };
  {
    serve::Scheduler scheduler(sessions, {.workers = 4, .queueCapacity = 8},
                               sink);
    for (int i = 0; i < 4; ++i) {
      serve::JobSpec spec;
      spec.id = "lockorder-" + std::to_string(i);
      spec.budget = 120;
      spec.iterations = 2;
      spec.hyperbandResource = 9;
      spec.refineEpochs = 20;
      spec.localSeeds = 3;
      spec.candidates = 2;
      spec.seed = 7 + static_cast<std::uint64_t>(i);
      ASSERT_TRUE(scheduler.submit(spec));
    }
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(done.wait_for(lock, std::chrono::seconds(120),
                              [&] { return completed == 4; }));
  }
  EXPECT_EQ(completed, 4u);
}

}  // namespace
}  // namespace isop
