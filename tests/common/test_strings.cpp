#include "common/string_utils.hpp"

#include <gtest/gtest.h>

namespace isop::strings {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleToken) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ToDoubleValidAndInvalid) {
  EXPECT_EQ(toDouble("3.5"), 3.5);
  EXPECT_EQ(toDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(toDouble("abc").has_value());
  EXPECT_FALSE(toDouble("1.5x").has_value());
  EXPECT_FALSE(toDouble("").has_value());
}

TEST(Strings, ToIntValidAndInvalid) {
  EXPECT_EQ(toInt("42"), 42);
  EXPECT_EQ(toInt("-7"), -7);
  EXPECT_FALSE(toInt("3.5").has_value());
  EXPECT_FALSE(toInt("").has_value());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-f", "--"));
  EXPECT_FALSE(startsWith("", "--"));
}

TEST(Strings, FixedFormatting) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 3), "-0.500");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Strings, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace isop::strings
