#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace isop {
namespace {

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter = 42; });
  fut.get();
  EXPECT_EQ(counter, 42);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallelFor(3, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 3);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [&](std::size_t i) {
                         if (i == 57) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().threadCount(), 1u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) futs.push_back(pool.submit([&] { ++done; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(done, 200);
}

}  // namespace
}  // namespace isop
