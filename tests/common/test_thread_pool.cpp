#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace isop {
namespace {

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter = 42; });
  fut.get();
  EXPECT_EQ(counter, 42);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallelFor(3, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 3);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [&](std::size_t i) {
                         if (i == 57) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().threadCount(), 1u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) futs.push_back(pool.submit([&] { ++done; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(done, 200);
}

TEST(ThreadPool, StatsCountSubmittedAndCompleted) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(pool.submit([] {}));
  for (auto& f : futs) f.get();
  const ThreadPool::PoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, 50u);
  EXPECT_EQ(s.completed, 50u);
  EXPECT_EQ(s.queueDepth, 0u);
  EXPECT_GE(s.maxQueueDepth, 1u);
}

// Regression test for a snapshot-ordering race: submit() used to increment
// the `submitted` counter after releasing the queue lock, so a concurrent
// stats() call could observe a task as completed before it was counted as
// submitted (completed > submitted). The counter now lives inside the
// enqueue critical section; every snapshot must satisfy the invariant.
TEST(ThreadPool, StatsSnapshotNeverShowsCompletedAboveSubmitted) {
  ThreadPool pool(4);
  std::atomic<bool> stopSampling{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> samples{0};
  std::thread sampler([&] {
    // do-while: on a loaded machine this thread may not be scheduled until
    // after the submissions finish; it must still take at least one sample.
    do {
      const ThreadPool::PoolStats s = pool.stats();
      if (s.completed > s.submitted) violations.fetch_add(1);
      samples.fetch_add(1);
    } while (!stopSampling.load(std::memory_order_relaxed));
  });
  std::vector<std::future<void>> futs;
  futs.reserve(2000);
  for (int i = 0; i < 2000; ++i) futs.push_back(pool.submit([] {}));
  for (auto& f : futs) f.get();
  stopSampling = true;
  sampler.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(samples.load(), 0u);
  const ThreadPool::PoolStats final = pool.stats();
  EXPECT_EQ(final.submitted, 2000u);
  EXPECT_EQ(final.completed, 2000u);
}

TEST(ThreadPool, InFlightTracksRunningTasks) {
  constexpr std::size_t kWorkers = 3;
  ThreadPool pool(kWorkers);
  EXPECT_EQ(pool.stats().inFlight, 0u);  // idle pool runs nothing

  // Park every worker on a latch plus one extra task that must stay queued.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<std::size_t> started{0};
  std::vector<std::future<void>> futs;
  for (std::size_t i = 0; i < kWorkers + 1; ++i) {
    futs.push_back(pool.submit([&] {
      started.fetch_add(1);
      std::unique_lock<std::mutex> lock(mutex);
      while (!release) cv.wait(lock);
    }));
  }
  while (started.load() < kWorkers) std::this_thread::yield();

  ThreadPool::PoolStats s = pool.stats();
  EXPECT_EQ(s.inFlight, kWorkers);  // one task per worker, popped but unfinished
  EXPECT_EQ(s.queueDepth, 1u);      // the extra task waits in the queue
  EXPECT_EQ(s.submitted, s.completed + s.queueDepth + s.inFlight);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  for (auto& f : futs) f.get();
  s = pool.stats();
  EXPECT_EQ(s.inFlight, 0u);
  EXPECT_EQ(s.completed, kWorkers + 1);
  EXPECT_EQ(s.submitted, s.completed + s.queueDepth + s.inFlight);
}

}  // namespace
}  // namespace isop
