#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace isop::csv {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("isop_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  Table t;
  t.header = {"a", "b", "c"};
  t.rows = {{1.0, 2.5, -3.0}, {4.0, 0.0, 1e-3}};
  write(path_, t);
  Table r = read(path_);
  ASSERT_EQ(r.header, t.header);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[1][2], 1e-3);
}

TEST_F(CsvTest, ColumnIndexLookup) {
  Table t;
  t.header = {"x", "y"};
  EXPECT_EQ(t.columnIndex("y"), 1u);
  EXPECT_THROW(t.columnIndex("z"), std::runtime_error);
}

TEST_F(CsvTest, ReadRejectsNonNumericCell) {
  std::ofstream out(path_);
  out << "a,b\n1,hello\n";
  out.close();
  EXPECT_THROW(read(path_), std::runtime_error);
}

TEST_F(CsvTest, ReadRejectsRaggedRow) {
  std::ofstream out(path_);
  out << "a,b\n1,2,3\n";
  out.close();
  EXPECT_THROW(read(path_), std::runtime_error);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read("/nonexistent/definitely/not/here.csv"), std::runtime_error);
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream out(path_);
  out << "a\n1\n\n2\n";
  out.close();
  Table t = read(path_);
  EXPECT_EQ(t.rows.size(), 2u);
}

}  // namespace
}  // namespace isop::csv
