#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace isop {
namespace {

TEST(Timer, SecondsGrowsMonotonically) {
  Timer t;
  const double a = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
}

TEST(Timer, LapSplitsWithoutDisturbingTotal) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap1 = t.lap();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap2 = t.lap();
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
  // The laps partition the total: their sum cannot exceed seconds().
  EXPECT_GE(t.seconds(), lap1 + lap2);
}

TEST(Timer, ResetRestartsBothClocks) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.reset();
  EXPECT_LT(t.seconds(), 0.002);
  EXPECT_LT(t.lap(), 0.002);
}

}  // namespace
}  // namespace isop
