#include "common/check.hpp"

#include <gtest/gtest.h>

#include <span>

#include "common/matrix.hpp"
#include "core/eval/eval_engine.hpp"
#include "em/parameter_space.hpp"
#include "hpo/binary_codec.hpp"
#include "ml/surrogate.hpp"

namespace isop {
namespace {

TEST(Check, RequirePassesOnTrueCondition) {
  ISOP_REQUIRE(1 + 1 == 2, "arithmetic still works");
  SUCCEED();
}

TEST(CheckDeathTest, RequireAbortsWithContext) {
  EXPECT_DEATH(ISOP_REQUIRE(false, "the message"),
               "ISOP_REQUIRE failed: false \\(the message\\) at .*test_check\\.cpp");
}

TEST(CheckDeathTest, UnreachableAlwaysAborts) {
  EXPECT_DEATH(ISOP_UNREACHABLE("impossible branch"),
               "ISOP_UNREACHABLE failed:.*impossible branch");
}

// ISOP_ASSERT must cost literally nothing in release builds: under NDEBUG
// (and without ISOP_FORCE_CHECKS) the macro expands to static_cast<void>(0)
// and the condition expression is never evaluated. The side-effecting
// condition below distinguishes "checked" from "compiled out".
TEST(Check, AssertConditionIsNotEvaluatedWhenChecksDisabled) {
  int evaluations = 0;
  ISOP_ASSERT(++evaluations > 0, "probe");
#if ISOP_CHECKS_ENABLED
  EXPECT_EQ(evaluations, 1) << "checks enabled: condition must run";
#else
  EXPECT_EQ(evaluations, 0) << "release: condition must be compiled out";
#endif
}

#if ISOP_CHECKS_ENABLED
TEST(CheckDeathTest, AssertAbortsWhenChecksEnabled) {
  EXPECT_DEATH(ISOP_ASSERT(false, "debug invariant"),
               "ISOP_ASSERT failed:.*debug invariant");
}
#endif

// --- Contract checks on real API boundaries (always-on ISOP_REQUIRE paths,
// --- so these death tests hold in release tier-1 builds too).

/// Minimal surrogate: identity-ish model with fixed dims, used to hit the
/// base-class predictBatch shape contract.
class TinySurrogate final : public ml::Surrogate {
 public:
  std::size_t inputDim() const override { return 2; }
  std::size_t outputDim() const override { return 3; }
  void predict(std::span<const double> x, std::span<double> out) const override {
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = x[0];
  }
};

TEST(CheckDeathTest, PredictBatchRejectsMismatchedBatchWidth) {
  TinySurrogate model;
  Matrix x(4, 3);  // 3 columns, model expects inputDim() == 2
  Matrix out;
  EXPECT_DEATH(model.predictBatch(x, out),
               "ISOP_REQUIRE failed:.*batch width must match the model input dim");
}

TEST(CheckDeathTest, DecodeRejectsWrongLengthBitVector) {
  const hpo::BinaryCodec codec(em::spaceS1());
  const hpo::BitVector tooShort(codec.totalBits() - 1, 0);
  EXPECT_DEATH(static_cast<void>(codec.decode(tooShort)), "ISOP_REQUIRE failed:");
  EXPECT_DEATH(static_cast<void>(codec.decodeClamped(tooShort)), "ISOP_REQUIRE failed:");
}

TEST(CheckDeathTest, EvalBatchMetricsBeforeRunAborts) {
  core::EvalBatch batch;
  const std::size_t slot = batch.add(em::spaceS1().snap(em::StackupParams{}));
  EXPECT_DEATH(static_cast<void>(batch.metrics(slot)),
               "ISOP_REQUIRE failed:.*EvalBatch::metrics before EvalEngine::run");
}

}  // namespace
}  // namespace isop
