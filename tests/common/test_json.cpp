#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace isop::json {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Value::null().dump(), "null");
  EXPECT_EQ(Value::boolean(true).dump(), "true");
  EXPECT_EQ(Value::boolean(false).dump(), "false");
  EXPECT_EQ(Value::integer(-42).dump(), "-42");
  EXPECT_EQ(Value::number(1.5).dump(), "1.5");
  EXPECT_EQ(Value::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Value::number(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value::number(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(Value::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(Json, ArrayBuilding) {
  Value arr = Value::array();
  arr.push(Value::integer(1)).push(Value::integer(2)).push(Value::string("x"));
  EXPECT_EQ(arr.dump(), "[1,2,\"x\"]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr.isArray());
}

TEST(Json, ObjectBuildingAndOverwrite) {
  Value obj = Value::object();
  obj.set("a", Value::integer(1));
  obj.set("b", Value::boolean(false));
  obj.set("a", Value::integer(9));  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"a\":9,\"b\":false}");
  EXPECT_TRUE(obj.isObject());
}

TEST(Json, NestedStructures) {
  Value obj = Value::object();
  Value inner = Value::array();
  inner.push(Value::number(0.5));
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(), "{\"xs\":[0.5]}");
}

TEST(Json, PrettyPrinting) {
  Value obj = Value::object();
  obj.set("k", Value::integer(1));
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
  Value empty = Value::object();
  EXPECT_EQ(empty.dump(2), "{}");
}

TEST(Json, TypeMisuseThrows) {
  Value scalar = Value::integer(1);
  EXPECT_THROW(scalar.push(Value::null()), std::logic_error);
  EXPECT_THROW(scalar.set("k", Value::null()), std::logic_error);
  Value arr = Value::array();
  EXPECT_THROW(arr.set("k", Value::null()), std::logic_error);
}

TEST(Json, NumberPrecision) {
  // 12 significant digits round-trip typical metric values.
  EXPECT_EQ(Value::number(85.694999).dump(), "85.694999");
  EXPECT_EQ(Value::number(-0.434).dump(), "-0.434");
  EXPECT_EQ(Value::number(5.8e7).dump(), "58000000");
}

TEST(JsonParse, ScalarsAndKinds) {
  EXPECT_EQ(Value::parse("null")->kind(), Value::Kind::Null);
  EXPECT_TRUE(Value::parse("true")->asBool());
  EXPECT_FALSE(Value::parse("false")->asBool());
  EXPECT_EQ(Value::parse("-42")->asInteger(), -42);
  EXPECT_EQ(Value::parse("-42")->kind(), Value::Kind::Integer);
  EXPECT_DOUBLE_EQ(Value::parse("1.5")->asNumber(), 1.5);
  EXPECT_DOUBLE_EQ(Value::parse("2e3")->asNumber(), 2000.0);
  EXPECT_EQ(Value::parse("\"hi\"")->asString(), "hi");
}

TEST(JsonParse, StringsUnescape) {
  EXPECT_EQ(Value::parse(R"("a\"b\\c\nd\te")")->asString(), "a\"b\\c\nd\te");
  EXPECT_EQ(Value::parse(R"("Aé")")->asString(), "A\xc3\xa9");
}

TEST(JsonParse, ArraysAndObjects) {
  const auto arr = Value::parse("[1, 2.5, \"x\", null]");
  ASSERT_TRUE(arr.has_value());
  ASSERT_EQ(arr->size(), 4u);
  EXPECT_EQ(arr->at(0).asInteger(), 1);
  EXPECT_DOUBLE_EQ(arr->at(1).asNumber(), 2.5);
  EXPECT_EQ(arr->at(2).asString(), "x");
  EXPECT_TRUE(arr->at(3).isNull());

  const auto obj = Value::parse(R"({"a": 1, "nested": {"b": [true]}})");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("a").asInteger(), 1);
  EXPECT_TRUE(obj->at("nested").at("b").at(0).asBool());
  EXPECT_EQ(obj->find("missing"), nullptr);
  EXPECT_EQ(obj->keyAt(1), "nested");
  EXPECT_THROW(obj->at("missing"), std::out_of_range);
}

TEST(JsonParse, RoundTripsDumpedDocuments) {
  Value obj = Value::object();
  obj.set("name", Value::string("span.stage1 \"quoted\""));
  obj.set("count", Value::integer(12));
  obj.set("mean", Value::number(0.125));
  Value arr = Value::array();
  arr.push(Value::boolean(true)).push(Value::null());
  obj.set("flags", std::move(arr));
  for (int indent : {0, 2}) {
    const auto parsed = Value::parse(obj.dump(indent));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dump(), obj.dump());
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"unterminated",
        "{\"a\":1,}", "[1 2]", "nul", "+5", "01", "--1", "{'a':1}"}) {
    EXPECT_FALSE(Value::parse(bad).has_value()) << bad;
  }
}

TEST(JsonParse, AllowsSurroundingWhitespaceOnly) {
  EXPECT_TRUE(Value::parse("  { \"a\" : [ 1 , 2 ] }\n\t").has_value());
  EXPECT_FALSE(Value::parse("{} extra").has_value());
}

namespace {
std::string nestedArrays(std::size_t depth) {
  std::string doc(depth, '[');
  doc += "1";
  doc.append(depth, ']');
  return doc;
}
}  // namespace

TEST(JsonParse, NestingUpToMaxDepthRoundTrips) {
  const std::string doc = nestedArrays(Value::kMaxParseDepth);
  const auto parsed = Value::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), doc);
  // Mixed containers count against the same limit.
  std::string mixed;
  for (std::size_t i = 0; i < Value::kMaxParseDepth / 2; ++i) mixed += "{\"k\":[";
  mixed += "null";
  for (std::size_t i = 0; i < Value::kMaxParseDepth / 2; ++i) mixed += "]}";
  EXPECT_TRUE(Value::parse(mixed).has_value());
}

TEST(JsonParse, RejectsNestingBeyondMaxDepth) {
  EXPECT_FALSE(Value::parse(nestedArrays(Value::kMaxParseDepth + 1)).has_value());
  // A pathological deep document must fail cleanly, not blow the stack.
  EXPECT_FALSE(Value::parse(nestedArrays(100000)).has_value());
}

TEST(JsonParse, LongStringsRoundTrip) {
  std::string longString;
  longString.reserve(1 << 16);
  for (int i = 0; i < 4096; ++i) longString += "ab\"\\\n\t\xc3\xa9...";
  Value obj = Value::object();
  obj.set("s", Value::string(longString));
  const auto parsed = Value::parse(obj.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("s").asString(), longString);
}

TEST(JsonParse, NonFiniteDumpRoundTripsAsNull) {
  // dump() writes non-finite doubles as null (valid JSON), so a document
  // containing them always re-parses — the value comes back as Kind::Null.
  Value obj = Value::object();
  obj.set("inf", Value::number(std::numeric_limits<double>::infinity()));
  obj.set("nan", Value::number(std::nan("")));
  obj.set("ok", Value::number(1.5));
  const auto parsed = Value::parse(obj.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("inf").kind(), Value::Kind::Null);
  EXPECT_EQ(parsed->at("nan").kind(), Value::Kind::Null);
  EXPECT_DOUBLE_EQ(parsed->at("ok").asNumber(), 1.5);
}

}  // namespace
}  // namespace isop::json
