#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace isop::json {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Value::null().dump(), "null");
  EXPECT_EQ(Value::boolean(true).dump(), "true");
  EXPECT_EQ(Value::boolean(false).dump(), "false");
  EXPECT_EQ(Value::integer(-42).dump(), "-42");
  EXPECT_EQ(Value::number(1.5).dump(), "1.5");
  EXPECT_EQ(Value::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Value::number(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value::number(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(Value::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(Json, ArrayBuilding) {
  Value arr = Value::array();
  arr.push(Value::integer(1)).push(Value::integer(2)).push(Value::string("x"));
  EXPECT_EQ(arr.dump(), "[1,2,\"x\"]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr.isArray());
}

TEST(Json, ObjectBuildingAndOverwrite) {
  Value obj = Value::object();
  obj.set("a", Value::integer(1));
  obj.set("b", Value::boolean(false));
  obj.set("a", Value::integer(9));  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"a\":9,\"b\":false}");
  EXPECT_TRUE(obj.isObject());
}

TEST(Json, NestedStructures) {
  Value obj = Value::object();
  Value inner = Value::array();
  inner.push(Value::number(0.5));
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(), "{\"xs\":[0.5]}");
}

TEST(Json, PrettyPrinting) {
  Value obj = Value::object();
  obj.set("k", Value::integer(1));
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
  Value empty = Value::object();
  EXPECT_EQ(empty.dump(2), "{}");
}

TEST(Json, TypeMisuseThrows) {
  Value scalar = Value::integer(1);
  EXPECT_THROW(scalar.push(Value::null()), std::logic_error);
  EXPECT_THROW(scalar.set("k", Value::null()), std::logic_error);
  Value arr = Value::array();
  EXPECT_THROW(arr.set("k", Value::null()), std::logic_error);
}

TEST(Json, NumberPrecision) {
  // 12 significant digits round-trip typical metric values.
  EXPECT_EQ(Value::number(85.694999).dump(), "85.694999");
  EXPECT_EQ(Value::number(-0.434).dump(), "-0.434");
  EXPECT_EQ(Value::number(5.8e7).dump(), "58000000");
}

}  // namespace
}  // namespace isop::json
