#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace isop {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-3.0, 2.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 2.0);
  }
}

TEST(Rng, BelowCoversAllValuesWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(17);
  double sum = 0.0, sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  auto idx = rng.sampleIndices(100, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsKToN) {
  Rng rng(25);
  auto idx = rng.sampleIndices(3, 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child should not replay the parent's sequence.
  Rng parentCopy(31);
  parentCopy.split();
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child() == parentCopy()) ++same;
  }
  EXPECT_LT(same, 8);
}

}  // namespace
}  // namespace isop
