#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace isop {
namespace {

CliArgs makeArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  auto args = makeArgs({"--trials", "5"});
  EXPECT_EQ(args.getInt("trials", 0), 5);
}

TEST(Cli, EqualsSeparatedValue) {
  auto args = makeArgs({"--samples=9000"});
  EXPECT_EQ(args.getInt("samples", 0), 9000);
}

TEST(Cli, BooleanFlagPresent) {
  auto args = makeArgs({"--paper-scale"});
  EXPECT_TRUE(args.has("paper-scale"));
  EXPECT_TRUE(args.getBool("paper-scale", false));
  EXPECT_FALSE(args.getBool("other", false));
}

TEST(Cli, ExplicitBooleanValues) {
  auto args = makeArgs({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(args.getBool("a", false));
  EXPECT_FALSE(args.getBool("b", true));
  EXPECT_TRUE(args.getBool("c", false));
  EXPECT_FALSE(args.getBool("d", true));
}

TEST(Cli, DoubleAndStringValues) {
  auto args = makeArgs({"--lr", "0.5", "--name", "cnn"});
  EXPECT_DOUBLE_EQ(args.getDouble("lr", 0.0), 0.5);
  EXPECT_EQ(args.getString("name", ""), "cnn");
}

TEST(Cli, FallbacksWhenAbsentOrMalformed) {
  auto args = makeArgs({"--n", "abc"});
  EXPECT_EQ(args.getInt("n", 7), 7);
  EXPECT_EQ(args.getInt("missing", 9), 9);
  EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  auto args = makeArgs({"pos1", "--flag", "pos2"});
  // "--flag pos2": pos2 is consumed as flag's value.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.getString("flag", ""), "pos2");
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  auto args = makeArgs({"--a", "--b", "3"});
  EXPECT_TRUE(args.getBool("a", false));
  EXPECT_EQ(args.getInt("b", 0), 3);
}

}  // namespace
}  // namespace isop
