#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace isop {
namespace {

Matrix randomMatrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix naiveMatmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t k = 0; k < a.cols(); ++k) out(i, j) += a(i, k) * b(k, j);
    }
  }
  return out;
}

void expectNear(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol);
  }
}

TEST(Matrix, IndexingAndRowSpan) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.row(0)[0], 1.0);
  EXPECT_EQ(m.row(1)[2], 5.0);
  EXPECT_EQ(m.row(1).size(), 3u);
}

TEST(Matrix, AddAndScale) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  a.add(b);
  a.scale(3.0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 9.0);
}

TEST(Linalg, MatmulMatchesNaive) {
  Rng rng(1);
  Matrix a = randomMatrix(7, 5, rng), b = randomMatrix(5, 9, rng), out;
  linalg::matmul(a, b, out);
  expectNear(out, naiveMatmul(a, b));
}

TEST(Linalg, MatmulTransAMatchesNaive) {
  Rng rng(2);
  Matrix a = randomMatrix(6, 4, rng), b = randomMatrix(6, 3, rng), out;
  linalg::matmulTransA(a, b, out);
  // naive: a^T (4x6) * b (6x3)
  Matrix at(4, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) at(j, i) = a(i, j);
  }
  expectNear(out, naiveMatmul(at, b));
}

TEST(Linalg, MatmulTransBMatchesNaive) {
  Rng rng(3);
  Matrix a = randomMatrix(4, 5, rng), b = randomMatrix(7, 5, rng), out;
  linalg::matmulTransB(a, b, out);
  Matrix bt(5, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  }
  expectNear(out, naiveMatmul(a, bt));
}

TEST(Linalg, MatvecMatchesMatmul) {
  Rng rng(4);
  Matrix a = randomMatrix(5, 3, rng);
  std::vector<double> x{0.5, -1.0, 2.0}, y(5);
  linalg::matvec(a, x, y);
  Matrix xm(3, 1, {0.5, -1.0, 2.0});
  Matrix expected = naiveMatmul(a, xm);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], expected(i, 0), 1e-12);
}

TEST(Linalg, DotAxpyNorm) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(linalg::dot(a, b), 32.0);
  linalg::axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  std::vector<double> c{3.0, 4.0};
  EXPECT_DOUBLE_EQ(linalg::norm2(c), 5.0);
}

TEST(Linalg, CholeskySolvesSpdSystem) {
  // A = M^T M + I is SPD.
  Rng rng(5);
  Matrix m = randomMatrix(6, 6, rng), a;
  linalg::matmulTransA(m, m, a);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 1.0;
  std::vector<double> xTrue{1, -2, 3, 0.5, -0.25, 2};
  std::vector<double> b(6), x(6);
  linalg::matvec(a, xTrue, b);
  ASSERT_TRUE(linalg::choleskySolve(a, b, x));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Matrix a(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
  std::vector<double> b{1.0, 1.0}, x(2);
  EXPECT_FALSE(linalg::choleskySolve(a, b, x));
  // A ridge large enough makes it SPD.
  EXPECT_TRUE(linalg::choleskySolve(a, b, x, 2.0));
}

}  // namespace
}  // namespace isop
