// CancelToken semantics: inert default, shared cancellation across copies,
// monotone deadline arming, and the reason strings terminal job events carry.
#include "common/cancellation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace isop {
namespace {

TEST(CancelToken, DefaultConstructedIsInertForever) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throwIfCancelled());
  token.cancel();  // no-op on an inert token
  EXPECT_FALSE(token.cancelled());
  EXPECT_STREQ(token.reason(), "");
}

TEST(CancelToken, CancelIsSharedAcrossCopies) {
  CancelToken token = CancelToken::create();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  CancelToken copy = token;

  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "cancelled");
  EXPECT_THROW(token.throwIfCancelled(), OperationCancelled);
  try {
    copy.throwIfCancelled();
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
}

TEST(CancelToken, DeadlineInThePastCancelsImmediately) {
  CancelToken token = CancelToken::create();
  token.setTimeout(std::chrono::nanoseconds(0));
  // A zero timeout expires at once (modulo scheduler noise: poll briefly).
  for (int i = 0; i < 100 && !token.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "deadline exceeded");
  EXPECT_THROW(token.throwIfCancelled(), OperationCancelled);
}

TEST(CancelToken, FarDeadlineDoesNotCancel) {
  CancelToken token = CancelToken::create();
  token.setTimeout(std::chrono::hours(24));
  EXPECT_TRUE(token.deadlineArmed());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, EarlierDeadlineWins) {
  CancelToken token = CancelToken::create();
  token.setTimeout(std::chrono::nanoseconds(0));
  token.setTimeout(std::chrono::hours(24));  // must not extend the deadline
  for (int i = 0; i < 100 && !token.cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ExplicitCancelReasonBeatsDeadlineReason) {
  CancelToken token = CancelToken::create();
  token.cancel();
  token.setTimeout(std::chrono::nanoseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_STREQ(token.reason(), "cancelled");
}

}  // namespace
}  // namespace isop
