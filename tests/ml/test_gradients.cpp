// Gradient test harness for the surrogate backward path.
//
// Two independent checks pin the analytic input gradients that drive the
// Adam local stage:
//
//  * central finite differences on the public predict() path — catches wrong
//    math (chain rule through scalers / output transforms, layer backward
//    formulas) for every differentiable family across seeds, input dims and
//    output indices;
//  * golden bitwise equality of inputGradientBatch against per-row
//    inputGradient at batch sizes straddling the SIMD row-block boundary
//    (1, 7, 8, 9, 64) — the contract the batched Adam stage and
//    EvalEngine::gradientBatch rely on to keep optimizer trajectories
//    identical to per-design stepping.
//
// A TSan-targeted stress test also hammers one shared model from many
// threads: inputGradient is lock-free (per-call activation workspaces, no
// gradMutex_), so concurrent calls must be race-free and bitwise stable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "ml/ensemble_surrogate.hpp"
#include "ml/linear.hpp"
#include "ml/neural_regressor.hpp"
#include "ml/single_output.hpp"

namespace isop::ml {
namespace {

/// Smooth synthetic target with `inDim` features and `outDim` outputs mixing
/// products, exponentials and sines (positive and negative outputs, like the
/// Z / L / NEXT metrics).
Dataset makeDataset(std::size_t n, std::uint64_t seed, std::size_t inDim,
                    std::size_t outDim) {
  Rng rng(seed);
  Dataset ds{Matrix(n, inDim), Matrix(n, outDim)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < inDim; ++j) ds.x(i, j) = rng.uniform(-1.0, 1.0);
    for (std::size_t k = 0; k < outDim; ++k) {
      const double a = ds.x(i, k % inDim);
      const double b = ds.x(i, (k + 1) % inDim);
      double y = 40.0 + 15.0 * a * b + 4.0 * std::sin(2.0 * b);
      if (k % 2 == 1) y = -std::exp(0.4 * a) - 8.0 * b * b;
      ds.y(i, k) = y;
    }
  }
  return ds;
}

Matrix makeQueries(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) x(i, j) = rng.uniform(-1.1, 1.1);
  }
  return x;
}

/// Symmetric relative error, guarded for near-zero pairs.
double relativeError(double analytic, double numeric) {
  const double scale =
      std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  return std::abs(analytic - numeric) / scale;
}

/// Central finite difference of predict()[outputIndex] along every input.
std::vector<double> fdGradient(const Surrogate& model, std::span<const double> x,
                               std::size_t outputIndex, double h) {
  std::vector<double> grad(x.size());
  std::vector<double> probe(x.begin(), x.end());
  std::vector<double> lo(model.outputDim()), hi(model.outputDim());
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double saved = probe[j];
    probe[j] = saved + h;
    model.predict(probe, hi);
    probe[j] = saved - h;
    model.predict(probe, lo);
    probe[j] = saved;
    grad[j] = (hi[outputIndex] - lo[outputIndex]) / (2.0 * h);
  }
  return grad;
}

/// Every row x output index of `queries`: inputGradient must agree with the
/// central difference within `relTol` (or an absolute floor for components
/// that are essentially zero).
void expectGradientMatchesFd(const Surrogate& model, const Matrix& queries,
                             double h, double relTol, double absTol = 1e-6) {
  ASSERT_TRUE(model.hasInputGradient());
  std::vector<double> grad(model.inputDim());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    for (std::size_t k = 0; k < model.outputDim(); ++k) {
      model.inputGradient(queries.row(i), k, grad);
      const auto fd = fdGradient(model, queries.row(i), k, h);
      for (std::size_t j = 0; j < grad.size(); ++j) {
        if (std::abs(grad[j] - fd[j]) < absTol) continue;
        EXPECT_LT(relativeError(grad[j], fd[j]), relTol)
            << "row " << i << " output " << k << " input " << j
            << " analytic=" << grad[j] << " fd=" << fd[j];
      }
    }
  }
}

/// Golden contract: inputGradientBatch over the first n rows must reproduce
/// per-row inputGradient bitwise at sizes straddling the 8-row SIMD block,
/// for every output index — and gradient rows must not be billed as queries.
void expectBatchBitwiseEqualsScalar(const Surrogate& model, const Matrix& queries) {
  ASSERT_GE(queries.rows(), 64u);
  std::vector<double> row(model.inputDim());
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u}) {
    Matrix x(n, model.inputDim());
    for (std::size_t r = 0; r < n; ++r) {
      const auto src = queries.row(r);
      std::copy(src.begin(), src.end(), x.row(r).begin());
    }
    for (std::size_t k = 0; k < model.outputDim(); ++k) {
      model.resetQueryCount();
      Matrix batch;
      model.inputGradientBatch(x, k, batch);
      EXPECT_EQ(model.queryCount(), 0u) << "gradients are not samples seen";
      ASSERT_EQ(batch.rows(), n);
      ASSERT_EQ(batch.cols(), model.inputDim());
      for (std::size_t r = 0; r < n; ++r) {
        model.inputGradient(x.row(r), k, row);
        EXPECT_EQ(std::memcmp(row.data(), batch.row(r).data(),
                              row.size() * sizeof(double)),
                  0)
            << "batch " << n << " output " << k << " row " << r;
      }
    }
  }
}

nn::TrainConfig quickTraining(std::size_t epochs = 8) {
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batchSize = 64;
  cfg.learningRate = 3e-3;
  return cfg;
}

/// Analytic toy surrogate with a known closed-form gradient and NO
/// inputGradientBatch override, so the batch call runs the Surrogate base
/// fallback loop. f_k(x) = sum_j (k + 1 + j) * x_j^2.
class QuadraticSurrogate final : public Surrogate {
 public:
  QuadraticSurrogate(std::size_t inDim, std::size_t outDim)
      : inDim_(inDim), outDim_(outDim) {}

  std::size_t inputDim() const override { return inDim_; }
  std::size_t outputDim() const override { return outDim_; }

  void predict(std::span<const double> x, std::span<double> out) const override {
    countQuery();
    for (std::size_t k = 0; k < outDim_; ++k) {
      double acc = 0.0;
      for (std::size_t j = 0; j < inDim_; ++j) {
        acc += static_cast<double>(k + 1 + j) * x[j] * x[j];
      }
      out[k] = acc;
    }
  }

  bool hasInputGradient() const override { return true; }
  void inputGradient(std::span<const double> x, std::size_t outputIndex,
                     std::span<double> grad) const override {
    for (std::size_t j = 0; j < inDim_; ++j) {
      grad[j] = 2.0 * static_cast<double>(outputIndex + 1 + j) * x[j];
    }
  }

 private:
  std::size_t inDim_;
  std::size_t outDim_;
};

// ---- Finite-difference checks -------------------------------------------

TEST(GradientFiniteDifference, HarnessAgreesWithClosedFormQuadratic) {
  // Sanity-check the harness itself: FD of a quadratic with h=1e-5 is exact
  // to ~1e-10, so a tight tolerance must hold.
  const QuadraticSurrogate model(5, 3);
  expectGradientMatchesFd(model, makeQueries(12, 5, 31), 1e-5, 1e-6);
}

TEST(GradientFiniteDifference, MlpAcrossSeedsMatchesFd) {
  for (std::uint64_t seed : {1u, 2u}) {
    MlpConfig cfg;
    cfg.hidden = {32, 32};
    cfg.initSeed = 7 + seed;
    MlpRegressor model(cfg);
    model.fit(makeDataset(600, seed, 4, 2), quickTraining());
    expectGradientMatchesFd(model, makeQueries(10, 4, 40 + seed), 1e-5, 5e-3);
  }
}

TEST(GradientFiniteDifference, MlpWiderInputAndThreeOutputsMatchesFd) {
  MlpConfig cfg;
  cfg.hidden = {24, 24};
  MlpRegressor model(cfg);
  model.fit(makeDataset(700, 3, 6, 3), quickTraining());
  expectGradientMatchesFd(model, makeQueries(8, 6, 43), 1e-5, 5e-3);
}

TEST(GradientFiniteDifference, MlpWithOutputTransformMatchesFd) {
  // The log-magnitude transform on output 1 exercises the inverseDerivative
  // chain in NeuralRegressor::inputGradientBatch.
  MlpConfig cfg;
  cfg.hidden = {32, 32};
  MlpRegressor model(cfg);
  model.setOutputTransforms(
      {OutputTransform::identity(), OutputTransform::logMagnitude(-1.0)});
  model.fit(makeDataset(600, 4, 4, 2), quickTraining());
  expectGradientMatchesFd(model, makeQueries(10, 4, 44), 1e-5, 5e-3);
}

TEST(GradientFiniteDifference, CnnMatchesFd) {
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(500, 5, 4, 2), quickTraining(6));
  expectGradientMatchesFd(model, makeQueries(8, 4, 45), 1e-5, 5e-3);
}

TEST(GradientFiniteDifference, CnnWithBatchNormMatchesFd) {
  // Inference-mode BatchNorm is an affine map through the running stats, so
  // its analytic gradient (gamma / sqrt(runVar + eps) on the diagonal) must
  // match finite differences of the inference path.
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.batchNorm = true;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(500, 6, 4, 2), quickTraining(6));
  expectGradientMatchesFd(model, makeQueries(8, 4, 46), 1e-5, 5e-3);
}

TEST(GradientFiniteDifference, MlpEnsembleMatchesFd) {
  EnsembleTrainConfig cfg;
  cfg.members = 3;
  cfg.architecture.hidden = {16, 16};
  cfg.training = quickTraining(5);
  auto ensemble = trainMlpEnsemble(makeDataset(500, 7, 4, 2), cfg);
  expectGradientMatchesFd(*ensemble, makeQueries(8, 4, 47), 1e-5, 5e-3);
}

TEST(GradientFiniteDifference, PolynomialStackMatchesFd) {
  // Degree-2 polynomial: analytic gradient, near-exact FD agreement. Output
  // 1 is wrapped in a log-magnitude transform to cover the
  // TransformedTargetModel chain rule.
  const Dataset train = makeDataset(500, 8, 4, 2);
  auto factory = [&](std::size_t output) -> std::unique_ptr<SingleOutputModel> {
    PolynomialLinearConfig cfg;
    cfg.degree = 2;
    auto inner = std::make_unique<PolynomialLinearRegressor>(cfg);
    if (output == 1) {
      return std::make_unique<TransformedTargetModel>(
          std::move(inner), OutputTransform::logMagnitude(-1.0));
    }
    return inner;
  };
  MultiOutputSurrogate model(train, factory);
  expectGradientMatchesFd(model, makeQueries(10, 4, 48), 1e-5, 1e-4);
}

// ---- Golden bitwise batch == scalar --------------------------------------

TEST(GradientBatchGolden, MlpBatchMatchesScalarBitwise) {
  MlpConfig cfg;
  cfg.hidden = {32, 32};
  MlpRegressor model(cfg);
  model.setOutputTransforms(
      {OutputTransform::identity(), OutputTransform::logMagnitude(-1.0)});
  model.fit(makeDataset(600, 11, 4, 2), quickTraining());
  expectBatchBitwiseEqualsScalar(model, makeQueries(64, 4, 51));
}

TEST(GradientBatchGolden, CnnBatchMatchesScalarBitwise) {
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(400, 12, 4, 2), quickTraining(6));
  expectBatchBitwiseEqualsScalar(model, makeQueries(64, 4, 52));
}

TEST(GradientBatchGolden, CnnWithBatchNormBatchMatchesScalarBitwise) {
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.batchNorm = true;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(400, 13, 4, 2), quickTraining(6));
  expectBatchBitwiseEqualsScalar(model, makeQueries(64, 4, 53));
}

TEST(GradientBatchGolden, MlpEnsembleBatchMatchesScalarBitwise) {
  EnsembleTrainConfig cfg;
  cfg.members = 3;
  cfg.architecture.hidden = {16, 16};
  cfg.training = quickTraining(5);
  auto ensemble = trainMlpEnsemble(makeDataset(400, 14, 4, 2), cfg);
  expectBatchBitwiseEqualsScalar(*ensemble, makeQueries(64, 4, 54));
}

TEST(GradientBatchGolden, BaseFallbackBatchMatchesScalarBitwise) {
  // QuadraticSurrogate has no inputGradientBatch override: this pins the
  // Surrogate base-class fallback loop (and its unbilled-rows contract).
  const QuadraticSurrogate model(5, 3);
  expectBatchBitwiseEqualsScalar(model, makeQueries(64, 5, 55));
}

TEST(GradientBatchGolden, PolynomialStackBatchMatchesScalarBitwise) {
  const Dataset train = makeDataset(500, 15, 4, 2);
  auto factory = [&](std::size_t output) -> std::unique_ptr<SingleOutputModel> {
    PolynomialLinearConfig cfg;
    cfg.degree = 2;
    auto inner = std::make_unique<PolynomialLinearRegressor>(cfg);
    if (output == 1) {
      return std::make_unique<TransformedTargetModel>(
          std::move(inner), OutputTransform::logMagnitude(-1.0));
    }
    return inner;
  };
  MultiOutputSurrogate model(train, factory);
  expectBatchBitwiseEqualsScalar(model, makeQueries(64, 4, 56));
}

// ---- Thread-safety stress -------------------------------------------------

TEST(GradientThreadSafety, ConcurrentGradientsAreRaceFreeAndBitwiseStable) {
  // inputGradient / inputGradientBatch are lock-free const paths (per-call
  // activation workspaces; no shared gradient scratch). Hammering one model
  // from many threads must produce the serial reference bitwise and be clean
  // under TSan (scripts/check_sanitizers.sh runs this under -L gradients).
  MlpConfig cfg;
  cfg.hidden = {32, 32};
  MlpRegressor model(cfg);
  model.fit(makeDataset(500, 21, 4, 2), quickTraining(5));

  const Matrix queries = makeQueries(16, 4, 61);
  std::vector<std::vector<double>> want(queries.rows(),
                                        std::vector<double>(queries.cols()));
  for (std::size_t r = 0; r < queries.rows(); ++r) {
    model.inputGradient(queries.row(r), 0, want[r]);
  }
  Matrix wantBatch;
  model.inputGradientBatch(queries, 1, wantBatch);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 50;
  std::vector<std::size_t> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double> grad(queries.cols());
      Matrix batch;
      for (std::size_t it = 0; it < kIters; ++it) {
        const std::size_t r = (t * kIters + it) % queries.rows();
        model.inputGradient(queries.row(r), 0, grad);
        if (std::memcmp(grad.data(), want[r].data(),
                        grad.size() * sizeof(double)) != 0) {
          ++mismatches[t];
        }
        if (it % 8 == 0) {
          model.inputGradientBatch(queries, 1, batch);
          if (std::memcmp(batch.data(), wantBatch.data(),
                          batch.rows() * batch.cols() * sizeof(double)) != 0) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  }
}

TEST(GradientThreadSafety, ConcurrentPlannedCnnGradientsAreBitwiseStable) {
  // The CNN variant hammers the compiled plan's shared workspace pool
  // (ml/nn/plan.hpp): every forward/gradient block checks a workspace out of
  // a mutex-guarded pool and returns it, so 8 threads mixing batch shapes
  // exercise acquire/release churn plus the conv/pool kernels. Results must
  // stay bitwise equal to the serial reference and clean under TSan.
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.dropout = 0.0;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(500, 22, 4, 2), quickTraining(5));
  ASSERT_NE(model.plan(), nullptr);

  const Matrix queries = makeQueries(24, 4, 62);
  Matrix wantForward;
  model.predictBatch(queries, wantForward);
  Matrix wantGrad;
  model.inputGradientBatch(queries, 0, wantGrad);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 30;
  // Sub-batch sizes straddling the 8-row block, so partial and multi-block
  // workspaces interleave in the pool.
  constexpr std::size_t kSizes[] = {3, 8, 13, 24};
  std::vector<std::size_t> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Matrix x, pred, grad;
      for (std::size_t it = 0; it < kIters; ++it) {
        const std::size_t n = kSizes[(t + it) % std::size(kSizes)];
        x.resize(n, queries.cols());
        for (std::size_t r = 0; r < n; ++r) {
          const auto src = queries.row((t + it + r) % queries.rows());
          std::copy(src.begin(), src.end(), x.row(r).begin());
        }
        model.predictBatch(x, pred);
        model.inputGradientBatch(x, 0, grad);
        for (std::size_t r = 0; r < n; ++r) {
          const std::size_t ref = (t + it + r) % queries.rows();
          if (std::memcmp(pred.row(r).data(), wantForward.row(ref).data(),
                          pred.cols() * sizeof(double)) != 0 ||
              std::memcmp(grad.row(r).data(), wantGrad.row(ref).data(),
                          grad.cols() * sizeof(double)) != 0) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace isop::ml
