#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

namespace isop::ml {
namespace {

TEST(Metrics, MaeBasic) {
  std::vector<double> t{1.0, 2.0, 3.0}, p{1.5, 1.5, 3.0};
  EXPECT_NEAR(mae(t, p), (0.5 + 0.5 + 0.0) / 3.0, 1e-12);
}

TEST(Metrics, MaeEmptyIsZero) {
  std::vector<double> e;
  EXPECT_DOUBLE_EQ(mae(e, e), 0.0);
}

TEST(Metrics, MapeIsFractional) {
  std::vector<double> t{100.0, 200.0}, p{110.0, 180.0};
  EXPECT_NEAR(mape(t, p), (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(Metrics, MapeSkipsNearZeroTruth) {
  std::vector<double> t{0.0, 100.0}, p{5.0, 110.0};
  EXPECT_NEAR(mape(t, p), 0.1, 1e-12);  // only the second entry counts
}

TEST(Metrics, SmapeHandlesZeros) {
  std::vector<double> t{0.0, 1.0}, p{0.0, 1.0};
  EXPECT_DOUBLE_EQ(smape(t, p), 0.0);
}

TEST(Metrics, SmapeMaxIsTwo) {
  std::vector<double> t{1.0}, p{-1.0};
  EXPECT_DOUBLE_EQ(smape(t, p), 2.0);
}

TEST(Metrics, SmapeSymmetric) {
  std::vector<double> t{2.0}, p{1.0};
  std::vector<double> t2{1.0}, p2{2.0};
  EXPECT_DOUBLE_EQ(smape(t, p), smape(t2, p2));
  EXPECT_NEAR(smape(t, p), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, RmsePenalizesLargeErrors) {
  std::vector<double> t{0.0, 0.0}, p{0.0, 2.0};
  EXPECT_NEAR(rmse(t, p), std::sqrt(2.0), 1e-12);
  EXPECT_GT(rmse(t, p), mae(t, p));
}

TEST(Metrics, PerfectPredictionAllZero) {
  std::vector<double> t{1.0, -2.0, 3.5}, p = t;
  EXPECT_DOUBLE_EQ(mae(t, p), 0.0);
  EXPECT_DOUBLE_EQ(mape(t, p), 0.0);
  EXPECT_DOUBLE_EQ(smape(t, p), 0.0);
  EXPECT_DOUBLE_EQ(rmse(t, p), 0.0);
}

}  // namespace
}  // namespace isop::ml
