#include <gtest/gtest.h>

#include <cmath>

#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"

namespace isop::ml {
namespace {

TEST(PolynomialLinear, RecoversExactQuadratic) {
  // y = 2 + 3 x0 - x1 + 0.5 x0^2 + 2 x0 x1.
  Rng rng(1);
  Matrix x(500, 2);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = 2.0 + 3.0 * x(i, 0) - x(i, 1) + 0.5 * x(i, 0) * x(i, 0) +
           2.0 * x(i, 0) * x(i, 1);
  }
  PolynomialLinearConfig cfg;
  cfg.ridge = 1e-8;
  PolynomialLinearRegressor model(cfg);
  model.fit(x, y);
  Rng rng2(2);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> q{rng2.uniform(-2.0, 2.0), rng2.uniform(-2.0, 2.0)};
    const double truth =
        2.0 + 3.0 * q[0] - q[1] + 0.5 * q[0] * q[0] + 2.0 * q[0] * q[1];
    EXPECT_NEAR(model.predictOne(q), truth, 1e-5);
  }
}

TEST(PolynomialLinear, ExpandedDimension) {
  PolynomialLinearRegressor deg2;
  Matrix x(10, 3);
  std::vector<double> y(10, 1.0);
  deg2.fit(x, y);
  // 1 + 3 + 6 = 10 features for d=3 degree 2.
  EXPECT_EQ(deg2.expandedDim(), 10u);
}

TEST(PolynomialLinear, DegreeOneIsAffine) {
  PolynomialLinearConfig cfg;
  cfg.degree = 1;
  cfg.ridge = 1e-10;
  PolynomialLinearRegressor model(cfg);
  Rng rng(3);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 4.0 - 2.0 * x(i, 0) + 7.0 * x(i, 1);
  }
  model.fit(x, y);
  std::vector<double> q{0.5, -0.5};
  EXPECT_NEAR(model.predictOne(q), 4.0 - 1.0 - 3.5, 1e-6);
}

TEST(PolynomialLinear, RejectsUnsupportedDegree) {
  PolynomialLinearConfig cfg;
  cfg.degree = 3;
  EXPECT_THROW(PolynomialLinearRegressor{cfg}, std::invalid_argument);
}

TEST(PolynomialLinear, CannotFitCubicExactly) {
  // Sanity: degree-2 features underfit a cubic (motivates the NN models).
  Rng rng(4);
  Matrix x(400, 1);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = x(i, 0) * x(i, 0) * x(i, 0);
  }
  PolynomialLinearRegressor model;
  model.fit(x, y);
  std::vector<double> pred, truth;
  for (std::size_t i = 0; i < 400; ++i) {
    pred.push_back(model.predictOne(x.row(i)));
    truth.push_back(y[i]);
  }
  EXPECT_GT(mae(truth, pred), 0.2);
}

TEST(Svr, ApproximatesSmoothFunction) {
  Rng rng(5);
  Matrix x(3000, 2);
  std::vector<double> y(3000);
  for (std::size_t i = 0; i < 3000; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = std::sin(2.0 * x(i, 0)) + 0.5 * x(i, 1);
  }
  SvrRegressor model;
  model.fit(x, y);
  std::vector<double> pred, truth;
  Rng rng2(6);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> q{rng2.uniform(-1.0, 1.0), rng2.uniform(-1.0, 1.0)};
    truth.push_back(std::sin(2.0 * q[0]) + 0.5 * q[1]);
    pred.push_back(model.predictOne(q));
  }
  EXPECT_LT(mae(truth, pred), 0.12);
}

TEST(Svr, HandlesConstantTarget) {
  Matrix x(50, 1);
  for (std::size_t i = 0; i < 50; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y(50, 3.0);
  SvrRegressor model;
  model.fit(x, y);
  std::vector<double> q{25.0};
  EXPECT_NEAR(model.predictOne(q), 3.0, 0.2);
}

TEST(Svr, DeterministicAcrossFits) {
  Rng rng(7);
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = x(i, 0) * x(i, 0);
  }
  SvrRegressor a, b;
  a.fit(x, y);
  b.fit(x, y);
  std::vector<double> q{0.3};
  EXPECT_DOUBLE_EQ(a.predictOne(q), b.predictOne(q));
}

TEST(TransformedTargetModel, RoundTripsThroughLogSpace) {
  // Exponential-range target: y = exp(3 x). Log-space linear fit is exact.
  Rng rng(8);
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = std::exp(3.0 * x(i, 0));
  }
  PolynomialLinearConfig cfg;
  cfg.degree = 1;
  cfg.ridge = 1e-10;
  TransformedTargetModel model(std::make_unique<PolynomialLinearRegressor>(cfg),
                               OutputTransform::logMagnitude(+1.0));
  model.fit(x, y);
  std::vector<double> q{0.5};
  EXPECT_NEAR(model.predictOne(q), std::exp(1.5), 1e-3);
}

}  // namespace
}  // namespace isop::ml
