// End-to-end training behaviour of the Sequential/Adam/trainer stack.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/nn/activation.hpp"
#include "ml/nn/adam.hpp"
#include "ml/nn/dense.hpp"
#include "ml/nn/sequential.hpp"
#include "ml/nn/trainer.hpp"

namespace isop::ml::nn {
namespace {

/// y = x0*x1 + 0.5*sin(pi*x2): smooth nonlinear 3-in/1-out target.
void makeData(std::size_t n, std::uint64_t seed, Matrix& x, Matrix& y) {
  Rng rng(seed);
  x.resize(n, 3);
  y.resize(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
    y(i, 0) = x(i, 0) * x(i, 1) + 0.5 * std::sin(3.14159265 * x(i, 2));
  }
}

Sequential makeMlp(std::uint64_t seed) {
  Rng rng(seed);
  Sequential net;
  net.add(std::make_unique<Dense>(3, 32, rng));
  net.add(std::make_unique<LeakyRelu>(32));
  net.add(std::make_unique<Dense>(32, 32, rng));
  net.add(std::make_unique<LeakyRelu>(32));
  net.add(std::make_unique<Dense>(32, 1, rng));
  return net;
}

TEST(Trainer, LossDecreasesAndFitsNonlinearTarget) {
  Matrix x, y;
  makeData(2000, 1, x, y);
  Sequential net = makeMlp(2);
  std::vector<double> losses;
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batchSize = 64;
  cfg.learningRate = 3e-3;
  cfg.onEpoch = [&](std::size_t, double l) { losses.push_back(l); };
  TrainReport report = trainMse(net, x, y, cfg);
  ASSERT_EQ(losses.size(), 40u);
  EXPECT_LT(losses.back(), 0.25 * losses.front());
  EXPECT_LT(report.finalTrainLoss, 0.01);

  Matrix xt, yt;
  makeData(500, 99, xt, yt);
  EXPECT_LT(mseLoss(net, xt, yt), 0.02);  // generalizes
}

TEST(Trainer, DeterministicGivenSeed) {
  Matrix x, y;
  makeData(300, 3, x, y);
  Sequential a = makeMlp(5), b = makeMlp(5);
  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.seed = 17;
  trainMse(a, x, y, cfg);
  trainMse(b, x, y, cfg);
  Matrix pa, pb;
  a.infer(x, pa);
  b.infer(x, pb);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_DOUBLE_EQ(pa.data()[i], pb.data()[i]);
  }
}

TEST(Sequential, InputGradientMatchesFiniteDifference) {
  Sequential net = makeMlp(7);
  std::vector<double> x{0.3, -0.5, 0.8}, grad(3);
  net.inputGradient(x, 0, grad);
  const double h = 1e-6;
  for (std::size_t j = 0; j < 3; ++j) {
    auto evalAt = [&](double v) {
      auto xx = x;
      xx[j] = v;
      Matrix in(1, 3, {xx[0], xx[1], xx[2]}), out;
      net.infer(in, out);
      return out(0, 0);
    };
    const double numeric = (evalAt(x[j] + h) - evalAt(x[j] - h)) / (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 1e-5);
  }
}

TEST(Sequential, InputGradientDoesNotPolluteParamGrads) {
  Sequential net = makeMlp(9);
  std::vector<double> x{0.1, 0.2, 0.3}, grad(3);
  net.inputGradient(x, 0, grad);
  net.forEachParamBlock([](std::span<double>, std::span<double> g) {
    for (double v : g) ASSERT_DOUBLE_EQ(v, 0.0);
  });
}

TEST(Sequential, RejectsDimensionMismatch) {
  Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Dense>(3, 8, rng));
  EXPECT_THROW(net.add(std::make_unique<Dense>(4, 2, rng)), std::invalid_argument);
}

TEST(Sequential, ParamsSaveLoadRoundTrip) {
  Sequential a = makeMlp(11);
  std::stringstream buf;
  a.saveParams(buf);
  Sequential b = makeMlp(999);  // different init
  b.loadParams(buf);
  Matrix in(1, 3, {0.5, -0.5, 0.25}), outA, outB;
  a.infer(in, outA);
  b.infer(in, outB);
  EXPECT_DOUBLE_EQ(outA(0, 0), outB(0, 0));
}

TEST(Sequential, LoadRejectsWrongTopology) {
  Sequential a = makeMlp(1);
  std::stringstream buf;
  a.saveParams(buf);
  Rng rng(2);
  Sequential b;
  b.add(std::make_unique<Dense>(3, 16, rng));  // different shape
  EXPECT_THROW(b.loadParams(buf), std::runtime_error);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (p0 - 3)^2 + (p1 + 2)^2.
  std::vector<double> p{0.0, 0.0}, g(2);
  Adam adam({.learningRate = 0.1});
  adam.registerBlock(p);
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0 * (p[0] - 3.0);
    g[1] = 2.0 * (p[1] + 2.0);
    std::span<double> pb[] = {std::span<double>(p)};
    std::span<double> gb[] = {std::span<double>(g)};
    adam.step(pb, gb);
  }
  EXPECT_NEAR(p[0], 3.0, 1e-2);
  EXPECT_NEAR(p[1], -2.0, 1e-2);
}

TEST(Adam, BlockCountMismatchThrows) {
  std::vector<double> p{1.0};
  Adam adam;
  adam.registerBlock(p);
  std::vector<std::span<double>> none;
  EXPECT_THROW(adam.step(none, none), std::invalid_argument);
}

}  // namespace
}  // namespace isop::ml::nn
