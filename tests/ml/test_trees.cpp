#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"

namespace isop::ml {
namespace {

TEST(FeatureBinner, QuantileEdgesAndBinning) {
  Matrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = static_cast<double>(i);
  FeatureBinner binner;
  binner.fit(x, 4);
  EXPECT_EQ(binner.featureCount(), 1u);
  EXPECT_EQ(binner.binCount(0), 4u);
  EXPECT_EQ(binner.binOf(0, -10.0), 0);
  EXPECT_EQ(binner.binOf(0, 1000.0), 3);
  // Monotone: larger values never map to smaller bins.
  std::uint8_t prev = 0;
  for (double v = 0.0; v < 100.0; v += 1.0) {
    std::uint8_t b = binner.binOf(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(FeatureBinner, ConstantColumnSingleBin) {
  Matrix x(50, 1, 7.0);
  FeatureBinner binner;
  binner.fit(x, 8);
  EXPECT_EQ(binner.binCount(0), 2u);  // one dedup'd edge -> 2 bins max
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  // y = 1 if x > 0.5 else 0: a single split suffices.
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = static_cast<double>(i) / 200.0;
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  std::vector<double> xq{0.1};
  EXPECT_NEAR(tree.predictOne(xq), 0.0, 1e-9);
  xq[0] = 0.9;
  EXPECT_NEAR(tree.predictOne(xq), 1.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Matrix x(256, 1);
  std::vector<double> y(256);
  Rng rng(1);
  for (std::size_t i = 0; i < 256; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = rng.uniform();  // pure noise: tree wants to overfit
  }
  DecisionTreeConfig cfg;
  cfg.maxDepth = 2;
  cfg.minSamplesLeaf = 1;
  DecisionTreeRegressor shallow(cfg);
  shallow.fit(x, y);
  // Depth 2 -> at most 4 distinct leaf values.
  std::set<double> values;
  for (std::size_t i = 0; i < 256; ++i) values.insert(shallow.predictOne(x.row(i)));
  EXPECT_LE(values.size(), 4u);
}

TEST(DecisionTree, PredictsMeanForConstantFeatures) {
  Matrix x(10, 2, 1.0);
  std::vector<double> y{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  std::vector<double> q{1.0, 1.0};
  EXPECT_NEAR(tree.predictOne(q), 5.5, 1e-9);
}

TEST(DecisionTree, LearnsTwoDimensionalInteraction) {
  // y = XOR-ish: sign(x0) * sign(x1). Needs depth >= 2.
  Rng rng(5);
  Matrix x(1000, 2);
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = (x(i, 0) > 0) == (x(i, 1) > 0) ? 1.0 : -1.0;
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  std::vector<double> preds, truths;
  Rng rng2(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> q{rng2.uniform(-1.0, 1.0), rng2.uniform(-1.0, 1.0)};
    truths.push_back((q[0] > 0) == (q[1] > 0) ? 1.0 : -1.0);
    preds.push_back(tree.predictOne(q));
  }
  EXPECT_LT(mae(truths, preds), 0.15);
}

TEST(GradientTreeXgb, LambdaShrinksLeaves) {
  // One leaf, lambda = count -> leaf value = mean/2.
  Matrix x(4, 1, 0.0);
  FeatureBinner binner;
  binner.fit(x, 4);
  std::vector<std::uint8_t> binned;
  binner.transform(x, binned);
  std::vector<std::size_t> rows{0, 1, 2, 3};
  std::vector<double> g{-2.0, -2.0, -2.0, -2.0}, h{1.0, 1.0, 1.0, 1.0};
  TreeConfig cfg;
  cfg.lambda = 4.0;
  Rng rng(1);
  GradientTree tree;
  tree.fit(binner, binned, 1, rows, g, h, cfg, rng);
  std::vector<double> q{0.0};
  // -sum(g)/(sum(h)+lambda) = 8/(4+4) = 1 instead of the unregularized 2.
  EXPECT_NEAR(tree.predictOne(q), 1.0, 1e-12);
}

TEST(GradientTreeXgb, GammaBlocksWeakSplits) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  Rng rng(3);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = rng.uniform(-0.01, 0.01);  // nearly constant target
  }
  FeatureBinner binner;
  binner.fit(x, 32);
  std::vector<std::uint8_t> binned;
  binner.transform(x, binned);
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  std::vector<double> g(100), h(100, 1.0);
  for (std::size_t i = 0; i < 100; ++i) g[i] = -y[i];
  TreeConfig cfg;
  cfg.gamma = 10.0;  // demands large gain
  Rng rng2(4);
  GradientTree tree;
  tree.fit(binner, binned, 1, rows, g, h, cfg, rng2);
  EXPECT_EQ(tree.nodeCount(), 1u);  // no split worth gamma
  EXPECT_EQ(tree.depth(), 0u);
}

}  // namespace
}  // namespace isop::ml
