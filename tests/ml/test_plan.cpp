// Golden suites for compiled model plans (ml/nn/plan.hpp).
//
// The default plan must be bitwise identical to the per-layer interpreted
// path — forward AND input gradients — at batch sizes straddling the 8-row
// SIMD block (1, 7, 8, 9, 64, 256), across the shipped surrogate families
// (MLP; 1D-CNN; 1D-CNN with batch norm, whose BN-between-dense-and-act
// blocks exercise the standalone-activation ops) plus a raw Sequential with
// a Tanh fusion the regressors never build. Plan reuse (one plan, many
// mixed-size batches) must stay stable, and the opt-in fast-math path is
// tolerance-bounded instead of bitwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <memory>

#include "ml/neural_regressor.hpp"
#include "ml/nn/activation.hpp"
#include "ml/nn/batch_norm.hpp"
#include "ml/nn/dense.hpp"
#include "ml/nn/plan.hpp"
#include "ml/nn/sequential.hpp"

namespace isop::ml {
namespace {

constexpr std::size_t kBatches[] = {1, 7, 8, 9, 64, 256};

Dataset makeDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds{Matrix(n, 4), Matrix(n, 2)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) ds.x(i, j) = rng.uniform(-1.0, 1.0);
    ds.y(i, 0) = 45.0 + 18.0 * ds.x(i, 0) * ds.x(i, 1) + 4.0 * std::sin(ds.x(i, 2));
    ds.y(i, 1) = -std::exp(0.4 * ds.x(i, 3)) - 0.3 * ds.x(i, 0) * ds.x(i, 0);
  }
  return ds;
}

Matrix makeQueries(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) x(i, j) = rng.uniform(-1.2, 1.2);
  }
  return x;
}

nn::TrainConfig quickTraining(std::size_t epochs = 6) {
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batchSize = 64;
  cfg.learningRate = 3e-3;
  return cfg;
}

std::unique_ptr<MlpRegressor> trainedMlp() {
  MlpConfig cfg;
  cfg.hidden = {16, 8};
  cfg.dropout = 0.0;
  auto model = std::make_unique<MlpRegressor>(cfg);
  model->fit(makeDataset(400, 1), quickTraining());
  return model;
}

std::unique_ptr<Cnn1dRegressor> trainedCnn(bool batchNorm) {
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.dropout = 0.0;
  cfg.batchNorm = batchNorm;
  auto model = std::make_unique<Cnn1dRegressor>(cfg);
  model->fit(makeDataset(400, batchNorm ? 3 : 2), quickTraining());
  return model;
}

Matrix firstRows(const Matrix& src, std::size_t n) {
  Matrix x(n, src.cols());
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = src.row(r % src.rows());
    std::copy(row.begin(), row.end(), x.row(r).begin());
  }
  return x;
}

void expectBitwiseEqual(const Matrix& got, const Matrix& want, const char* what,
                        std::size_t batch) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.rows() * got.cols() * sizeof(double)),
            0)
      << what << " diverges from the interpreted path at batch " << batch;
}

/// Planned predictBatch and inputGradientBatch must reproduce the
/// interpreted reference bitwise at every block-straddling batch size.
void expectPlannedMatchesInterpreted(const NeuralRegressor& model,
                                     const Matrix& queries) {
  ASSERT_NE(model.plan(), nullptr) << "plan should have compiled";
  for (std::size_t n : kBatches) {
    const Matrix x = firstRows(queries, n);
    Matrix planned, interpreted;
    model.predictBatch(x, planned);
    model.predictBatchInterpreted(x, interpreted);
    expectBitwiseEqual(planned, interpreted, "forward", n);
    for (std::size_t k = 0; k < model.outputDim(); ++k) {
      Matrix gPlanned, gInterpreted;
      model.inputGradientBatch(x, k, gPlanned);
      model.inputGradientBatchInterpreted(x, k, gInterpreted);
      expectBitwiseEqual(gPlanned, gInterpreted, "gradient", n);
    }
  }
}

// ---- Lowering --------------------------------------------------------------

TEST(PlanCompile, MlpLowersWithFusedActivationsAndElidedDropout) {
  MlpConfig cfg;
  cfg.hidden = {16, 8};
  cfg.dropout = 0.1;  // dropout layers must be elided, not rejected
  MlpRegressor model(cfg);
  model.fit(makeDataset(300, 5), quickTraining(3));
  const nn::CompiledPlan* plan = model.plan();
  ASSERT_NE(plan, nullptr);
  // Dense+LeakyRelu x2 fused, final Dense unfused; dropouts gone.
  EXPECT_EQ(plan->opCount(), 3u);
  EXPECT_EQ(plan->fusedOpCount(), 2u);
  EXPECT_EQ(plan->inputDim(), model.inputDim());
  EXPECT_EQ(plan->outputDim(), model.outputDim());
  EXPECT_TRUE(plan->foldsInput());
  EXPECT_FALSE(plan->fastMath());
  EXPECT_EQ(model.planSummary(), "plan(ops=3 fused=2 foldscale)");
}

TEST(PlanCompile, CnnWithBatchNormKeepsStandaloneActivations) {
  const auto model = trainedCnn(true);
  const nn::CompiledPlan* plan = model->plan();
  ASSERT_NE(plan, nullptr);
  // BN sits between the expansion/head Dense and their activations, so those
  // two LeakyRelus stay standalone; the two conv activations fuse.
  EXPECT_EQ(plan->fusedOpCount(), 2u);
  EXPECT_EQ(model->planSummary(), "plan(ops=11 fused=2 foldscale)");
}

TEST(PlanCompile, UnsupportedLayerFallsBackToInterpreted) {
  /// A layer kind the plan does not know how to lower.
  class SquareLayer final : public nn::Layer {
   public:
    explicit SquareLayer(std::size_t dim) : dim_(dim) {}
    std::size_t inputDim() const override { return dim_; }
    std::size_t outputDim() const override { return dim_; }
    void forward(const Matrix& in, Matrix& out, Rng&) override { infer(in, out); }
    void infer(const Matrix& in, Matrix& out) const override {
      out.resize(in.rows(), in.cols());
      for (std::size_t i = 0; i < in.size(); ++i) {
        out.data()[i] = in.data()[i] * in.data()[i];
      }
    }
    void backward(const Matrix&, Matrix&) override {}
    void backwardInput(const Matrix& in, const Matrix&, const Matrix& gradOut,
                       Matrix& gradIn) const override {
      gradIn.resize(gradOut.rows(), gradOut.cols());
      for (std::size_t i = 0; i < gradOut.size(); ++i) {
        gradIn.data()[i] = gradOut.data()[i] * 2.0 * in.data()[i];
      }
    }

   private:
    std::size_t dim_;
  };

  Rng rng(9);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>(4, 8, rng));
  net.add(std::make_unique<SquareLayer>(8));
  net.add(std::make_unique<nn::Dense>(8, 2, rng));
  EXPECT_EQ(nn::CompiledPlan::compile(net), nullptr);
}

// ---- Golden planned == interpreted, per family -----------------------------

TEST(PlanGolden, MlpPlannedMatchesInterpretedBitwise) {
  expectPlannedMatchesInterpreted(*trainedMlp(), makeQueries(256, 4, 21));
}

TEST(PlanGolden, CnnPlannedMatchesInterpretedBitwise) {
  expectPlannedMatchesInterpreted(*trainedCnn(false), makeQueries(256, 4, 22));
}

TEST(PlanGolden, CnnWithBatchNormPlannedMatchesInterpretedBitwise) {
  expectPlannedMatchesInterpreted(*trainedCnn(true), makeQueries(256, 4, 23));
}

TEST(PlanGolden, MlpWithOutputTransformPlannedMatchesInterpretedBitwise) {
  // The log-magnitude transform makes the gradient path run its extra
  // forward pass (transform chain) through the plan as well.
  MlpConfig cfg;
  cfg.hidden = {16, 8};
  cfg.dropout = 0.0;
  MlpRegressor model(cfg);
  model.setOutputTransforms(
      {OutputTransform::identity(), OutputTransform::logMagnitude(-1.0)});
  model.fit(makeDataset(400, 6), quickTraining());
  expectPlannedMatchesInterpreted(model, makeQueries(256, 4, 24));
}

TEST(PlanGolden, RawSequentialWithTanhFusionMatchesInterpretedBitwise) {
  // Direct Sequential lowering, no scaler folding: covers the Tanh fusion
  // epilogue (no shipped regressor builds Tanh) and nontrivial BN statistics.
  Rng rng(17);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>(6, 24, rng));
  net.add(std::make_unique<nn::Tanh>(24));
  net.add(std::make_unique<nn::BatchNorm>(24));
  net.add(std::make_unique<nn::Dense>(24, 12, rng));
  net.add(std::make_unique<nn::Tanh>(12));  // BN upstream: still fuses here
  net.add(std::make_unique<nn::Dense>(12, 3, rng));
  // Make the frozen BN statistics nontrivial so the exact arithmetic is
  // actually exercised.
  auto bnState = net.layer(2).state();
  auto bnParams = net.layer(2).params();
  Rng statRng(18);
  for (std::size_t j = 0; j < 24; ++j) {
    bnParams[j] = statRng.uniform(0.5, 1.5);        // gamma
    bnParams[24 + j] = statRng.uniform(-0.3, 0.3);  // beta
    bnState[j] = statRng.uniform(-0.5, 0.5);        // running mean
    bnState[24 + j] = statRng.uniform(0.2, 2.0);    // running var
  }

  auto plan = nn::CompiledPlan::compile(net);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->fusedOpCount(), 2u);
  EXPECT_FALSE(plan->foldsInput());

  const Matrix queries = makeQueries(256, 6, 25);
  for (std::size_t n : kBatches) {
    const Matrix x = firstRows(queries, n);
    Matrix planned, interpreted;
    plan->forwardBatch(x, planned);
    net.infer(x, interpreted);
    expectBitwiseEqual(planned, interpreted, "forward", n);
    for (std::size_t k = 0; k < 3u; ++k) {
      Matrix gPlanned, gInterpreted;
      plan->inputGradientBatch(x, k, gPlanned);
      net.inputGradientBatch(x, k, gInterpreted);
      expectBitwiseEqual(gPlanned, gInterpreted, "gradient", n);
    }
  }
}

// ---- Plan reuse ------------------------------------------------------------

TEST(PlanReuse, OnePlanManyMixedBatchesStaysBitwiseStable) {
  const auto model = trainedCnn(false);
  ASSERT_NE(model->plan(), nullptr);
  const Matrix queries = makeQueries(64, 4, 31);
  // References computed once, then the same plan (and its recycled
  // workspaces) is driven through interleaved batch shapes for many rounds.
  Matrix wantForward;
  model->predictBatchInterpreted(queries, wantForward);
  Matrix wantGrad;
  model->inputGradientBatchInterpreted(queries, 0, wantGrad);
  for (std::size_t round = 0; round < 20; ++round) {
    const std::size_t n = kBatches[round % std::size(kBatches)] % 64;
    const Matrix x = firstRows(queries, n == 0 ? 64 : n);
    Matrix got;
    model->predictBatch(x, got);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_EQ(std::memcmp(got.row(r).data(), wantForward.row(r % 64).data(),
                            got.cols() * sizeof(double)),
                0)
          << "round " << round << " row " << r;
    }
    Matrix grad;
    model->inputGradientBatch(x, 0, grad);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_EQ(std::memcmp(grad.row(r).data(), wantGrad.row(r % 64).data(),
                            grad.cols() * sizeof(double)),
                0)
          << "round " << round << " row " << r;
    }
  }
}

TEST(PlanReuse, LoadedModelCompilesPlanAndMatchesTrainedModel) {
  const auto model = trainedCnn(true);
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_plan_roundtrip.bin").string();
  model->save(path);
  auto loaded = Cnn1dRegressor::load(path);
  std::filesystem::remove(path);
  ASSERT_NE(loaded->plan(), nullptr) << "load must rebuild the plan";
  const Matrix x = makeQueries(70, 4, 32);
  Matrix want, got;
  model->predictBatch(x, want);
  loaded->predictBatch(x, got);
  expectBitwiseEqual(got, want, "loaded forward", x.rows());
}

// ---- Fast math (opt-in, non-bitwise) ---------------------------------------

TEST(PlanFastMath, FoldedBatchNormStaysWithinTolerance) {
  auto model = trainedCnn(true);
  const Matrix x = makeQueries(64, 4, 41);
  Matrix exact;
  model->predictBatch(x, exact);

  model->recompilePlan(/*fastMath=*/true);
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_TRUE(model->plan()->fastMath());
  EXPECT_EQ(model->planSummary(), "plan(ops=11 fused=2 foldscale fastmath)");
  Matrix fast;
  model->predictBatch(x, fast);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t k = 0; k < exact.cols(); ++k) {
      const double scale = std::max(std::abs(exact(r, k)), 1.0);
      EXPECT_NEAR(fast(r, k), exact(r, k), 1e-9 * scale)
          << "row " << r << " output " << k;
    }
  }

  // Back to the default: bitwise again.
  model->recompilePlan(/*fastMath=*/false);
  Matrix restored;
  model->predictBatch(x, restored);
  expectBitwiseEqual(restored, exact, "restored exact plan", x.rows());
}

TEST(PlanFastMath, NoBatchNormMeansFastMathIsStillBitwise) {
  // Fast math only rewrites batch-norm ops; an MLP plan is unaffected.
  auto model = trainedMlp();
  const Matrix x = makeQueries(64, 4, 42);
  Matrix exact;
  model->predictBatch(x, exact);
  model->recompilePlan(/*fastMath=*/true);
  Matrix fast;
  model->predictBatch(x, fast);
  expectBitwiseEqual(fast, exact, "mlp fastmath forward", x.rows());
}

}  // namespace
}  // namespace isop::ml
