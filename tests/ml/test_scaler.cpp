#include "ml/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "common/rng.hpp"
#include "ml/output_transform.hpp"

namespace isop::ml {
namespace {

TEST(Scaler, TransformsToZeroMeanUnitVariance) {
  Rng rng(1);
  Matrix x(500, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.normal(10.0, 2.0);
    x(i, 1) = rng.normal(-5.0, 0.1);
    x(i, 2) = rng.normal(0.0, 100.0);
  }
  StandardScaler scaler;
  scaler.fit(x);
  scaler.transformInPlace(x);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) mean += x(i, j);
    mean /= static_cast<double>(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) var += (x(i, j) - mean) * (x(i, j) - mean);
    var /= static_cast<double>(x.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Scaler, RowRoundTrip) {
  Matrix x(3, 2, {1.0, 10.0, 2.0, 20.0, 3.0, 30.0});
  StandardScaler scaler;
  scaler.fit(x);
  std::vector<double> in{2.5, 17.0}, scaled(2), back(2);
  scaler.transformRow(in, scaled);
  scaler.inverseTransformRow(scaled, back);
  EXPECT_NEAR(back[0], 2.5, 1e-12);
  EXPECT_NEAR(back[1], 17.0, 1e-12);
}

TEST(Scaler, ConstantColumnPassesThrough) {
  Matrix x(4, 1, {7.0, 7.0, 7.0, 7.0});
  StandardScaler scaler;
  scaler.fit(x);
  std::vector<double> in{7.0}, out(1);
  scaler.transformRow(in, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);  // centered, scale 1
  EXPECT_DOUBLE_EQ(scaler.outputScale(0), 1.0);
}

TEST(Scaler, ScaleAccessorsAreReciprocal) {
  Matrix x(3, 1, {0.0, 10.0, 20.0});
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_NEAR(scaler.inputScale(0) * scaler.outputScale(0), 1.0, 1e-12);
}

TEST(Scaler, SerializationRoundTrip) {
  Matrix x(3, 2, {1.0, 100.0, 2.0, 200.0, 3.0, 300.0});
  StandardScaler a;
  a.fit(x);
  std::stringstream buf;
  a.save(buf);
  StandardScaler b;
  b.load(buf);
  std::vector<double> in{2.0, 150.0}, outA(2), outB(2);
  a.transformRow(in, outA);
  b.transformRow(in, outB);
  EXPECT_DOUBLE_EQ(outA[0], outB[0]);
  EXPECT_DOUBLE_EQ(outA[1], outB[1]);
}

TEST(OutputTransform, IdentityPassthrough) {
  auto t = OutputTransform::identity();
  EXPECT_DOUBLE_EQ(t.apply(3.0), 3.0);
  EXPECT_DOUBLE_EQ(t.invert(3.0), 3.0);
  EXPECT_DOUBLE_EQ(t.inverseDerivative(3.0), 1.0);
}

TEST(OutputTransform, LogMagnitudePositiveSign) {
  auto t = OutputTransform::logMagnitude(+1.0);
  EXPECT_NEAR(t.invert(t.apply(85.0)), 85.0, 1e-9);
  EXPECT_NEAR(t.apply(std::exp(2.0)), 2.0, 1e-12);
}

TEST(OutputTransform, LogMagnitudeNegativeSign) {
  auto t = OutputTransform::logMagnitude(-1.0);
  EXPECT_NEAR(t.invert(t.apply(-0.45)), -0.45, 1e-12);
  EXPECT_LT(t.invert(0.0), 0.0);  // inverse restores the sign
}

TEST(OutputTransform, FloorClampsTinyMagnitudes) {
  auto t = OutputTransform::logMagnitude(-1.0, 1e-4);
  EXPECT_DOUBLE_EQ(t.apply(0.0), std::log(1e-4));
  EXPECT_DOUBLE_EQ(t.apply(1e-9), std::log(1e-4));  // NEXT can be ~0
}

TEST(OutputTransform, InverseDerivativeEqualsInverse) {
  auto t = OutputTransform::logMagnitude(-1.0);
  // d(s e^t)/dt = s e^t = invert(t) for the log transform.
  EXPECT_DOUBLE_EQ(t.inverseDerivative(1.3), t.invert(1.3));
}

}  // namespace
}  // namespace isop::ml
