#include "ml/neural_regressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "ml/ensemble.hpp"
#include "ml/metrics.hpp"
#include "ml/single_output.hpp"

namespace isop::ml {
namespace {

/// 4-in / 2-out smooth target with strictly-signed outputs (like Z and L).
Dataset makeDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds{Matrix(n, 4), Matrix(n, 2)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) ds.x(i, j) = rng.uniform(-1.0, 1.0);
    ds.y(i, 0) = 50.0 + 20.0 * ds.x(i, 0) * ds.x(i, 1) + 5.0 * ds.x(i, 2);  // > 0
    ds.y(i, 1) = -std::exp(0.5 * ds.x(i, 3)) - 0.2 * ds.x(i, 0) * ds.x(i, 0);  // < 0
  }
  return ds;
}

nn::TrainConfig quickTraining() {
  nn::TrainConfig cfg;
  cfg.epochs = 25;
  cfg.batchSize = 64;
  cfg.learningRate = 3e-3;
  return cfg;
}

TEST(MlpRegressor, LearnsMultiOutputTarget) {
  Dataset train = makeDataset(3000, 1);
  Dataset test = makeDataset(400, 2);
  MlpConfig cfg;
  cfg.hidden = {64, 64};
  cfg.dropout = 0.0;
  MlpRegressor model(cfg);
  model.fit(train, quickTraining());
  Matrix pred;
  model.predictBatch(test.x, pred);
  auto t0 = test.targetColumn(0), t1 = test.targetColumn(1);
  std::vector<double> p0(400), p1(400);
  for (std::size_t i = 0; i < 400; ++i) {
    p0[i] = pred(i, 0);
    p1[i] = pred(i, 1);
  }
  EXPECT_LT(mape(t0, p0), 0.02);
  EXPECT_LT(mape(t1, p1), 0.06);
}

TEST(MlpRegressor, PredictAndBatchAgree) {
  Dataset train = makeDataset(500, 3);
  MlpRegressor model;
  auto cfg = quickTraining();
  cfg.epochs = 3;
  model.fit(train, cfg);
  Matrix batch;
  model.predictBatch(train.x, batch);
  std::array<double, 2> single{};
  model.predict(train.x.row(7), single);
  EXPECT_DOUBLE_EQ(single[0], batch(7, 0));
  EXPECT_DOUBLE_EQ(single[1], batch(7, 1));
}

TEST(MlpRegressor, QueryCounting) {
  Dataset train = makeDataset(200, 4);
  MlpRegressor model;
  auto cfg = quickTraining();
  cfg.epochs = 2;
  model.fit(train, cfg);
  model.resetQueryCount();
  std::array<double, 2> out{};
  model.predict(train.x.row(0), out);
  model.predict(train.x.row(1), out);
  Matrix batch;
  model.predictBatch(train.x, batch);
  EXPECT_EQ(model.queryCount(), 2u + train.size());
}

TEST(MlpRegressor, InputGradientMatchesFiniteDifference) {
  Dataset train = makeDataset(2000, 5);
  MlpConfig cfg;
  cfg.hidden = {32, 32};
  cfg.dropout = 0.1;  // exercises the deterministic gradient path
  MlpRegressor model(cfg);
  model.fit(train, quickTraining());
  ASSERT_TRUE(model.hasInputGradient());

  std::vector<double> x{0.2, -0.4, 0.6, 0.1}, grad(4);
  for (std::size_t k = 0; k < 2; ++k) {
    model.inputGradient(x, k, grad);
    for (std::size_t j = 0; j < 4; ++j) {
      const double h = 1e-5;
      std::array<double, 2> up{}, down{};
      auto xx = x;
      xx[j] = x[j] + h;
      model.predict(xx, up);
      xx[j] = x[j] - h;
      model.predict(xx, down);
      const double numeric = (up[k] - down[k]) / (2.0 * h);
      EXPECT_NEAR(grad[j], numeric, 1e-3 * std::max(1.0, std::abs(numeric)))
          << "output " << k << " input " << j;
    }
  }
}

TEST(MlpRegressor, LogTransformImprovesStrictlySignedOutputs) {
  Dataset train = makeDataset(2000, 6);
  MlpRegressor model;
  model.setOutputTransforms({OutputTransform::logMagnitude(+1.0),
                             OutputTransform::logMagnitude(-1.0)});
  model.fit(train, quickTraining());
  Dataset test = makeDataset(300, 7);
  Matrix pred;
  model.predictBatch(test.x, pred);
  // Signs are structurally guaranteed by the transform.
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_GT(pred(i, 0), 0.0);
    EXPECT_LT(pred(i, 1), 0.0);
  }
}

TEST(MlpRegressor, GradientChainsThroughLogTransform) {
  Dataset train = makeDataset(1500, 8);
  MlpRegressor model;
  model.setOutputTransforms({OutputTransform::logMagnitude(+1.0),
                             OutputTransform::logMagnitude(-1.0)});
  model.fit(train, quickTraining());
  std::vector<double> x{0.1, 0.3, -0.2, 0.5}, grad(4);
  model.inputGradient(x, 1, grad);
  const double h = 1e-5;
  for (std::size_t j = 0; j < 4; ++j) {
    std::array<double, 2> up{}, down{};
    auto xx = x;
    xx[j] = x[j] + h;
    model.predict(xx, up);
    xx[j] = x[j] - h;
    model.predict(xx, down);
    const double numeric = (up[1] - down[1]) / (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 1e-3 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(MlpRegressor, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_mlp_test.bin").string();
  Dataset train = makeDataset(500, 9);
  MlpRegressor model;
  model.setOutputTransforms({OutputTransform::logMagnitude(+1.0),
                             OutputTransform::logMagnitude(-1.0)});
  auto cfg = quickTraining();
  cfg.epochs = 4;
  model.fit(train, cfg);
  model.save(path);
  auto loaded = MlpRegressor::load(path);
  std::array<double, 2> a{}, b{};
  model.predict(train.x.row(3), a);
  loaded->predict(train.x.row(3), b);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
  std::remove(path.c_str());
}

TEST(NeuralRegressorDeathTest, LoadAbortsOnTruncatedFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_mlp_truncated.bin").string();
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.dropout = 0.0;
  MlpRegressor model(cfg);
  auto tc = quickTraining();
  tc.epochs = 2;
  model.fit(makeDataset(200, 12), tc);
  model.save(path);
  // Chop into the final parameter blob: the raw-blob reader must abort with
  // context instead of silently deserializing a partial weight vector.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 16);
  EXPECT_DEATH(static_cast<void>(MlpRegressor::load(path)),
               "Sequential: truncated parameter blob");
  std::filesystem::remove(path);
}

TEST(Cnn1dRegressor, LearnsTargetAndRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_cnn_test.bin").string();
  Dataset train = makeDataset(2000, 10);
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.dropout = 0.0;
  Cnn1dRegressor model(cfg);
  auto tc = quickTraining();
  tc.epochs = 20;
  model.fit(train, tc);

  Dataset test = makeDataset(300, 11);
  Matrix pred;
  model.predictBatch(test.x, pred);
  auto t0 = test.targetColumn(0);
  std::vector<double> p0(300);
  for (std::size_t i = 0; i < 300; ++i) p0[i] = pred(i, 0);
  EXPECT_LT(mape(t0, p0), 0.05);

  model.save(path);
  auto loaded = Cnn1dRegressor::load(path);
  std::array<double, 2> a{}, b{};
  model.predict(test.x.row(0), a);
  loaded->predict(test.x.row(0), b);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  std::remove(path.c_str());
}

TEST(Cnn1dRegressor, BatchNormVariantTrainsAndRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_cnn_bn_test.bin").string();
  Dataset train = makeDataset(1500, 15);
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.dropout = 0.0;
  cfg.batchNorm = true;  // Kaggle-MoA style
  Cnn1dRegressor model(cfg);
  auto tc = quickTraining();
  tc.epochs = 12;
  model.fit(train, tc);

  Dataset test = makeDataset(200, 16);
  Matrix pred;
  model.predictBatch(test.x, pred);
  auto t0 = test.targetColumn(0);
  std::vector<double> p0(200);
  for (std::size_t i = 0; i < 200; ++i) p0[i] = pred(i, 0);
  EXPECT_LT(mape(t0, p0), 0.12);  // learns through the BN blocks

  // Serialization must carry the BN running statistics (state blobs).
  model.save(path);
  auto loaded = Cnn1dRegressor::load(path);
  EXPECT_TRUE(loaded->config().batchNorm);
  std::array<double, 2> a{}, b{};
  model.predict(test.x.row(5), a);
  loaded->predict(test.x.row(5), b);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
  std::remove(path.c_str());
}

TEST(Cnn1dRegressor, HasInputGradient) {
  Dataset train = makeDataset(300, 12);
  Cnn1dConfig cfg;
  cfg.expandChannels = 2;
  cfg.expandLength = 4;
  cfg.convChannels = 4;
  cfg.headHidden = 8;
  Cnn1dRegressor model(cfg);
  auto tc = quickTraining();
  tc.epochs = 3;
  model.fit(train, tc);
  ASSERT_TRUE(model.hasInputGradient());
  std::vector<double> grad(4);
  model.inputGradient(std::vector<double>{0.1, 0.2, 0.3, 0.4}, 0, grad);
  bool nonzero = false;
  for (double g : grad) {
    if (g != 0.0) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(MultiOutputSurrogate, StacksPerTargetModels) {
  Dataset train = makeDataset(1000, 13);
  MultiOutputSurrogate surrogate(train, [](std::size_t) {
    return std::make_unique<XgboostRegressor>();
  });
  EXPECT_EQ(surrogate.inputDim(), 4u);
  EXPECT_EQ(surrogate.outputDim(), 2u);
  std::array<double, 2> out{};
  surrogate.predict(train.x.row(0), out);
  EXPECT_GT(out[0], 0.0);
  EXPECT_LT(out[1], 0.0);
  EXPECT_FALSE(surrogate.hasInputGradient());
  EXPECT_EQ(surrogate.queryCount(), 1u);
}

TEST(NeuralRegressor, RejectsEmptyTrainingSet) {
  MlpRegressor model;
  Dataset empty;
  EXPECT_THROW(model.fit(empty, quickTraining()), std::invalid_argument);
}

TEST(NeuralRegressor, RejectsTransformCountMismatch) {
  MlpRegressor model;
  model.setOutputTransforms({OutputTransform::identity()});  // 1 != 2 outputs
  Dataset train = makeDataset(100, 14);
  EXPECT_THROW(model.fit(train, quickTraining()), std::invalid_argument);
}

}  // namespace
}  // namespace isop::ml
