// Finite-difference gradient checks for every layer: both parameter
// gradients and input gradients must match central differences.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/nn/activation.hpp"
#include "ml/nn/conv1d.hpp"
#include "ml/nn/dense.hpp"
#include "ml/nn/batch_norm.hpp"
#include "ml/nn/dropout.hpp"

namespace isop::ml::nn {
namespace {

/// Scalar loss: sum of squares of layer output. dLoss/dOut = 2*out.
double lossOf(Layer& layer, const Matrix& in, Rng& rng) {
  Matrix out;
  layer.forward(in, out, rng);
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) acc += out.data()[i] * out.data()[i];
  return acc;
}

/// Checks analytic parameter + input gradients against central differences.
void checkGradients(Layer& layer, std::size_t inputDim, std::uint64_t seed,
                    double tol = 1e-6) {
  Rng rng(seed);
  const std::size_t batch = 3;
  Matrix in(batch, inputDim);
  for (std::size_t i = 0; i < in.size(); ++i) in.data()[i] = rng.uniform(-1.0, 1.0);

  // Analytic gradients.
  Rng fwd(1);
  Matrix out;
  layer.zeroGrads();
  layer.forward(in, out, fwd);
  Matrix gradOut(out.rows(), out.cols());
  for (std::size_t i = 0; i < out.size(); ++i) gradOut.data()[i] = 2.0 * out.data()[i];
  Matrix gradIn;
  layer.backward(gradOut, gradIn);

  const double h = 1e-6;
  // Parameter gradients.
  auto params = layer.params();
  auto grads = layer.grads();
  for (std::size_t k = 0; k < params.size(); k += std::max<std::size_t>(1, params.size() / 17)) {
    const double saved = params[k];
    Rng f1(1), f2(1);
    params[k] = saved + h;
    const double up = lossOf(layer, in, f1);
    params[k] = saved - h;
    const double down = lossOf(layer, in, f2);
    params[k] = saved;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(grads[k], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "param " << k;
  }
  // Input gradients.
  for (std::size_t k = 0; k < in.size(); k += std::max<std::size_t>(1, in.size() / 11)) {
    const double saved = in.data()[k];
    Rng f1(1), f2(1);
    in.data()[k] = saved + h;
    const double up = lossOf(layer, in, f1);
    in.data()[k] = saved - h;
    const double down = lossOf(layer, in, f2);
    in.data()[k] = saved;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(gradIn.data()[k], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input " << k;
  }
}

TEST(DenseLayer, GradientCheck) {
  Rng init(5);
  Dense layer(6, 4, init);
  checkGradients(layer, 6, 11);
}

TEST(DenseLayer, InferMatchesForward) {
  Rng init(6);
  Dense layer(3, 2, init);
  Matrix in(2, 3, {1.0, 2.0, 3.0, -1.0, 0.5, 0.0});
  Matrix a, b;
  Rng rng(1);
  layer.forward(in, a, rng);
  layer.infer(in, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(LeakyReluLayer, GradientCheck) {
  LeakyRelu layer(5, 0.01);
  checkGradients(layer, 5, 13);
}

TEST(LeakyReluLayer, NegativeSlopeApplied) {
  LeakyRelu layer(2, 0.1);
  Matrix in(1, 2, {-10.0, 10.0}), out;
  layer.infer(in, out);
  EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 10.0);
}

TEST(TanhLayer, GradientCheck) {
  Tanh layer(4);
  checkGradients(layer, 4, 17);
}

TEST(Conv1dLayer, GradientCheck) {
  Rng init(7);
  Conv1d layer(2, 3, 8, 3, init);  // 2 ch x 8 len -> 3 ch x 8 len
  checkGradients(layer, 16, 19, 1e-5);
}

TEST(Conv1dLayer, RejectsEvenKernel) {
  Rng init(8);
  EXPECT_THROW(Conv1d(1, 1, 4, 2, init), std::invalid_argument);
}

TEST(Conv1dLayer, IdentityKernelPassesThrough) {
  Rng init(9);
  Conv1d layer(1, 1, 5, 3, init);
  // Force kernel = [0, 1, 0], bias 0.
  auto p = layer.params();
  p[0] = 0.0;
  p[1] = 1.0;
  p[2] = 0.0;
  p[3] = 0.0;  // bias
  Matrix in(1, 5, {1.0, 2.0, 3.0, 4.0, 5.0}), out;
  layer.infer(in, out);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out(0, i), in(0, i));
}

TEST(AvgPool1dLayer, GradientCheck) {
  AvgPool1d layer(2, 6, 2);
  checkGradients(layer, 12, 23);
}

TEST(AvgPool1dLayer, AveragesWindows) {
  AvgPool1d layer(1, 4, 2);
  Matrix in(1, 4, {1.0, 3.0, 5.0, 7.0}), out;
  layer.infer(in, out);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 6.0);
}

TEST(AvgPool1dLayer, TrailingPartialWindow) {
  AvgPool1d layer(1, 5, 2);
  Matrix in(1, 5, {1.0, 3.0, 5.0, 7.0, 9.0}), out;
  layer.infer(in, out);
  ASSERT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out(0, 2), 9.0);  // single-element window
}

TEST(GlobalAvgPoolLayer, GradientCheck) {
  GlobalAvgPool1d layer(3, 4);
  checkGradients(layer, 12, 29);
}

TEST(GlobalAvgPoolLayer, ChannelMeans) {
  GlobalAvgPool1d layer(2, 3);
  Matrix in(1, 6, {1.0, 2.0, 3.0, 10.0, 20.0, 30.0}), out;
  layer.infer(in, out);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 20.0);
}

TEST(DropoutLayer, InferIsIdentity) {
  Dropout layer(4, 0.5);
  Matrix in(2, 4, 1.0), out;
  layer.infer(in, out);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out.data()[i], 1.0);
}

TEST(DropoutLayer, TrainingDropsAndScales) {
  Dropout layer(1000, 0.5);
  Matrix in(1, 1000, 1.0), out;
  Rng rng(31);
  layer.forward(in, out, rng);
  std::size_t zeros = 0, scaled = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] == 0.0) ++zeros;
    else if (std::abs(out.data()[i] - 2.0) < 1e-12) ++scaled;
  }
  EXPECT_EQ(zeros + scaled, 1000u);
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 60.0);
}

TEST(DropoutLayer, NonStochasticModeIsIdentityWithBackward) {
  Dropout layer(3, 0.9);
  layer.setStochastic(false);
  Matrix in(1, 3, {1.0, 2.0, 3.0}), out;
  Rng rng(7);
  layer.forward(in, out, rng);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(out(0, i), in(0, i));
  Matrix gradOut(1, 3, 1.0), gradIn;
  layer.backward(gradOut, gradIn);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(gradIn(0, i), 1.0);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout layer(100, 0.5);
  Matrix in(1, 100, 1.0), out;
  Rng rng(33);
  layer.forward(in, out, rng);
  Matrix gradOut(1, 100, 1.0), gradIn;
  layer.backward(gradOut, gradIn);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(gradIn(0, i), out(0, i));  // both are mask * 1
  }
}


TEST(BatchNormLayer, NormalizesBatchColumns) {
  BatchNorm layer(2);
  Rng rng(1);
  Matrix in(64, 2);
  for (std::size_t r = 0; r < 64; ++r) {
    in(r, 0) = rng.normal(10.0, 3.0);
    in(r, 1) = rng.normal(-4.0, 0.5);
  }
  Matrix out;
  layer.forward(in, out, rng);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 64; ++r) mean += out(r, j);
    mean /= 64.0;
    for (std::size_t r = 0; r < 64; ++r) var += (out(r, j) - mean) * (out(r, j) - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);  // gamma = 1 initially
  }
}

TEST(BatchNormLayer, GradientCheck) {
  BatchNorm layer(3);
  // Warm the affine parameters away from identity so gamma grads matter.
  auto p = layer.params();
  p[0] = 1.5;
  p[1] = 0.7;
  p[2] = 2.0;
  p[3] = 0.1;
  checkGradients(layer, 3, 41, 1e-5);
}

TEST(BatchNormLayer, RunningStatsConvergeAndDriveInference) {
  BatchNorm layer(1, /*momentum=*/0.5);
  Rng rng(2);
  Matrix in(128, 1), out;
  for (int step = 0; step < 30; ++step) {
    for (std::size_t r = 0; r < 128; ++r) in(r, 0) = rng.normal(5.0, 2.0);
    layer.forward(in, out, rng);
  }
  // state = [running mean | running var].
  EXPECT_NEAR(layer.state()[0], 5.0, 0.3);
  EXPECT_NEAR(layer.state()[1], 4.0, 0.8);
  // Inference uses the running stats: feeding the mean gives ~beta (=0).
  Matrix probe(1, 1, 5.0), inf;
  layer.infer(probe, inf);
  EXPECT_NEAR(inf(0, 0), 0.0, 0.2);
}

TEST(BatchNormLayer, StateIsSeparateFromParams) {
  BatchNorm layer(4);
  EXPECT_EQ(layer.params().size(), 8u);  // gamma | beta
  EXPECT_EQ(layer.state().size(), 8u);   // mean | var
  EXPECT_EQ(layer.grads().size(), 8u);
}

}  // namespace
}  // namespace isop::ml::nn
