#include "ml/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/metrics.hpp"

namespace isop::ml {
namespace {

/// Noisy smooth target: y = sin(2 x0) + x1^2 - x0 x1 + noise.
void makeData(std::size_t n, std::uint64_t seed, double noise, Matrix& x,
              std::vector<double>& y) {
  Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = std::sin(2.0 * x(i, 0)) + x(i, 1) * x(i, 1) - x(i, 0) * x(i, 1) +
           noise * rng.normal();
  }
}

double testMae(const SingleOutputModel& model, std::uint64_t seed) {
  Matrix x;
  std::vector<double> y;
  makeData(500, seed, 0.0, x, y);
  std::vector<double> pred(y.size());
  for (std::size_t i = 0; i < x.rows(); ++i) pred[i] = model.predictOne(x.row(i));
  return mae(y, pred);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  Matrix x;
  std::vector<double> y;
  makeData(3000, 1, 0.3, x, y);

  DecisionTreeConfig treeCfg;
  treeCfg.maxDepth = 14;
  treeCfg.minSamplesLeaf = 1;  // deliberately overfit-prone
  DecisionTreeRegressor tree(treeCfg);
  tree.fit(x, y);

  RandomForestConfig rfCfg;
  rfCfg.trees = 40;
  RandomForestRegressor forest(rfCfg);
  forest.fit(x, y);

  EXPECT_LT(testMae(forest, 99), testMae(tree, 99));
}

TEST(RandomForest, DeterministicAcrossFits) {
  Matrix x;
  std::vector<double> y;
  makeData(500, 2, 0.1, x, y);
  RandomForestConfig cfg;
  cfg.trees = 8;
  RandomForestRegressor a(cfg), b(cfg);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predictOne(x.row(i)), b.predictOne(x.row(i)));
  }
}

TEST(GradientBoosting, MoreStagesReduceError) {
  Matrix x;
  std::vector<double> y;
  makeData(2000, 3, 0.05, x, y);

  GradientBoostingConfig few;
  few.stages = 10;
  GradientBoostingRegressor weak(few);
  weak.fit(x, y);

  GradientBoostingConfig many;
  many.stages = 150;
  GradientBoostingRegressor strong(many);
  strong.fit(x, y);

  EXPECT_LT(testMae(strong, 101), 0.5 * testMae(weak, 101));
}

TEST(GradientBoosting, ZeroStagesPredictsMean) {
  Matrix x(4, 1, 0.0);
  std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  GradientBoostingConfig cfg;
  cfg.stages = 0;
  GradientBoostingRegressor model(cfg);
  model.fit(x, y);
  std::vector<double> q{0.0};
  EXPECT_DOUBLE_EQ(model.predictOne(q), 2.5);
}

TEST(Xgboost, FitsSmoothTargetWell) {
  Matrix x;
  std::vector<double> y;
  makeData(4000, 5, 0.0, x, y);
  XgboostRegressor model;
  model.fit(x, y);
  EXPECT_LT(testMae(model, 103), 0.12);
}

TEST(Xgboost, OutperformsPlainTree) {
  Matrix x;
  std::vector<double> y;
  makeData(3000, 7, 0.1, x, y);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  XgboostRegressor xgb;
  xgb.fit(x, y);
  EXPECT_LT(testMae(xgb, 105), testMae(tree, 105));
}

TEST(Xgboost, SaveLoadRoundTrip) {
  Matrix x;
  std::vector<double> y;
  makeData(600, 11, 0.05, x, y);
  XgboostConfig cfg;
  cfg.rounds = 40;
  XgboostRegressor original(cfg);
  original.fit(x, y);

  std::stringstream buf;
  original.save(buf);
  XgboostRegressor loaded;
  loaded.load(buf);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(loaded.predictOne(x.row(i)), original.predictOne(x.row(i)));
  }
}

TEST(Xgboost, LoadRejectsGarbage) {
  std::stringstream buf;
  buf << "not a model";
  XgboostRegressor model;
  EXPECT_THROW(model.load(buf), std::runtime_error);
}

TEST(Xgboost, DeterministicAcrossFits) {
  Matrix x;
  std::vector<double> y;
  makeData(800, 9, 0.1, x, y);
  XgboostConfig cfg;
  cfg.rounds = 30;
  XgboostRegressor a(cfg), b(cfg);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predictOne(x.row(i)), b.predictOne(x.row(i)));
  }
}

}  // namespace
}  // namespace isop::ml
