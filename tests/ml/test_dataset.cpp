#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace isop::ml {
namespace {

Dataset makeDataset(std::size_t n) {
  Dataset ds{Matrix(n, 2), Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    ds.x(i, 0) = static_cast<double>(i);
    ds.x(i, 1) = static_cast<double>(i) * 10.0;
    ds.y(i, 0) = static_cast<double>(i) * 100.0;
  }
  return ds;
}

TEST(Dataset, Dimensions) {
  Dataset ds = makeDataset(5);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.inputDim(), 2u);
  EXPECT_EQ(ds.outputDim(), 1u);
}

TEST(Dataset, TargetColumn) {
  Dataset ds = makeDataset(4);
  auto col = ds.targetColumn(0);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col[3], 300.0);
}

TEST(Dataset, ShuffleKeepsRowsAligned) {
  Dataset ds = makeDataset(50);
  Rng rng(3);
  ds.shuffle(rng);
  // Row invariant: y == x0*100 and x1 == x0*10 for every row.
  bool moved = false;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.y(i, 0), ds.x(i, 0) * 100.0);
    EXPECT_DOUBLE_EQ(ds.x(i, 1), ds.x(i, 0) * 10.0);
    if (ds.x(i, 0) != static_cast<double>(i)) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Dataset, SplitSizes) {
  Dataset ds = makeDataset(10);
  auto [train, test] = ds.split(0.8);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_DOUBLE_EQ(test.x(0, 0), 8.0);  // split preserves order
}

TEST(Dataset, SubsetByIndices) {
  Dataset ds = makeDataset(10);
  std::vector<std::size_t> idx{9, 0, 5};
  Dataset sub = ds.subset(idx);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.x(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(sub.y(2, 0), 500.0);
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_ds_test.bin").string();
  Dataset ds = makeDataset(7);
  saveDataset(path, ds);
  Dataset loaded = loadDataset(path);
  ASSERT_EQ(loaded.size(), 7u);
  ASSERT_EQ(loaded.inputDim(), 2u);
  EXPECT_DOUBLE_EQ(loaded.x(6, 1), 60.0);
  EXPECT_DOUBLE_EQ(loaded.y(6, 0), 600.0);
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_ds_bad.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTADATASET";
  }
  EXPECT_THROW(loadDataset(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(loadDataset("/no/such/path.bin"), std::runtime_error);
}

}  // namespace
}  // namespace isop::ml
