#include "ml/ensemble_surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::ml {
namespace {

/// y0 = 3 x0 - x1 (positive-ish), smooth 2-in/1-out problem.
Dataset makeDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds{Matrix(n, 2), Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    ds.x(i, 0) = rng.uniform(-1.0, 1.0);
    ds.x(i, 1) = rng.uniform(-1.0, 1.0);
    ds.y(i, 0) = 10.0 + 3.0 * ds.x(i, 0) - ds.x(i, 1);
  }
  return ds;
}

EnsembleTrainConfig quickEnsemble(std::size_t members) {
  EnsembleTrainConfig cfg;
  cfg.members = members;
  cfg.architecture.hidden = {16, 16};
  cfg.architecture.dropout = 0.0;
  cfg.training.epochs = 15;
  cfg.training.batchSize = 32;
  return cfg;
}

TEST(EnsembleSurrogate, MeanPredictionIsAccurate) {
  const Dataset train = makeDataset(1500, 1);
  auto ensemble = trainMlpEnsemble(train, quickEnsemble(3));
  EXPECT_EQ(ensemble->memberCount(), 3u);
  std::array<double, 1> out{};
  std::vector<double> x{0.3, -0.4};
  ensemble->predict(x, out);
  EXPECT_NEAR(out[0], 10.0 + 0.9 + 0.4, 0.3);
}

TEST(EnsembleSurrogate, SpreadSmallOnDataLargerOffData) {
  const Dataset train = makeDataset(1500, 2);
  auto ensemble = trainMlpEnsemble(train, quickEnsemble(4));
  std::array<double, 1> mean{}, inSpread{}, outSpread{};
  std::vector<double> inside{0.0, 0.0}, outside{6.0, -7.0};  // far off-support
  ensemble->predictWithSpread(inside, mean, inSpread);
  ensemble->predictWithSpread(outside, mean, outSpread);
  EXPECT_GT(outSpread[0], 3.0 * inSpread[0]);
}

TEST(EnsembleSurrogate, MeanMatchesManualAverage) {
  const Dataset train = makeDataset(600, 3);
  auto ensemble = trainMlpEnsemble(train, quickEnsemble(3));
  std::vector<double> x{0.1, 0.2};
  std::array<double, 1> viaPredict{}, viaSpread{}, spread{};
  ensemble->predict(x, viaPredict);
  ensemble->predictWithSpread(x, viaSpread, spread);
  EXPECT_NEAR(viaPredict[0], viaSpread[0], 1e-12);
  EXPECT_GE(spread[0], 0.0);
}

TEST(EnsembleSurrogate, GradientIsMemberMean) {
  const Dataset train = makeDataset(1200, 4);
  auto ensemble = trainMlpEnsemble(train, quickEnsemble(2));
  ASSERT_TRUE(ensemble->hasInputGradient());
  std::vector<double> grad(2);
  ensemble->inputGradient(std::vector<double>{0.2, 0.1}, 0, grad);
  // True gradient of the target is (3, -1); the trained mean tracks it.
  EXPECT_NEAR(grad[0], 3.0, 0.6);
  EXPECT_NEAR(grad[1], -1.0, 0.6);
}

TEST(EnsembleSurrogate, RejectsEmptyAndMismatched) {
  EXPECT_THROW(EnsembleSurrogate({}), std::invalid_argument);
  const Dataset a = makeDataset(200, 5);
  Dataset b{Matrix(200, 3), Matrix(200, 1)};  // different input dim
  Rng rng(6);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 3; ++j) b.x(i, j) = rng.uniform(-1.0, 1.0);
    b.y(i, 0) = b.x(i, 0);
  }
  auto m1 = std::make_shared<MlpRegressor>(MlpConfig{.hidden = {8}});
  auto m2 = std::make_shared<MlpRegressor>(MlpConfig{.hidden = {8}});
  nn::TrainConfig tc;
  tc.epochs = 2;
  m1->fit(a, tc);
  m2->fit(b, tc);
  EXPECT_THROW(
      EnsembleSurrogate({std::shared_ptr<const Surrogate>(m1),
                         std::shared_ptr<const Surrogate>(m2)}),
      std::invalid_argument);
}

TEST(EnsembleSurrogate, DeterministicTraining) {
  const Dataset train = makeDataset(400, 7);
  auto a = trainMlpEnsemble(train, quickEnsemble(2));
  auto b = trainMlpEnsemble(train, quickEnsemble(2));
  std::array<double, 1> pa{}, pb{};
  std::vector<double> x{0.5, 0.5};
  a->predict(x, pa);
  b->predict(x, pb);
  EXPECT_DOUBLE_EQ(pa[0], pb[0]);
}

}  // namespace
}  // namespace isop::ml
