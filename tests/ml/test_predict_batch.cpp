// Golden equivalence tests for the batched prediction path: for every
// shipped surrogate family, predictBatch row i must reproduce what the
// scalar predict() path computes for the same input — bitwise for every
// family: trees and stacks reuse the scalar code per row, and the neural
// batch kernels keep each lane's fused accumulation order identical to the
// per-row path (see simd_block.hpp). The eval engine's determinism
// guarantee rests on this contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/ensemble.hpp"
#include "ml/ensemble_surrogate.hpp"
#include "ml/neural_regressor.hpp"
#include "ml/single_output.hpp"
#include "ml/tree.hpp"

namespace isop::ml {
namespace {

/// Smooth 4-in / 2-out target (positive and negative outputs, like Z / L).
Dataset makeDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds{Matrix(n, 4), Matrix(n, 2)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) ds.x(i, j) = rng.uniform(-1.0, 1.0);
    ds.y(i, 0) = 50.0 + 20.0 * ds.x(i, 0) * ds.x(i, 1) + 5.0 * ds.x(i, 2);
    ds.y(i, 1) = -std::exp(0.5 * ds.x(i, 3)) - 0.2 * ds.x(i, 0) * ds.x(i, 0);
  }
  return ds;
}

Matrix makeQueries(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) x(i, j) = rng.uniform(-1.2, 1.2);
  }
  return x;
}

/// Asserts predictBatch(x) row-equals per-row predict() within `tol`
/// (tol == 0.0 means bitwise), and that the batch bills one query per row.
void expectBatchMatchesScalar(const Surrogate& model, const Matrix& x, double tol) {
  Matrix batch;
  model.resetQueryCount();
  model.predictBatch(x, batch);
  EXPECT_EQ(model.queryCount(), x.rows());
  ASSERT_EQ(batch.rows(), x.rows());
  ASSERT_EQ(batch.cols(), model.outputDim());
  std::vector<double> row(model.outputDim());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    model.predict(x.row(i), row);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (tol == 0.0) {
        EXPECT_EQ(batch(i, k), row[k]) << "row " << i << " output " << k;
      } else {
        EXPECT_NEAR(batch(i, k), row[k], tol) << "row " << i << " output " << k;
      }
    }
  }
}

nn::TrainConfig quickTraining() {
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batchSize = 64;
  cfg.learningRate = 3e-3;
  return cfg;
}

TEST(PredictBatchGolden, MlpMatchesScalarPath) {
  MlpConfig cfg;
  cfg.hidden = {32, 32};
  cfg.dropout = 0.0;
  MlpRegressor model(cfg);
  model.fit(makeDataset(600, 1), quickTraining());
  expectBatchMatchesScalar(model, makeQueries(97, 4, 11), 0.0);
}

TEST(PredictBatchGolden, CnnMatchesScalarPath) {
  Cnn1dConfig cfg;
  cfg.expandChannels = 4;
  cfg.expandLength = 8;
  cfg.convChannels = 8;
  cfg.headHidden = 16;
  cfg.dropout = 0.0;
  Cnn1dRegressor model(cfg);
  model.fit(makeDataset(400, 2), quickTraining());
  expectBatchMatchesScalar(model, makeQueries(70, 4, 12), 0.0);
}

TEST(PredictBatchGolden, MlpEnsembleMatchesScalarBitwise) {
  EnsembleTrainConfig cfg;
  cfg.members = 3;
  cfg.architecture.hidden = {16, 16};
  cfg.architecture.dropout = 0.0;
  cfg.training.epochs = 5;
  cfg.training.batchSize = 32;
  auto ensemble = trainMlpEnsemble(makeDataset(400, 3), cfg);
  // The ensemble mean is computed member-by-member in the same order on
  // both paths, so equality is bitwise, not just approximate.
  expectBatchMatchesScalar(*ensemble, makeQueries(83, 4, 13), 0.0);
}

/// Fits one single-output model per target column and stacks them.
template <typename Model, typename Config>
std::shared_ptr<MultiOutputSurrogate> stack(const Dataset& train, Config cfg) {
  return std::make_shared<MultiOutputSurrogate>(
      train, [&](std::size_t) { return std::make_unique<Model>(cfg); });
}

TEST(PredictBatchGolden, DecisionTreeStackMatchesScalarBitwise) {
  DecisionTreeConfig cfg;
  cfg.maxDepth = 6;
  auto model = stack<DecisionTreeRegressor>(makeDataset(500, 4), cfg);
  expectBatchMatchesScalar(*model, makeQueries(90, 4, 14), 0.0);
}

TEST(PredictBatchGolden, RandomForestStackMatchesScalarBitwise) {
  RandomForestConfig cfg;
  cfg.trees = 12;
  cfg.maxDepth = 8;
  auto model = stack<RandomForestRegressor>(makeDataset(500, 5), cfg);
  expectBatchMatchesScalar(*model, makeQueries(90, 4, 15), 0.0);
}

TEST(PredictBatchGolden, GradientBoostingStackMatchesScalarBitwise) {
  GradientBoostingConfig cfg;
  cfg.stages = 25;
  auto model = stack<GradientBoostingRegressor>(makeDataset(500, 6), cfg);
  expectBatchMatchesScalar(*model, makeQueries(90, 4, 16), 0.0);
}

TEST(PredictBatchGolden, XgboostStackMatchesScalarBitwise) {
  XgboostConfig cfg;
  cfg.rounds = 25;
  auto model = stack<XgboostRegressor>(makeDataset(500, 7), cfg);
  expectBatchMatchesScalar(*model, makeQueries(90, 4, 17), 0.0);
}

TEST(PredictBatchGolden, TransformedTargetStackMatchesScalarBitwise) {
  // Wrap each forest in a log-magnitude transform (the NEXT-style target):
  // predictMany applies the same invert() per element as predictOne.
  const Dataset train = makeDataset(500, 8);
  auto factory = [&](std::size_t output) -> std::unique_ptr<SingleOutputModel> {
    RandomForestConfig cfg;
    cfg.trees = 8;
    const auto transform = output == 1 ? OutputTransform::logMagnitude(-1.0)
                                       : OutputTransform::identity();
    return std::make_unique<TransformedTargetModel>(
        std::make_unique<RandomForestRegressor>(cfg), transform);
  };
  MultiOutputSurrogate model(train, factory);
  expectBatchMatchesScalar(model, makeQueries(64, 4, 18), 0.0);
}

}  // namespace
}  // namespace isop::ml
