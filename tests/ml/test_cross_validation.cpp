#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/ensemble.hpp"
#include "ml/linear.hpp"
#include "ml/single_output.hpp"

namespace isop::ml {
namespace {

/// Linear 2-in/1-out dataset with mild noise.
Dataset makeDataset(std::size_t n, std::uint64_t seed, double noise = 0.05) {
  Rng rng(seed);
  Dataset ds{Matrix(n, 2), Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    ds.x(i, 0) = rng.uniform(-1.0, 1.0);
    ds.x(i, 1) = rng.uniform(-1.0, 1.0);
    ds.y(i, 0) = 5.0 + 2.0 * ds.x(i, 0) - ds.x(i, 1) + noise * rng.normal();
  }
  return ds;
}

ModelFactory linearFactory() {
  return [](const Dataset& train) -> std::unique_ptr<Surrogate> {
    PolynomialLinearConfig cfg;
    cfg.degree = 1;
    cfg.ridge = 1e-8;
    return std::make_unique<MultiOutputSurrogate>(train, [&](std::size_t) {
      return std::make_unique<PolynomialLinearRegressor>(cfg);
    });
  };
}

TEST(CrossValidation, WellSpecifiedModelScoresLowError) {
  const Dataset data = makeDataset(600, 1);
  const auto scores = kFoldCrossValidate(data, 5, linearFactory());
  EXPECT_EQ(scores.folds, 5u);
  ASSERT_EQ(scores.maeMean.size(), 1u);
  EXPECT_LT(scores.maeMean[0], 0.08);     // ~ noise level
  EXPECT_LT(scores.meanMape(), 0.03);
  EXPECT_GE(scores.maeStdev[0], 0.0);
}

TEST(CrossValidation, DetectsMisspecifiedModel) {
  // Strongly nonlinear target: a linear model must score much worse.
  Rng rng(2);
  Dataset data{Matrix(600, 2), Matrix(600, 1)};
  for (std::size_t i = 0; i < 600; ++i) {
    data.x(i, 0) = rng.uniform(-2.0, 2.0);
    data.x(i, 1) = rng.uniform(-2.0, 2.0);
    data.y(i, 0) = 3.0 + std::sin(3.0 * data.x(i, 0)) * data.x(i, 1);
  }
  const auto linear = kFoldCrossValidate(data, 5, linearFactory());
  const auto tree = kFoldCrossValidate(data, 5, [](const Dataset& train) {
    return std::unique_ptr<Surrogate>(std::make_unique<MultiOutputSurrogate>(
        train, [](std::size_t) { return std::make_unique<XgboostRegressor>(); }));
  });
  EXPECT_LT(tree.maeMean[0], 0.6 * linear.maeMean[0]);
}

TEST(CrossValidation, DeterministicForSeed) {
  const Dataset data = makeDataset(300, 3);
  const auto a = kFoldCrossValidate(data, 4, linearFactory(), 9);
  const auto b = kFoldCrossValidate(data, 4, linearFactory(), 9);
  EXPECT_DOUBLE_EQ(a.maeMean[0], b.maeMean[0]);
  EXPECT_DOUBLE_EQ(a.mapeMean[0], b.mapeMean[0]);
}

TEST(CrossValidation, FoldsCoverEveryRowOnce) {
  // With k = n (leave-one-out on a small set) every row is tested exactly
  // once; scoring a memorizing factory that returns the training mean shows
  // each fold ran.
  const Dataset data = makeDataset(24, 4, 0.0);
  std::size_t factoryCalls = 0;
  const auto scores = kFoldCrossValidate(
      data, 8,
      [&](const Dataset& train) -> std::unique_ptr<Surrogate> {
        ++factoryCalls;
        EXPECT_EQ(train.size(), 21u);  // 24 - 3 per fold
        return linearFactory()(train);
      },
      5);
  EXPECT_EQ(factoryCalls, 8u);
  EXPECT_EQ(scores.folds, 8u);
}

TEST(CrossValidation, RejectsBadArguments) {
  const Dataset data = makeDataset(10, 5);
  EXPECT_THROW(kFoldCrossValidate(data, 1, linearFactory()), std::invalid_argument);
  const Dataset tiny = makeDataset(3, 6);
  EXPECT_THROW(kFoldCrossValidate(tiny, 5, linearFactory()), std::invalid_argument);
}

}  // namespace
}  // namespace isop::ml
