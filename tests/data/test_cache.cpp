// Dataset/model cache behaviour: cache files are published atomically (no
// torn or leftover temp files), a cached dataset round-trips bitwise, and a
// corrupt cache entry is regenerated instead of crashing the run.
#include "data/cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "em/parameter_space.hpp"
#include "em/simulator.hpp"

namespace isop::data {
namespace {

namespace fs = std::filesystem;

void expectBitwiseEqual(const ml::Dataset& actual, const ml::Dataset& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_EQ(actual.inputDim(), expected.inputDim());
  ASSERT_EQ(actual.outputDim(), expected.outputDim());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    for (std::size_t c = 0; c < expected.inputDim(); ++c) {
      ASSERT_EQ(actual.x(r, c), expected.x(r, c)) << "x(" << r << "," << c << ")";
    }
    for (std::size_t c = 0; c < expected.outputDim(); ++c) {
      ASSERT_EQ(actual.y(r, c), expected.y(r, c)) << "y(" << r << "," << c << ")";
    }
  }
}

// Each test gets its own cache directory under the gtest temp dir via
// ISOP_CACHE_DIR, so runs never touch (or depend on) the repo-level cache.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "isop_cache_test";
    fs::remove_all(dir_);
    ASSERT_EQ(setenv("ISOP_CACHE_DIR", dir_.c_str(), 1), 0);
  }

  void TearDown() override {
    unsetenv("ISOP_CACHE_DIR");
    fs::remove_all(dir_);
  }

  static GenerationConfig smallConfig() {
    GenerationConfig config;
    config.samples = 32;
    config.seed = 7;
    config.spaceName = "S1";
    return config;
  }

  std::vector<std::string> cacheFiles() const {
    std::vector<std::string> names;
    if (!fs::exists(dir_)) return names;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  std::string dir_;
};

TEST_F(CacheTest, CacheDirHonoursEnvOverride) {
  EXPECT_EQ(cacheDir(), dir_);
  EXPECT_TRUE(fs::exists(dir_));
}

TEST_F(CacheTest, GeneratesOncePublishesAtomicallyAndReloads) {
  em::EmSimulator sim;
  const em::ParameterSpace space = em::spaceByName("S1");
  const GenerationConfig config = smallConfig();

  const ml::Dataset first = getOrGenerateDataset(sim, space, config);
  EXPECT_EQ(first.size(), config.samples);

  const auto files = cacheFiles();
  ASSERT_EQ(files.size(), 1u) << "expected exactly the published dataset file";
  // Atomic publication: the temp file was renamed into place, not left over.
  EXPECT_EQ(files[0].find(".tmp."), std::string::npos) << files[0];

  // A second call must serve the cached copy with identical contents.
  const ml::Dataset second = getOrGenerateDataset(sim, space, config);
  expectBitwiseEqual(second, first);
}

TEST_F(CacheTest, AtomicSaveSweepsStaleTempLeftovers) {
  // A writer killed mid-publication leaves `<path>.tmp.<pid>.<n>` behind; the
  // next atomicSave of the same path must sweep it and still publish.
  fs::create_directories(dir_);
  const std::string path = dir_ + "/entry.bin";
  const std::string stale = path + ".tmp.99999.0";
  {
    std::ofstream out(stale);
    out << "half-written leftovers from a killed process";
  }
  // By the time another publication happens, a crashed writer's leftover is
  // old; age it past the staleness threshold that protects live writers.
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() - std::chrono::hours(1));
  atomicSave(path, [](const std::string& tmp) {
    std::ofstream out(tmp, std::ios::binary);
    out << "published";
  });
  EXPECT_FALSE(fs::exists(stale)) << "stale temp not swept";
  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "published");
  // Exactly the published file remains.
  ASSERT_EQ(cacheFiles().size(), 1u);
  EXPECT_EQ(cacheFiles()[0], "entry.bin");
}

TEST_F(CacheTest, AtomicSaveLeavesFreshTempsOfLiveWritersAlone) {
  // A fresh temp next to the target is plausibly a concurrent writer that is
  // mid-publication right now. Sweeping it would fail that writer's rename —
  // and for writers whose bytes differ (session-store snapshots), silently
  // drop its state. The sweep must only take temps old enough to be dead.
  fs::create_directories(dir_);
  const std::string path = dir_ + "/entry.bin";
  const std::string live = path + ".tmp.88888.0";
  {
    std::ofstream out(live);
    out << "a concurrent writer's in-progress publication";
  }
  atomicSave(path, [](const std::string& tmp) {
    std::ofstream out(tmp, std::ios::binary);
    out << "published";
  });
  EXPECT_TRUE(fs::exists(live)) << "fresh temp of a live writer was swept";
  EXPECT_TRUE(fs::exists(path));
}

TEST_F(CacheTest, ZeroByteCacheEntryIsRegenerated) {
  // A crash between open() and the first write can leave a zero-byte temp
  // that an older publication path might have renamed into place; the loader
  // must treat it like any other corrupt entry and regenerate.
  em::EmSimulator sim;
  const em::ParameterSpace space = em::spaceByName("S1");
  const GenerationConfig config = smallConfig();

  const ml::Dataset fresh = getOrGenerateDataset(sim, space, config);
  const auto files = cacheFiles();
  ASSERT_EQ(files.size(), 1u);
  { std::ofstream out(dir_ + "/" + files[0], std::ios::trunc); }
  ASSERT_EQ(fs::file_size(dir_ + "/" + files[0]), 0u);

  const ml::Dataset regenerated = getOrGenerateDataset(sim, space, config);
  expectBitwiseEqual(regenerated, fresh);
  EXPECT_GT(fs::file_size(dir_ + "/" + files[0]), 0u);
}

TEST_F(CacheTest, CorruptCacheEntryIsRegenerated) {
  em::EmSimulator sim;
  const em::ParameterSpace space = em::spaceByName("S1");
  const GenerationConfig config = smallConfig();

  const ml::Dataset fresh = getOrGenerateDataset(sim, space, config);
  const auto files = cacheFiles();
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(dir_ + "/" + files[0], std::ios::trunc);
    out << "garbage";
  }

  const ml::Dataset regenerated = getOrGenerateDataset(sim, space, config);
  expectBitwiseEqual(regenerated, fresh);
  // The rewritten cache entry must load cleanly again.
  EXPECT_NO_THROW(ml::loadDataset(dir_ + "/" + files[0]));
}

}  // namespace
}  // namespace isop::data
