// MetricsSampler tests: the delta-encoding invariant (each counter increment
// lands in exactly one tick, even while other threads publish concurrently),
// absolute-vs-delta key classification, changed-key-only records, the
// bounded ring, the file sink, and background start/stop.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace isop::obs {
namespace {

double counterDelta(const json::Value& record, const std::string& key) {
  const json::Value* counters = record.find("counters");
  if (!counters) return 0.0;
  const json::Value* delta = counters->find(key);
  return delta ? delta->asNumber() : 0.0;
}

TEST(MetricsSampler, FirstTickReportsFullCounterValue) {
  Registry reg;
  reg.counter("x.calls").add(7);
  MetricsSampler sampler(reg, {});
  const json::Value record = sampler.sampleOnce();
  EXPECT_EQ(record.at("seq").asInteger(), 0);
  EXPECT_TRUE(record.at("uptime_seconds").isNumeric());
  EXPECT_DOUBLE_EQ(counterDelta(record, "x.calls"), 7.0);
}

TEST(MetricsSampler, DeltasOmitUnchangedAndTrackIncrements) {
  Registry reg;
  Counter& c = reg.counter("x.calls");
  Gauge& g = reg.gauge("y.depth");
  MetricsSamplerConfig cfg;
  cfg.captureThreadPool = false;
  MetricsSampler sampler(reg, cfg);

  c.add(5);
  g.set(2.5);
  const json::Value first = sampler.sampleOnce();
  EXPECT_DOUBLE_EQ(counterDelta(first, "x.calls"), 5.0);
  EXPECT_DOUBLE_EQ(first.at("values").at("y.depth").asNumber(), 2.5);

  // Second tick: only what changed. The gauge is unchanged -> omitted; the
  // counter moved by 3 -> a delta of 3, not the raw 8.
  c.add(3);
  const json::Value second = sampler.sampleOnce();
  EXPECT_EQ(second.at("seq").asInteger(), 1);
  EXPECT_DOUBLE_EQ(counterDelta(second, "x.calls"), 3.0);
  const json::Value* values = second.find("values");
  if (values) {
    EXPECT_EQ(values->find("y.depth"), nullptr);
  }

  // Third tick with no activity at all: no counters, no values.
  const json::Value third = sampler.sampleOnce();
  const json::Value* counters = third.find("counters");
  if (counters) {
    EXPECT_EQ(counters->find("x.calls"), nullptr);
  }
}

TEST(MetricsSampler, GaugeChangesReportAbsoluteReadings) {
  Registry reg;
  Gauge& g = reg.gauge("q.depth");
  MetricsSamplerConfig cfg;
  cfg.captureThreadPool = false;
  MetricsSampler sampler(reg, cfg);
  g.set(4.0);
  EXPECT_DOUBLE_EQ(sampler.sampleOnce().at("values").at("q.depth").asNumber(), 4.0);
  g.set(1.0);
  // Absolute, not a -3 delta: gauges go down as well as up.
  EXPECT_DOUBLE_EQ(sampler.sampleOnce().at("values").at("q.depth").asNumber(), 1.0);
}

TEST(MetricsSampler, DeltasSumToRawCounterUnderConcurrentPublishes) {
  Registry reg;
  Counter& c = reg.counter("hot.calls");
  Histogram& h = reg.histogram("hot.seconds");
  MetricsSamplerConfig cfg;
  cfg.captureThreadPool = false;
  MetricsSampler sampler(reg, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> done{false};
  std::vector<std::thread> publishers;
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(1e-3);
      }
    });
  }
  // Sample continuously while the publishers run; every record claims some
  // slice of the increments and no increment may be claimed twice.
  double callsDeltaSum = 0.0;
  double histCountDeltaSum = 0.0;
  std::thread samplerThread([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const json::Value record = sampler.sampleOnce();
      callsDeltaSum += counterDelta(record, "hot.calls");
      histCountDeltaSum += counterDelta(record, "hot.seconds.count");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : publishers) t.join();
  done.store(true, std::memory_order_relaxed);
  samplerThread.join();
  // One final tick picks up whatever the in-flight samples missed.
  const json::Value last = sampler.sampleOnce();
  callsDeltaSum += counterDelta(last, "hot.calls");
  histCountDeltaSum += counterDelta(last, "hot.seconds.count");

  const double total = static_cast<double>(kThreads) * kPerThread;
  EXPECT_DOUBLE_EQ(callsDeltaSum, total);
  EXPECT_DOUBLE_EQ(histCountDeltaSum, total);
}

TEST(MetricsSampler, RingIsBoundedAndCountsDrops) {
  Registry reg;
  Counter& c = reg.counter("x.calls");
  MetricsSamplerConfig cfg;
  cfg.ringCapacity = 4;
  cfg.captureThreadPool = false;
  MetricsSampler sampler(reg, cfg);
  for (int i = 0; i < 10; ++i) {
    c.add();
    sampler.sampleOnce();
  }
  const std::vector<std::string> lines = sampler.lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(sampler.droppedLines(), 6u);
  // Oldest-first: the surviving records are seq 6..9.
  const auto first = json::Value::parse(lines.front());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at("seq").asInteger(), 6);
}

TEST(MetricsSampler, FileSinkAppendsParseableJsonl) {
  const std::string path = "test_sampler_series.jsonl";
  std::remove(path.c_str());
  Registry reg;
  Counter& c = reg.counter("x.calls");
  {
    MetricsSamplerConfig cfg;
    cfg.path = path;
    cfg.captureThreadPool = false;
    MetricsSampler sampler(reg, cfg);
    c.add(2);
    sampler.sampleOnce();
    c.add(1);
    sampler.sampleOnce();
  }  // dtor flushes + closes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  double sum = 0.0;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    const auto record = json::Value::parse(line);
    ASSERT_TRUE(record.has_value()) << line;
    sum += counterDelta(*record, "x.calls");
    ++records;
  }
  EXPECT_GE(records, 2u);
  EXPECT_DOUBLE_EQ(sum, 3.0);
  std::remove(path.c_str());
}

TEST(MetricsSampler, BackgroundThreadTicksAndStops) {
  Registry reg;
  reg.counter("x.calls").add(1);
  MetricsSamplerConfig cfg;
  cfg.interval = std::chrono::milliseconds(5);
  cfg.captureThreadPool = false;
  MetricsSampler sampler(reg, cfg);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sampler.ticks(), 3u);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent
  // stop() takes a final sample, so the series is never empty.
  EXPECT_FALSE(sampler.lines().empty());
}

}  // namespace
}  // namespace isop::obs
