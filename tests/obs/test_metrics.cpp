// Metrics registry tests: correctness of each instrument kind, concurrent
// increments from many threads, the exporters, and reset-in-place semantics.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace isop::obs {
namespace {

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, ConcurrentAddsAccumulate) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 0.5 * kThreads * kPerThread);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(Histogram, TracksExactCountSumExtrema) {
  Histogram h;
  h.record(0.001);
  h.record(0.01);
  h.record(0.1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.sum(), 0.111, 1e-12);
  EXPECT_NEAR(h.mean(), 0.037, 1e-12);
}

TEST(Histogram, PercentilesAreOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);  // 1ms .. 1s
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Log-scale buckets: ~15% relative error budget.
  EXPECT_NEAR(p50, 0.5, 0.5 * 0.2);
  EXPECT_NEAR(p99, 0.99, 0.99 * 0.2);
}

TEST(Histogram, LogBucketEstimationErrorIsBounded) {
  // The log-bucket scheme guarantees a percentile estimate within one bucket
  // of the true value: with kBucketsPerDecade buckets per power of ten the
  // bucket boundary ratio is 10^(1/kBucketsPerDecade), so the relative error
  // can never exceed that ratio minus one (~33% at 8 buckets/decade).
  const double maxRelError =
      std::pow(10.0, 1.0 / Histogram::kBucketsPerDecade) - 1.0;
  Histogram h;
  constexpr int kSamples = 10000;
  // Uniform over three decades exercises many distinct buckets.
  for (int i = 1; i <= kSamples; ++i) h.record(i * 1e-3);
  for (const double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    // Exact nearest-rank percentile of the uniform ramp.
    const double exact =
        1e-3 * std::ceil(p * static_cast<double>(kSamples));
    const double estimate = h.percentile(p);
    EXPECT_LE(std::abs(estimate - exact) / exact, maxRelError)
        << "p=" << p << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(1e-6 * (1 + ((t * kPerThread + i) % 1000)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6 * 1);
  EXPECT_DOUBLE_EQ(h.max(), 1e-6 * 1000);
}

TEST(Registry, HandlesAreStableAndKindChecked) {
  Registry reg;
  Counter& c1 = reg.counter("x.calls");
  Counter& c2 = reg.counter("x.calls");
  EXPECT_EQ(&c1, &c2);
  EXPECT_THROW(reg.gauge("x.calls"), std::logic_error);
  EXPECT_THROW(reg.histogram("x.calls"), std::logic_error);
}

TEST(Registry, LabeledNamesFollowPrometheusStyle) {
  EXPECT_EQ(Registry::labeled("trial.runs", "method", "SA-1"),
            "trial.runs{method=SA-1}");
}

TEST(Registry, ConcurrentMixedRegistrationIsSafe) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared.counter").add();
        reg.histogram("shared.hist").record(1e-3);
        reg.gauge("shared.gauge").add(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("shared.counter"), 8000.0);
  EXPECT_DOUBLE_EQ(snap.at("shared.hist.count"), 8000.0);
  EXPECT_DOUBLE_EQ(snap.at("shared.gauge"), 8000.0);
}

TEST(Registry, JsonExportParsesBackAndCoversAllKinds) {
  Registry reg;
  reg.counter("a.calls").add(3);
  reg.gauge("b.depth").set(2.5);
  reg.histogram("c.seconds").record(0.25);
  const auto parsed = json::Value::parse(reg.toJson().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->at("counters").at("a.calls").asNumber(), 3.0);
  EXPECT_DOUBLE_EQ(parsed->at("gauges").at("b.depth").asNumber(), 2.5);
  const json::Value& hist = parsed->at("histograms").at("c.seconds");
  EXPECT_DOUBLE_EQ(hist.at("count").asNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("min").asNumber(), 0.25);
  EXPECT_DOUBLE_EQ(hist.at("max").asNumber(), 0.25);
  ASSERT_NE(hist.find("p50"), nullptr);
  ASSERT_NE(hist.find("p90"), nullptr);
  ASSERT_NE(hist.find("p95"), nullptr);
  ASSERT_NE(hist.find("p99"), nullptr);
}

TEST(Registry, FlatSampleMarksMonotoneKeys) {
  Registry reg;
  reg.counter("a.calls").add(3);
  reg.gauge("b.depth").set(2.5);
  reg.histogram("c.seconds").record(0.25);
  const auto flat = reg.flatSample();
  EXPECT_TRUE(flat.at("a.calls").monotone);
  EXPECT_DOUBLE_EQ(flat.at("a.calls").value, 3.0);
  EXPECT_FALSE(flat.at("b.depth").monotone);
  EXPECT_TRUE(flat.at("c.seconds.count").monotone);
  EXPECT_FALSE(flat.at("c.seconds.p90").monotone);
  EXPECT_FALSE(flat.at("c.seconds.mean").monotone);
}

TEST(Registry, CsvHasOneRowPerExportedValue) {
  Registry reg;
  reg.counter("a.calls").add(7);
  const std::string csv = reg.toCsv();
  EXPECT_NE(csv.find("a.calls,counter,7"), std::string::npos);
}

TEST(Registry, ResetZeroesInPlaceKeepingHandles) {
  Registry reg;
  Counter& c = reg.counter("r.calls");
  Histogram& h = reg.histogram("r.seconds");
  c.add(5);
  h.record(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("r.calls").value(), 1u);
}

TEST(ObsGlobals, MetricsEnabledDefaultsOffAndToggles) {
  EXPECT_FALSE(metricsEnabled());
  setMetricsEnabled(true);
  EXPECT_TRUE(metricsEnabled());
  setMetricsEnabled(false);
  EXPECT_FALSE(metricsEnabled());
}

}  // namespace
}  // namespace isop::obs
