// Tracer tests: Chrome trace_event JSON well-formedness (validated by
// parsing it back through common/json), the null-sink fast path, the event
// cap, and concurrent span recording.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace isop::obs {
namespace {

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  { Span span(tracer, "ignored"); }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, EnabledSpansRecordNameAndDuration) {
  Tracer tracer;
  tracer.setEnabled(true);
  {
    Span span(tracer, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].durMicros, 1000u);
  EXPECT_EQ(events[0].tid, currentThreadId());
}

TEST(Tracer, EnableCheckedAtConstructionNotDestruction) {
  Tracer tracer;
  Span span(tracer, "started-disabled");
  tracer.setEnabled(true);
  // The span bound itself to the disabled state; flipping the flag mid-span
  // must not produce a partial event.
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.setEnabled(true);
  { Span span(tracer, "alpha"); }
  { Span span(tracer, "beta"); }
  const auto parsed = json::Value::parse(tracer.toChromeJson().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("displayTimeUnit").asString(), "ms");
  const json::Value& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.isArray());
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    EXPECT_EQ(e.at("ph").asString(), "X");
    EXPECT_EQ(e.at("cat").asString(), "isop");
    EXPECT_EQ(e.at("pid").asInteger(), 1);
    EXPECT_TRUE(e.at("ts").isNumeric());
    EXPECT_TRUE(e.at("dur").isNumeric());
    EXPECT_TRUE(e.at("tid").isNumeric());
    EXPECT_FALSE(e.at("name").asString().empty());
  }
  EXPECT_EQ(events.at(0).at("name").asString(), "alpha");
  EXPECT_EQ(events.at(1).at("name").asString(), "beta");
}

TEST(Tracer, CapsEventsAndCountsDrops) {
  Tracer tracer(/*maxEvents=*/4);
  tracer.setEnabled(true);
  for (int i = 0; i < 10; ++i) {
    Span span(tracer, "loop");
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.droppedEvents(), 6u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(ScopedSpanTag, TagsEventsAndRestoresOnExit) {
  Tracer tracer;
  tracer.setEnabled(true);
  { Span span(tracer, "untagged-before"); }
  {
    ScopedSpanTag tag("job-A");
    Span span(tracer, "tagged");
  }
  { Span span(tracer, "untagged-after"); }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].tag, "");
  EXPECT_EQ(events[1].tag, "job-A");
  EXPECT_EQ(events[2].tag, "");
}

TEST(ScopedSpanTag, NestingRestoresOuterTag) {
  Tracer tracer;
  tracer.setEnabled(true);
  {
    ScopedSpanTag outer("outer");
    { Span span(tracer, "a"); }
    {
      ScopedSpanTag inner("inner");
      Span span(tracer, "b");
    }
    { Span span(tracer, "c"); }
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].tag, "outer");
  EXPECT_EQ(events[1].tag, "inner");
  EXPECT_EQ(events[2].tag, "outer");
}

TEST(ScopedSpanTag, TagIsThreadLocal) {
  Tracer tracer;
  tracer.setEnabled(true);
  ScopedSpanTag tag("main-thread");
  std::thread other([&tracer] {
    Span span(tracer, "other-thread");
  });
  other.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tag, "");  // the tag never crossed threads
}

TEST(Tracer, EventsFilterByTag) {
  Tracer tracer;
  tracer.setEnabled(true);
  {
    ScopedSpanTag tag("job-1");
    Span span(tracer, "one");
  }
  {
    ScopedSpanTag tag("job-2");
    Span span(tracer, "two");
  }
  { Span span(tracer, "untagged"); }
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.eventCount(), 3u);
  const auto filtered = tracer.events("job-1");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "one");
  EXPECT_TRUE(tracer.events("job-3").empty());
}

TEST(Tracer, ChromeJsonFilterAndJobArgs) {
  Tracer tracer;
  tracer.setEnabled(true);
  {
    ScopedSpanTag tag("job-x");
    Span span(tracer, "inside");
  }
  { Span span(tracer, "outside"); }
  const auto parsed = json::Value::parse(tracer.toChromeJson("job-x").dump());
  ASSERT_TRUE(parsed.has_value());
  const json::Value& events = parsed->at("traceEvents");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.at(0).at("name").asString(), "inside");
  EXPECT_EQ(events.at(0).at("args").at("job").asString(), "job-x");
  // Unfiltered export keeps both; the untagged event has no args block.
  const auto all = json::Value::parse(tracer.toChromeJson().dump());
  EXPECT_EQ(all->at("traceEvents").size(), 2u);
}

TEST(Tracer, ConcurrentSpansAllLand) {
  Tracer tracer;
  tracer.setEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span(tracer, "mt");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.events().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace isop::obs
