// Convergence recorder tests: the typed records round-trip losslessly
// through the common/json parser, the JSONL sinks (memory and file) emit
// one parseable object per line, and a disabled recorder drops everything.
#include "obs/convergence.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace isop::obs {
namespace {

template <typename Record>
Record roundTrip(const Record& in) {
  const std::string line = in.toJson().dump();
  const auto parsed = json::Value::parse(line);
  EXPECT_TRUE(parsed.has_value()) << line;
  const auto out = Record::fromJson(*parsed);
  EXPECT_TRUE(out.has_value()) << line;
  return *out;
}

TEST(ConvergenceRecords, HarmonicaIterationRoundTrips) {
  HarmonicaIterationRecord r;
  r.iteration = 3;
  r.bestGhat = -1.25;
  r.evaluations = 1200;
  r.invalidSamples = 17;
  r.fixedBits = 6;
  r.freeBits = 39;
  EXPECT_EQ(roundTrip(r), r);
  EXPECT_EQ(recordType(r.toJson()), "harmonica_iteration");
}

TEST(ConvergenceRecords, HyperbandRoundRoundTrips) {
  HyperbandRoundRecord r;
  r.bracket = 2;
  r.round = 1;
  r.resource = 9;
  r.arms = 12;
  r.survivors = 4;
  r.bestValue = 0.75;
  EXPECT_EQ(roundTrip(r), r);
  EXPECT_EQ(recordType(r.toJson()), "hyperband_round");
}

TEST(ConvergenceRecords, AdamEpochRoundTrips) {
  AdamEpochRecord r;
  r.epoch = 24;
  r.seeds = 6;
  r.bestValue = 0.125;
  r.meanValue = 0.5;
  EXPECT_EQ(roundTrip(r), r);
}

TEST(ConvergenceRecords, AdaptiveWeightsRoundTripsWithVectors) {
  AdaptiveWeightsRecord r;
  r.iteration = 1;
  r.wFom = 1.5;
  r.wOc = {1.0, 2.25};
  r.wIc = {0.5};
  EXPECT_EQ(roundTrip(r), r);
}

TEST(ConvergenceRecords, RolloutValidationRoundTrips) {
  RolloutValidationRecord r;
  r.round = 2;
  r.g = 0.875;
  r.fom = 0.33;
  r.feasible = true;
  r.z = 84.9;
  r.l = -0.42;
  r.next = -12.5;
  EXPECT_EQ(roundTrip(r), r);
}

TEST(ConvergenceRecords, FromJsonRejectsWrongTypeAndMissingFields) {
  HarmonicaIterationRecord r;
  EXPECT_FALSE(HyperbandRoundRecord::fromJson(r.toJson()).has_value());
  json::Value truncated = json::Value::object();
  truncated.set("type", json::Value::string("harmonica_iteration"));
  truncated.set("iteration", json::Value::integer(1));
  EXPECT_FALSE(HarmonicaIterationRecord::fromJson(truncated).has_value());
}

TEST(ConvergenceRecorder, DisabledRecorderDropsRecords) {
  ConvergenceRecorder rec;
  rec.record(HarmonicaIterationRecord{}.toJson());
  EXPECT_TRUE(rec.lines().empty());
}

TEST(ConvergenceRecorder, MemorySinkKeepsOneParseableLinePerRecord) {
  ConvergenceRecorder rec;
  rec.setEnabled(true);
  for (std::size_t i = 0; i < 3; ++i) {
    HarmonicaIterationRecord r;
    r.iteration = i;
    rec.record(r.toJson());
  }
  const auto lines = rec.lines();
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto parsed = json::Value::parse(lines[i]);
    ASSERT_TRUE(parsed.has_value());
    const auto r = HarmonicaIterationRecord::fromJson(*parsed);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->iteration, i);
  }
  rec.clear();
  EXPECT_TRUE(rec.lines().empty());
}

TEST(ConvergenceRecorder, FileSinkStreamsJsonl) {
  const std::string path = ::testing::TempDir() + "convergence_test.jsonl";
  {
    ConvergenceRecorder rec;
    ASSERT_TRUE(rec.openFile(path));
    rec.setEnabled(true);
    AdamEpochRecord r;
    r.epoch = 7;
    r.seeds = 4;
    r.bestValue = 0.5;
    r.meanValue = 1.0;
    rec.record(r.toJson());
    rec.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto parsed = json::Value::parse(line);
  ASSERT_TRUE(parsed.has_value());
  const auto r = AdamEpochRecord::fromJson(*parsed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->epoch, 7u);
  EXPECT_FALSE(std::getline(in, line));  // exactly one line
  std::remove(path.c_str());
}

TEST(ConvergenceRecorder, ScopedTapCapturesAndShieldsGlobalSink) {
  ConvergenceRecorder rec;
  rec.setEnabled(true);
  std::vector<std::string> tapped;
  {
    ConvergenceRecorder::ScopedTap tap(
        [&](const json::Value& v) { tapped.push_back(v.dump()); });
    HarmonicaIterationRecord r;
    r.iteration = 5;
    rec.record(r.toJson());
  }
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(recordType(*json::Value::parse(tapped[0])), "harmonica_iteration");
  EXPECT_TRUE(rec.lines().empty());  // the tap shielded the global sink

  // After the tap is gone, records flow to the global sink again.
  rec.record(HarmonicaIterationRecord{}.toJson());
  EXPECT_EQ(rec.lines().size(), 1u);
  EXPECT_EQ(tapped.size(), 1u);
}

TEST(ConvergenceRecorder, TapWorksWhileRecorderDisabled) {
  // A serve job must stream progress even when the process-wide convergence
  // sink is off: enabled() reads true on a tapped thread.
  ConvergenceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  std::vector<std::string> tapped;
  {
    ConvergenceRecorder::ScopedTap tap(
        [&](const json::Value& v) { tapped.push_back(v.dump()); });
    EXPECT_TRUE(rec.enabled());
    rec.record(AdamEpochRecord{}.toJson());
  }
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(tapped.size(), 1u);
  EXPECT_TRUE(rec.lines().empty());
}

TEST(ConvergenceRecorder, TapsNestAndRestore) {
  ConvergenceRecorder rec;
  std::vector<std::string> outer;
  std::vector<std::string> inner;
  {
    ConvergenceRecorder::ScopedTap outerTap(
        [&](const json::Value& v) { outer.push_back(v.dump()); });
    {
      ConvergenceRecorder::ScopedTap innerTap(
          [&](const json::Value& v) { inner.push_back(v.dump()); });
      rec.record(AdamEpochRecord{}.toJson());  // innermost tap wins
    }
    rec.record(AdamEpochRecord{}.toJson());  // previous tap restored
  }
  EXPECT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer.size(), 1u);
}

TEST(ConvergenceRecorder, TapIsPerThread) {
  ConvergenceRecorder rec;
  rec.setEnabled(true);
  std::vector<std::string> tapped;
  ConvergenceRecorder::ScopedTap tap(
      [&](const json::Value& v) { tapped.push_back(v.dump()); });
  // A record() on an untapped thread goes to the global sink, not our tap.
  std::thread other([&] { rec.record(AdamEpochRecord{}.toJson()); });
  other.join();
  EXPECT_TRUE(tapped.empty());
  EXPECT_EQ(rec.lines().size(), 1u);
}

}  // namespace
}  // namespace isop::obs
