// End-to-end observability smoke tests: a short IsopOptimizer::run with all
// sinks on must produce gap-free monotone Harmonica iteration records,
// nonzero EM/surrogate counters with per-stage span histograms, and a
// loadable Chrome trace — and leave every global sink disabled afterwards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/isop.hpp"
#include "core/simulator_surrogate.hpp"
#include "core/trial_runner.hpp"
#include "obs/obs.hpp"

namespace isop::core {
namespace {

IsopConfig smokeConfig() {
  IsopConfig cfg;
  cfg.harmonica.iterations = 3;
  cfg.harmonica.samplesPerIter = 120;
  cfg.harmonica.topMonomials = 4;
  cfg.hyperband.maxResource = 9;
  cfg.refine.epochs = 10;
  cfg.localSeeds = 2;
  cfg.candNum = 2;
  cfg.seed = 11;
  return cfg;
}

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().reset();
    obs::tracer().clear();
    obs::convergence().clear();
  }
  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_ = std::make_shared<SimulatorSurrogate>(sim_);
};

TEST_F(ObsPipelineTest, ShortRunEmitsMonotoneIterationsAndNonzeroCounters) {
  IsopConfig cfg = smokeConfig();
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  cfg.obs.convergence = true;  // no path -> in-memory lines()

  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());

  // Sinks were restored to disabled when run()'s session closed.
  EXPECT_FALSE(obs::metricsEnabled());
  EXPECT_FALSE(obs::tracer().enabled());
  EXPECT_FALSE(obs::convergence().enabled());

  // Counters: the EM validations and every surrogate query were billed.
  EXPECT_GT(obs::registry().counter("em.sim.calls").value(), 0u);
  EXPECT_GT(obs::registry().counter("surrogate.queries").value(), 0u);
  EXPECT_EQ(obs::registry().counter("em.sim.calls").value(), result.simulatorCalls);

  // Per-stage span histograms landed for every pipeline stage.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  for (const char* key :
       {"span.isop.run.seconds.count", "span.stage1.harmonica.seconds.count",
        "span.stage1b.seeds.seconds.count", "span.stage2.refine.seconds.count",
        "span.stage3.rollout.seconds.count", "span.harmonica.iteration.seconds.count",
        "span.adam.refine.seconds.count"}) {
    ASSERT_TRUE(snap.count(key)) << key;
    EXPECT_GT(snap.at(key), 0.0) << key;
  }

  // Convergence JSONL: gap-free monotone harmonica iterations, plus records
  // from the seed-selection, refinement and roll-out stages.
  std::vector<obs::HarmonicaIterationRecord> iterations;
  std::size_t hyperbandRounds = 0, adamEpochs = 0, rollouts = 0;
  for (const std::string& line : obs::convergence().lines()) {
    const auto parsed = json::Value::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (auto r = obs::HarmonicaIterationRecord::fromJson(*parsed)) {
      iterations.push_back(*r);
    }
    const std::string type = obs::recordType(*parsed);
    hyperbandRounds += type == "hyperband_round";
    adamEpochs += type == "adam_epoch";
    rollouts += type == "rollout_validation";
  }
  ASSERT_EQ(iterations.size(), cfg.harmonica.iterations);
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    EXPECT_EQ(iterations[i].iteration, i);
    if (i > 0) {
      EXPECT_GE(iterations[i].evaluations, iterations[i - 1].evaluations);
      EXPECT_LE(iterations[i].bestGhat, iterations[i - 1].bestGhat);
    }
  }
  EXPECT_GT(hyperbandRounds, 0u);
  // Repair rounds may rerun the refiner / validate extra designs, so these
  // are lower bounds.
  EXPECT_GE(adamEpochs, cfg.refine.epochs);
  EXPECT_GE(rollouts, result.candidates.size());

  // Trace: the stage spans are loadable Chrome trace events.
  const auto trace = json::Value::parse(obs::tracer().toChromeJson().dump());
  ASSERT_TRUE(trace.has_value());
  EXPECT_GT(trace->at("traceEvents").size(), 0u);
}

TEST_F(ObsPipelineTest, DisabledConfigLeavesSinksUntouched) {
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), smokeConfig());
  (void)optimizer.run();
  EXPECT_EQ(obs::registry().counter("em.sim.calls").value(), 0u);
  EXPECT_TRUE(obs::tracer().events().empty());
  EXPECT_TRUE(obs::convergence().lines().empty());
}

TEST_F(ObsPipelineTest, TrialRunnerAggregatesSnapshotAndLabeledCounters) {
  MethodSpec method;
  method.name = "ISOP+";
  method.kind = MethodSpec::Kind::Isop;
  method.isop = smokeConfig();
  method.rolloutCandidates = 2;

  TrialRunner runner(sim_, oracle_, em::spaceS1(), taskT1());
  obs::ObsConfig obsCfg;
  obsCfg.metrics = true;
  runner.setObsConfig(obsCfg);
  const TrialStats stats = runner.run(method, 2, 42);

  EXPECT_EQ(stats.trials, 2u);
  EXPECT_GT(stats.avgEmCalls, 0.0);
  ASSERT_FALSE(stats.obsMetrics.empty());
  EXPECT_DOUBLE_EQ(stats.obsMetrics.at("trial.runs{method=ISOP+}"), 2.0);
  EXPECT_GT(stats.obsMetrics.at("em.sim.calls"), 0.0);
  EXPECT_GT(stats.obsMetrics.at("trial.runtime.seconds.count"), 0.0);
  ASSERT_TRUE(stats.obsMetrics.count("threadpool.threads"));
  EXPECT_GT(stats.obsMetrics.at("threadpool.threads"), 0.0);
  EXPECT_FALSE(obs::metricsEnabled());
}

}  // namespace
}  // namespace isop::core
