// InverseDesigner contracts: ranked candidates are on-grid, deduplicated and
// ordered feasible-first / ascending g; identical (model, spec, config)
// solves are bitwise reproducible; and the optional AdamRefiner hop keeps
// every ranking invariant while marking what it touched.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/eval/eval_engine.hpp"
#include "core/simulator_surrogate.hpp"
#include "core/tasks.hpp"
#include "em/simulator.hpp"
#include "inverse/inverse_designer.hpp"
#include "inverse/inverse_trainer.hpp"

namespace isop::inverse {
namespace {

class InverseDesignerTest : public ::testing::Test {
 protected:
  InverseDesignerTest()
      : oracle_(simulator_),
        space_(em::spaceByName("S1")),
        engine_(oracle_, simulator_, {}) {
    InverseTrainConfig trainCfg;
    trainCfg.samples = 128;
    trainCfg.epochs = 6;
    trainCfg.seed = 7;
    core::EvalEngineConfig engineCfg;
    engineCfg.memoize = false;
    const core::EvalEngine trainEngine(oracle_, engineCfg);
    model_ = trainInverseModel(trainEngine, space_, trainCfg);

    // Target a spec the surrogate itself emitted, so it is achievable.
    Rng rng(41);
    const em::StackupParams probe = space_.sample(rng);
    std::vector<em::PerformanceMetrics> metrics;
    engine_.predictMetrics(std::span<const em::StackupParams>(&probe, 1),
                           metrics);
    target_.z = metrics[0].z;
    target_.l = metrics[0].l;
    target_.next = metrics[0].next;
    task_ = core::taskByName("T1");
    task_.spec.outputConstraints[0].target = target_.z;
  }

  static void expectRankedInvariants(const InverseResult& result,
                                     const em::ParameterSpace& space,
                                     std::size_t cap) {
    ASSERT_FALSE(result.ranked.empty());
    EXPECT_LE(result.ranked.size(), cap);
    EXPECT_FALSE(result.planSummary.empty());
    for (std::size_t i = 0; i < result.ranked.size(); ++i) {
      const InverseCandidate& c = result.ranked[i];
      EXPECT_TRUE(space.contains(c.params)) << "candidate " << i << " off-grid";
      for (std::size_t j = i + 1; j < result.ranked.size(); ++j) {
        EXPECT_NE(c.params.values, result.ranked[j].params.values)
            << "duplicate design at ranks " << i << " and " << j;
      }
      if (i + 1 < result.ranked.size()) {
        const InverseCandidate& next = result.ranked[i + 1];
        // Feasible designs strictly precede infeasible; ties break on g.
        EXPECT_GE(static_cast<int>(c.feasible), static_cast<int>(next.feasible));
        if (c.feasible == next.feasible) EXPECT_LE(c.g, next.g);
      }
    }
  }

  em::EmSimulator simulator_{{}};
  core::SimulatorSurrogate oracle_;
  em::ParameterSpace space_;
  core::EvalEngine engine_;
  std::unique_ptr<InverseModel> model_;
  core::Task task_{};
  TargetSpec target_{};
};

TEST_F(InverseDesignerTest, SolveReturnsRankedOnGridCandidates) {
  InverseSolveConfig config;
  config.candidates = 4;
  const InverseResult result =
      solveInverse(*model_, engine_, task_, target_, config);
  expectRankedInvariants(result, space_, config.candidates);
  for (const InverseCandidate& c : result.ranked) EXPECT_FALSE(c.refined);
}

TEST_F(InverseDesignerTest, IdenticalSolvesAreBitwiseIdentical) {
  InverseSolveConfig config;
  config.candidates = 3;
  config.seed = 9;
  const InverseResult a = solveInverse(*model_, engine_, task_, target_, config);
  const InverseResult b = solveInverse(*model_, engine_, task_, target_, config);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].params.values, b.ranked[i].params.values) << "rank " << i;
    EXPECT_EQ(a.ranked[i].g, b.ranked[i].g) << "rank " << i;
    EXPECT_EQ(a.ranked[i].fom, b.ranked[i].fom) << "rank " << i;
    EXPECT_EQ(a.ranked[i].feasible, b.ranked[i].feasible) << "rank " << i;
  }
}

TEST_F(InverseDesignerTest, RefineHopKeepsRankingInvariants) {
  InverseSolveConfig config;
  config.candidates = 3;
  config.refineEpochs = 4;
  const InverseResult result =
      solveInverse(*model_, engine_, task_, target_, config);
  expectRankedInvariants(result, space_, config.candidates);
  // The hop may or may not beat the amortized designs, but its output must
  // at least have been considered: some candidate carries the refined flag
  // or the amortized set won outright — either way the list stays capped
  // and sorted (checked above). Assert the flag is well-formed.
  for (const InverseCandidate& c : result.ranked) {
    if (c.refined) EXPECT_TRUE(space_.contains(c.params));
  }
}

}  // namespace
}  // namespace isop::inverse
