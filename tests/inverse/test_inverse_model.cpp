// Inverse model + trainer contracts: bitwise-deterministic training under a
// fixed seed (across repeat runs AND across engine thread counts — the
// training loop is single-threaded by construction, and EvalEngine chunking
// depends only on row count), save/load round-trip fidelity, batched ==
// per-row forward identity through the compiled plan, and decode bounds.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/thread_pool.hpp"
#include "core/eval/eval_engine.hpp"
#include "core/simulator_surrogate.hpp"
#include "em/simulator.hpp"
#include "inverse/inverse_model.hpp"
#include "inverse/inverse_trainer.hpp"

namespace isop::inverse {
namespace {

class InverseModelTest : public ::testing::Test {
 protected:
  InverseModelTest()
      : oracle_(simulator_), space_(em::spaceByName("S1")) {}

  InverseTrainConfig smallConfig(std::uint64_t seed = 11) const {
    InverseTrainConfig config;
    config.samples = 96;
    config.epochs = 6;
    config.seed = seed;
    return config;
  }

  /// Trains with the given engine config and returns the serialized model —
  /// the strictest determinism witness (every weight byte).
  std::string trainBytes(const InverseTrainConfig& config,
                         core::EvalEngineConfig engineCfg = {}) const {
    engineCfg.memoize = false;
    const core::EvalEngine engine(oracle_, engineCfg);
    const auto model = trainInverseModel(engine, space_, config);
    std::ostringstream out(std::ios::binary);
    model->save(out);
    return out.str();
  }

  em::EmSimulator simulator_{{}};
  core::SimulatorSurrogate oracle_;
  em::ParameterSpace space_;
};

TEST_F(InverseModelTest, TrainingIsBitwiseDeterministicAcrossRuns) {
  const std::string a = trainBytes(smallConfig());
  const std::string b = trainBytes(smallConfig());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed must reproduce every weight byte";
  const std::string c = trainBytes(smallConfig(/*seed=*/12));
  EXPECT_NE(a, c) << "a different seed must actually change the training run";
}

TEST_F(InverseModelTest, TrainingIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadPool one(1);
  ThreadPool four(4);
  core::EvalEngineConfig cfgOne;
  cfgOne.pool = &one;
  core::EvalEngineConfig cfgFour;
  cfgFour.pool = &four;
  const std::string serial = trainBytes(smallConfig(), cfgOne);
  const std::string parallel = trainBytes(smallConfig(), cfgFour);
  const std::string defaultPool = trainBytes(smallConfig());
  EXPECT_EQ(serial, parallel)
      << "engine thread count must not leak into the trained weights";
  EXPECT_EQ(serial, defaultPool);
}

TEST_F(InverseModelTest, SaveLoadRoundTripIsBitwise) {
  core::EvalEngineConfig engineCfg;
  engineCfg.memoize = false;
  const core::EvalEngine engine(oracle_, engineCfg);
  const auto model = trainInverseModel(engine, space_, smallConfig());

  std::ostringstream out(std::ios::binary);
  model->save(out);
  std::istringstream in(out.str(), std::ios::binary);
  std::string error;
  const auto loaded = InverseModel::load(in, space_, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->parameterCount(), model->parameterCount());
  EXPECT_TRUE(loaded->hasPlan()) << "load must recompile the inference plan";

  // The loaded net must answer specs bit-for-bit like the original.
  Matrix specs(3, em::kNumMetrics);
  specs.fill(0.0);
  specs(0, 0) = 80.0;
  specs(1, 0) = 85.0;
  specs(1, 1) = -1.0;
  specs(2, 0) = 90.0;
  specs(2, 2) = 0.01;
  Matrix a, b;
  model->forwardSpecs(specs, a);
  loaded->forwardSpecs(specs, b);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST_F(InverseModelTest, LoadRejectsTruncatedAndForeignStreams) {
  core::EvalEngineConfig engineCfg;
  engineCfg.memoize = false;
  const core::EvalEngine engine(oracle_, engineCfg);
  const auto model = trainInverseModel(engine, space_, smallConfig());
  std::ostringstream out(std::ios::binary);
  model->save(out);
  const std::string bytes = out.str();

  {
    std::istringstream in(bytes.substr(0, bytes.size() / 2), std::ios::binary);
    std::string error;
    EXPECT_EQ(InverseModel::load(in, space_, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
  {
    std::istringstream in(std::string("not an inverse model"), std::ios::binary);
    std::string error;
    EXPECT_EQ(InverseModel::load(in, space_, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

TEST_F(InverseModelTest, BatchedForwardMatchesPerRowBitwise) {
  core::EvalEngineConfig engineCfg;
  engineCfg.memoize = false;
  const core::EvalEngine engine(oracle_, engineCfg);
  const auto model = trainInverseModel(engine, space_, smallConfig());

  constexpr std::size_t kRows = 13;  // straddles the plan's 8-row block
  Matrix specs(kRows, em::kNumMetrics);
  Rng rng(99);
  for (std::size_t i = 0; i < kRows; ++i) {
    specs(i, 0) = rng.uniform(75.0, 95.0);
    specs(i, 1) = rng.uniform(-2.0, 0.0);
    specs(i, 2) = rng.uniform(0.0, 0.05);
  }
  Matrix batched;
  model->forwardSpecs(specs, batched);
  for (std::size_t i = 0; i < kRows; ++i) {
    Matrix single(1, em::kNumMetrics);
    for (std::size_t j = 0; j < em::kNumMetrics; ++j) single(0, j) = specs(i, j);
    Matrix row;
    model->forwardSpecs(single, row);
    for (std::size_t j = 0; j < em::kNumParams; ++j) {
      EXPECT_EQ(batched(i, j), row(0, j)) << "row " << i << " param " << j;
    }
  }
}

TEST_F(InverseModelTest, DecodeRowClampsAndSnapsOntoTheGrid) {
  Rng rng(5);
  InverseModel model(space_, {}, rng);
  std::vector<double> unit(em::kNumParams);
  for (std::size_t j = 0; j < unit.size(); ++j) {
    unit[j] = (j % 3 == 0) ? -0.7 : (j % 3 == 1 ? 0.4 : 1.9);  // out of range
  }
  const em::StackupParams snapped = model.decodeRow(unit, /*snapToGrid=*/true);
  EXPECT_TRUE(space_.contains(snapped))
      << "decoded designs must land inside (and on) the search grid";
  const em::StackupParams raw = model.decodeRow(unit, /*snapToGrid=*/false);
  for (std::size_t j = 0; j < em::kNumParams; ++j) {
    EXPECT_GE(raw.values[j], space_.range(j).lo);
    EXPECT_LE(raw.values[j], space_.range(j).hi);
  }
}

}  // namespace
}  // namespace isop::inverse
