// Serve subsystem tests: queue ordering/backpressure, scheduler lifecycle
// (event ordering, cancellation within one optimizer iteration, drain under
// load), session reuse with memo warm-starts, and the determinism contract —
// a served job's result is bitwise identical to a direct TrialRunner run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "core/simulator_surrogate.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/job_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session_manager.hpp"

namespace isop::serve {
namespace {

using core::TrialStats;

JobSpec quickSpec(std::string id, std::uint64_t seed = 7) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.budget = 120;
  spec.iterations = 2;
  spec.hyperbandResource = 9;
  spec.refineEpochs = 20;
  spec.localSeeds = 3;
  spec.candidates = 2;
  spec.seed = seed;
  return spec;
}

/// A spec whose uncancelled run takes far longer than any cancel latency
/// this suite tolerates: many repeat trials of the quick config, with the
/// cancellation token checked between trials and inside every iteration.
JobSpec longSpec(std::string id) {
  JobSpec spec = quickSpec(std::move(id));
  spec.trials = 200;
  return spec;
}

/// Thread-safe event log with predicate waits.
class EventLog {
 public:
  Scheduler::EventSink sink() {
    return [this](const JobEvent& event) {
      std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back(event);
      changed_.notify_all();
    };
  }

  /// Blocks until an event of `kind` for `id` exists; false on timeout.
  bool waitFor(const std::string& id, JobEvent::Kind kind,
               std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock<std::mutex> lock(mutex_);
    return changed_.wait_for(lock, timeout, [&] { return findLocked(id, kind); });
  }

  std::vector<JobEvent> eventsFor(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobEvent> out;
    for (const JobEvent& event : events_) {
      if (event.jobId == id) out.push_back(event);
    }
    return out;
  }

  std::vector<JobEvent> all() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  bool findLocked(const std::string& id, JobEvent::Kind kind) const {
    for (const JobEvent& event : events_) {
      if (event.jobId == id && event.kind == kind) return true;
    }
    return false;
  }

  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::vector<JobEvent> events_;
};

std::vector<JobEvent::Kind> kindsOf(const std::vector<JobEvent>& events) {
  std::vector<JobEvent::Kind> kinds;
  kinds.reserve(events.size());
  for (const JobEvent& event : events) kinds.push_back(event.kind);
  return kinds;
}

/// Direct (no scheduler) run of the same spec — the determinism reference.
TrialStats directRun(const JobSpec& spec) {
  em::SimulatorConfig simCfg;
  if (spec.layer == "microstrip") simCfg.layerType = em::LayerType::Microstrip;
  em::EmSimulator simulator(simCfg);
  auto oracle = std::make_shared<core::SimulatorSurrogate>(simulator);
  core::TrialRunner runner(simulator, oracle, makeSpace(spec), makeTask(spec));
  return runner.run(makeMethod(spec), spec.trials, spec.seed);
}

/// Bitwise comparison of two runs' results. `compareCounters` must be false
/// when `a` ran concurrently with other jobs sharing its session: the
/// samplesSeen/emCalls accounting reads shared per-session query counters,
/// so those are approximate under concurrency (see docs/serving.md). The
/// optimized designs themselves are always bitwise reproducible.
void expectBitwiseEqual(const TrialStats& a, const TrialStats& b,
                        bool compareCounters = true) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.successes, b.successes);
  for (std::size_t t = 0; t < a.outcomes.size(); ++t) {
    const core::TrialOutcome& x = a.outcomes[t];
    const core::TrialOutcome& y = b.outcomes[t];
    ASSERT_EQ(x.candidates.size(), y.candidates.size()) << "trial " << t;
    for (std::size_t c = 0; c < x.candidates.size(); ++c) {
      for (std::size_t i = 0; i < em::kNumParams; ++i) {
        EXPECT_EQ(x.candidates[c].params.values[i], y.candidates[c].params.values[i])
            << "trial " << t << " candidate " << c << " param " << i;
      }
      EXPECT_EQ(x.candidates[c].metrics.z, y.candidates[c].metrics.z);
      EXPECT_EQ(x.candidates[c].metrics.l, y.candidates[c].metrics.l);
      EXPECT_EQ(x.candidates[c].metrics.next, y.candidates[c].metrics.next);
      EXPECT_EQ(x.candidates[c].g, y.candidates[c].g);
      EXPECT_EQ(x.candidates[c].fom, y.candidates[c].fom);
      EXPECT_EQ(x.candidates[c].feasible, y.candidates[c].feasible);
    }
    EXPECT_EQ(x.success, y.success) << "trial " << t;
    if (compareCounters) {
      EXPECT_EQ(x.samplesSeen, y.samplesSeen) << "trial " << t;
      EXPECT_EQ(x.emCalls, y.emCalls) << "trial " << t;
    }
  }
}

// ---- JobQueue --------------------------------------------------------------

std::shared_ptr<Job> makeJob(std::string id, long long priority = 0) {
  JobSpec spec = quickSpec(std::move(id));
  spec.priority = priority;
  return std::make_shared<Job>(spec);
}

TEST(JobQueue, PopsByPriorityThenAdmissionOrder) {
  JobQueue queue(8);
  for (const auto& [id, prio] :
       std::vector<std::pair<std::string, long long>>{
           {"low1", 0}, {"high1", 5}, {"low2", 0}, {"high2", 5}}) {
    ASSERT_TRUE(queue.push(makeJob(id, prio), nullptr));
  }
  EXPECT_EQ(queue.pop()->spec.id, "high1");
  EXPECT_EQ(queue.pop()->spec.id, "high2");
  EXPECT_EQ(queue.pop()->spec.id, "low1");
  EXPECT_EQ(queue.pop()->spec.id, "low2");
}

TEST(JobQueue, RejectsBeyondCapacityWithReason) {
  JobQueue queue(2);
  std::string reason;
  EXPECT_TRUE(queue.push(makeJob("a"), &reason));
  EXPECT_TRUE(queue.push(makeJob("b"), &reason));
  EXPECT_FALSE(queue.push(makeJob("c"), &reason));
  EXPECT_EQ(reason, "queue full (capacity 2)");
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(JobQueue, RemoveTakesOutQueuedJob) {
  JobQueue queue(4);
  ASSERT_TRUE(queue.push(makeJob("a"), nullptr));
  ASSERT_TRUE(queue.push(makeJob("b"), nullptr));
  EXPECT_TRUE(queue.remove("a"));
  EXPECT_FALSE(queue.remove("a"));
  EXPECT_EQ(queue.pop()->spec.id, "b");
}

TEST(JobQueue, CloseReturnsRemainingInPopOrderAndRejectsPushes) {
  JobQueue queue(8);
  ASSERT_TRUE(queue.push(makeJob("low", 0), nullptr));
  ASSERT_TRUE(queue.push(makeJob("high", 9), nullptr));
  ASSERT_TRUE(queue.push(makeJob("mid", 4), nullptr));
  const auto remaining = queue.close();
  ASSERT_EQ(remaining.size(), 3u);
  EXPECT_EQ(remaining[0]->spec.id, "high");
  EXPECT_EQ(remaining[1]->spec.id, "mid");
  EXPECT_EQ(remaining[2]->spec.id, "low");
  std::string reason;
  EXPECT_FALSE(queue.push(makeJob("late"), &reason));
  EXPECT_EQ(reason, "server draining");
  EXPECT_EQ(queue.pop(), nullptr);
}

// ---- Spec validation -------------------------------------------------------

TEST(JobSpecValidation, RejectsBadFields) {
  std::string reason;
  JobSpec spec = quickSpec("");
  EXPECT_FALSE(validateSpec(spec, &reason));
  EXPECT_EQ(reason, "missing job id");

  spec = quickSpec("j");
  spec.task = "T9";
  EXPECT_FALSE(validateSpec(spec, &reason));

  spec = quickSpec("j");
  spec.surrogate = "gbm";
  EXPECT_FALSE(validateSpec(spec, &reason));
  EXPECT_NE(reason.find("surrogate"), std::string::npos);

  spec = quickSpec("j");
  spec.trials = 0;
  EXPECT_FALSE(validateSpec(spec, &reason));

  EXPECT_TRUE(validateSpec(quickSpec("j"), &reason));
}

// ---- SessionManager --------------------------------------------------------

TEST(SessionManager, ReusesContextPerKey) {
  SessionManager sessions;
  const SessionKey key{"oracle", "S1", "stripline"};
  const auto a = sessions.acquire(key);
  const auto b = sessions.acquire(key);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->engine.get(), b->engine.get());
  EXPECT_EQ(sessions.size(), 1u);
  const auto c = sessions.acquire(SessionKey{"oracle", "S2", "stripline"});
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionManager, ThrowsOnUnknownNames) {
  SessionManager sessions;
  EXPECT_THROW(sessions.acquire(SessionKey{"gbm", "S1", "stripline"}),
               std::invalid_argument);
  EXPECT_THROW(sessions.acquire(SessionKey{"oracle", "S9", "stripline"}),
               std::invalid_argument);
  EXPECT_THROW(sessions.acquire(SessionKey{"oracle", "S1", "coplanar"}),
               std::invalid_argument);
}

// ---- Scheduler -------------------------------------------------------------

TEST(Scheduler, JobResultBitwiseIdenticalToDirectRun) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 2, .queueCapacity = 8}, log.sink());
  const JobSpec spec = quickSpec("bitwise", 21);
  ASSERT_TRUE(scheduler.submit(spec));
  ASSERT_TRUE(log.waitFor("bitwise", JobEvent::Kind::Done));

  const auto events = log.eventsFor("bitwise");
  ASSERT_FALSE(events.empty());
  const JobEvent& done = events.back();
  ASSERT_EQ(done.kind, JobEvent::Kind::Done);
  ASSERT_NE(done.result, nullptr);
  expectBitwiseEqual(*done.result, directRun(spec));
}

TEST(Scheduler, ConcurrentJobsStreamOrderedEventsAndStayDeterministic) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 4, .queueCapacity = 8}, log.sink());

  // Four concurrent jobs on one shared session; two share a seed, two don't.
  std::vector<JobSpec> specs = {quickSpec("c1", 31), quickSpec("c2", 32),
                                quickSpec("c3", 33), quickSpec("c4", 31)};
  for (const JobSpec& spec : specs) ASSERT_TRUE(scheduler.submit(spec));
  for (const JobSpec& spec : specs) {
    ASSERT_TRUE(log.waitFor(spec.id, JobEvent::Kind::Done)) << spec.id;
  }

  for (const JobSpec& spec : specs) {
    const auto events = log.eventsFor(spec.id);
    const auto kinds = kindsOf(events);
    ASSERT_GE(kinds.size(), 4u) << spec.id;  // accepted, started, progress+, done
    EXPECT_EQ(kinds.front(), JobEvent::Kind::Accepted);
    EXPECT_EQ(kinds[1], JobEvent::Kind::Started);
    EXPECT_EQ(kinds.back(), JobEvent::Kind::Done);
    std::size_t progress = 0;
    for (std::size_t i = 2; i + 1 < kinds.size(); ++i) {
      EXPECT_EQ(kinds[i], JobEvent::Kind::Progress) << spec.id << " event " << i;
      ++progress;
    }
    EXPECT_GT(progress, 0u) << spec.id;
    // Progress payloads are real convergence records with a type tag.
    for (std::size_t i = 2; i + 1 < kinds.size(); ++i) {
      const json::Value* type = events[i].payload.find("type");
      ASSERT_NE(type, nullptr);
      EXPECT_FALSE(type->asString().empty());
    }
  }

  // Same spec + same seed -> identical result, concurrency notwithstanding;
  // and every job matches its direct reference run. Counter comparison is
  // off: these four jobs shared one session, so samplesSeen/emCalls read
  // interleaved shared counters (the designs themselves must still match).
  const auto resultOf = [&](const std::string& id) {
    const auto events = log.eventsFor(id);
    EXPECT_EQ(events.back().kind, JobEvent::Kind::Done);
    return events.back().result;
  };
  expectBitwiseEqual(*resultOf("c1"), *resultOf("c4"), /*compareCounters=*/false);
  expectBitwiseEqual(*resultOf("c1"), directRun(specs[0]), /*compareCounters=*/false);
  expectBitwiseEqual(*resultOf("c2"), directRun(specs[1]), /*compareCounters=*/false);
  expectBitwiseEqual(*resultOf("c3"), directRun(specs[2]), /*compareCounters=*/false);
}

TEST(Scheduler, SharedSessionWarmStartsMemoAcrossJobs) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 8}, log.sink());
  ASSERT_TRUE(scheduler.submit(quickSpec("warm1", 5)));
  ASSERT_TRUE(scheduler.submit(quickSpec("warm2", 5)));  // same seed, same work
  ASSERT_TRUE(log.waitFor("warm2", JobEvent::Kind::Done));

  const auto first = log.eventsFor("warm1").back().result;
  const auto second = log.eventsFor("warm2").back().result;
  expectBitwiseEqual(*first, *second);
  // The second job replays the first job's evaluations from the shared memo.
  ASSERT_EQ(second->outcomes.size(), 1u);
  EXPECT_GT(second->outcomes[0].evalStats.memoHits,
            first->outcomes[0].evalStats.memoHits);
}

TEST(Scheduler, CancelStopsRunningJobWithinOneIteration) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 4}, log.sink());
  ASSERT_TRUE(scheduler.submit(longSpec("victim")));
  // Wait until the job is demonstrably inside an optimizer stage.
  ASSERT_TRUE(log.waitFor("victim", JobEvent::Kind::Progress));
  ASSERT_TRUE(scheduler.cancel("victim"));
  // An uncancelled longSpec() run takes minutes; a cooperative stop at the
  // next iteration boundary lands well inside the wait budget.
  ASSERT_TRUE(log.waitFor("victim", JobEvent::Kind::Cancelled,
                          std::chrono::seconds(120)));
  const auto kinds = kindsOf(log.eventsFor("victim"));
  EXPECT_EQ(kinds.back(), JobEvent::Kind::Cancelled);
  EXPECT_EQ(scheduler.status().cancelled, 1u);

  // The worker survives and serves the next job.
  ASSERT_TRUE(scheduler.submit(quickSpec("after", 3)));
  EXPECT_TRUE(log.waitFor("after", JobEvent::Kind::Done));
}

TEST(Scheduler, CancelQueuedJobEmitsCancelledWithoutRunning) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 4}, log.sink());
  ASSERT_TRUE(scheduler.submit(longSpec("runner")));
  ASSERT_TRUE(log.waitFor("runner", JobEvent::Kind::Started));
  ASSERT_TRUE(scheduler.submit(quickSpec("queued")));
  ASSERT_TRUE(scheduler.cancel("queued"));
  ASSERT_TRUE(log.waitFor("queued", JobEvent::Kind::Cancelled));
  const auto kinds = kindsOf(log.eventsFor("queued"));
  EXPECT_EQ(kinds, (std::vector<JobEvent::Kind>{JobEvent::Kind::Accepted,
                                                JobEvent::Kind::Cancelled}));
  EXPECT_FALSE(scheduler.cancel("queued"));  // no longer live
  ASSERT_TRUE(scheduler.cancel("runner"));
  ASSERT_TRUE(log.waitFor("runner", JobEvent::Kind::Cancelled,
                          std::chrono::seconds(120)));
}

TEST(Scheduler, DeadlineExpiryCancelsWithDeadlineReason) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 4}, log.sink());
  JobSpec spec = longSpec("deadline");
  spec.timeoutMs = 1;
  ASSERT_TRUE(scheduler.submit(spec));
  ASSERT_TRUE(log.waitFor("deadline", JobEvent::Kind::Cancelled,
                          std::chrono::seconds(120)));
  const auto events = log.eventsFor("deadline");
  EXPECT_NE(events.back().reason.find("deadline"), std::string::npos)
      << events.back().reason;
}

TEST(Scheduler, PerJobSinkReceivesTheFullLifecycle) {
  // Regression test: submit() moves the per-job sink into the live-job table
  // before emitting `accepted`; the emit must use a copy, not a dangling
  // reference to the moved-from sink (the server submits this way — every
  // socket client has its own sink).
  SessionManager sessions;
  EventLog defaultLog;
  EventLog jobLog;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 4},
                      defaultLog.sink());
  ASSERT_TRUE(scheduler.submit(quickSpec("own-sink", 11), jobLog.sink()));
  ASSERT_TRUE(jobLog.waitFor("own-sink", JobEvent::Kind::Done));

  const auto kinds = kindsOf(jobLog.eventsFor("own-sink"));
  ASSERT_GE(kinds.size(), 3u);
  EXPECT_EQ(kinds.front(), JobEvent::Kind::Accepted);
  EXPECT_EQ(kinds[1], JobEvent::Kind::Started);
  EXPECT_EQ(kinds.back(), JobEvent::Kind::Done);
  // Nothing about this job leaked to the default sink.
  EXPECT_TRUE(defaultLog.eventsFor("own-sink").empty());
}

TEST(Scheduler, RejectsDuplicateIdsAndFullQueue) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 1}, log.sink());
  ASSERT_TRUE(scheduler.submit(longSpec("running")));
  ASSERT_TRUE(log.waitFor("running", JobEvent::Kind::Started));

  EXPECT_FALSE(scheduler.submit(longSpec("running")));  // duplicate live id
  ASSERT_TRUE(scheduler.submit(quickSpec("queued")));   // fills the queue
  EXPECT_FALSE(scheduler.submit(quickSpec("overflow")));

  const auto dupEvents = log.eventsFor("running");
  bool sawDuplicateReject = false;
  for (const JobEvent& event : dupEvents) {
    if (event.kind == JobEvent::Kind::Rejected) {
      sawDuplicateReject = true;
      EXPECT_NE(event.reason.find("duplicate"), std::string::npos);
    }
  }
  EXPECT_TRUE(sawDuplicateReject);
  const auto overflow = log.eventsFor("overflow");
  ASSERT_EQ(overflow.size(), 1u);
  EXPECT_EQ(overflow[0].kind, JobEvent::Kind::Rejected);
  EXPECT_EQ(overflow[0].reason, "queue full (capacity 1)");

  ASSERT_TRUE(scheduler.cancel("running"));
  ASSERT_TRUE(log.waitFor("queued", JobEvent::Kind::Done));
}

TEST(Scheduler, DrainFinishesRunningAndRejectsQueuedDeterministically) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 8}, log.sink());
  ASSERT_TRUE(scheduler.submit(quickSpec("running", 11)));
  ASSERT_TRUE(log.waitFor("running", JobEvent::Kind::Started));

  JobSpec q1 = quickSpec("q-low");
  q1.priority = 1;
  JobSpec q2 = quickSpec("q-high");
  q2.priority = 9;
  JobSpec q3 = quickSpec("q-mid");
  q3.priority = 4;
  ASSERT_TRUE(scheduler.submit(q1));
  ASSERT_TRUE(scheduler.submit(q2));
  ASSERT_TRUE(scheduler.submit(q3));

  scheduler.drain();

  // The running job ran to completion...
  EXPECT_EQ(kindsOf(log.eventsFor("running")).back(), JobEvent::Kind::Done);
  // ...queued jobs were rejected in pop order (priority desc, then FIFO)...
  std::vector<std::string> rejectedOrder;
  for (const JobEvent& event : log.all()) {
    if (event.kind == JobEvent::Kind::Rejected) {
      EXPECT_EQ(event.reason, "server draining");
      rejectedOrder.push_back(event.jobId);
    }
  }
  EXPECT_EQ(rejectedOrder,
            (std::vector<std::string>{"q-high", "q-mid", "q-low"}));
  // ...and post-drain submissions bounce.
  EXPECT_FALSE(scheduler.submit(quickSpec("late")));
  EXPECT_EQ(log.eventsFor("late").back().reason, "server draining");

  const Scheduler::Status status = scheduler.status();
  EXPECT_EQ(status.completed, 1u);
  EXPECT_EQ(status.rejected, 4u);
  EXPECT_TRUE(status.draining);
}

TEST(Scheduler, JobsSnapshotTracksQueuedAndRunningState) {
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 8}, log.sink());
  ASSERT_TRUE(scheduler.submit(longSpec("snap-running")));
  ASSERT_TRUE(log.waitFor("snap-running", JobEvent::Kind::Started));
  JobSpec queued = quickSpec("snap-queued");
  queued.priority = 3;
  ASSERT_TRUE(scheduler.submit(queued));

  const auto jobs = scheduler.jobs();
  ASSERT_EQ(jobs.size(), 2u);  // id-ordered: snap-queued, snap-running
  const Scheduler::JobSnapshot& q = jobs[0];
  EXPECT_EQ(q.id, "snap-queued");
  EXPECT_EQ(q.state, JobState::Queued);
  EXPECT_EQ(q.priority, 3);
  EXPECT_GE(q.queueWaitSeconds, 0.0);
  // No deadline on the spec -> remaining time is unbounded.
  EXPECT_TRUE(std::isinf(q.deadlineRemainingSeconds));
  const Scheduler::JobSnapshot& r = jobs[1];
  EXPECT_EQ(r.id, "snap-running");
  EXPECT_EQ(r.state, JobState::Running);
  EXPECT_GE(r.runSeconds, 0.0);
  EXPECT_GE(r.ageSeconds, r.runSeconds);

  EXPECT_TRUE(scheduler.cancel("snap-running"));
  ASSERT_TRUE(log.waitFor("snap-queued", JobEvent::Kind::Done));
  // Terminal jobs leave the live table.
  EXPECT_TRUE(scheduler.jobs().empty());
}

TEST(Scheduler, InflightGaugesFollowCasTransitions) {
  const bool prevEnabled = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  const auto gauge = [](const char* state) {
    return obs::registry()
        .gauge(obs::Registry::labeled("serve.jobs.inflight", "state", state))
        .value();
  };
  {
    SessionManager sessions;
    EventLog log;
    Scheduler scheduler(sessions, {.workers = 1, .queueCapacity = 8}, log.sink());
    ASSERT_TRUE(scheduler.submit(longSpec("gauge-running")));
    ASSERT_TRUE(log.waitFor("gauge-running", JobEvent::Kind::Started));
    ASSERT_TRUE(scheduler.submit(quickSpec("gauge-q1")));
    ASSERT_TRUE(scheduler.submit(quickSpec("gauge-q2")));

    EXPECT_DOUBLE_EQ(gauge("queued"), 2.0);
    EXPECT_DOUBLE_EQ(gauge("running"), 1.0);
    EXPECT_DOUBLE_EQ(gauge("draining"), 0.0);
    EXPECT_DOUBLE_EQ(obs::registry().gauge("serve.queue.depth").value(), 2.0);

    // Queued -> Cancelled via the cancel CAS drops the queued gauge.
    EXPECT_TRUE(scheduler.cancel("gauge-q2"));
    EXPECT_DOUBLE_EQ(gauge("queued"), 1.0);

    EXPECT_TRUE(scheduler.cancel("gauge-running"));
    ASSERT_TRUE(log.waitFor("gauge-q1", JobEvent::Kind::Done));
    EXPECT_DOUBLE_EQ(gauge("queued"), 0.0);
    EXPECT_DOUBLE_EQ(gauge("running"), 0.0);
  }
  obs::setMetricsEnabled(prevEnabled);
}

TEST(Scheduler, PerJobTraceContainsOnlyThatJobsSpans) {
  // Four concurrent jobs, each with a trace_out: every exported file must
  // hold exactly its own job's spans — scheduler (serve.job.run), optimizer
  // stages, and eval-engine batches — even though all four record into the
  // shared tracer at once.
  obs::tracer().setEnabled(false);
  obs::tracer().clear();
  SessionManager sessions;
  EventLog log;
  Scheduler scheduler(sessions, {.workers = 4, .queueCapacity = 8}, log.sink());
  std::vector<std::string> ids = {"tr1", "tr2", "tr3", "tr4"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    JobSpec spec = quickSpec(ids[i], 40 + static_cast<std::uint64_t>(i));
    spec.traceOut = "test_trace_" + ids[i] + ".json";
    ASSERT_TRUE(scheduler.submit(spec));
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(log.waitFor(id, JobEvent::Kind::Done)) << id;
  }

  for (const std::string& id : ids) {
    const std::string path = "test_trace_" + id + ".json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream text;
    text << in.rdbuf();
    const auto parsed = json::Value::parse(text.str());
    ASSERT_TRUE(parsed.has_value()) << path;
    const json::Value& events = parsed->at("traceEvents");
    ASSERT_GT(events.size(), 0u) << path;
    std::set<std::string> names;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const json::Value& event = events.at(i);
      // Isolation: every span in the file is tagged with this job's id.
      ASSERT_EQ(event.at("args").at("job").asString(), id) << path;
      names.insert(event.at("name").asString());
    }
    // The tag propagated through every layer of a job's run.
    EXPECT_TRUE(names.count("serve.job.run")) << path;
    EXPECT_TRUE(names.count("isop.run")) << path;
    EXPECT_TRUE(names.count("eval.predict_batch")) << path;
    std::remove(path.c_str());
  }
  obs::tracer().setEnabled(false);
  obs::tracer().clear();
}

TEST(TrialRunner, PreCancelledTokenThrowsBeforeAnyTrial) {
  em::EmSimulator simulator;
  auto oracle = std::make_shared<core::SimulatorSurrogate>(simulator);
  const JobSpec spec = quickSpec("direct");
  core::TrialRunner runner(simulator, oracle, makeSpace(spec), makeTask(spec));
  CancelToken token = CancelToken::create();
  token.cancel();
  runner.setCancelToken(token);
  EXPECT_THROW(runner.run(makeMethod(spec), 1, spec.seed), OperationCancelled);
}

}  // namespace
}  // namespace isop::serve
