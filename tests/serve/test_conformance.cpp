// Protocol conformance over every transport: the same request matrix —
// well-formed requests of every type, a malformed-field table, oversize
// lines, truncated frames, and the TCP authentication handshake — is driven
// through stdio, the unix socket, and TCP against an in-process Server, and
// each transport must answer with the documented events (docs/serving.md).
// The per-transport differences are themselves part of the contract: socket
// clients are disconnected on oversize lines and failed authentication,
// stdio is answered-and-kept (dropping stdin would drain the server), and a
// frame truncated by EOF is silently ignored everywhere.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "server_harness.hpp"

namespace isop::serve {
namespace {

namespace fs = std::filesystem;

JobSpec quickSpec(std::string id) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.budget = 120;
  spec.iterations = 2;
  spec.hyperbandResource = 9;
  spec.refineEpochs = 20;
  spec.localSeeds = 3;
  spec.candidates = 2;
  spec.seed = 7;
  return spec;
}

class ConformanceTest : public ::testing::Test {
 protected:
  // Keyed by test name: ctest runs each discovered test as its own process,
  // so a shared directory (or unix-socket path) would be clobbered by
  // parallel siblings.
  void SetUp() override {
    dir_ = ::testing::TempDir() + "isop_conformance_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// stdio + unix socket + TCP on a kernel-picked port.
  ServerConfig allTransports() const {
    ServerConfig config;
    config.scheduler.workers = 2;
    config.scheduler.queueCapacity = 8;
    config.socketPath = socketPath();
    config.listenAddress = "127.0.0.1:0";
    return config;
  }

  std::string socketPath() const { return dir_ + "/serve.sock"; }

  std::string dir_;
};

/// One client-side view of a transport: send a line, read a response line.
struct Transport {
  std::string name;
  std::function<void(const std::string&)> send;
  std::function<std::optional<std::string>()> recv;
};

/// The three transports against one harness. Socket clients are owned by the
/// returned closures.
std::vector<Transport> openTransports(ServerHarness& harness,
                                      const std::string& socketPath) {
  std::vector<Transport> transports;
  transports.push_back({"stdio",
                        [&harness](const std::string& line) { harness.sendStdio(line); },
                        [&harness] { return harness.readStdio(); }});
  auto unixClient = std::make_shared<SocketClient>(SocketClient::connectUnix(socketPath));
  transports.push_back(
      {"unix", [unixClient](const std::string& line) { unixClient->sendLine(line); },
       [unixClient] { return unixClient->readLine(); }});
  auto tcpClient = std::make_shared<SocketClient>(
      SocketClient::connectTcp(harness.server().boundTcpPort()));
  transports.push_back(
      {"tcp", [tcpClient](const std::string& line) { tcpClient->sendLine(line); },
       [tcpClient] { return tcpClient->readLine(); }});
  return transports;
}

TEST_F(ConformanceTest, ReadyEventAnnouncesProtocolListenersAndStateDir) {
  ServerConfig config = allTransports();
  config.stateDir = dir_ + "/state";
  ServerHarness harness(std::move(config));
  const json::Value ready = parseEventLine(harness.readyLine(), "ready");
  EXPECT_EQ(eventOf(ready), "ready");
  EXPECT_EQ(ready.at("protocol").asInteger(), kProtocolVersion);
  ASSERT_NE(ready.find("listen"), nullptr) << "TCP endpoint must be announced";
  const std::uint16_t port = harness.server().boundTcpPort();
  EXPECT_GT(port, 0) << "port 0 must resolve to a kernel-assigned port";
  EXPECT_EQ(ready.at("listen").asString(),
            "127.0.0.1:" + std::to_string(port));
  ASSERT_NE(ready.find("state_dir"), nullptr);
  EXPECT_EQ(ready.at("state_dir").asString(), dir_ + "/state");

  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(eventOf(parseEventLine(tail.back(), "shutdown")), "shutdown");
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(ConformanceTest, EveryRequestTypeAnswersOnEveryTransport) {
  ServerHarness harness(allTransports());
  for (Transport& t : openTransports(harness, socketPath())) {
    SCOPED_TRACE(t.name);

    // hello is accepted (and answered) on every transport, even without auth.
    t.send("{\"type\":\"hello\"}");
    json::Value hello = parseEventLine(t.recv(), "hello");
    EXPECT_EQ(eventOf(hello), "hello");
    EXPECT_EQ(hello.at("protocol").asInteger(), kProtocolVersion);
    EXPECT_TRUE(hello.at("authenticated").asBool());

    t.send("{\"type\":\"status\"}");
    const json::Value status = parseEventLine(t.recv(), "status");
    EXPECT_EQ(eventOf(status), "status");
    ASSERT_NE(status.find("queue_depth"), nullptr);

    t.send("{\"type\":\"stats\"}");
    const json::Value stats = parseEventLine(t.recv(), "stats");
    EXPECT_EQ(eventOf(stats), "stats");
    const json::Value* lifecycle = stats.find("session_lifecycle");
    ASSERT_NE(lifecycle, nullptr) << "v3 stats must expose the session lifecycle";
    for (const char* key :
         {"created", "evicted", "persisted", "loaded", "load_failures"}) {
      EXPECT_NE(lifecycle->find(key), nullptr) << key;
    }

    t.send("{\"type\":\"trace\",\"action\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(t.recv(), "trace")), "trace");

    t.send("{\"type\":\"cancel\",\"id\":\"no-such-job\"}");
    const json::Value cancel = parseEventLine(t.recv(), "cancel");
    EXPECT_EQ(eventOf(cancel), "error");

    // A full job lifecycle: accepted -> started -> progress* -> done, with
    // the v3 eval block in the result.
    const std::string jobId = "conformance-" + t.name;
    t.send(submitToJson(quickSpec(jobId)).dump());
    bool sawAccepted = false, sawStarted = false;
    json::Value done = json::Value::null();
    for (int i = 0; i < 10000 && done.isNull(); ++i) {
      const json::Value event = parseEventLine(t.recv(), "job event");
      ASSERT_FALSE(event.isNull());
      ASSERT_EQ(event.at("id").asString(), jobId);
      const std::string kind = eventOf(event);
      if (kind == "accepted") sawAccepted = true;
      else if (kind == "started") sawStarted = true;
      else if (kind == "done") done = event;
      else ASSERT_EQ(kind, "progress");
    }
    EXPECT_TRUE(sawAccepted);
    EXPECT_TRUE(sawStarted);
    ASSERT_FALSE(done.isNull()) << "job never reached done";
    const json::Value* eval = done.at("result").find("eval");
    ASSERT_NE(eval, nullptr) << "done result must carry the eval block";
    EXPECT_GT(eval->at("rows").asInteger(), 0);
    ASSERT_NE(eval->find("memo_hits"), nullptr);
    ASSERT_NE(eval->find("em_calls"), nullptr);

    // The v4 `inverse` fast path: accepted -> started -> done with a ranked
    // designs payload. The first transport's job trains the session's
    // inverse net; the later ones reuse it.
    const std::string invId = "inverse-" + t.name;
    t.send("{\"type\":\"inverse\",\"id\":\"" + invId +
           "\",\"surrogate\":\"oracle\",\"candidates\":2,\"seed\":5}");
    json::Value invDone = json::Value::null();
    for (int i = 0; i < 10000 && invDone.isNull(); ++i) {
      const json::Value event = parseEventLine(t.recv(), "inverse event");
      ASSERT_FALSE(event.isNull());
      ASSERT_EQ(event.at("id").asString(), invId);
      const std::string kind = eventOf(event);
      if (kind == "done") invDone = event;
      else ASSERT_TRUE(kind == "accepted" || kind == "started") << kind;
    }
    ASSERT_FALSE(invDone.isNull()) << "inverse job never reached done";
    const json::Value& invResult = invDone.at("result");
    EXPECT_EQ(invResult.at("mode").asString(), "inverse");
    ASSERT_NE(invResult.find("ranked"), nullptr);
    ASSERT_TRUE(invResult.at("ranked").isArray());
    ASSERT_GT(invResult.at("ranked").size(), 0u);
    const json::Value& top = invResult.at("ranked").at(0u);
    ASSERT_NE(top.find("params"), nullptr);
    ASSERT_NE(top.find("metrics"), nullptr);
    ASSERT_NE(top.find("g"), nullptr);
    ASSERT_NE(top.find("feasible"), nullptr);
  }

  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(eventOf(parseEventLine(tail.back(), "shutdown")), "shutdown");
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(ConformanceTest, MalformedRequestsAreRejectedOnEveryTransport) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"not JSON", "this is not json"},
      {"JSON but not an object", "[1,2,3]"},
      {"missing type", "{}"},
      {"unknown type", "{\"type\":\"frobnicate\"}"},
      {"mistyped type", "{\"type\":17}"},
      {"submit with mistyped id", "{\"type\":\"submit\",\"id\":42}"},
      {"submit with unknown key", "{\"type\":\"submit\",\"id\":\"x\",\"bogus\":1}"},
      {"submit with mistyped knob",
       "{\"type\":\"submit\",\"id\":\"x\",\"budget\":\"lots\"}"},
      {"submit with mistyped flag",
       "{\"type\":\"submit\",\"id\":\"x\",\"table_ix_constraints\":\"yes\"}"},
      {"inverse with mistyped id", "{\"type\":\"inverse\",\"id\":42}"},
      {"inverse with unknown key",
       "{\"type\":\"inverse\",\"id\":\"x\",\"bogus\":1}"},
      {"inverse with mistyped knob",
       "{\"type\":\"inverse\",\"id\":\"x\",\"candidates\":\"many\"}"},
      {"inverse with submit-only key",
       "{\"type\":\"inverse\",\"id\":\"x\",\"budget\":100}"},
      {"cancel without id", "{\"type\":\"cancel\"}"},
      {"hello with mistyped token", "{\"type\":\"hello\",\"token\":5}"},
      {"trace with unknown action", "{\"type\":\"trace\",\"action\":\"explode\"}"},
      {"status with stray key", "{\"type\":\"status\",\"extra\":true}"},
  };
  ServerHarness harness(allTransports());
  for (Transport& t : openTransports(harness, socketPath())) {
    SCOPED_TRACE(t.name);
    for (const auto& [what, line] : cases) {
      SCOPED_TRACE(what);
      t.send(line);
      const json::Value reply = parseEventLine(t.recv(), what);
      EXPECT_EQ(eventOf(reply), "error");
      const json::Value* error = reply.find("error");
      ASSERT_NE(error, nullptr);
      EXPECT_FALSE(error->asString().empty()) << "rejections must carry a reason";
    }
    // Shape-valid but semantically invalid specs parse and are then turned
    // away at admission with a `rejected` event, not an `error`.
    for (const char* bad :
         {"{\"type\":\"submit\"}",  // id missing: defaults to "", fails validation
          "{\"type\":\"submit\",\"id\":\"x\",\"surrogate\":\"crystal-ball\"}",
          "{\"type\":\"inverse\"}",
          "{\"type\":\"inverse\",\"id\":\"x\",\"surrogate\":\"crystal-ball\"}"}) {
      SCOPED_TRACE(bad);
      t.send(bad);
      const json::Value rejected = parseEventLine(t.recv(), "semantic reject");
      EXPECT_EQ(eventOf(rejected), "rejected");
      ASSERT_NE(rejected.find("reason"), nullptr);
    }

    // A malformed burst must not wedge the connection.
    t.send("{\"type\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(t.recv(), "status after errors")), "status");
  }
}

TEST_F(ConformanceTest, UnknownTypeErrorTextIsStableForOlderClients) {
  // The v4 `inverse` request is additive: a v<=3 server would answer it — and
  // a v<=3 client's probe for any type this server doesn't know is answered —
  // with the same documented error shape, on every transport.
  ServerHarness harness(allTransports());
  for (Transport& t : openTransports(harness, socketPath())) {
    SCOPED_TRACE(t.name);
    t.send("{\"type\":\"frobnicate\"}");
    const json::Value reply = parseEventLine(t.recv(), "unknown type");
    EXPECT_EQ(eventOf(reply), "error");
    EXPECT_EQ(reply.at("error").asString(), "unknown request type 'frobnicate'");
  }
}

TEST_F(ConformanceTest, OversizeLineDisconnectsSocketClientsOnly) {
  ServerHarness harness(allTransports());
  const std::string oversize(2u << 20, 'x');  // 2 MiB, no newline needed

  for (const char* which : {"unix", "tcp"}) {
    SCOPED_TRACE(which);
    SocketClient client =
        std::string(which) == "unix"
            ? SocketClient::connectUnix(socketPath())
            : SocketClient::connectTcp(harness.server().boundTcpPort());
    ASSERT_TRUE(client.connected());
    client.sendRaw(oversize);
    const json::Value reply = parseEventLine(client.readLine(), "oversize");
    EXPECT_EQ(eventOf(reply), "error");
    EXPECT_NE(reply.at("error").asString().find("1 MiB"), std::string::npos);
    EXPECT_TRUE(client.waitEof()) << "oversize socket client must be disconnected";
  }

  // The same flood on stdio is answered and discarded; the server stays up.
  harness.sendStdioRaw(oversize + "tail-of-oversize-line\n");
  const json::Value reply = parseEventLine(harness.readStdio(), "stdio oversize");
  EXPECT_EQ(eventOf(reply), "error");
  harness.sendStdio("{\"type\":\"status\"}");
  EXPECT_EQ(eventOf(parseEventLine(harness.readStdio(), "status after oversize")),
            "status");
}

TEST_F(ConformanceTest, StdioOversizeDiscardIsBoundedAcrossChunks) {
  // An endless stdio line must be dropped as it streams in, not buffered: a
  // client that never sends the newline would otherwise grow the buffer
  // without bound after the one error answer. The error is emitted exactly
  // once per oversize line, and the first request after the newline works.
  ServerConfig config;
  config.scheduler.workers = 1;
  ServerHarness harness(std::move(config));

  const std::string flood(1u << 20, 'y');
  harness.sendStdioRaw(flood + flood);  // 2 MiB, no newline: answered once
  EXPECT_EQ(eventOf(parseEventLine(harness.readStdio(), "oversize error")),
            "error");
  // Keep flooding the same line across several writes; a duplicate error
  // here would surface as the wrong event in the status read below.
  harness.sendStdioRaw(flood);
  harness.sendStdioRaw(flood);
  harness.sendStdioRaw(flood + "\n");  // the endless line finally terminates
  harness.sendStdio("{\"type\":\"status\"}");
  EXPECT_EQ(eventOf(parseEventLine(harness.readStdio(), "status after flood")),
            "status");
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(ConformanceTest, TruncatedFrameAtEofIsIgnoredOnSockets) {
  ServerHarness harness(allTransports());
  for (const char* which : {"unix", "tcp"}) {
    SCOPED_TRACE(which);
    SocketClient client =
        std::string(which) == "unix"
            ? SocketClient::connectUnix(socketPath())
            : SocketClient::connectTcp(harness.server().boundTcpPort());
    ASSERT_TRUE(client.connected());
    client.sendLine("{\"type\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(client.readLine(), "status")), "status");
    client.sendRaw("{\"type\":\"stat");  // half a frame, then gone
    client.close();
  }
  // The half-frames must not have crashed or wedged anything.
  SocketClient probe = SocketClient::connectUnix(socketPath());
  probe.sendLine("{\"type\":\"status\"}");
  EXPECT_EQ(eventOf(parseEventLine(probe.readLine(), "post-truncation status")),
            "status");
}

TEST_F(ConformanceTest, TruncatedFrameAtStdinEofIsIgnored) {
  ServerHarness harness(allTransports());
  harness.sendStdio("{\"type\":\"status\"}");
  EXPECT_EQ(eventOf(parseEventLine(harness.readStdio(), "status")), "status");
  harness.sendStdioRaw("{\"type\":\"stat");  // truncated by the EOF below
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  for (const std::string& line : tail) {
    EXPECT_EQ(eventOf(parseEventLine(line, "drain event")), "shutdown")
        << "a truncated final frame must produce no error: " << line;
  }
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(ConformanceTest, TcpAuthenticationHandshake) {
  ServerConfig config = allTransports();
  config.authToken = "sekrit";
  ServerHarness harness(std::move(config));
  const std::uint16_t port = harness.server().boundTcpPort();

  {
    SCOPED_TRACE("wrong token");
    SocketClient client = SocketClient::connectTcp(port);
    client.sendLine("{\"type\":\"hello\",\"token\":\"wrong\"}");
    const json::Value reply = parseEventLine(client.readLine(), "bad token");
    EXPECT_EQ(eventOf(reply), "error");
    EXPECT_NE(reply.at("error").asString().find("invalid token"),
              std::string::npos);
    EXPECT_TRUE(client.waitEof()) << "failed auth must close the connection";
  }
  {
    SCOPED_TRACE("request before hello");
    SocketClient client = SocketClient::connectTcp(port);
    client.sendLine("{\"type\":\"status\"}");
    const json::Value reply = parseEventLine(client.readLine(), "no hello");
    EXPECT_EQ(eventOf(reply), "error");
    EXPECT_NE(reply.at("error").asString().find("authentication required"),
              std::string::npos);
    EXPECT_TRUE(client.waitEof());
  }
  {
    SCOPED_TRACE("correct token");
    SocketClient client = SocketClient::connectTcp(port);
    client.sendLine("{\"type\":\"hello\",\"token\":\"sekrit\"}");
    const json::Value hello = parseEventLine(client.readLine(), "good token");
    EXPECT_EQ(eventOf(hello), "hello");
    EXPECT_TRUE(hello.at("authenticated").asBool());
    client.sendLine("{\"type\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(client.readLine(), "post-auth status")),
              "status");
  }
  {
    SCOPED_TRACE("unix socket is implicitly trusted");
    SocketClient client = SocketClient::connectUnix(socketPath());
    client.sendLine("{\"type\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(client.readLine(), "unix status")), "status");
  }
  {
    SCOPED_TRACE("stdio is implicitly trusted");
    harness.sendStdio("{\"type\":\"status\"}");
    EXPECT_EQ(eventOf(parseEventLine(harness.readStdio(), "stdio status")),
              "status");
  }
}

TEST_F(ConformanceTest, ShutdownRequestFromASocketDrainsTheServer) {
  ServerHarness harness(allTransports());
  SocketClient client = SocketClient::connectUnix(socketPath());
  client.sendLine("{\"type\":\"shutdown\"}");
  EXPECT_TRUE(client.waitEof()) << "drain must close socket clients";
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(eventOf(parseEventLine(tail.back(), "shutdown")), "shutdown");
  EXPECT_EQ(harness.exitCode(), 0);
}

}  // namespace
}  // namespace isop::serve
