// In-process serve::Server harness for the conformance and fault suites.
//
// The server runs on its own thread with pipe-backed stdio, exactly as a
// child process would see it; the optional unix-socket and TCP listeners are
// real sockets, so a test client exercises the same read/write/accept paths
// as production. Helpers cover the three client roles: the stdio "operator"
// channel (send a line, read a line), raw socket clients (which can also
// half-send frames, stop reading, or vanish), and JSONL decoding with
// gtest-friendly failures.
#pragma once

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "serve/server.hpp"

namespace isop::serve {

/// Buffered line reads from an fd. Blocking, with a generous poll deadline so
/// a wedged server fails the test instead of hanging the whole ctest run.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next complete line (without the newline); std::nullopt on EOF or after
  /// `timeout` milliseconds of silence.
  std::optional<std::string> readLine(int timeoutMs = 120000) {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeoutMs);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return std::nullopt;  // timeout
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;  // EOF
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads and discards until EOF; false if data keeps flowing past the
  /// deadline.
  bool waitEof(int timeoutMs = 120000) {
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeoutMs);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) return false;
      if (n == 0) return true;
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// A client on the unix-socket or TCP transport.
class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient() { close(); }
  SocketClient(SocketClient&& other) noexcept { *this = std::move(other); }
  SocketClient& operator=(SocketClient&& other) noexcept {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
    return *this;
  }

  static SocketClient connectUnix(const std::string& path) {
    SocketClient client;
    client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ADD_FAILURE() << "connect('" << path << "') failed: " << std::strerror(errno);
      client.close();
      return client;
    }
    client.reader_ = std::make_unique<LineReader>(client.fd_);
    return client;
  }

  /// `rcvbufBytes` > 0 shrinks the receive buffer before connecting — the
  /// slow-reader fault test uses it to make the server's sends back up fast.
  static SocketClient connectTcp(std::uint16_t port, int rcvbufBytes = 0) {
    SocketClient client;
    client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbufBytes > 0) {
      ::setsockopt(client.fd_, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes,
                   sizeof rcvbufBytes);
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ADD_FAILURE() << "connect(127.0.0.1:" << port
                    << ") failed: " << std::strerror(errno);
      client.close();
      return client;
    }
    client.reader_ = std::make_unique<LineReader>(client.fd_);
    return client;
  }

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void sendRaw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // server closed on us; tests assert via reads
      off += static_cast<std::size_t>(n);
    }
  }

  void sendLine(const std::string& line) { sendRaw(line + "\n"); }

  /// Half-close: no more requests from this client, but the read side stays
  /// open — the server must keep delivering this client's job events.
  void shutdownWrite() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  std::optional<std::string> readLine(int timeoutMs = 120000) {
    return reader_ ? reader_->readLine(timeoutMs) : std::nullopt;
  }

  bool waitEof(int timeoutMs = 120000) {
    return reader_ ? reader_->waitEof(timeoutMs) : true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    reader_.reset();
  }

 private:
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

/// Runs a Server on pipes + its configured listeners; tears down via stdin
/// EOF on destruction. The ready event is consumed in the constructor.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config) {
    std::signal(SIGPIPE, SIG_IGN);  // vanished-peer writes must not kill tests
    if (::pipe(toServer_) != 0 || ::pipe(fromServer_) != 0) {
      ADD_FAILURE() << "pipe() failed: " << std::strerror(errno);
      return;
    }
    serverIn_ = ::fdopen(toServer_[0], "r");
    serverOut_ = ::fdopen(fromServer_[1], "w");
    server_ = std::make_unique<Server>(std::move(config), serverIn_, serverOut_);
    thread_ = std::thread([this] { exitCode_ = server_->run(); });
    stdioReader_ = std::make_unique<LineReader>(fromServer_[0]);
    ready_ = stdioReader_->readLine();
  }

  ~ServerHarness() { shutdown(); }

  /// The ready event line ("" when startup failed).
  const std::string& readyLine() const {
    static const std::string kEmpty;
    return ready_ ? *ready_ : kEmpty;
  }

  Server& server() { return *server_; }

  void sendStdio(const std::string& line) {
    const std::string framed = line + "\n";
    sendStdioRaw(framed);
  }

  void sendStdioRaw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::write(toServer_[1], bytes.data() + off, bytes.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::string> readStdio(int timeoutMs = 120000) {
    return stdioReader_->readLine(timeoutMs);
  }

  void closeStdin() {
    if (toServer_[1] >= 0) ::close(toServer_[1]);
    toServer_[1] = -1;
  }

  /// Drains the server (stdin EOF), joins run(), and collects the remaining
  /// stdout lines — the drain-time events ending in `shutdown`.
  const std::vector<std::string>& shutdown() {
    if (thread_.joinable()) {
      closeStdin();
      thread_.join();
      std::fclose(serverOut_);  // flushes + closes the write end: reader sees EOF
      serverOut_ = nullptr;
      while (auto line = stdioReader_->readLine(5000)) tail_.push_back(*line);
      std::fclose(serverIn_);
      serverIn_ = nullptr;
      ::close(fromServer_[0]);
      fromServer_[0] = -1;
    }
    return tail_;
  }

  int exitCode() const { return exitCode_; }

 private:
  int toServer_[2] = {-1, -1};    // [1]: test writes requests, [0]: server stdin
  int fromServer_[2] = {-1, -1};  // [1]: server stdout, [0]: test reads events
  std::FILE* serverIn_ = nullptr;
  std::FILE* serverOut_ = nullptr;
  std::unique_ptr<Server> server_;
  std::unique_ptr<LineReader> stdioReader_;
  std::optional<std::string> ready_;
  std::vector<std::string> tail_;
  std::thread thread_;
  int exitCode_ = -1;
};

/// Parses one JSONL response; ADD_FAILUREs (and returns null) on EOF,
/// timeout, or malformed JSON — every server line must parse.
inline json::Value parseEventLine(const std::optional<std::string>& line,
                                  const char* what) {
  if (!line) {
    ADD_FAILURE() << what << ": expected a response line, got EOF/timeout";
    return json::Value::null();
  }
  auto parsed = json::Value::parse(*line);
  if (!parsed) {
    ADD_FAILURE() << what << ": server emitted unparseable JSON: " << *line;
    return json::Value::null();
  }
  return *parsed;
}

/// The "event" discriminator of a parsed line ("" when absent).
inline std::string eventOf(const json::Value& value) {
  if (const json::Value* event = value.find("event")) return event->asString();
  return "";
}

}  // namespace isop::serve
