// Wire-protocol tests: strict request parsing (shape errors, unknown keys,
// unknown types), the JSONL encoding of job events and results, and the
// seeded submit encode -> parse -> re-encode round-trip property.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "serve/protocol.hpp"

namespace isop::serve {
namespace {

TEST(Protocol, ParsesFullSubmitRequest) {
  const std::string line =
      R"({"type":"submit","id":"j1","task":"T2","space":"S2","layer":"microstrip",)"
      R"("surrogate":"oracle","target":100.5,"tolerance":2.5,)"
      R"("table_ix_constraints":true,"budget":200,"iterations":4,)"
      R"("local_seeds":2,"refine_epochs":10,"hyperband_resource":3,)"
      R"("candidates":5,"trials":2,"seed":9,"priority":-3,"timeout_ms":1000,)"
      R"("deadline_ms":2000})";
  std::string error;
  const auto request = parseRequest(line, &error);
  ASSERT_TRUE(request.has_value()) << error;
  ASSERT_EQ(request->kind, Request::Kind::Submit);
  const JobSpec& spec = request->spec;
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.task, "T2");
  EXPECT_EQ(spec.space, "S2");
  EXPECT_EQ(spec.layer, "microstrip");
  EXPECT_EQ(spec.surrogate, "oracle");
  ASSERT_TRUE(spec.target.has_value());
  EXPECT_EQ(*spec.target, 100.5);
  ASSERT_TRUE(spec.tolerance.has_value());
  EXPECT_EQ(*spec.tolerance, 2.5);
  EXPECT_TRUE(spec.tableIxConstraints);
  EXPECT_EQ(spec.budget, 200u);
  EXPECT_EQ(spec.iterations, 4u);
  EXPECT_EQ(spec.localSeeds, 2u);
  EXPECT_EQ(spec.refineEpochs, 10u);
  EXPECT_EQ(spec.hyperbandResource, 3u);
  EXPECT_EQ(spec.candidates, 5u);
  EXPECT_EQ(spec.trials, 2u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.priority, -3);
  EXPECT_EQ(spec.timeoutMs, 1000u);
  EXPECT_EQ(spec.deadlineMs, 2000u);
}

TEST(Protocol, SubmitDefaultsMatchJobSpecDefaults) {
  std::string error;
  const auto request = parseRequest(R"({"type":"submit","id":"j"})", &error);
  ASSERT_TRUE(request.has_value()) << error;
  const JobSpec defaults;
  const JobSpec& spec = request->spec;
  EXPECT_EQ(spec.task, defaults.task);
  EXPECT_EQ(spec.space, defaults.space);
  EXPECT_EQ(spec.surrogate, defaults.surrogate);
  EXPECT_EQ(spec.budget, defaults.budget);
  EXPECT_EQ(spec.trials, defaults.trials);
  EXPECT_FALSE(spec.target.has_value());
}

TEST(Protocol, ParsesHelloRequest) {
  std::string error;
  auto request = parseRequest(R"({"type":"hello","token":"sekrit"})", &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->kind, Request::Kind::Hello);
  EXPECT_EQ(request->token, "sekrit");

  request = parseRequest(R"({"type":"hello"})", &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->token, "");

  EXPECT_FALSE(parseRequest(R"({"type":"hello","token":7})", &error).has_value());
  EXPECT_FALSE(parseRequest(R"({"type":"hello","extra":1})", &error).has_value());
}

TEST(Protocol, HelloReplyCarriesProtocolAndAuthState) {
  const json::Value v = helloToJson(true);
  EXPECT_EQ(v.at("event").asString(), "hello");
  EXPECT_EQ(v.at("protocol").asInteger(), kProtocolVersion);
  EXPECT_TRUE(v.at("authenticated").asBool());
}

// Property test: for seeded random specs, submitToJson is a parseRequest
// inverse and its output is an encode -> parse -> re-encode fixed point.
// This is the wire contract the conformance suite builds on — any field
// whose encoding and parsing disagree (name, type, optionality) fails here
// before it can corrupt a job spec crossing the TCP transport.
TEST(Protocol, SubmitRoundTripIsFixedPointOverSeededSpecs) {
  Rng rng(20260808);
  const auto size = [&rng](std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng() % (hi - lo + 1));
  };
  const char* tasks[] = {"T1", "T2", "T3", "T4"};
  const char* spaces[] = {"S1", "S2", "S1p"};
  const char* layers[] = {"stripline", "microstrip"};
  const char* surrogates[] = {"oracle", "cnn", "mlp"};

  for (int i = 0; i < 200; ++i) {
    JobSpec spec;
    spec.id = "job-" + std::to_string(i);
    spec.task = tasks[rng() % 4];
    spec.space = spaces[rng() % 3];
    spec.layer = layers[rng() % 2];
    spec.surrogate = surrogates[rng() % 3];
    if (rng() % 2 == 0) spec.target = rng.uniform(20.0, 120.0);
    if (rng() % 2 == 0) spec.tolerance = rng.uniform(0.5, 5.0);
    spec.tableIxConstraints = rng() % 2 == 0;
    spec.budget = size(1, 5000);
    spec.iterations = size(1, 8);
    spec.localSeeds = size(1, 16);
    spec.refineEpochs = size(0, 200);
    spec.hyperbandResource = size(1, 81);
    spec.candidates = size(1, 10);
    spec.trials = size(1, 20);
    spec.seed = rng() % 100000;
    spec.priority = static_cast<long long>(rng() % 21) - 10;
    spec.timeoutMs = rng() % 2 == 0 ? 0 : rng() % 60000;
    spec.deadlineMs = rng() % 2 == 0 ? 0 : rng() % 60000;
    if (rng() % 4 == 0) spec.traceOut = "/tmp/trace-" + std::to_string(i);

    const json::Value encoded = submitToJson(spec);
    const std::string wire = encoded.dump();
    std::string error;
    const auto request = parseRequest(wire, &error);
    ASSERT_TRUE(request.has_value()) << wire << "\nerror: " << error;
    ASSERT_EQ(request->kind, Request::Kind::Submit);

    // Field-for-field equality of the decoded spec.
    const JobSpec& got = request->spec;
    EXPECT_EQ(got.id, spec.id);
    EXPECT_EQ(got.task, spec.task);
    EXPECT_EQ(got.space, spec.space);
    EXPECT_EQ(got.layer, spec.layer);
    EXPECT_EQ(got.surrogate, spec.surrogate);
    EXPECT_EQ(got.target, spec.target);
    EXPECT_EQ(got.tolerance, spec.tolerance);
    EXPECT_EQ(got.tableIxConstraints, spec.tableIxConstraints);
    EXPECT_EQ(got.budget, spec.budget);
    EXPECT_EQ(got.iterations, spec.iterations);
    EXPECT_EQ(got.localSeeds, spec.localSeeds);
    EXPECT_EQ(got.refineEpochs, spec.refineEpochs);
    EXPECT_EQ(got.hyperbandResource, spec.hyperbandResource);
    EXPECT_EQ(got.candidates, spec.candidates);
    EXPECT_EQ(got.trials, spec.trials);
    EXPECT_EQ(got.seed, spec.seed);
    EXPECT_EQ(got.priority, spec.priority);
    EXPECT_EQ(got.timeoutMs, spec.timeoutMs);
    EXPECT_EQ(got.deadlineMs, spec.deadlineMs);
    EXPECT_EQ(got.traceOut, spec.traceOut);

    // Re-encoding the parsed spec reproduces the wire bytes exactly.
    EXPECT_EQ(submitToJson(got).dump(), wire);
  }
}

TEST(Protocol, RejectsMalformedRequests) {
  const auto expectError = [](const std::string& line, const std::string& needle) {
    std::string error;
    EXPECT_FALSE(parseRequest(line, &error).has_value()) << line;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "line: " << line << "\nerror: " << error;
  };
  expectError("not json", "malformed JSON");
  expectError("[1,2]", "must be a JSON object");
  expectError(R"({"id":"j1"})", "missing string field 'type'");
  expectError(R"({"type":"explode"})", "unknown request type");
  expectError(R"({"type":"submit","id":"j","budgget":5})", "unknown field 'budgget'");
  expectError(R"({"type":"submit","id":7})", "'id' must be a string");
  expectError(R"({"type":"submit","id":"j","budget":0})", "'budget'");
  expectError(R"({"type":"submit","id":"j","budget":1.5})", "'budget'");
  expectError(R"({"type":"submit","id":"j","seed":-4})", "'seed'");
  expectError(R"({"type":"submit","id":"j","target":"85"})", "'target' must be a number");
  expectError(R"({"type":"cancel"})", "non-empty 'id'");
  expectError(R"({"type":"cancel","id":"j","extra":1})", "unknown field 'extra'");
  expectError(R"({"type":"status","x":1})", "unknown field 'x'");
  expectError(R"({"type":"stats","x":1})", "unknown field 'x'");
  expectError(R"({"type":"trace"})", "action");
  expectError(R"({"type":"trace","action":"pause"})", "action");
  expectError(R"({"type":"trace","action":"start","x":1})", "unknown field 'x'");
}

TEST(Protocol, ParsesControlRequests) {
  std::string error;
  const auto cancel = parseRequest(R"({"type":"cancel","id":"jobX"})", &error);
  ASSERT_TRUE(cancel.has_value()) << error;
  EXPECT_EQ(cancel->kind, Request::Kind::Cancel);
  EXPECT_EQ(cancel->id, "jobX");

  const auto status = parseRequest(R"({"type":"status"})", &error);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->kind, Request::Kind::Status);

  const auto shutdown = parseRequest(R"({"type":"shutdown"})", &error);
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_EQ(shutdown->kind, Request::Kind::Shutdown);

  const auto stats = parseRequest(R"({"type":"stats"})", &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->kind, Request::Kind::Stats);

  const auto start = parseRequest(R"({"type":"trace","action":"start"})", &error);
  ASSERT_TRUE(start.has_value()) << error;
  EXPECT_EQ(start->kind, Request::Kind::Trace);
  EXPECT_EQ(start->traceAction, Request::TraceAction::Start);

  const auto stop = parseRequest(
      R"({"type":"trace","action":"stop","out":"/tmp/t.json"})", &error);
  ASSERT_TRUE(stop.has_value()) << error;
  EXPECT_EQ(stop->traceAction, Request::TraceAction::Stop);
  EXPECT_EQ(stop->traceOut, "/tmp/t.json");

  const auto probe = parseRequest(R"({"type":"trace","action":"status"})", &error);
  ASSERT_TRUE(probe.has_value()) << error;
  EXPECT_EQ(probe->traceAction, Request::TraceAction::Status);
}

TEST(Protocol, SubmitParsesTraceOut) {
  std::string error;
  const auto request = parseRequest(
      R"({"type":"submit","id":"j","trace_out":"job_j.json"})", &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->spec.traceOut, "job_j.json");
  const JobSpec defaults;
  EXPECT_EQ(defaults.traceOut, "");
}

TEST(Protocol, EventEncodingCarriesKindSpecificFields) {
  JobEvent accepted;
  accepted.kind = JobEvent::Kind::Accepted;
  accepted.jobId = "j1";
  accepted.queueDepth = 3;
  json::Value v = toJson(accepted);
  EXPECT_EQ(v.at("event").asString(), "accepted");
  EXPECT_EQ(v.at("id").asString(), "j1");
  EXPECT_EQ(v.at("queue_depth").asInteger(), 3);

  JobEvent rejected;
  rejected.kind = JobEvent::Kind::Rejected;
  rejected.jobId = "j2";
  rejected.reason = "queue full (capacity 1)";
  v = toJson(rejected);
  EXPECT_EQ(v.at("event").asString(), "rejected");
  EXPECT_EQ(v.at("reason").asString(), "queue full (capacity 1)");

  JobEvent progress;
  progress.kind = JobEvent::Kind::Progress;
  progress.jobId = "j3";
  json::Value record = json::Value::object();
  record.set("type", json::Value::string("adam_epoch"));
  progress.payload = record;
  v = toJson(progress);
  EXPECT_EQ(v.at("record").at("type").asString(), "adam_epoch");

  // Every encoded event is a single parseable JSONL line.
  const std::string line = v.dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_TRUE(json::Value::parse(line).has_value());
}

TEST(Protocol, DoneEventExpandsRankedResult) {
  core::TrialStats stats;
  stats.trials = 1;
  stats.successes = 1;
  stats.avgSamples = 420.0;
  core::TrialOutcome outcome;
  core::IsopCandidate a;
  a.g = 0.25;
  a.fom = 0.5;
  a.feasible = true;
  a.metrics.z = 85.5;
  core::IsopCandidate b;
  b.g = 0.75;
  b.fom = 0.9;
  b.feasible = false;
  outcome.candidates = {a, b};
  stats.outcomes.push_back(outcome);

  JobEvent done;
  done.kind = JobEvent::Kind::Done;
  done.jobId = "j1";
  done.result = std::make_shared<const core::TrialStats>(stats);
  const json::Value v = toJson(done);
  const json::Value& result = v.at("result");
  EXPECT_EQ(result.at("trials").asInteger(), 1);
  const json::Value& ranked = result.at("ranked");
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.at(std::size_t{0}).at("rank").asInteger(), 1);
  EXPECT_EQ(ranked.at(std::size_t{0}).at("g").asNumber(), 0.25);
  EXPECT_TRUE(ranked.at(std::size_t{0}).at("feasible").asBool());
  EXPECT_EQ(ranked.at(std::size_t{1}).at("rank").asInteger(), 2);
}

TEST(Protocol, MultiTrialResultRanksTrialWinnersFeasibleFirst) {
  core::TrialStats stats;
  stats.trials = 3;
  const auto outcomeWith = [](double g, bool feasible) {
    core::TrialOutcome outcome;
    core::IsopCandidate c;
    c.g = g;
    c.feasible = feasible;
    outcome.candidates = {c};
    return outcome;
  };
  stats.outcomes = {outcomeWith(0.2, false), outcomeWith(0.9, true),
                    outcomeWith(0.4, true)};
  const json::Value result = resultToJson(stats);
  const json::Value& ranked = result.at("ranked");
  ASSERT_EQ(ranked.size(), 3u);
  // Feasible trials first (g ascending), infeasible last despite lower g.
  EXPECT_EQ(ranked.at(std::size_t{0}).at("trial").asInteger(), 2);
  EXPECT_EQ(ranked.at(std::size_t{1}).at("trial").asInteger(), 1);
  EXPECT_EQ(ranked.at(std::size_t{2}).at("trial").asInteger(), 0);
}

TEST(Protocol, StatusEncodesSchedulerCounters) {
  Scheduler::Status status;
  status.queueDepth = 2;
  status.queueCapacity = 16;
  status.running = 1;
  status.submitted = 10;
  status.admitted = 8;
  status.rejected = 2;
  status.completed = 5;
  status.cancelled = 1;
  status.failed = 1;
  const json::Value v = statusToJson(status, 3);
  EXPECT_EQ(v.at("event").asString(), "status");
  EXPECT_EQ(v.at("queue_depth").asInteger(), 2);
  EXPECT_EQ(v.at("queue_capacity").asInteger(), 16);
  EXPECT_EQ(v.at("submitted").asInteger(), 10);
  EXPECT_EQ(v.at("sessions").asInteger(), 3);
  EXPECT_FALSE(v.at("draining").asBool());
}

TEST(Protocol, StatsSnapshotEncodesQueueJobsSessionsMetrics) {
  Scheduler::Status status;
  status.queueDepth = 1;
  status.queueCapacity = 8;
  status.running = 1;
  status.submitted = 3;
  status.admitted = 3;
  status.completed = 1;

  std::vector<Scheduler::JobSnapshot> jobs(2);
  jobs[0] = {"a", JobState::Running, 0, 1.5, 0.25, 1.25,
             std::numeric_limits<double>::infinity()};
  jobs[1] = {"b", JobState::Queued, 5, 0.5, 0.5, 0.0, 9.75};

  std::vector<SessionManager::SessionInfo> sessions(1);
  sessions[0].key = {"oracle", "S1", "stripline"};
  sessions[0].cacheSize = 100;
  sessions[0].evictions = 2;
  sessions[0].rows = 140;
  sessions[0].memoHits = 40;
  sessions[0].hitRate = 40.0 / 140.0;
  sessions[0].activeJobs = 1;
  sessions[0].warmMemo = true;

  SessionManager::Lifecycle lifecycle;
  lifecycle.created = 4;
  lifecycle.evicted = 3;
  lifecycle.persisted = 5;
  lifecycle.loaded = 2;
  lifecycle.loadFailures = 1;

  json::Value metrics = json::Value::object();
  metrics.set("counters", json::Value::object());

  const json::Value v =
      statsToJson(status, jobs, sessions, lifecycle, std::move(metrics));
  EXPECT_EQ(v.at("event").asString(), "stats");
  const json::Value& queue = v.at("queue");
  EXPECT_EQ(queue.at("depth").asInteger(), 1);
  EXPECT_EQ(queue.at("capacity").asInteger(), 8);
  EXPECT_EQ(queue.at("running").asInteger(), 1);
  // One queued job at priority 5.
  EXPECT_EQ(queue.at("queued_by_priority").at("5").asInteger(), 1);

  const json::Value& encodedJobs = v.at("jobs");
  ASSERT_EQ(encodedJobs.size(), 2u);
  const json::Value& running = encodedJobs.at(0);
  EXPECT_EQ(running.at("id").asString(), "a");
  EXPECT_EQ(running.at("state").asString(), "running");
  EXPECT_DOUBLE_EQ(running.at("queue_wait_seconds").asNumber(), 0.25);
  EXPECT_DOUBLE_EQ(running.at("run_seconds").asNumber(), 1.25);
  // +inf is not representable in JSON: the key is omitted, not null.
  EXPECT_EQ(running.find("deadline_remaining_seconds"), nullptr);
  const json::Value& queued = encodedJobs.at(1);
  EXPECT_EQ(queued.at("state").asString(), "queued");
  EXPECT_DOUBLE_EQ(queued.at("deadline_remaining_seconds").asNumber(), 9.75);

  const json::Value& encodedSessions = v.at("sessions");
  ASSERT_EQ(encodedSessions.size(), 1u);
  EXPECT_EQ(encodedSessions.at(0).at("surrogate").asString(), "oracle");
  EXPECT_EQ(encodedSessions.at(0).at("cache_size").asInteger(), 100);
  EXPECT_EQ(encodedSessions.at(0).at("memo_hits").asInteger(), 40);
  EXPECT_EQ(encodedSessions.at(0).at("active_jobs").asInteger(), 1);
  EXPECT_FALSE(encodedSessions.at(0).at("warm_model").asBool());
  EXPECT_TRUE(encodedSessions.at(0).at("warm_memo").asBool());

  const json::Value& life = v.at("session_lifecycle");
  EXPECT_EQ(life.at("created").asInteger(), 4);
  EXPECT_EQ(life.at("evicted").asInteger(), 3);
  EXPECT_EQ(life.at("persisted").asInteger(), 5);
  EXPECT_EQ(life.at("loaded").asInteger(), 2);
  EXPECT_EQ(life.at("load_failures").asInteger(), 1);

  EXPECT_NE(v.at("metrics").find("counters"), nullptr);

  // The whole snapshot survives a JSON round trip.
  EXPECT_TRUE(json::Value::parse(v.dump()).has_value());
}

TEST(Protocol, TraceReplyEncodesStateAndWrittenPath) {
  json::Value v = traceToJson(true, 12, 0, "");
  EXPECT_EQ(v.at("event").asString(), "trace");
  EXPECT_TRUE(v.at("enabled").asBool());
  EXPECT_EQ(v.at("events").asInteger(), 12);
  EXPECT_EQ(v.at("dropped").asInteger(), 0);
  EXPECT_EQ(v.find("written"), nullptr);

  v = traceToJson(false, 12, 3, "/tmp/out.json");
  EXPECT_FALSE(v.at("enabled").asBool());
  EXPECT_EQ(v.at("dropped").asInteger(), 3);
  EXPECT_EQ(v.at("written").asString(), "/tmp/out.json");
}

}  // namespace
}  // namespace isop::serve
