// Fault injection for the serve tier's durability layer: corrupt, truncated,
// half-published, or stale state files are ignored (cold start) rather than
// crashing; persisted model weights and memo caches round-trip bitwise; an
// evicted session reloads from the state dir and reproduces its results bit
// for bit with memo hits; and a restarted SessionManager warm-starts from
// what its predecessor persisted. Client-failure faults ride along: a client
// disconnecting mid-job, or never reading its events, must not disturb the
// job or hang the drain (tests/serve/test_conformance.cpp covers the
// protocol-level matrix; scripts/check_serve.sh covers a real SIGKILL).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/simulator_surrogate.hpp"
#include "em/parameter_space.hpp"
#include "em/simulator.hpp"
#include "ml/neural_regressor.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/session_manager.hpp"
#include "serve/session_store.hpp"
#include "server_harness.hpp"

namespace isop::serve {
namespace {

namespace fs = std::filesystem;

// Each test gets a throwaway state dir under the gtest temp dir, keyed by
// the test name: ctest runs each discovered test as its own process, so a
// shared directory would be clobbered by parallel siblings.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "isop_fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);  // socket paths need the parent to exist
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SessionKey oracleKey() { return {"oracle", "S1", "stripline"}; }

  /// Deterministic designs sampled from `space`.
  static std::vector<em::StackupParams> sampleDesigns(
      const em::ParameterSpace& space, std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<em::StackupParams> designs;
    designs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) designs.push_back(space.sample(rng));
    return designs;
  }

  std::string dir_;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- SessionStore: corruption matrix ---------------------------------------

TEST_F(FaultTest, MemoRoundTripServesBitwiseIdenticalValues) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  const auto designs = sampleDesigns(space, 24, 11);

  core::EvalEngine warm(oracle, sim);
  std::vector<em::PerformanceMetrics> expected;
  warm.predictMetrics(designs, expected);
  const auto simulated = warm.simulateBatch({designs.data(), 4});

  SessionStore store(dir_);
  ASSERT_TRUE(store.saveMemo(oracleKey(), warm));
  EXPECT_EQ(store.persisted(), 1u);

  core::EvalEngine cold(oracle, sim);
  ASSERT_TRUE(store.loadMemo(oracleKey(), cold));
  EXPECT_EQ(store.loaded(), 1u);
  EXPECT_EQ(cold.cacheSize(), warm.cacheSize());

  // Every row must come back from the restored cache, bit for bit.
  std::vector<em::PerformanceMetrics> replayed;
  cold.predictMetrics(designs, replayed);
  ASSERT_EQ(replayed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].z, expected[i].z) << "design " << i;
    EXPECT_EQ(replayed[i].l, expected[i].l) << "design " << i;
    EXPECT_EQ(replayed[i].next, expected[i].next) << "design " << i;
  }
  EXPECT_EQ(cold.stats().memoHits, designs.size());
  const auto resimulated = cold.simulateBatch({designs.data(), 4});
  for (std::size_t i = 0; i < simulated.size(); ++i) {
    EXPECT_EQ(resimulated[i].z, simulated[i].z) << "design " << i;
  }
  EXPECT_EQ(cold.stats().simMemoHits, 4u);
  EXPECT_EQ(store.loadFailures(), 0u);
}

TEST_F(FaultTest, ModelRoundTripPreservesPredictionsBitwise) {
  // A tiny trained MLP stands in for a real surrogate; SessionStore only
  // cares that the stream round-trips through the checksummed envelope.
  Rng rng(3);
  ml::Dataset train{Matrix(256, 4), Matrix(256, 2)};
  for (std::size_t i = 0; i < train.size(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) train.x(i, j) = rng.uniform(-1.0, 1.0);
    train.y(i, 0) = 40.0 + 10.0 * train.x(i, 0);
    train.y(i, 1) = train.x(i, 1) * train.x(i, 2);
  }
  ml::MlpConfig cfg;
  cfg.hidden = {8, 8};
  ml::MlpRegressor model(cfg);
  ml::nn::TrainConfig trainCfg;
  trainCfg.epochs = 3;
  model.fit(train, trainCfg);

  const SessionKey key{"mlp", "S1", "stripline"};
  SessionStore store(dir_);
  ASSERT_TRUE(store.saveModel(key, model));
  const auto loaded = store.loadModel(key);
  ASSERT_NE(loaded, nullptr);

  std::vector<double> x{0.25, -0.5, 0.75, 0.1};
  std::vector<double> expected(2), got(2);
  model.predict(x, expected);
  loaded->predict(x, got);
  EXPECT_EQ(got[0], expected[0]);
  EXPECT_EQ(got[1], expected[1]);
}

TEST_F(FaultTest, OracleSurrogateHasNoWeightsToPersist) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  SessionStore store(dir_);
  EXPECT_FALSE(store.saveModel(oracleKey(), oracle));
  EXPECT_EQ(store.persisted(), 0u);
  EXPECT_FALSE(fs::exists(store.modelPath(oracleKey())));
}

TEST_F(FaultTest, AbsentStateFilesAreASilentColdStart) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  core::EvalEngine engine(oracle, sim);
  SessionStore store(dir_);
  EXPECT_EQ(store.loadModel({"mlp", "S1", "stripline"}), nullptr);
  EXPECT_FALSE(store.loadMemo(oracleKey(), engine));
  EXPECT_EQ(store.loadFailures(), 0u) << "absence is not a failure";
}

TEST_F(FaultTest, CorruptStateFilesAreIgnoredNeverFatal) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  const auto designs = sampleDesigns(space, 8, 5);

  core::EvalEngine source(oracle, sim);
  std::vector<em::PerformanceMetrics> out;
  source.predictMetrics(designs, out);
  SessionStore store(dir_);
  ASSERT_TRUE(store.saveMemo(oracleKey(), source));
  const std::string path = store.memoPath(oracleKey());
  const std::string pristine = readFile(path);
  ASSERT_GT(pristine.size(), 25u);  // envelope header + payload

  struct Corruption {
    const char* name;
    std::string bytes;
  };
  std::string flippedPayload = pristine;
  flippedPayload[pristine.size() / 2] ^= 0x40;  // checksum must catch this
  std::string badMagic = pristine;
  badMagic[0] ^= 0xff;
  std::string badVersion = pristine;
  badVersion[4] = 0x7f;
  std::string shortPayload = pristine.substr(0, pristine.size() - 5);
  const std::vector<Corruption> corruptions{
      {"zero-length file", ""},
      {"truncated header", pristine.substr(0, 10)},
      {"truncated payload", shortPayload},
      {"flipped payload byte", flippedPayload},
      {"bad magic", badMagic},
      {"unknown version", badVersion},
      {"plain-text garbage", "this is not a state file\n"},
  };

  std::uint64_t failures = store.loadFailures();
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    writeFile(path, corruption.bytes);
    core::EvalEngine victim(oracle, sim);
    EXPECT_FALSE(store.loadMemo(oracleKey(), victim));
    EXPECT_EQ(victim.cacheSize(), 0u) << "no partial restore";
    EXPECT_EQ(store.loadFailures(), failures + 1) << "failure must be counted";
    failures = store.loadFailures();
  }

  // The pristine bytes still load after all that.
  writeFile(path, pristine);
  core::EvalEngine recovered(oracle, sim);
  EXPECT_TRUE(store.loadMemo(oracleKey(), recovered));
  EXPECT_EQ(recovered.cacheSize(), source.cacheSize());
}

TEST_F(FaultTest, WrongKindEnvelopeIsRejected) {
  // A memo envelope parked at a model path (or vice versa) must be refused
  // before any byte reaches the model deserializer.
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  const auto designs = sampleDesigns(space, 4, 9);
  core::EvalEngine engine(oracle, sim);
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);

  SessionStore store(dir_);
  ASSERT_TRUE(store.saveMemo(oracleKey(), engine));
  const SessionKey mlpKey{"mlp", "S1", "stripline"};
  writeFile(store.modelPath(mlpKey), readFile(store.memoPath(oracleKey())));
  EXPECT_EQ(store.loadModel(mlpKey), nullptr);
  EXPECT_EQ(store.loadFailures(), 1u);
}

TEST_F(FaultTest, HalfPublishedStateDirLoadsAndSweepsTempLeftovers) {
  // A SIGKILL mid-write leaves `<path>.tmp.<pid>.<n>` next to the last
  // complete publication. Loads must ignore the leftover; the next save
  // sweeps it.
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  const auto designs = sampleDesigns(space, 6, 13);
  core::EvalEngine engine(oracle, sim);
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);

  SessionStore store(dir_);
  ASSERT_TRUE(store.saveMemo(oracleKey(), engine));
  const std::string path = store.memoPath(oracleKey());
  writeFile(path + ".tmp.12345.0", "half-written state from a killed process");
  // A crashed writer's leftover is old by the time the next publication
  // runs; age it past atomicSave's staleness threshold (fresh temps are
  // presumed to belong to a live concurrent writer and left alone).
  fs::last_write_time(path + ".tmp.12345.0",
                      fs::file_time_type::clock::now() - std::chrono::hours(1));

  core::EvalEngine warm(oracle, sim);
  EXPECT_TRUE(store.loadMemo(oracleKey(), warm));
  EXPECT_EQ(warm.cacheSize(), engine.cacheSize());
  EXPECT_EQ(store.loadFailures(), 0u);

  ASSERT_TRUE(store.saveMemo(oracleKey(), engine));
  EXPECT_FALSE(fs::exists(path + ".tmp.12345.0")) << "stale temp not swept";
  core::EvalEngine again(oracle, sim);
  EXPECT_TRUE(store.loadMemo(oracleKey(), again));
}

// ---- SessionManager: eviction + warm restart -------------------------------

/// Thread-safe event log with predicate waits (the test_serve.cpp idiom).
class EventLog {
 public:
  Scheduler::EventSink sink() {
    return [this](const JobEvent& event) {
      std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back(event);
      changed_.notify_all();
    };
  }

  bool waitFor(const std::string& id, JobEvent::Kind kind,
               std::chrono::seconds timeout = std::chrono::seconds(120)) {
    std::unique_lock<std::mutex> lock(mutex_);
    return changed_.wait_for(lock, timeout, [&] {
      for (const JobEvent& event : events_) {
        if (event.jobId == id && event.kind == kind) return true;
      }
      return false;
    });
  }

  std::shared_ptr<const core::TrialStats> resultOf(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const JobEvent& event : events_) {
      if (event.jobId == id && event.kind == JobEvent::Kind::Done) return event.result;
    }
    return nullptr;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::vector<JobEvent> events_;
};

JobSpec quickSpec(std::string id) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.budget = 120;
  spec.iterations = 2;
  spec.hyperbandResource = 9;
  spec.refineEpochs = 20;
  spec.localSeeds = 3;
  spec.candidates = 2;
  spec.seed = 7;
  return spec;
}

void expectBitwiseEqual(const core::TrialStats& a, const core::TrialStats& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.successes, b.successes);
  for (std::size_t t = 0; t < a.outcomes.size(); ++t) {
    const core::TrialOutcome& x = a.outcomes[t];
    const core::TrialOutcome& y = b.outcomes[t];
    ASSERT_EQ(x.candidates.size(), y.candidates.size()) << "trial " << t;
    for (std::size_t c = 0; c < x.candidates.size(); ++c) {
      for (std::size_t i = 0; i < em::kNumParams; ++i) {
        EXPECT_EQ(x.candidates[c].params.values[i], y.candidates[c].params.values[i])
            << "trial " << t << " candidate " << c << " param " << i;
      }
      EXPECT_EQ(x.candidates[c].fom, y.candidates[c].fom);
      EXPECT_EQ(x.candidates[c].g, y.candidates[c].g);
      EXPECT_EQ(x.candidates[c].feasible, y.candidates[c].feasible);
    }
    EXPECT_EQ(x.success, y.success) << "trial " << t;
    EXPECT_EQ(x.samplesSeen, y.samplesSeen) << "trial " << t;
    EXPECT_EQ(x.emCalls, y.emCalls) << "trial " << t;
  }
}

TEST_F(FaultTest, EvictReloadResubmitIsBitwiseIdenticalWithMemoHits) {
  SessionManagerConfig cfg;
  cfg.maxSessions = 1;
  cfg.stateDir = dir_;
  SessionManager sessions(cfg);
  EventLog log;
  SchedulerConfig schedCfg;
  schedCfg.workers = 1;  // sequential: counters are exactly reproducible
  Scheduler scheduler(sessions, schedCfg, log.sink());

  // Cold run on the stripline session.
  ASSERT_TRUE(scheduler.submit(quickSpec("cold")));
  ASSERT_TRUE(log.waitFor("cold", JobEvent::Kind::Done));
  const auto cold = log.resultOf("cold");
  ASSERT_NE(cold, nullptr);

  // A job on a different key forces the 1-session cap to evict stripline.
  JobSpec other = quickSpec("other");
  other.layer = "microstrip";
  ASSERT_TRUE(scheduler.submit(other));
  ASSERT_TRUE(log.waitFor("other", JobEvent::Kind::Done));
  EXPECT_GE(sessions.lifecycle().evicted, 1u);
  EXPECT_GE(sessions.lifecycle().persisted, 1u);

  // Resubmitting the evicted key must reload its persisted memo and replay
  // the identical trajectory — now served from the cache.
  JobSpec again = quickSpec("again");
  ASSERT_TRUE(scheduler.submit(again));
  ASSERT_TRUE(log.waitFor("again", JobEvent::Kind::Done));
  const auto warm = log.resultOf("again");
  ASSERT_NE(warm, nullptr);

  expectBitwiseEqual(*warm, *cold);
  ASSERT_FALSE(warm->outcomes.empty());
  EXPECT_GT(warm->outcomes[0].evalStats.memoHits, 0u)
      << "reloaded session must serve memo hits on the first batch";
  EXPECT_GE(sessions.lifecycle().loaded, 1u);
  bool sawWarm = false;
  for (const auto& info : sessions.table()) {
    if (info.key.layer == "stripline") sawWarm = info.warmMemo;
  }
  EXPECT_TRUE(sawWarm) << "stats table must show the warm-started session";
}

TEST_F(FaultTest, SessionsWithRunningJobsAreNeverEvicted) {
  SessionManagerConfig cfg;
  cfg.maxSessions = 1;
  SessionManager sessions(cfg);
  const SessionKey a{"oracle", "S1", "stripline"};
  const SessionKey b{"oracle", "S1", "microstrip"};
  {
    // acquire() hands the session out pre-pinned — it counts as having a
    // running job from the instant it is returned, so a concurrent acquire
    // of another key can never evict it in the window before the job starts.
    SessionPin pinA = sessions.acquire(a);
    EXPECT_EQ(pinA->activeJobs.load(), 1) << "acquire must return a pinned session";
    sessions.acquire(b);  // over cap, but A is pinned (B's own pin is transient)
    EXPECT_EQ(sessions.size(), 2u) << "caps must yield to running jobs";
    EXPECT_EQ(sessions.lifecycle().evicted, 0u);
    EXPECT_EQ(pinA->activeJobs.load(), 1) << "pin must survive other acquires";
  }
  // With the pin gone, the next new-key acquire evicts down to the cap.
  sessions.acquire({"oracle", "S2", "stripline"});
  EXPECT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.lifecycle().evicted, 2u);
}

TEST_F(FaultTest, RestartedManagerWarmStartsFromPersistedState) {
  SessionManagerConfig cfg;
  cfg.stateDir = dir_;
  const SessionKey key = oracleKey();
  std::size_t cacheSize = 0;
  std::vector<em::PerformanceMetrics> expected;
  const em::ParameterSpace space = em::spaceByName("S1");
  const auto designs = sampleDesigns(space, 16, 17);
  {
    SessionManager first(cfg);
    auto ctx = first.acquire(key);
    EXPECT_FALSE(ctx->warmMemo);
    ctx->engine->predictMetrics(designs, expected);
    cacheSize = ctx->engine->cacheSize();
    first.persistAll();
    EXPECT_GE(first.lifecycle().persisted, 1u);
  }
  SessionManager second(cfg);
  auto ctx = second.acquire(key);
  EXPECT_TRUE(ctx->warmMemo) << "restart must reload the persisted memo";
  EXPECT_EQ(ctx->engine->cacheSize(), cacheSize);
  std::vector<em::PerformanceMetrics> replayed;
  ctx->engine->predictMetrics(designs, replayed);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].z, expected[i].z) << "design " << i;
    EXPECT_EQ(replayed[i].l, expected[i].l) << "design " << i;
    EXPECT_EQ(replayed[i].next, expected[i].next) << "design " << i;
  }
  EXPECT_EQ(ctx->engine->stats().memoHits, designs.size());
}

// ---- Server: client-failure faults -----------------------------------------

/// Polls the stdio status request until `completed` reaches `want`.
bool waitForCompleted(ServerHarness& harness, long long want,
                      std::chrono::seconds timeout = std::chrono::seconds(120)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    harness.sendStdio("{\"type\":\"status\"}");
    const json::Value status = parseEventLine(harness.readStdio(), "status poll");
    if (status.isNull()) return false;
    if (status.at("completed").asInteger() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST_F(FaultTest, MidJobDisconnectDoesNotDisturbTheJob) {
  ServerConfig config;
  config.scheduler.workers = 1;
  config.socketPath = dir_ + "/serve.sock";
  ServerHarness harness(std::move(config));

  SocketClient client = SocketClient::connectUnix(dir_ + "/serve.sock");
  ASSERT_TRUE(client.connected());
  JobSpec spec = quickSpec("orphan");
  spec.trials = 10;  // long enough that the disconnect lands mid-run
  client.sendLine(submitToJson(spec).dump());
  const json::Value accepted = parseEventLine(client.readLine(), "accepted");
  ASSERT_EQ(eventOf(accepted), "accepted");
  client.close();  // progress writes now hit EPIPE/ECONNRESET

  // The job must finish on the server regardless, and the server must keep
  // answering other clients.
  EXPECT_TRUE(waitForCompleted(harness, 1))
      << "orphaned job never completed after its client vanished";
  harness.sendStdio("{\"type\":\"stats\"}");
  const json::Value stats = parseEventLine(harness.readStdio(), "stats");
  EXPECT_EQ(eventOf(stats), "stats");
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(harness.exitCode(), 0);
}

/// Reads the serve.connections.active gauge via a stdio stats request
/// (-1.0 when the gauge has not been published yet).
double activeConnectionsGauge(ServerHarness& harness) {
  harness.sendStdio("{\"type\":\"stats\"}");
  const json::Value stats = parseEventLine(harness.readStdio(), "stats");
  if (const json::Value* metrics = stats.find("metrics")) {
    if (const json::Value* gauges = metrics->find("gauges")) {
      if (const json::Value* active = gauges->find("serve.connections.active")) {
        return active->asNumber();
      }
    }
  }
  return -1.0;
}

TEST_F(FaultTest, DisconnectedClientsAreReapedNotLeaked) {
  // Connect/disconnect churn must not accumulate fds, exited reader threads,
  // or Connection objects until shutdown — a long-running server would hit
  // fd exhaustion. Each vanished client must be reaped by the accept loop's
  // periodic sweep, visible as the connections gauge returning to zero.
  ServerConfig config;
  config.scheduler.workers = 1;
  config.socketPath = dir_ + "/serve.sock";
  ServerHarness harness(std::move(config));

  for (int i = 0; i < 5; ++i) {
    SocketClient client = SocketClient::connectUnix(dir_ + "/serve.sock");
    ASSERT_TRUE(client.connected());
    client.sendLine("{\"type\":\"status\"}");
    ASSERT_EQ(eventOf(parseEventLine(client.readLine(), "status")), "status");
    client.close();
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  double active = -1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    active = activeConnectionsGauge(harness);
    if (active == 0.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(active, 0.0) << "disconnected clients were never reaped";
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(FaultTest, HalfClosedClientStillReceivesItsJobEvents) {
  // A client that submits and then shuts down only its write side is not a
  // disconnect: the reaper must wait for the client's in-flight job to emit
  // its terminal event before tearing the connection down.
  ServerConfig config;
  config.scheduler.workers = 1;
  config.socketPath = dir_ + "/serve.sock";
  ServerHarness harness(std::move(config));

  SocketClient client = SocketClient::connectUnix(dir_ + "/serve.sock");
  ASSERT_TRUE(client.connected());
  client.sendLine(submitToJson(quickSpec("half-close")).dump());
  client.shutdownWrite();  // the server's reader sees EOF immediately

  bool sawDone = false;
  while (const auto line = client.readLine()) {
    if (eventOf(parseEventLine(line, "half-close event")) == "done") {
      sawDone = true;
      break;
    }
  }
  EXPECT_TRUE(sawDone) << "half-closed client lost its job's done event";
  const auto& tail = harness.shutdown();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(FaultTest, SlowReaderIsBoundedByTheWriteTimeoutNotHung) {
  ServerConfig config;
  config.scheduler.workers = 1;
  config.listenAddress = "127.0.0.1:0";
  config.writeTimeoutMs = 200;  // a blocked event write gives up quickly
  ServerHarness harness(std::move(config));

  // A client with a tiny receive window that never reads: once the kernel
  // buffers fill, the server's progress writes block, hit SO_SNDTIMEO, and
  // mark the writer dead — the job itself must still complete and the drain
  // must not hang on the stuck connection.
  SocketClient client =
      SocketClient::connectTcp(harness.server().boundTcpPort(), /*rcvbufBytes=*/2048);
  ASSERT_TRUE(client.connected());
  JobSpec spec = quickSpec("stuck-reader");
  spec.trials = 30;  // enough progress volume to overrun the socket buffers
  client.sendLine(submitToJson(spec).dump());

  EXPECT_TRUE(waitForCompleted(harness, 1))
      << "job behind a stuck reader never completed";
  const auto& tail = harness.shutdown();  // must not hang on the dead client
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(eventOf(parseEventLine(tail.back(), "shutdown")), "shutdown");
  EXPECT_EQ(harness.exitCode(), 0);
}

TEST_F(FaultTest, PersistAfterJobSurvivesEvictionRace) {
  // persistAfterJob on a key that was just evicted is a no-op (the eviction
  // already persisted); on a live key it publishes the memo file.
  SessionManagerConfig cfg;
  cfg.stateDir = dir_;
  SessionManager sessions(cfg);
  const SessionKey key = oracleKey();
  sessions.acquire(key);
  sessions.persistAfterJob(key);
  EXPECT_GE(sessions.lifecycle().persisted, 1u);
  sessions.persistAfterJob({"oracle", "S2", "stripline"});  // never acquired
  EXPECT_TRUE(fs::exists(sessions.store()->memoPath(key)));
}

}  // namespace
}  // namespace isop::serve
