// Serve-tier inverse design: the v4 `inverse` job answers with ranked
// designs; the trained inverse net persists through SessionStore's kind-3
// envelope and warm-starts a restarted server bitwise (load_failures == 0);
// and the corruption matrix for the new kind — corrupt, truncated, or
// wrong-kind state files — degrades to a cold retrain, never a crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/eval/eval_engine.hpp"
#include "core/simulator_surrogate.hpp"
#include "em/parameter_space.hpp"
#include "em/simulator.hpp"
#include "inverse/inverse_trainer.hpp"
#include "serve/server.hpp"
#include "serve/session_store.hpp"
#include "server_harness.hpp"

namespace isop::serve {
namespace {

namespace fs = std::filesystem;

class ServeInverseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "isop_serve_inverse_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SessionKey oracleKey() { return {"oracle", "S1", "stripline"}; }

  /// Serve config with a quick-to-train inverse net (the tests pin behavior,
  /// not accuracy) and a single worker for a reproducible event stream.
  ServerConfig quickConfig() const {
    ServerConfig config;
    config.scheduler.workers = 1;
    config.stateDir = dir_ + "/state";
    config.inverseTrain.samples = 96;
    config.inverseTrain.epochs = 4;
    return config;
  }

  /// Submits an inverse job over stdio and returns the `done` event's result.
  static json::Value runInverseJob(ServerHarness& harness,
                                   const std::string& id) {
    harness.sendStdio("{\"type\":\"inverse\",\"id\":\"" + id +
                      "\",\"surrogate\":\"oracle\",\"candidates\":3,"
                      "\"seed\":5}");
    for (int i = 0; i < 10000; ++i) {
      const json::Value event = parseEventLine(harness.readStdio(), "inverse");
      if (event.isNull()) break;
      if (event.at("id").asString() != id) continue;
      const std::string kind = eventOf(event);
      if (kind == "done") return event.at("result");
      if (kind != "accepted" && kind != "started") {
        ADD_FAILURE() << "unexpected event '" << kind << "' for job " << id;
        break;
      }
    }
    return json::Value::null();
  }

  static json::Value statsOf(ServerHarness& harness) {
    harness.sendStdio("{\"type\":\"stats\"}");
    return parseEventLine(harness.readStdio(), "stats");
  }

  /// The stripline session row of a stats reply, or null.
  static json::Value sessionRow(const json::Value& stats) {
    const json::Value& sessions = stats.at("sessions");
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (sessions.at(i).at("layer").asString() == "stripline")
        return sessions.at(i);
    }
    return json::Value::null();
  }

  std::string inverseStatePath() const {
    return SessionStore(dir_ + "/state").inversePath(oracleKey());
  }

  std::string dir_;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- SessionStore: the kind-3 envelope --------------------------------------

TEST_F(ServeInverseTest, InverseModelRoundTripsThroughTheStoreBitwise) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  core::EvalEngineConfig engineCfg;
  engineCfg.memoize = false;
  const core::EvalEngine engine(oracle, engineCfg);
  inverse::InverseTrainConfig trainCfg;
  trainCfg.samples = 96;
  trainCfg.epochs = 4;
  const auto model = inverse::trainInverseModel(engine, space, trainCfg);

  SessionStore store(dir_);
  ASSERT_TRUE(store.saveInverse(oracleKey(), *model));
  EXPECT_EQ(store.persisted(), 1u);
  const auto loaded = store.loadInverse(oracleKey());
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(store.loaded(), 1u);
  EXPECT_EQ(store.loadFailures(), 0u);

  // The reloaded net must answer spec batches bit-for-bit.
  Matrix specs(4, em::kNumMetrics);
  Rng rng(23);
  for (std::size_t i = 0; i < specs.rows(); ++i) {
    specs(i, 0) = rng.uniform(75.0, 95.0);
    specs(i, 1) = rng.uniform(-2.0, 0.0);
    specs(i, 2) = rng.uniform(0.0, 0.05);
  }
  Matrix expected, replayed;
  model->forwardSpecs(specs, expected);
  loaded->forwardSpecs(specs, replayed);
  for (std::size_t i = 0; i < expected.rows(); ++i) {
    for (std::size_t j = 0; j < expected.cols(); ++j) {
      EXPECT_EQ(expected(i, j), replayed(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST_F(ServeInverseTest, CorruptTruncatedOrWrongKindInverseFilesAreIgnored) {
  em::EmSimulator sim;
  core::SimulatorSurrogate oracle(sim);
  const em::ParameterSpace space = em::spaceByName("S1");
  core::EvalEngineConfig engineCfg;
  engineCfg.memoize = false;
  const core::EvalEngine engine(oracle, engineCfg);
  inverse::InverseTrainConfig trainCfg;
  trainCfg.samples = 96;
  trainCfg.epochs = 4;
  const auto model = inverse::trainInverseModel(engine, space, trainCfg);

  SessionStore store(dir_);
  ASSERT_TRUE(store.saveInverse(oracleKey(), *model));
  const std::string path = store.inversePath(oracleKey());
  const std::string good = readFile(path);
  ASSERT_FALSE(good.empty());

  // Corrupt: one flipped payload byte must fail the checksum.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  writeFile(path, corrupt);
  EXPECT_EQ(store.loadInverse(oracleKey()), nullptr);
  EXPECT_EQ(store.loadFailures(), 1u);

  // Truncated: half a file must be rejected before deserialization.
  writeFile(path, good.substr(0, good.size() / 2));
  EXPECT_EQ(store.loadInverse(oracleKey()), nullptr);
  EXPECT_EQ(store.loadFailures(), 2u);

  // Wrong kind: a valid *memo* envelope at the inverse path must be refused
  // by the envelope's kind byte, not fed to the model deserializer.
  core::EvalEngine memoEngine(oracle, sim);
  Rng rng(7);
  std::vector<em::StackupParams> designs;
  for (int i = 0; i < 8; ++i) designs.push_back(space.sample(rng));
  std::vector<em::PerformanceMetrics> metrics;
  memoEngine.predictMetrics(designs, metrics);
  ASSERT_TRUE(store.saveMemo(oracleKey(), memoEngine));
  writeFile(path, readFile(store.memoPath(oracleKey())));
  EXPECT_EQ(store.loadInverse(oracleKey()), nullptr);
  EXPECT_EQ(store.loadFailures(), 3u);

  // And the pristine bytes still load after all that.
  writeFile(path, good);
  EXPECT_NE(store.loadInverse(oracleKey()), nullptr);
  EXPECT_EQ(store.loadFailures(), 3u);
}

// ---- Server: inverse jobs end to end ----------------------------------------

TEST_F(ServeInverseTest, InverseJobReturnsRankedDesigns) {
  ServerHarness harness(quickConfig());
  const json::Value result = runInverseJob(harness, "inv-1");
  ASSERT_FALSE(result.isNull()) << "inverse job never reached done";
  EXPECT_EQ(result.at("mode").asString(), "inverse");
  ASSERT_TRUE(result.at("ranked").isArray());
  ASSERT_GT(result.at("ranked").size(), 0u);
  EXPECT_LE(result.at("ranked").size(), 3u);

  const json::Value stats = statsOf(harness);
  const json::Value row = sessionRow(stats);
  ASSERT_FALSE(row.isNull());
  EXPECT_TRUE(row.at("inverse_model").asBool());
  EXPECT_FALSE(row.at("warm_inverse").asBool()) << "first train is cold";
  // Training persists the net immediately, not just at shutdown.
  EXPECT_TRUE(fs::exists(inverseStatePath()));
}

TEST_F(ServeInverseTest, RestartWarmStartsTheInverseNetBitwise) {
  std::string coldRanked;
  {
    ServerHarness harness(quickConfig());
    const json::Value result = runInverseJob(harness, "inv-cold");
    ASSERT_FALSE(result.isNull());
    coldRanked = result.at("ranked").dump();
    harness.shutdown();
  }
  ASSERT_TRUE(fs::exists(inverseStatePath()));

  ServerHarness harness(quickConfig());
  const json::Value result = runInverseJob(harness, "inv-warm");
  ASSERT_FALSE(result.isNull());
  EXPECT_EQ(result.at("ranked").dump(), coldRanked)
      << "a warm-started net must reproduce the cold answer bit for bit";

  const json::Value stats = statsOf(harness);
  const json::Value row = sessionRow(stats);
  ASSERT_FALSE(row.isNull());
  EXPECT_TRUE(row.at("warm_inverse").asBool());
  EXPECT_EQ(stats.at("session_lifecycle").at("load_failures").asInteger(), 0);
}

TEST_F(ServeInverseTest, CorruptStateFileFallsBackToColdRetrain) {
  {
    ServerHarness harness(quickConfig());
    ASSERT_FALSE(runInverseJob(harness, "inv-seed").isNull());
    harness.shutdown();
  }
  const std::string path = inverseStatePath();
  std::string bytes = readFile(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  writeFile(path, bytes);

  ServerHarness harness(quickConfig());
  const json::Value result = runInverseJob(harness, "inv-after");
  ASSERT_FALSE(result.isNull()) << "corruption must cost a retrain, not the job";
  ASSERT_GT(result.at("ranked").size(), 0u);

  const json::Value stats = statsOf(harness);
  const json::Value row = sessionRow(stats);
  ASSERT_FALSE(row.isNull());
  EXPECT_TRUE(row.at("inverse_model").asBool());
  EXPECT_FALSE(row.at("warm_inverse").asBool());
  EXPECT_GE(stats.at("session_lifecycle").at("load_failures").asInteger(), 1);
}

}  // namespace
}  // namespace isop::serve
