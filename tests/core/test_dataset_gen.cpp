#include "data/dataset_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "data/cache.hpp"

namespace isop::data {
namespace {

TEST(DatasetGen, ShapeAndLabels) {
  em::EmSimulator sim;
  GenerationConfig cfg;
  cfg.samples = 500;
  cfg.seed = 1;
  const ml::Dataset ds = generateDataset(sim, em::spaceS1(), cfg);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.inputDim(), em::kNumParams);
  EXPECT_EQ(ds.outputDim(), em::kNumMetrics);
  // Labels are exactly the simulator's outputs.
  for (std::size_t i : {0uz, 123uz, 499uz}) {
    const auto p = em::StackupParams::fromVector(ds.x.row(i));
    const auto m = sim.evaluateUncounted(p);
    EXPECT_DOUBLE_EQ(ds.y(i, 0), m.z);
    EXPECT_DOUBLE_EQ(ds.y(i, 1), m.l);
    EXPECT_DOUBLE_EQ(ds.y(i, 2), m.next);
  }
}

TEST(DatasetGen, SamplesAreOnGrid) {
  em::EmSimulator sim;
  GenerationConfig cfg;
  cfg.samples = 300;
  cfg.seed = 2;
  const auto space = em::designerEnvelope();
  const ml::Dataset ds = generateDataset(sim, space, cfg);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(space.contains(em::StackupParams::fromVector(ds.x.row(i))));
  }
}

TEST(DatasetGen, UniqueModeDeduplicates) {
  em::EmSimulator sim;
  // Tiny space so collisions are certain: sample S1's Dt dimension heavily.
  GenerationConfig cfg;
  cfg.samples = 1000;
  cfg.seed = 3;
  cfg.unique = true;
  const ml::Dataset ds = generateDataset(sim, em::spaceS1(), cfg);
  std::set<std::string> keys;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    keys.insert(em::StackupParams::fromVector(ds.x.row(i)).toString());
  }
  EXPECT_EQ(keys.size(), ds.size());
}

TEST(DatasetGen, DeterministicForSeed) {
  em::EmSimulator sim;
  GenerationConfig cfg;
  cfg.samples = 200;
  cfg.seed = 4;
  const ml::Dataset a = generateDataset(sim, em::spaceS1(), cfg);
  const ml::Dataset b = generateDataset(sim, em::spaceS1(), cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.inputDim(); ++j) {
      ASSERT_DOUBLE_EQ(a.x(i, j), b.x(i, j));
    }
  }
}

TEST(DatasetGen, DifferentSeedsDiffer) {
  em::EmSimulator sim;
  GenerationConfig a, b;
  a.samples = b.samples = 100;
  a.seed = 5;
  b.seed = 6;
  const ml::Dataset da = generateDataset(sim, em::spaceS1(), a);
  const ml::Dataset db = generateDataset(sim, em::spaceS1(), b);
  bool differs = false;
  for (std::size_t i = 0; i < da.size() && !differs; ++i) {
    if (da.x(i, 0) != db.x(i, 0)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(DatasetGen, GenerationDoesNotBillSimulatorCalls) {
  em::EmSimulator sim;
  GenerationConfig cfg;
  cfg.samples = 100;
  generateDataset(sim, em::spaceS1(), cfg);
  EXPECT_EQ(sim.callCount(), 0u);
}

TEST(DatasetCache, RoundTripsThroughDisk) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "isop_cache_test";
  fs::remove_all(dir);
  ASSERT_EQ(setenv("ISOP_CACHE_DIR", dir.c_str(), 1), 0);

  em::EmSimulator sim;
  GenerationConfig cfg;
  cfg.samples = 64;
  cfg.seed = 77;
  cfg.spaceName = "S1";
  const auto space = em::spaceByName(cfg.spaceName);
  const ml::Dataset first = getOrGenerateDataset(sim, space, cfg);
  EXPECT_EQ(first.size(), 64u);
  // Second call must hit the cache and return identical data.
  const ml::Dataset second = getOrGenerateDataset(sim, space, cfg);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    for (std::size_t j = 0; j < first.inputDim(); ++j) {
      ASSERT_DOUBLE_EQ(second.x(i, j), first.x(i, j));
    }
  }
  unsetenv("ISOP_CACHE_DIR");
  fs::remove_all(dir);
}

TEST(DatasetCache, SpaceByNameEnvelope) {
  const auto envelope = em::spaceByName("envelope");
  EXPECT_EQ(envelope.dim(), em::kNumParams);
  EXPECT_TRUE(em::spaceS2().isWithin(envelope));
}

TEST(DesignerEnvelope, NestsBetweenS2AndTraining) {
  const auto envelope = em::designerEnvelope(0.25);
  EXPECT_TRUE(em::spaceS2().isWithin(envelope));
  EXPECT_TRUE(envelope.isWithin(em::trainingSpace()));
  // Margin 0 is exactly S2's bounding box.
  const auto zero = em::designerEnvelope(0.0);
  EXPECT_TRUE(zero.isWithin(em::spaceS2()));
  EXPECT_TRUE(em::spaceS2().isWithin(zero));
}

}  // namespace
}  // namespace isop::data
