#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tasks.hpp"

namespace isop::core {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  em::EmSimulator sim_;
  Objective objective_{taskT1().spec};  // |Z - 85| <= 1
};

TEST_F(AnalysisTest, InfeasibleNominalHasZeroishYield) {
  // The manual design sits at Z ~ 85.7; a relaxed copy at Z far outside the
  // band should fail everywhere.
  em::StackupParams off = manualDesignTableIx();
  off[em::Param::Wt] = 2.0;  // narrow trace -> Z way above 86
  const YieldReport report = yieldAnalysis(sim_, objective_, off, {}, 300, 1);
  EXPECT_EQ(report.passed, 0u);
  EXPECT_DOUBLE_EQ(report.yield, 0.0);
}

TEST_F(AnalysisTest, CenteredDesignYieldsMoreThanEdgeDesign) {
  // Z(manual) = 85.66: near the +1 band edge. A design re-centred to ~85.0
  // must survive tolerances better.
  em::StackupParams edge = manualDesignTableIx();
  em::StackupParams centered = edge;
  centered[em::Param::Wt] = 5.2;  // nudges Z down toward the band centre
  const double zCentered = sim_.evaluateUncounted(centered).z;
  ASSERT_NEAR(zCentered, 85.0, 0.5);

  const YieldReport edgeReport = yieldAnalysis(sim_, objective_, edge, {}, 1500, 2);
  const YieldReport centeredReport =
      yieldAnalysis(sim_, objective_, centered, {}, 1500, 2);
  EXPECT_GT(centeredReport.yield, edgeReport.yield);
  EXPECT_GT(centeredReport.yield, 0.3);
}

TEST_F(AnalysisTest, TighterTolerancesImproveYield) {
  const em::StackupParams design = manualDesignTableIx();
  ToleranceModel loose;
  loose.dimensionRel = 0.10;
  ToleranceModel tight;
  tight.dimensionRel = 0.01;
  tight.materialRel = 0.005;
  tight.roughnessAbs = 0.2;
  const double looseYield =
      yieldAnalysis(sim_, objective_, design, loose, 1200, 3).yield;
  const double tightYield =
      yieldAnalysis(sim_, objective_, design, tight, 1200, 3).yield;
  EXPECT_GE(tightYield, looseYield);
}

TEST_F(AnalysisTest, ReportFieldsAreConsistent) {
  const em::StackupParams design = manualDesignTableIx();
  const YieldReport report = yieldAnalysis(sim_, objective_, design, {}, 500, 4);
  EXPECT_EQ(report.samples, 500u);
  EXPECT_LE(report.passed, report.samples);
  EXPECT_NEAR(report.yield,
              static_cast<double>(report.passed) / static_cast<double>(report.samples),
              1e-12);
  EXPECT_LE(report.worstL, report.nominal.l);      // worst is at least nominal
  EXPECT_LE(report.worstNext, report.nominal.next);
  EXPECT_GT(report.fomMean, 0.0);
  EXPECT_DOUBLE_EQ(report.nominal.z, sim_.evaluateUncounted(design).z);
}

TEST_F(AnalysisTest, YieldIsDeterministicForSeed) {
  const em::StackupParams design = manualDesignTableIx();
  const auto a = yieldAnalysis(sim_, objective_, design, {}, 400, 7);
  const auto b = yieldAnalysis(sim_, objective_, design, {}, 400, 7);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_DOUBLE_EQ(a.fomMean, b.fomMean);
}

TEST_F(AnalysisTest, SensitivitySignsMatchPhysics) {
  const auto rows =
      sensitivityAnalysis(sim_, em::spaceS1(), manualDesignTableIx());
  auto row = [&](em::Param p) { return rows[static_cast<std::size_t>(p)]; };
  EXPECT_LT(row(em::Param::Wt).dZ, 0.0);   // wider trace -> lower Z
  EXPECT_GT(row(em::Param::Hc).dZ, 0.0);   // taller core -> higher Z
  EXPECT_LT(row(em::Param::DkC).dZ, 0.0);  // higher Dk -> lower Z
  EXPECT_GT(row(em::Param::Wt).dL, 0.0);   // wider trace -> less loss (L up)
  EXPECT_LT(row(em::Param::DfC).dL, 0.0);  // lossier laminate -> more loss
  EXPECT_GT(row(em::Param::Dt).dNext, 0.0);  // more distance -> less |NEXT|
}

TEST_F(AnalysisTest, SensitivityScaledPerGridStep) {
  // sigma_t's step is 1e6 S/m; the per-step dZ must be small even though
  // the raw derivative per S/m is minuscule — the scaling makes rows
  // comparable.
  const auto rows =
      sensitivityAnalysis(sim_, em::spaceS1(), manualDesignTableIx());
  for (const auto& row : rows) {
    EXPECT_TRUE(std::isfinite(row.dZ));
    EXPECT_LT(std::abs(row.dZ), 20.0) << "param " << row.param;
  }
}

}  // namespace
}  // namespace isop::core
