#include "core/board.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

IsopConfig quickBase() {
  IsopConfig cfg;
  cfg.harmonica.iterations = 2;
  cfg.harmonica.samplesPerIter = 150;
  cfg.hyperband.maxResource = 9;
  cfg.refine.epochs = 25;
  cfg.localSeeds = 3;
  cfg.seed = 1;
  return cfg;
}

std::vector<LayerSpec> twoLayerBoard() {
  std::vector<LayerSpec> layers;
  {
    LayerSpec l;
    l.name = "inner-85";
    l.space = em::spaceS1();
    l.task = taskT1();
    layers.push_back(std::move(l));
  }
  {
    LayerSpec l;
    l.name = "surface-120";
    l.simulator.layerType = em::LayerType::Microstrip;
    l.space = em::spaceS1();
    l.task = taskT1();
    l.task.spec.outputConstraints[0].target = 120.0;
    l.task.spec.outputConstraints[0].tolerance = 3.0;
    layers.push_back(std::move(l));
  }
  return layers;
}

TEST(BoardDesigner, DesignsEveryLayerFeasiblyWithOracle) {
  const BoardDesigner designer(quickBase());
  const BoardResult board = designer.design(twoLayerBoard());
  ASSERT_EQ(board.layers.size(), 2u);
  EXPECT_TRUE(board.allFeasible());
  EXPECT_EQ(board.feasibleLayers, 2u);
  // Each layer meets its own target under its own physics.
  EXPECT_NEAR(board.layers[0].optimization.best().metrics.z, 85.0, 1.0);
  EXPECT_NEAR(board.layers[1].optimization.best().metrics.z, 120.0, 3.0);
}

TEST(BoardDesigner, LayerNamesAndAccountingPropagate) {
  const BoardDesigner designer(quickBase());
  const BoardResult board = designer.design(twoLayerBoard());
  EXPECT_EQ(board.layers[0].name, "inner-85");
  EXPECT_EQ(board.layers[1].name, "surface-120");
  EXPECT_GT(board.totalAlgoSeconds, 0.0);
  EXPECT_GT(board.totalModeledSeconds, board.totalAlgoSeconds);
  for (const auto& layer : board.layers) {
    EXPECT_DOUBLE_EQ(layer.fom, layer.optimization.best().fom);
  }
}

TEST(BoardDesigner, EmptyBoardIsTriviallyFeasible) {
  const BoardDesigner designer(quickBase());
  const BoardResult board = designer.design({});
  EXPECT_TRUE(board.allFeasible());
  EXPECT_EQ(board.layers.size(), 0u);
}

TEST(BoardDesigner, CustomSurrogateFactoryIsUsed) {
  std::size_t factoryCalls = 0;
  const BoardDesigner designer(
      quickBase(), [&](const LayerSpec&, const em::EmSimulator& sim) {
        ++factoryCalls;
        return std::make_shared<SimulatorSurrogate>(sim);
      });
  designer.design(twoLayerBoard());
  EXPECT_EQ(factoryCalls, 2u);
}

TEST(BoardDesigner, DistinctSeedsPerLayer) {
  // Two identical layers must still explore differently (seed + index).
  std::vector<LayerSpec> layers;
  for (int i = 0; i < 2; ++i) {
    LayerSpec l;
    l.name = "dup";
    l.space = em::spaceS1();
    l.task = taskT1();
    layers.push_back(std::move(l));
  }
  IsopConfig base = quickBase();
  base.harmonica.parallelEval = false;
  const BoardDesigner designer(base);
  const BoardResult board = designer.design(layers);
  EXPECT_NE(board.layers[0].optimization.best().params.values,
            board.layers[1].optimization.best().params.values);
}

}  // namespace
}  // namespace isop::core
