#include "core/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tasks.hpp"

namespace isop::core {
namespace {

ObjectiveSpec specZ85() {
  ObjectiveSpec spec;
  spec.fom = {{em::Metric::L, 1.0}};
  spec.outputConstraints = {{em::Metric::Z, 85.0, 1.0, "Z"}};
  return spec;
}

TEST(Objective, FomIsWeightedAbsoluteSum) {
  Objective obj(taskT4().spec);  // |L| + 2 |NEXT|
  em::PerformanceMetrics m{85.0, -0.45, -0.01};
  EXPECT_NEAR(obj.fomValue(m), 0.45 + 2.0 * 0.01, 1e-12);
}

TEST(Objective, ExactPenaltyClipsAtTolerance) {
  Objective obj(specZ85());
  em::PerformanceMetrics inside{85.5, -0.4, 0.0};
  em::PerformanceMetrics atEdge{86.0, -0.4, 0.0};
  em::PerformanceMetrics outside{87.5, -0.4, 0.0};
  EXPECT_DOUBLE_EQ(obj.ocPenaltyExact(0, inside), 0.0);
  EXPECT_DOUBLE_EQ(obj.ocPenaltyExact(0, atEdge), 0.0);
  EXPECT_NEAR(obj.ocPenaltyExact(0, outside), 1.5, 1e-12);
  // Symmetric below the target.
  em::PerformanceMetrics below{82.0, -0.4, 0.0};
  EXPECT_NEAR(obj.ocPenaltyExact(0, below), 2.0, 1e-12);
}

TEST(Objective, SmoothPenaltyIsBoundedAndCenteredLow) {
  Objective obj(specZ85());
  em::PerformanceMetrics onTarget{85.0, -0.4, 0.0};
  em::PerformanceMetrics farOff{95.0, -0.4, 0.0};
  const double low = obj.ocPenaltySmooth(0, onTarget);
  const double high = obj.ocPenaltySmooth(0, farOff);
  EXPECT_GT(low, 0.0);
  EXPECT_LT(low, 0.2);  // deep inside the band with gammaFactor = 4
  EXPECT_GT(high, 0.9);
  EXPECT_LT(high, 2.0);  // sum of two sigmoids is < 2
}

TEST(Objective, SmoothPenaltyBoundaryValueMatchesCmax) {
  Objective obj(specZ85());
  em::PerformanceMetrics boundary{86.0, -0.4, 0.0};  // |Z-85| == tol
  EXPECT_NEAR(obj.ocPenaltySmooth(0, boundary), obj.ocBoundaryValue(0), 1e-9);
}

TEST(Objective, SmoothPenaltyDerivativeSignAndFiniteDifference) {
  Objective obj(specZ85());
  for (double z : {83.0, 84.5, 85.0, 85.5, 87.0}) {
    em::PerformanceMetrics m{z, -0.4, 0.0};
    const double analytic = obj.ocPenaltySmoothDerivative(0, m);
    const double h = 1e-6;
    em::PerformanceMetrics up{z + h, -0.4, 0.0}, down{z - h, -0.4, 0.0};
    const double numeric =
        (obj.ocPenaltySmooth(0, up) - obj.ocPenaltySmooth(0, down)) / (2.0 * h);
    EXPECT_NEAR(analytic, numeric, 1e-5) << "z=" << z;
    if (z > 85.0 + 0.1) EXPECT_GT(analytic, 0.0);
    if (z < 85.0 - 0.1) EXPECT_LT(analytic, 0.0);
  }
}

TEST(Objective, GammaFactorSharpensBoundary) {
  ObjectiveSpec spec = specZ85();
  Objective soft(spec, {.gammaFactor = 1.0});
  Objective sharp(spec, {.gammaFactor = 8.0});
  em::PerformanceMetrics inside{85.0, -0.4, 0.0};
  em::PerformanceMetrics outside{88.0, -0.4, 0.0};
  const double softContrast =
      soft.ocPenaltySmooth(0, outside) - soft.ocPenaltySmooth(0, inside);
  const double sharpContrast =
      sharp.ocPenaltySmooth(0, outside) - sharp.ocPenaltySmooth(0, inside);
  EXPECT_GT(sharpContrast, softContrast);
}

TEST(Objective, InputConstraintClipAndFeasibility) {
  ObjectiveSpec spec = specZ85();
  spec.inputConstraints = tableIxInputConstraints();
  Objective obj(spec);
  em::StackupParams x = manualDesignTableIx();  // Wt=5, St=6: 2W+S = 16 <= 20
  EXPECT_DOUBLE_EQ(obj.icPenalty(0, x), 0.0);
  x[em::Param::Wt] = 9.0;  // 2*9+6 = 24 > 20
  EXPECT_NEAR(obj.icPenalty(0, x), 4.0, 1e-12);
  // Dt - 5 Hc: manual Dt=20, Hc=8 -> -20 <= 0 ok.
  EXPECT_DOUBLE_EQ(obj.icPenalty(1, manualDesignTableIx()), 0.0);
}

TEST(Objective, GValueComposition) {
  ObjectiveSpec spec = specZ85();
  spec.inputConstraints = tableIxInputConstraints();
  Objective obj(spec);
  obj.weights().fom = 2.0;
  obj.weights().oc[0] = 3.0;
  em::StackupParams x = manualDesignTableIx();
  em::PerformanceMetrics m{87.0, -0.5, 0.0};  // violates Z by 1 beyond tol
  EXPECT_NEAR(obj.gValue(m, x), 2.0 * 0.5 + 3.0 * 1.0, 1e-12);
}

TEST(Objective, FeasibleChecksBothConstraintKinds) {
  ObjectiveSpec spec = specZ85();
  spec.inputConstraints = tableIxInputConstraints();
  Objective obj(spec);
  em::StackupParams x = manualDesignTableIx();
  EXPECT_TRUE(obj.feasible({85.5, -0.4, 0.0}, x));
  EXPECT_FALSE(obj.feasible({87.0, -0.4, 0.0}, x));  // OC violated
  x[em::Param::Wt] = 9.0;
  EXPECT_FALSE(obj.feasible({85.5, -0.4, 0.0}, x));  // IC violated
}

TEST(Objective, GradientMatchesFiniteDifferenceThroughLinearModel) {
  // Metric model: Z = 80 + 2*Wt, L = -0.1*St, NEXT = 0 (linear => exact grads).
  ObjectiveSpec spec = specZ85();
  spec.inputConstraints = tableIxInputConstraints();
  Objective obj(spec);
  auto metric = [](const em::StackupParams& x) {
    return em::PerformanceMetrics{80.0 + 2.0 * x[em::Param::Wt],
                                  -0.1 * x[em::Param::St], 0.0};
  };
  auto metricGrad = [](em::Metric which, std::span<double> g) {
    std::fill(g.begin(), g.end(), 0.0);
    if (which == em::Metric::Z) g[0] = 2.0;
    if (which == em::Metric::L) g[1] = -0.1;
  };
  em::StackupParams x = manualDesignTableIx();
  std::vector<double> grad(em::kNumParams);
  const double value = obj.gSmoothWithGradient(metric(x), x, metricGrad, grad);
  EXPECT_NEAR(value, obj.gSmoothValue(metric(x), x), 1e-12);

  const double h = 1e-6;
  for (std::size_t j : {0uz, 1uz, 5uz}) {
    em::StackupParams up = x, down = x;
    up.values[j] += h;
    down.values[j] -= h;
    const double numeric =
        (obj.gSmoothValue(metric(up), up) - obj.gSmoothValue(metric(down), down)) /
        (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 1e-5) << "param " << j;
  }
}

TEST(Objective, UniformWeightsInitialization) {
  Objective obj(taskT3().spec);
  EXPECT_DOUBLE_EQ(obj.weights().fom, 1.0);
  ASSERT_EQ(obj.weights().oc.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.weights().oc[0], 1.0);
  EXPECT_DOUBLE_EQ(obj.weights().oc[1], 1.0);
}

}  // namespace
}  // namespace isop::core
