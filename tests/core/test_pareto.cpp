#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

TEST(ParetoDominance, Definition) {
  ParetoPoint a, b;
  a.lossMagnitude = 0.4;
  a.nextMagnitude = 0.1;
  b.lossMagnitude = 0.5;
  b.nextMagnitude = 0.2;
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  // Equal points dominate neither way.
  EXPECT_FALSE(dominates(a, a));
  // Trade-off points do not dominate each other.
  b.lossMagnitude = 0.3;
  b.nextMagnitude = 0.3;
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

class ParetoTest : public ::testing::Test {
 protected:
  ParetoConfig quickConfig() const {
    ParetoConfig cfg;
    cfg.nextWeights = {0.0, 2.0, 8.0};
    cfg.isop.harmonica.iterations = 2;
    cfg.isop.harmonica.samplesPerIter = 150;
    cfg.isop.hyperband.maxResource = 9;
    cfg.isop.refine.epochs = 25;
    cfg.isop.localSeeds = 3;
    return cfg;
  }

  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_ =
      std::make_shared<SimulatorSurrogate>(sim_);
};

TEST_F(ParetoTest, FrontierIsNonDominatedAndSorted) {
  const ParetoExplorer explorer(sim_, oracle_, em::spaceS1(), taskT1(), quickConfig());
  const ParetoFront front = explorer.explore();
  EXPECT_EQ(front.sweepRuns, 3u);
  ASSERT_GE(front.points.size(), 2u);
  for (std::size_t i = 0; i < front.points.size(); ++i) {
    for (std::size_t j = 0; j < front.points.size(); ++j) {
      if (i != j) EXPECT_FALSE(dominates(front.points[i], front.points[j]));
    }
    if (i) {
      EXPECT_GE(front.points[i].lossMagnitude, front.points[i - 1].lossMagnitude);
      // Sorted by loss => crosstalk must be non-increasing on a clean front.
      EXPECT_LE(front.points[i].nextMagnitude, front.points[i - 1].nextMagnitude);
    }
  }
}

TEST_F(ParetoTest, EveryFrontierPointMeetsTheConstraints) {
  const ParetoExplorer explorer(sim_, oracle_, em::spaceS1(), taskT1(), quickConfig());
  const ParetoFront front = explorer.explore();
  for (const auto& point : front.points) {
    EXPECT_NEAR(point.metrics.z, 85.0, 1.0);
    EXPECT_TRUE(em::spaceS1().contains(point.params));
    EXPECT_DOUBLE_EQ(point.lossMagnitude, std::abs(point.metrics.l));
  }
}

TEST_F(ParetoTest, CrosstalkWeightSweepActuallyTradesOff) {
  const ParetoExplorer explorer(sim_, oracle_, em::spaceS1(), taskT1(), quickConfig());
  const ParetoFront front = explorer.explore();
  ASSERT_GE(front.points.size(), 2u);
  // The frontier must span a real range on at least one axis.
  const auto& first = front.points.front();
  const auto& last = front.points.back();
  EXPECT_GT(last.lossMagnitude - first.lossMagnitude +
                (first.nextMagnitude - last.nextMagnitude),
            1e-4);
}

}  // namespace
}  // namespace isop::core
