#include "core/trial_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

class TrialRunnerTest : public ::testing::Test {
 protected:
  TrialRunnerTest()
      : oracle_(std::make_shared<SimulatorSurrogate>(sim_)),
        runner_(sim_, oracle_, em::spaceS1(), taskT1()) {}

  MethodSpec isopSpec() const {
    MethodSpec spec;
    spec.name = "ISOP+";
    spec.kind = MethodSpec::Kind::Isop;
    spec.isop.harmonica.iterations = 2;
    spec.isop.harmonica.samplesPerIter = 120;
    spec.isop.hyperband.maxResource = 9;
    spec.isop.refine.epochs = 20;
    spec.isop.localSeeds = 3;
    return spec;
  }

  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_;
  TrialRunner runner_;
};

TEST_F(TrialRunnerTest, IsopTrialsSucceedWithOracle) {
  const TrialStats stats = runner_.run(isopSpec(), 3, 100);
  EXPECT_EQ(stats.trials, 3u);
  EXPECT_EQ(stats.successes, 3u);
  EXPECT_EQ(stats.outcomes.size(), 3u);
  EXPECT_LE(stats.dzMean, 1.0);
  EXPECT_LT(stats.lMean, 0.0);
  EXPECT_GT(stats.fomMean, 0.0);
  EXPECT_GT(stats.avgSamples, 100.0);
  EXPECT_GT(stats.avgRuntime, 0.0);
}

TEST_F(TrialRunnerTest, SaBaselineRunsAndValidatesWithEm) {
  MethodSpec sa;
  sa.name = "SA-1";
  sa.kind = MethodSpec::Kind::SimulatedAnnealing;
  sa.evalBudget = 2500;
  sim_.resetCounters();
  const TrialStats stats = runner_.run(sa, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  // Each trial validates up to rolloutCandidates designs with the EM model.
  EXPECT_LE(sim_.callCount(), 2u * sa.rolloutCandidates);
  EXPECT_GT(sim_.callCount(), 0u);
  EXPECT_NEAR(stats.avgSamples, 2500.0, 100.0);
}

TEST_F(TrialRunnerTest, TpeBaselineRespectsBudget) {
  MethodSpec bo;
  bo.name = "BO-2";
  bo.kind = MethodSpec::Kind::Tpe;
  bo.evalBudget = 150;
  const TrialStats stats = runner_.run(bo, 2, 100);
  EXPECT_NEAR(stats.avgSamples, 150.0, 5.0);
}

TEST_F(TrialRunnerTest, RandomSearchBaselineWorks) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 800;
  const TrialStats stats = runner_.run(rs, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  for (const auto& o : stats.outcomes) {
    EXPECT_TRUE(em::spaceS1().contains(o.params));
  }
}

TEST_F(TrialRunnerTest, GeneticBaselineWorks) {
  MethodSpec ga;
  ga.name = "GA";
  ga.kind = MethodSpec::Kind::Genetic;
  ga.evalBudget = 2000;
  const TrialStats stats = runner_.run(ga, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  EXPECT_NEAR(stats.avgSamples, 2000.0, 150.0);
  for (const auto& o : stats.outcomes) {
    EXPECT_TRUE(em::spaceS1().contains(o.params));
  }
}

TEST_F(TrialRunnerTest, StatsAggregateOutcomes) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 300;
  const TrialStats stats = runner_.run(rs, 4, 7);
  ASSERT_EQ(stats.outcomes.size(), 4u);
  double fomSum = 0.0;
  for (const auto& o : stats.outcomes) fomSum += o.fom;
  EXPECT_NEAR(stats.fomMean, fomSum / 4.0, 1e-12);
  std::size_t successes = 0;
  for (const auto& o : stats.outcomes) successes += o.success;
  EXPECT_EQ(stats.successes, successes);
}

TEST_F(TrialRunnerTest, DistinctSeedsGiveDistinctTrials) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 50;
  const TrialStats stats = runner_.run(rs, 3, 500);
  // With 50 random samples per trial and different seeds, the three final
  // designs are almost surely distinct.
  EXPECT_TRUE(stats.outcomes[0].params.values != stats.outcomes[1].params.values ||
              stats.outcomes[1].params.values != stats.outcomes[2].params.values);
}

TEST(FomImprovement, MatchesEquation12) {
  EXPECT_NEAR(fomImprovementPercent(0.446, 0.436), 100.0 * (0.446 - 0.436) / 0.446,
              1e-12);
  EXPECT_GT(fomImprovementPercent(0.5, 0.4), 0.0);   // we are better
  EXPECT_LT(fomImprovementPercent(0.4, 0.5), 0.0);   // we are worse
  EXPECT_DOUBLE_EQ(fomImprovementPercent(0.0, 0.1), 0.0);  // guarded
}

}  // namespace
}  // namespace isop::core
