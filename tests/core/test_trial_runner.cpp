#include "core/trial_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

class TrialRunnerTest : public ::testing::Test {
 protected:
  TrialRunnerTest()
      : oracle_(std::make_shared<SimulatorSurrogate>(sim_)),
        runner_(sim_, oracle_, em::spaceS1(), taskT1()) {}

  MethodSpec isopSpec() const {
    MethodSpec spec;
    spec.name = "ISOP+";
    spec.kind = MethodSpec::Kind::Isop;
    spec.isop.harmonica.iterations = 2;
    spec.isop.harmonica.samplesPerIter = 120;
    spec.isop.hyperband.maxResource = 9;
    spec.isop.refine.epochs = 20;
    spec.isop.localSeeds = 3;
    return spec;
  }

  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_;
  TrialRunner runner_;
};

TEST_F(TrialRunnerTest, IsopTrialsSucceedWithOracle) {
  const TrialStats stats = runner_.run(isopSpec(), 3, 100);
  EXPECT_EQ(stats.trials, 3u);
  EXPECT_EQ(stats.successes, 3u);
  EXPECT_EQ(stats.outcomes.size(), 3u);
  EXPECT_LE(stats.dzMean, 1.0);
  EXPECT_LT(stats.lMean, 0.0);
  EXPECT_GT(stats.fomMean, 0.0);
  EXPECT_GT(stats.avgSamples, 100.0);
  EXPECT_GT(stats.avgRuntime, 0.0);
}

TEST_F(TrialRunnerTest, SaBaselineRunsAndValidatesWithEm) {
  MethodSpec sa;
  sa.name = "SA-1";
  sa.kind = MethodSpec::Kind::SimulatedAnnealing;
  sa.evalBudget = 2500;
  sim_.resetCounters();
  const TrialStats stats = runner_.run(sa, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  // Each trial validates up to rolloutCandidates designs with the EM model.
  EXPECT_LE(sim_.callCount(), 2u * sa.rolloutCandidates);
  EXPECT_GT(sim_.callCount(), 0u);
  EXPECT_NEAR(stats.avgSamples, 2500.0, 100.0);
}

TEST_F(TrialRunnerTest, TpeBaselineRespectsBudget) {
  MethodSpec bo;
  bo.name = "BO-2";
  bo.kind = MethodSpec::Kind::Tpe;
  bo.evalBudget = 150;
  const TrialStats stats = runner_.run(bo, 2, 100);
  EXPECT_NEAR(stats.avgSamples, 150.0, 5.0);
}

TEST_F(TrialRunnerTest, RandomSearchBaselineWorks) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 800;
  const TrialStats stats = runner_.run(rs, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  for (const auto& o : stats.outcomes) {
    EXPECT_TRUE(em::spaceS1().contains(o.params));
  }
}

TEST_F(TrialRunnerTest, GeneticBaselineWorks) {
  MethodSpec ga;
  ga.name = "GA";
  ga.kind = MethodSpec::Kind::Genetic;
  ga.evalBudget = 2000;
  const TrialStats stats = runner_.run(ga, 2, 100);
  EXPECT_EQ(stats.trials, 2u);
  EXPECT_NEAR(stats.avgSamples, 2000.0, 150.0);
  for (const auto& o : stats.outcomes) {
    EXPECT_TRUE(em::spaceS1().contains(o.params));
  }
}

TEST_F(TrialRunnerTest, StatsAggregateOutcomes) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 300;
  const TrialStats stats = runner_.run(rs, 4, 7);
  ASSERT_EQ(stats.outcomes.size(), 4u);
  double fomSum = 0.0;
  for (const auto& o : stats.outcomes) fomSum += o.fom;
  EXPECT_NEAR(stats.fomMean, fomSum / 4.0, 1e-12);
  std::size_t successes = 0;
  for (const auto& o : stats.outcomes) successes += o.success;
  EXPECT_EQ(stats.successes, successes);
}

TEST_F(TrialRunnerTest, DistinctSeedsGiveDistinctTrials) {
  MethodSpec rs;
  rs.name = "RS";
  rs.kind = MethodSpec::Kind::RandomSearch;
  rs.evalBudget = 50;
  const TrialStats stats = runner_.run(rs, 3, 500);
  // With 50 random samples per trial and different seeds, the three final
  // designs are almost surely distinct.
  EXPECT_TRUE(stats.outcomes[0].params.values != stats.outcomes[1].params.values ||
              stats.outcomes[1].params.values != stats.outcomes[2].params.values);
}

TEST_F(TrialRunnerTest, SharedEngineCrossTrialMemoKeepsResultsIdenticalToColdCache) {
  // One EvalEngine spans all trials of a method, so later trials can be
  // served from earlier trials' memoized forward evaluations. The memo must
  // be invisible in every reported number except evalStats: each warm trial
  // has to match a cold-cache run of the same seed exactly — memo hits
  // return the identical cached model output and are still billed as
  // queries (billQueries), so "samples seen" cannot move either.
  const MethodSpec spec = isopSpec();
  const TrialStats warm = runner_.run(spec, 3, 100);
  ASSERT_EQ(warm.outcomes.size(), 3u);

  std::size_t warmHits = 0, coldHits = 0;
  for (std::size_t t = 0; t < 3; ++t) {
    // A fresh runner gets a fresh engine: cold memo for this seed.
    const TrialRunner cold(sim_, oracle_, em::spaceS1(), taskT1());
    const TrialStats solo = cold.run(spec, 1, 100 + t);
    const TrialOutcome& w = warm.outcomes[t];
    const TrialOutcome& c = solo.outcomes[0];
    EXPECT_EQ(w.params.values, c.params.values) << "trial " << t;
    EXPECT_EQ(w.fom, c.fom) << "trial " << t;
    EXPECT_EQ(w.g, c.g) << "trial " << t;
    EXPECT_EQ(w.success, c.success) << "trial " << t;
    EXPECT_EQ(w.samplesSeen, c.samplesSeen) << "trial " << t;
    EXPECT_EQ(w.emCalls, c.emCalls) << "trial " << t;
    // The per-trial stats delta sees the same traffic; warm-starting can
    // only convert model rows into memo hits, never change the row count.
    EXPECT_EQ(w.evalStats.rows, c.evalStats.rows) << "trial " << t;
    EXPECT_GE(w.evalStats.memoHits, c.evalStats.memoHits) << "trial " << t;
    EXPECT_LE(w.evalStats.modelRows, c.evalStats.modelRows) << "trial " << t;
    EXPECT_EQ(w.evalStats.memoHits + w.evalStats.dedupedRows + w.evalStats.modelRows,
              w.evalStats.rows)
        << "trial " << t;
    warmHits += w.evalStats.memoHits;
    coldHits += c.evalStats.memoHits;
  }
  // The shared engine can only add hits on top of what isolated engines see
  // (distinct seeds may or may not revisit earlier trials' designs — the
  // guaranteed warm-start case is pinned by the repeat-seed test below).
  EXPECT_GE(warmHits, coldHits);
  for (std::size_t t = 1; t < 3; ++t) {
    EXPECT_GT(warm.outcomes[t].evalStats.memoHits, 0u) << "trial " << t;
  }
}

TEST_F(TrialRunnerTest, SharedEngineWarmStartServesRepeatRunEntirelyFromMemo) {
  // The mechanism behind the cross-trial hoist, isolated: two identical runs
  // against one lent engine. The second run's trajectory revisits exactly
  // the first's designs, so every forward row is a memo hit, no model rows
  // run — and every reported number still matches (hits are billed).
  IsopConfig cfg = isopSpec().isop;
  cfg.seed = 100;
  const auto engine = std::make_shared<EvalEngine>(*oracle_, sim_, cfg.evalEngine);
  IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  optimizer.setSharedEngine(engine);
  const IsopResult first = optimizer.run();
  const IsopResult second = optimizer.run();

  EXPECT_GT(first.evalStats.modelRows, 0u);
  EXPECT_EQ(second.evalStats.modelRows, 0u);
  EXPECT_EQ(second.evalStats.memoHits + second.evalStats.dedupedRows,
            second.evalStats.rows);
  EXPECT_EQ(second.evalStats.simModelRows, 0u);
  // Stats are per-run deltas, not engine lifetime totals.
  EXPECT_EQ(first.evalStats.rows, second.evalStats.rows);
  // Billing is hit-agnostic, so the paper's columns cannot move.
  EXPECT_EQ(first.surrogateQueries, second.surrogateQueries);
  EXPECT_EQ(first.simulatorCalls, second.simulatorCalls);
  ASSERT_EQ(first.candidates.size(), second.candidates.size());
  for (std::size_t i = 0; i < first.candidates.size(); ++i) {
    EXPECT_EQ(first.candidates[i].params.values, second.candidates[i].params.values);
    EXPECT_EQ(first.candidates[i].g, second.candidates[i].g);
    EXPECT_EQ(first.candidates[i].feasible, second.candidates[i].feasible);
  }
}

TEST(FomImprovement, MatchesEquation12) {
  EXPECT_NEAR(fomImprovementPercent(0.446, 0.436), 100.0 * (0.446 - 0.436) / 0.446,
              1e-12);
  EXPECT_GT(fomImprovementPercent(0.5, 0.4), 0.0);   // we are better
  EXPECT_LT(fomImprovementPercent(0.4, 0.5), 0.0);   // we are worse
  EXPECT_DOUBLE_EQ(fomImprovementPercent(0.0, 0.1), 0.0);  // guarded
}

}  // namespace
}  // namespace isop::core
