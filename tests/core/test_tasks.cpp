#include "core/tasks.hpp"

#include <gtest/gtest.h>

namespace isop::core {
namespace {

TEST(Tasks, T1MatchesTableII) {
  const Task t = taskT1();
  EXPECT_EQ(t.name, "T1");
  ASSERT_EQ(t.spec.fom.size(), 1u);
  EXPECT_EQ(t.spec.fom[0].metric, em::Metric::L);
  ASSERT_EQ(t.spec.outputConstraints.size(), 1u);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[0].target, 85.0);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[0].tolerance, 1.0);
  EXPECT_TRUE(t.spec.inputConstraints.empty());
}

TEST(Tasks, T2MatchesTableII) {
  const Task t = taskT2();
  ASSERT_EQ(t.spec.outputConstraints.size(), 1u);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[0].target, 100.0);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[0].tolerance, 2.0);
}

TEST(Tasks, T3AddsNextConstraint) {
  const Task t = taskT3();
  ASSERT_EQ(t.spec.outputConstraints.size(), 2u);
  EXPECT_EQ(t.spec.outputConstraints[1].metric, em::Metric::Next);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[1].target, 0.0);
  EXPECT_DOUBLE_EQ(t.spec.outputConstraints[1].tolerance, 0.05);
}

TEST(Tasks, T4HasCompositeFom) {
  const Task t = taskT4();
  ASSERT_EQ(t.spec.fom.size(), 2u);
  EXPECT_EQ(t.spec.fom[0].metric, em::Metric::L);
  EXPECT_DOUBLE_EQ(t.spec.fom[0].coefficient, 1.0);
  EXPECT_EQ(t.spec.fom[1].metric, em::Metric::Next);
  EXPECT_DOUBLE_EQ(t.spec.fom[1].coefficient, 2.0);
  ASSERT_EQ(t.spec.outputConstraints.size(), 1u);
}

TEST(Tasks, LookupByName) {
  EXPECT_EQ(taskByName("T3").name, "T3");
  EXPECT_THROW(taskByName("T9"), std::invalid_argument);
}

TEST(Tasks, TableIxInputConstraintsEncodeThePaperInequalities) {
  const auto ics = tableIxInputConstraints();
  ASSERT_EQ(ics.size(), 3u);
  // 1) 2 Wt + St <= 20.
  EXPECT_DOUBLE_EQ(ics[0].coefficients[0], 2.0);
  EXPECT_DOUBLE_EQ(ics[0].coefficients[1], 1.0);
  EXPECT_DOUBLE_EQ(ics[0].bound, 20.0);
  // 2) Dt - 5 Hc <= 0.
  EXPECT_DOUBLE_EQ(ics[1].coefficients[2], 1.0);
  EXPECT_DOUBLE_EQ(ics[1].coefficients[5], -5.0);
  EXPECT_DOUBLE_EQ(ics[1].bound, 0.0);
  // 3) Dt - 5 Hp <= 0.
  EXPECT_DOUBLE_EQ(ics[2].coefficients[6], -5.0);
}

TEST(Tasks, ManualDesignMatchesTableIxRow) {
  const em::StackupParams p = manualDesignTableIx();
  EXPECT_DOUBLE_EQ(p[em::Param::Wt], 5.0);
  EXPECT_DOUBLE_EQ(p[em::Param::St], 6.0);
  EXPECT_DOUBLE_EQ(p[em::Param::Dt], 20.0);
  EXPECT_DOUBLE_EQ(p[em::Param::SigmaT], 5.8e7);
  EXPECT_DOUBLE_EQ(p[em::Param::Rt], -14.5);
  EXPECT_DOUBLE_EQ(p[em::Param::DkC], 4.3);
  EXPECT_DOUBLE_EQ(p[em::Param::DfP], 0.001);
}

TEST(Tasks, ManualDesignSatisfiesTableIxConstraints) {
  Objective obj({taskT1().spec.fom, taskT1().spec.outputConstraints,
                 tableIxInputConstraints()});
  const em::StackupParams p = manualDesignTableIx();
  for (std::size_t k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(obj.icPenalty(k, p), 0.0);
}

}  // namespace
}  // namespace isop::core
