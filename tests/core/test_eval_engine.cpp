// EvalEngine tests: dedup/memoization semantics, paper-faithful query
// billing (a memo hit still counts as a sample seen), the EvalBatch
// builder, parallel EM fan-out with deterministic ordering, and the
// headline guarantee — a full ISOP+ trial produces identical candidates
// at 1, 4, and hardware-default thread counts.
#include "core/eval/eval_engine.hpp"

#include <gtest/gtest.h>

#include "core/isop.hpp"
#include "core/simulator_surrogate.hpp"
#include "obs/obs.hpp"

namespace isop::core {
namespace {

em::StackupParams designAt(double t) {
  // A valid in-space S1 design parameterized by t in [0, 1].
  const em::ParameterSpace space = em::spaceS1();
  em::StackupParams p;
  for (std::size_t j = 0; j < em::kNumParams; ++j) {
    const auto r = space.range(j);
    p.values[j] = r.lo + t * (r.hi - r.lo);
  }
  return p;
}

class EvalEngineTest : public ::testing::Test {
 protected:
  em::EmSimulator sim_;
  SimulatorSurrogate oracle_{sim_};
};

TEST_F(EvalEngineTest, DedupsWithinBatchAndBillsEveryRow) {
  EvalEngine engine(oracle_);
  // 3 unique designs, each submitted 3 times.
  std::vector<em::StackupParams> designs;
  for (int rep = 0; rep < 3; ++rep) {
    for (double t : {0.25, 0.5, 0.75}) designs.push_back(designAt(t));
  }
  oracle_.resetQueryCount();
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);
  ASSERT_EQ(out.size(), 9u);
  // Paper accounting: all 9 rows billed even though only 3 ran the model.
  EXPECT_EQ(oracle_.queryCount(), 9u);
  const EvalEngineStats s = engine.stats();
  EXPECT_EQ(s.rows, 9u);
  EXPECT_EQ(s.modelRows, 3u);
  EXPECT_EQ(s.dedupedRows, 6u);
  EXPECT_EQ(s.memoHits, 0u);
  // Every copy of a design got the same metrics.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t rep = 1; rep < 3; ++rep) {
      EXPECT_EQ(out[i].asArray(), out[rep * 3 + i].asArray());
    }
  }
}

TEST_F(EvalEngineTest, MemoizesAcrossBatchesAndAgreesWithDirectPredict) {
  EvalEngine engine(oracle_);
  std::vector<em::StackupParams> designs{designAt(0.1), designAt(0.9)};
  std::vector<em::PerformanceMetrics> first, second;
  engine.predictMetrics(designs, first);
  oracle_.resetQueryCount();
  engine.predictMetrics(designs, second);
  // Second pass is served fully from the memo but still billed.
  EXPECT_EQ(oracle_.queryCount(), 2u);
  EXPECT_EQ(engine.stats().memoHits, 2u);
  EXPECT_EQ(engine.stats().modelRows, 2u);
  EXPECT_EQ(engine.cacheSize(), 2u);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_EQ(first[i].asArray(), second[i].asArray());
    // And both match the un-engined surrogate path bitwise.
    const em::PerformanceMetrics direct = sim_.simulate(designs[i]);
    EXPECT_EQ(first[i].asArray(), direct.asArray());
  }
}

TEST_F(EvalEngineTest, MemoizationCanBeDisabled) {
  EvalEngineConfig cfg;
  cfg.memoize = false;
  EvalEngine engine(oracle_, cfg);
  std::vector<em::StackupParams> designs{designAt(0.3)};
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);
  engine.predictMetrics(designs, out);
  EXPECT_EQ(engine.stats().memoHits, 0u);
  EXPECT_EQ(engine.stats().modelRows, 2u);
  EXPECT_EQ(engine.cacheSize(), 0u);
}

TEST_F(EvalEngineTest, PredictOneUsesAndFillsTheSharedMemo) {
  EvalEngine engine(oracle_);
  const em::StackupParams x = designAt(0.4);
  oracle_.resetQueryCount();
  const em::PerformanceMetrics a = engine.predictOne(x);
  const em::PerformanceMetrics b = engine.predictOne(x);  // memo hit
  EXPECT_EQ(oracle_.queryCount(), 2u);  // hit still billed
  EXPECT_EQ(a.asArray(), b.asArray());
  EXPECT_EQ(engine.stats().memoHits, 1u);
  // The scalar path warms the batch path's cache too.
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(std::vector<em::StackupParams>{x}, out);
  EXPECT_EQ(engine.stats().memoHits, 2u);
}

TEST_F(EvalEngineTest, EvalBatchSlotsSurviveDuplicates) {
  EvalEngine engine(oracle_);
  EvalBatch batch;
  const std::size_t s0 = batch.add(designAt(0.2));
  const std::size_t s1 = batch.add(designAt(0.8));
  const std::size_t s2 = batch.add(designAt(0.2));  // duplicate of s0
  EXPECT_FALSE(batch.evaluated());
  engine.run(batch);
  ASSERT_TRUE(batch.evaluated());
  EXPECT_EQ(batch.metrics(s0).asArray(), batch.metrics(s2).asArray());
  EXPECT_NE(batch.metrics(s0).asArray(), batch.metrics(s1).asArray());
  batch.clear();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_FALSE(batch.evaluated());
}

TEST_F(EvalEngineTest, LargeBatchIsChunkIndependent) {
  // The same 300-row batch through a serial engine, a 1-thread pool and a
  // many-thread pool must agree bitwise (chunking depends on rows only).
  std::vector<em::StackupParams> designs;
  for (std::size_t i = 0; i < 300; ++i) {
    designs.push_back(designAt(static_cast<double>(i % 97) / 96.0));
  }
  EvalEngineConfig serialCfg;
  serialCfg.parallel = false;
  serialCfg.memoize = false;
  EvalEngine serial(oracle_, serialCfg);
  std::vector<em::PerformanceMetrics> want;
  serial.predictMetrics(designs, want);

  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EvalEngineConfig cfg;
    cfg.memoize = false;
    cfg.pool = &pool;
    EvalEngine engine(oracle_, cfg);
    std::vector<em::PerformanceMetrics> got;
    engine.predictMetrics(designs, got);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].asArray(), want[i].asArray()) << "row " << i;
    }
  }
}

TEST_F(EvalEngineTest, SimulateBatchDedupsBillsAndPreservesOrder) {
  EvalEngine engine(oracle_, sim_);
  ASSERT_TRUE(engine.hasSimulator());
  std::vector<em::StackupParams> designs{designAt(0.6), designAt(0.2), designAt(0.6),
                                         designAt(0.9)};
  sim_.resetCounters();
  const auto out = engine.simulateBatch(designs);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(sim_.callCount(), 4u);  // dup billed like the serial loop
  const EvalEngineStats s = engine.stats();
  EXPECT_EQ(s.simRows, 4u);
  EXPECT_EQ(s.simModelRows, 3u);
  EXPECT_EQ(s.simDedupedRows, 1u);
  // Submission order preserved, duplicates identical, values exact.
  EXPECT_EQ(out[0].asArray(), out[2].asArray());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].asArray(), sim_.simulate(designs[i]).asArray()) << "row " << i;
  }
  // A repeat batch is all memo hits but still fully billed.
  sim_.resetCounters();
  const auto again = engine.simulateBatch(designs);
  EXPECT_EQ(sim_.callCount(), 4u);
  EXPECT_EQ(engine.stats().simMemoHits, 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(again[i].asArray(), out[i].asArray());
}

TEST_F(EvalEngineTest, StatsRatiosAreConsistent) {
  EvalEngine engine(oracle_);
  std::vector<em::PerformanceMetrics> out;
  std::vector<em::StackupParams> designs{designAt(0.5), designAt(0.5)};
  engine.predictMetrics(designs, out);
  engine.predictMetrics(designs, out);
  const EvalEngineStats s = engine.stats();
  EXPECT_EQ(s.rows, 4u);
  EXPECT_EQ(s.modelRows, 1u);
  EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);        // 2 memo hits / 4 rows
  EXPECT_DOUBLE_EQ(s.dedupRatio(), 0.75);    // (2 hits + 1 dup) / 4 rows
}

TEST_F(EvalEngineTest, TinyCacheEvictsLruAndKeepsResultsBitwiseIdentical) {
  // 16 shards x 1 entry: heavy churn forces LRU replacement, but every
  // metric must come back bitwise identical to the unbounded-cache engine —
  // eviction only trades hit rate, never results.
  EvalEngineConfig tinyCfg;
  tinyCfg.maxCacheEntries = 16;
  const EvalEngine tiny(oracle_, tinyCfg);
  const EvalEngine unbounded(oracle_);

  std::vector<em::StackupParams> designs;
  for (int i = 0; i < 200; ++i) designs.push_back(designAt(i / 199.0));
  std::vector<em::PerformanceMetrics> tinyOut, refOut;
  for (int pass = 0; pass < 2; ++pass) {
    tiny.predictMetrics(designs, tinyOut);
    unbounded.predictMetrics(designs, refOut);
  }
  ASSERT_EQ(tinyOut.size(), refOut.size());
  for (std::size_t i = 0; i < tinyOut.size(); ++i) {
    EXPECT_EQ(tinyOut[i].asArray(), refOut[i].asArray()) << "design " << i;
  }

  const EvalEngineStats ts = tiny.stats();
  EXPECT_GT(ts.evictions, 0u);
  EXPECT_EQ(ts.evictions, tiny.cacheEvictions());
  EXPECT_LE(tiny.cacheSize(), tinyCfg.maxCacheEntries);
  EXPECT_EQ(unbounded.stats().evictions, 0u);
  // Paper billing is hit/miss-agnostic: both engines bill every row.
  EXPECT_EQ(ts.rows, unbounded.stats().rows);
}

TEST_F(EvalEngineTest, EvictionsPublishToObsCounterAsDeltas) {
  obs::registry().reset();
  obs::setMetricsEnabled(true);
  EvalEngineConfig tinyCfg;
  tinyCfg.maxCacheEntries = 16;
  const EvalEngine engine(oracle_, tinyCfg);
  std::vector<em::StackupParams> designs;
  for (int i = 0; i < 100; ++i) designs.push_back(designAt(i / 99.0));
  std::vector<em::PerformanceMetrics> out;
  engine.predictMetrics(designs, out);
  engine.predictMetrics(designs, out);
  obs::setMetricsEnabled(false);
  EXPECT_EQ(obs::registry().counter("eval.memo.evictions").value(),
            engine.cacheEvictions());
  EXPECT_GT(engine.cacheEvictions(), 0u);
}

TEST_F(EvalEngineTest, GradientBatchMatchesPerRowAndDedupsUnbilled) {
  EvalEngine engine(oracle_);
  // 4 unique designs, one duplicated twice.
  std::vector<em::StackupParams> designs{designAt(0.2), designAt(0.5), designAt(0.2),
                                         designAt(0.8), designAt(0.35)};
  oracle_.resetQueryCount();
  Matrix grads;
  engine.gradientBatch(designs, /*outputIndex=*/1, grads);
  // Gradient rows are not "samples seen" (only forward predictions bill).
  EXPECT_EQ(oracle_.queryCount(), 0u);
  ASSERT_EQ(grads.rows(), designs.size());
  ASSERT_EQ(grads.cols(), em::kNumParams);
  const EvalEngineStats s = engine.stats();
  EXPECT_EQ(s.gradBatches, 1u);
  EXPECT_EQ(s.gradRows, 5u);
  EXPECT_EQ(s.gradDedupedRows, 1u);
  EXPECT_EQ(s.gradModelRows, 4u);
  // Forward counters untouched: gradients live in their own accounting.
  EXPECT_EQ(s.rows, 0u);
  // Every row equals the direct per-design call, duplicates included.
  std::vector<double> want(em::kNumParams);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    oracle_.inputGradient(designs[i].asVector(), 1, want);
    for (std::size_t j = 0; j < em::kNumParams; ++j) {
      EXPECT_EQ(grads(i, j), want[j]) << "row " << i << " input " << j;
    }
  }
}

TEST_F(EvalEngineTest, GradientBatchIsThreadCountIndependent) {
  // Chunked backward dispatch depends only on the row count: a serial
  // engine, a 1-thread pool and a 4-thread pool must agree bitwise.
  std::vector<em::StackupParams> designs;
  for (std::size_t i = 0; i < 150; ++i) {
    designs.push_back(designAt(static_cast<double>(i % 53) / 52.0));
  }
  EvalEngineConfig serialCfg;
  serialCfg.parallel = false;
  EvalEngine serial(oracle_, serialCfg);
  Matrix want;
  serial.gradientBatch(designs, 0, want);

  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EvalEngineConfig cfg;
    cfg.pool = &pool;
    EvalEngine engine(oracle_, cfg);
    Matrix got;
    engine.gradientBatch(designs, 0, got);
    ASSERT_EQ(got.rows(), want.rows());
    for (std::size_t i = 0; i < designs.size(); ++i) {
      for (std::size_t j = 0; j < em::kNumParams; ++j) {
        EXPECT_EQ(got(i, j), want(i, j)) << "row " << i << " input " << j;
      }
    }
  }
}

TEST_F(EvalEngineTest, GradientBatchPublishesObsCounters) {
  obs::registry().reset();
  obs::setMetricsEnabled(true);
  EvalEngine engine(oracle_);
  std::vector<em::StackupParams> designs{designAt(0.1), designAt(0.1), designAt(0.7)};
  Matrix grads;
  engine.gradientBatch(designs, 2, grads);
  obs::setMetricsEnabled(false);
  obs::Registry& reg = obs::registry();
  EXPECT_EQ(reg.counter("eval.grad.batches").value(), 1u);
  EXPECT_EQ(reg.counter("eval.grad.rows").value(), 3u);
  EXPECT_EQ(reg.counter("eval.grad.dedup.rows").value(), 1u);
  EXPECT_EQ(reg.counter("eval.grad.model.rows").value(), 2u);
}

// The headline determinism guarantee: a full ISOP+ trial (Harmonica +
// Hyperband + Adam + EM-validated roll-out, all through one shared engine)
// returns identical candidates regardless of the thread count.
class IsopThreadCountTest : public ::testing::Test {
 protected:
  static IsopConfig quickConfig() {
    IsopConfig cfg;
    cfg.harmonica.iterations = 2;
    cfg.harmonica.samplesPerIter = 120;
    cfg.harmonica.topMonomials = 4;
    cfg.hyperband.maxResource = 9;
    cfg.refine.epochs = 20;
    cfg.localSeeds = 3;
    cfg.candNum = 3;
    cfg.seed = 21;
    return cfg;
  }

  IsopResult runWithPool(ThreadPool* pool) {
    oracle_->resetQueryCount();
    sim_.resetCounters();
    IsopConfig cfg = quickConfig();
    cfg.evalEngine.pool = pool;
    cfg.harmonica.parallelEval = false;  // the engine is the only fan-out
    const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
    return optimizer.run();
  }

  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_ = std::make_shared<SimulatorSurrogate>(sim_);
};

TEST_F(IsopThreadCountTest, TrialIsIdenticalAt1And4AndDefaultThreads) {
  ThreadPool one(1), four(4);
  const IsopResult r1 = runWithPool(&one);
  const IsopResult r4 = runWithPool(&four);
  const IsopResult rn = runWithPool(nullptr);  // ThreadPool::global()

  ASSERT_FALSE(r1.candidates.empty());
  ASSERT_EQ(r1.candidates.size(), r4.candidates.size());
  ASSERT_EQ(r1.candidates.size(), rn.candidates.size());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    EXPECT_EQ(r1.candidates[i].params.values, r4.candidates[i].params.values);
    EXPECT_EQ(r1.candidates[i].params.values, rn.candidates[i].params.values);
    EXPECT_EQ(r1.candidates[i].g, r4.candidates[i].g);
    EXPECT_EQ(r1.candidates[i].g, rn.candidates[i].g);
    EXPECT_EQ(r1.candidates[i].metrics.asArray(), r4.candidates[i].metrics.asArray());
  }
  // Query accounting is thread-count independent too.
  EXPECT_EQ(r1.surrogateQueries, r4.surrogateQueries);
  EXPECT_EQ(r1.surrogateQueries, rn.surrogateQueries);
  EXPECT_EQ(r1.evalStats.rows, r4.evalStats.rows);
  EXPECT_EQ(r1.evalStats.memoHits, r4.evalStats.memoHits);
  EXPECT_EQ(r1.evalStats.modelRows, r4.evalStats.modelRows);
  // The run exercises the memo (Harmonica resamples, roll-out revalidates).
  EXPECT_GT(r1.evalStats.memoHits + r1.evalStats.dedupedRows, 0u);
}

TEST_F(IsopThreadCountTest, EvalStatsAccountForAllSurrogateQueries) {
  ThreadPool four(4);
  const IsopResult r = runWithPool(&four);
  // Every surrogate query flowed through the engine: rows requested equals
  // the queries billed (predictWithSpread-based uncertainty is off here).
  EXPECT_EQ(r.evalStats.rows, r.surrogateQueries);
  EXPECT_EQ(r.evalStats.rows,
            r.evalStats.memoHits + r.evalStats.dedupedRows + r.evalStats.modelRows);
  EXPECT_EQ(r.evalStats.simRows, r.simulatorCalls);
}

}  // namespace
}  // namespace isop::core
