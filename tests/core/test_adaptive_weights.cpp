// Algorithm 2 behaviour: constraint weights decay once enough of a batch is
// feasible, respect the FoM-derived floor, and never move when disabled.
#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "core/tasks.hpp"

namespace isop::core {
namespace {

ObjectiveSpec specWithIc() {
  ObjectiveSpec spec;
  spec.fom = {{em::Metric::L, 1.0}};
  spec.outputConstraints = {{em::Metric::Z, 85.0, 1.0, "Z"}};
  spec.inputConstraints = tableIxInputConstraints();
  return spec;
}

/// Batch where `feasibleFraction` of samples satisfy the Z constraint.
void makeBatch(double feasibleFraction, std::size_t n,
               std::vector<em::PerformanceMetrics>& metrics,
               std::vector<em::StackupParams>& designs) {
  metrics.clear();
  designs.clear();
  const auto feasibleCount = static_cast<std::size_t>(feasibleFraction * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = i < feasibleCount ? 85.0 : 95.0;
    metrics.push_back({z, -0.4, 0.0});
    designs.push_back(manualDesignTableIx());
  }
}

TEST(AdaptiveWeights, DecaysWhenEnoughSamplesFeasible) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = true});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(0.5, 100, metrics, designs);  // 50% >= beta
  const double before = obj.weights().oc[0];
  adapter.update(metrics, designs);
  EXPECT_LT(obj.weights().oc[0], before);
  EXPECT_NEAR(obj.weights().oc[0], 0.8 * before, 0.41);  // (1-beta) or floor
}

TEST(AdaptiveWeights, HoldsWhenTooFewFeasible) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = true});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(0.1, 100, metrics, designs);  // 10% < beta
  adapter.update(metrics, designs);
  EXPECT_DOUBLE_EQ(obj.weights().oc[0], 1.0);
}

TEST(AdaptiveWeights, RepeatedDecayIsFlooredByFom) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = true});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(1.0, 50, metrics, designs);
  for (int i = 0; i < 200; ++i) adapter.update(metrics, designs);
  // Floor = min(w_fom * FoM)/C_max = 0.4 / ~0.52.
  const double floor = 0.4 / obj.ocBoundaryValue(0);
  EXPECT_NEAR(obj.weights().oc[0], floor, 1e-9);
  EXPECT_GT(obj.weights().oc[0], 0.0);
}

TEST(AdaptiveWeights, InputConstraintWeightDecaysToo) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = true});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(1.0, 50, metrics, designs);  // manual design satisfies all ICs
  const double before = obj.weights().ic[0];
  adapter.update(metrics, designs);
  EXPECT_LT(obj.weights().ic[0], before);
}

TEST(AdaptiveWeights, ViolatedIcHolds) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = true});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(1.0, 50, metrics, designs);
  for (auto& d : designs) d[em::Param::Wt] = 9.5;  // 2W+S > 20 for all
  adapter.update(metrics, designs);
  EXPECT_DOUBLE_EQ(obj.weights().ic[0], 1.0);
}

TEST(AdaptiveWeights, DisabledIsNoop) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj, {.beta = 0.2, .enabled = false});
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  makeBatch(1.0, 50, metrics, designs);
  adapter.update(metrics, designs);
  EXPECT_DOUBLE_EQ(obj.weights().oc[0], 1.0);
  EXPECT_DOUBLE_EQ(obj.weights().ic[0], 1.0);
}

TEST(AdaptiveWeights, EmptyBatchIsNoop) {
  Objective obj(specWithIc());
  AdaptiveWeights adapter(obj);
  adapter.update({}, {});
  EXPECT_DOUBLE_EQ(obj.weights().oc[0], 1.0);
}

}  // namespace
}  // namespace isop::core
