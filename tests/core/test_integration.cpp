// End-to-end integration: dataset generation -> surrogate training ->
// ISOP+ optimization -> EM validation, exactly the production flow, at a
// CI-friendly scale (a few seconds of training).
#include <gtest/gtest.h>

#include <cmath>

#include "core/trial_runner.hpp"
#include "data/dataset_gen.hpp"
#include "ml/ensemble_surrogate.hpp"
#include "ml/neural_regressor.hpp"

namespace isop::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simulator_ = new em::EmSimulator();
    data::GenerationConfig gen;
    gen.samples = 6000;
    gen.seed = 42;
    const ml::Dataset ds =
        data::generateDataset(*simulator_, em::designerEnvelope(), gen);
    auto mlp = std::make_shared<ml::MlpRegressor>(
        ml::MlpConfig{.hidden = {128, 128, 64}, .dropout = 0.0});
    mlp->setOutputTransforms(ml::metricLogTransforms());
    ml::nn::TrainConfig train;
    train.epochs = 25;
    train.learningRate = 3e-3;
    mlp->fit(ds, train);
    surrogate_ = mlp;
  }

  static void TearDownTestSuite() {
    surrogate_.reset();
    delete simulator_;
    simulator_ = nullptr;
  }

  static em::EmSimulator* simulator_;
  static std::shared_ptr<const ml::Surrogate> surrogate_;
};

em::EmSimulator* IntegrationTest::simulator_ = nullptr;
std::shared_ptr<const ml::Surrogate> IntegrationTest::surrogate_;

TEST_F(IntegrationTest, TrainedSurrogateIsUsablyAccurate) {
  // Spot-check: predictions near the manual design within a few percent.
  const em::StackupParams probe = manualDesignTableIx();
  const auto truth = simulator_->evaluateUncounted(probe);
  std::array<double, 3> pred{};
  surrogate_->predict(probe.asVector(), pred);
  EXPECT_NEAR(pred[0], truth.z, 0.08 * std::abs(truth.z));
  EXPECT_NEAR(pred[1], truth.l, 0.15 * std::abs(truth.l));
}

TEST_F(IntegrationTest, IsopWithTrainedSurrogateFindsNearFeasibleDesigns) {
  // A 6k-sample surrogate is deliberately rough (MAE(Z) ~ 2 ohm); the test
  // asserts the full pipeline still lands near the band and that the
  // EM-feedback repair round activates when the first roll-out misses.
  MethodSpec spec;
  spec.name = "ISOP+";
  spec.kind = MethodSpec::Kind::Isop;
  spec.isop.harmonica.iterations = 3;
  spec.isop.harmonica.samplesPerIter = 400;
  spec.isop.refine.epochs = 40;
  spec.isop.localSeeds = 4;
  const TrialRunner runner(*simulator_, surrogate_, em::spaceS1(), taskT1());
  const TrialStats stats = runner.run(spec, 3, 500);
  EXPECT_LE(stats.dzMean, 4.0);
  EXPECT_LT(stats.lMean, 0.0);
  EXPECT_GT(stats.avgSamples, 500.0);
}

TEST_F(IntegrationTest, RepairRoundTriggersOnlyWhenNeeded) {
  IsopConfig cfg;
  cfg.harmonica.iterations = 3;
  cfg.harmonica.samplesPerIter = 400;
  cfg.refine.epochs = 40;
  cfg.localSeeds = 4;
  cfg.rolloutRounds = 2;
  cfg.seed = 501;
  const IsopOptimizer optimizer(*simulator_, surrogate_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  EXPECT_GE(result.rolloutRoundsUsed, 1u);
  EXPECT_LE(result.rolloutRoundsUsed, 2u);
  // Second round only when the first failed; either way candidates capped.
  EXPECT_LE(result.candidates.size(), cfg.candNum);
  if (result.rolloutRoundsUsed == 2) {
    EXPECT_GT(result.simulatorCalls, cfg.candNum);
  } else {
    EXPECT_TRUE(result.best().feasible);
  }
}

TEST_F(IntegrationTest, EnsembleWithUncertaintyPenaltyRunsEndToEnd) {
  // A small deep ensemble in the loop, with the disagreement penalty on:
  // the full pipeline must run and stay near the band (the penalty may only
  // help, never break the search).
  data::GenerationConfig gen;
  gen.samples = 4000;
  gen.seed = 43;
  const ml::Dataset ds = data::generateDataset(*simulator_, em::designerEnvelope(), gen);
  ml::EnsembleTrainConfig ecfg;
  ecfg.members = 3;
  ecfg.architecture.hidden = {64, 64};
  ecfg.architecture.dropout = 0.0;
  ecfg.training.epochs = 12;
  ecfg.transforms = ml::metricLogTransforms();
  auto ensemble = ml::trainMlpEnsemble(ds, ecfg);

  IsopConfig cfg;
  cfg.harmonica.iterations = 3;
  cfg.harmonica.samplesPerIter = 300;
  cfg.refine.epochs = 30;
  cfg.localSeeds = 3;
  cfg.uncertaintyPenalty = 0.5;
  cfg.seed = 503;
  const IsopOptimizer optimizer(*simulator_, ensemble, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_LE(std::abs(result.best().metrics.z - 85.0), 5.0);
}

TEST_F(IntegrationTest, PaperProtocolSingleRolloutStillWorks) {
  IsopConfig cfg;
  cfg.harmonica.iterations = 3;
  cfg.harmonica.samplesPerIter = 400;
  cfg.refine.epochs = 40;
  cfg.rolloutRounds = 1;  // the paper's exact protocol
  cfg.seed = 502;
  const IsopOptimizer optimizer(*simulator_, surrogate_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  EXPECT_EQ(result.rolloutRoundsUsed, 1u);
  EXPECT_LE(result.simulatorCalls, cfg.candNum);
}

}  // namespace
}  // namespace isop::core
