#include "core/surrogate_objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"
#include "data/dataset_gen.hpp"
#include "ml/ensemble_surrogate.hpp"
#include "core/tasks.hpp"

namespace isop::core {
namespace {

class SurrogateObjectiveTest : public ::testing::Test {
 protected:
  em::EmSimulator sim_;
  SimulatorSurrogate oracle_{sim_};
  Task task_ = taskT1();
};

TEST_F(SurrogateObjectiveTest, PredictMatchesSimulator) {
  Objective obj(task_.spec);
  const SurrogateObjective so(obj, oracle_);
  const em::StackupParams x = manualDesignTableIx();
  const auto m = so.predict(x);
  const auto truth = sim_.evaluateUncounted(x);
  EXPECT_DOUBLE_EQ(m.z, truth.z);
  EXPECT_DOUBLE_EQ(m.l, truth.l);
  EXPECT_DOUBLE_EQ(m.next, truth.next);
}

TEST_F(SurrogateObjectiveTest, SmoothVsExactSelection) {
  Objective obj(task_.spec);
  const SurrogateObjective smooth(obj, oracle_, /*smooth=*/true);
  const SurrogateObjective exact(obj, oracle_, /*smooth=*/false);
  const em::StackupParams x = manualDesignTableIx();
  const auto m = sim_.evaluateUncounted(x);
  EXPECT_DOUBLE_EQ(smooth.evaluate(x), obj.gSmoothValue(m, x));
  EXPECT_DOUBLE_EQ(exact.evaluate(x), obj.gValue(m, x));
}

TEST_F(SurrogateObjectiveTest, InvalidBitsAreInfinite) {
  Objective obj(task_.spec);
  const SurrogateObjective so(obj, oracle_);
  const hpo::BinaryCodec codec(em::spaceS1());
  // Force an invalid index in the Wt field (31 cases, 5 bits, index 31).
  hpo::BitVector bits(codec.totalBits(), 0);
  for (std::size_t b = 0; b < codec.bitCount(0); ++b) bits[codec.bitOffset(0) + b] = 1;
  EXPECT_TRUE(std::isinf(so.evaluateBits(codec, bits)));
  // A valid pattern evaluates finitely.
  Rng rng(1);
  EXPECT_TRUE(std::isfinite(so.evaluateBits(codec, codec.sampleValid(rng))));
}

TEST_F(SurrogateObjectiveTest, RecordingDrainsBatch) {
  Objective obj(task_.spec);
  SurrogateObjective so(obj, oracle_);
  so.setRecording(true);
  Rng rng(2);
  const auto space = em::spaceS1();
  for (int i = 0; i < 5; ++i) so.evaluate(space.sample(rng));
  std::vector<em::PerformanceMetrics> metrics;
  std::vector<em::StackupParams> designs;
  so.drainBatch(metrics, designs);
  EXPECT_EQ(metrics.size(), 5u);
  EXPECT_EQ(designs.size(), 5u);
  // Drained: second drain is empty.
  so.drainBatch(metrics, designs);
  EXPECT_TRUE(metrics.empty());
  // Not recording: nothing accumulates.
  so.setRecording(false);
  so.evaluate(space.sample(rng));
  so.drainBatch(metrics, designs);
  EXPECT_TRUE(metrics.empty());
}

TEST_F(SurrogateObjectiveTest, WeightUpdatesVisibleThroughReference) {
  Objective obj(task_.spec);
  const SurrogateObjective so(obj, oracle_);
  const em::StackupParams x = manualDesignTableIx();
  const double before = so.evaluate(x);
  obj.weights().oc[0] = 50.0;  // crank the constraint weight
  const double after = so.evaluate(x);
  EXPECT_NE(before, after);
}

TEST_F(SurrogateObjectiveTest, GradientMatchesFiniteDifference) {
  Objective obj(task_.spec);
  const SurrogateObjective so(obj, oracle_);
  const em::StackupParams x = manualDesignTableIx();
  std::vector<double> grad(em::kNumParams);
  const double value = so.evaluateWithGradient(x, grad);
  EXPECT_NEAR(value, so.evaluate(x), 1e-9);
  // Check a few coordinates against central differences of the objective.
  for (std::size_t j : {0uz, 5uz, 9uz}) {
    const double h = std::max(std::abs(x.values[j]), 1.0) * 1e-5;
    em::StackupParams up = x, down = x;
    up.values[j] += h;
    down.values[j] -= h;
    const double numeric = (so.evaluate(up) - so.evaluate(down)) / (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 5e-3 * std::max(1.0, std::abs(numeric)))
        << "param " << j;
  }
}

TEST_F(SurrogateObjectiveTest, UncertaintyPenaltyRaisesUncertainRegions) {
  // Train a tiny ensemble on stack-up data restricted to S1, then compare
  // the penalty inside vs far outside the training support.
  data::GenerationConfig gen;
  gen.samples = 800;
  gen.seed = 9;
  const ml::Dataset ds = data::generateDataset(sim_, em::spaceS1(), gen);
  ml::EnsembleTrainConfig ecfg;
  ecfg.members = 3;
  ecfg.architecture.hidden = {24, 24};
  ecfg.architecture.dropout = 0.0;
  ecfg.training.epochs = 8;
  ecfg.transforms = ml::metricLogTransforms();
  auto ensemble = ml::trainMlpEnsemble(ds, ecfg);

  Objective obj(task_.spec);
  SurrogateObjective so(obj, *ensemble);
  const em::StackupParams inside = core::manualDesignTableIx();
  em::StackupParams outside = inside;  // push far outside S1's support
  outside[em::Param::Wt] = 29.0;
  outside[em::Param::Hc] = 40.0;
  outside[em::Param::DkC] = 7.0;

  const double insideBase = so.evaluate(inside);
  const double outsideBase = so.evaluate(outside);
  so.setUncertaintyPenalty(1.0);
  const double insidePenalized = so.evaluate(inside);
  const double outsidePenalized = so.evaluate(outside);
  // Penalty is non-negative everywhere and larger off-support.
  EXPECT_GE(insidePenalized, insideBase);
  EXPECT_GE(outsidePenalized, outsideBase);
  EXPECT_GT(outsidePenalized - outsideBase, insidePenalized - insideBase);
  // Turning it off restores the base value.
  so.setUncertaintyPenalty(0.0);
  EXPECT_DOUBLE_EQ(so.evaluate(inside), insideBase);
}

TEST_F(SurrogateObjectiveTest, UncertaintyPenaltyIgnoredForNonEnsembles) {
  Objective obj(task_.spec);
  SurrogateObjective so(obj, oracle_);
  const em::StackupParams x = manualDesignTableIx();
  const double before = so.evaluate(x);
  so.setUncertaintyPenalty(5.0);  // oracle is not an ensemble: no-op
  EXPECT_DOUBLE_EQ(so.evaluate(x), before);
}

TEST_F(SurrogateObjectiveTest, OracleQueryCountingWorks) {
  Objective obj(task_.spec);
  const SurrogateObjective so(obj, oracle_);
  oracle_.resetQueryCount();
  const em::StackupParams x = manualDesignTableIx();
  so.evaluate(x);
  so.evaluate(x);
  EXPECT_EQ(oracle_.queryCount(), 2u);
  // The oracle path must not bill the EM simulator's counted interface.
  EXPECT_EQ(sim_.callCount(), 0u);
}

}  // namespace
}  // namespace isop::core
