// Parameterized property sweeps over all four paper tasks: the smoothed
// objective's analytic gradient must match finite differences through an
// exactly-differentiable metric model, for every task's constraint set.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "core/objective.hpp"
#include "em/parameter_space.hpp"
#include "core/tasks.hpp"

namespace isop::core {
namespace {

/// Smooth synthetic metric model with known analytic Jacobian.
struct SyntheticModel {
  em::PerformanceMetrics metrics(const em::StackupParams& x) const {
    const double w = x[em::Param::Wt];
    const double s = x[em::Param::St];
    const double h = x[em::Param::Hc];
    return {70.0 + 3.0 * h - 2.0 * w + 0.5 * s,
            -0.3 - 0.01 * w * w - 0.002 * h,
            -0.05 * std::exp(-0.1 * x[em::Param::Dt]) * h};
  }

  void gradient(const em::StackupParams& x, em::Metric metric,
                std::span<double> g) const {
    std::fill(g.begin(), g.end(), 0.0);
    const auto wi = static_cast<std::size_t>(em::Param::Wt);
    const auto si = static_cast<std::size_t>(em::Param::St);
    const auto hi = static_cast<std::size_t>(em::Param::Hc);
    const auto di = static_cast<std::size_t>(em::Param::Dt);
    switch (metric) {
      case em::Metric::Z:
        g[wi] = -2.0;
        g[si] = 0.5;
        g[hi] = 3.0;
        break;
      case em::Metric::L:
        g[wi] = -0.02 * x[em::Param::Wt];
        g[hi] = -0.002;
        break;
      case em::Metric::Next: {
        const double e = std::exp(-0.1 * x[em::Param::Dt]);
        g[hi] = -0.05 * e;
        g[di] = 0.005 * e * x[em::Param::Hc];
        break;
      }
    }
  }
};

class TaskSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TaskSweep, SmoothGradientMatchesFiniteDifference) {
  const Task task = taskByName(GetParam());
  ObjectiveSpec spec = task.spec;
  spec.inputConstraints = tableIxInputConstraints();
  Objective objective(spec);
  const SyntheticModel model;

  Rng rng(std::hash<std::string>{}(GetParam()));
  const auto space = em::spaceS1();
  std::vector<double> grad(em::kNumParams);
  for (int trial = 0; trial < 20; ++trial) {
    const em::StackupParams x = space.sample(rng);
    // Points exactly on an input-constraint kink (y(x) == A happens on the
    // grid, e.g. Dt == 5*Hc) have a set-valued subgradient there; central
    // differences return the average of the two one-sided slopes, so skip.
    bool onKink = false;
    for (std::size_t k = 0; k < spec.inputConstraints.size(); ++k) {
      const auto& ic = spec.inputConstraints[k];
      double y = -ic.bound;
      for (std::size_t j = 0; j < em::kNumParams; ++j) {
        y += ic.coefficients[j] * x.values[j];
      }
      if (std::abs(y) < 1e-6) onKink = true;
    }
    if (onKink) continue;
    const double value = objective.gSmoothWithGradient(
        model.metrics(x), x,
        [&](em::Metric m, std::span<double> g) { model.gradient(x, m, g); }, grad);
    EXPECT_NEAR(value, objective.gSmoothValue(model.metrics(x), x), 1e-12);
    for (std::size_t j : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      // T3's NEXT band (tol 0.05 -> gamma 80) makes the sigmoid curvature
      // large; a smaller step and looser tolerance absorb FD truncation.
      const double h = 1e-7 * std::max(std::abs(x.values[j]), 1.0);
      em::StackupParams up = x, down = x;
      up.values[j] += h;
      down.values[j] -= h;
      const double numeric = (objective.gSmoothValue(model.metrics(up), up) -
                              objective.gSmoothValue(model.metrics(down), down)) /
                             (2.0 * h);
      EXPECT_NEAR(grad[j], numeric, 5e-3 * std::max(1.0, std::abs(numeric)))
          << GetParam() << " param " << j << " trial " << trial;
    }
  }
}

TEST_P(TaskSweep, SmoothAndExactAgreeOnFeasibility) {
  // For every task: points deep inside all constraint bands have near-floor
  // smoothed penalties, and exact g has zero OC penalty exactly when
  // feasible.
  const Task task = taskByName(GetParam());
  Objective objective(task.spec);
  Rng rng(7 + std::hash<std::string>{}(GetParam()));
  const auto space = em::spaceS1();
  const SyntheticModel model;
  for (int trial = 0; trial < 100; ++trial) {
    const em::StackupParams x = space.sample(rng);
    const auto m = model.metrics(x);
    const bool feasible = objective.feasible(m, x);
    double exactPenalty = 0.0;
    for (std::size_t j = 0; j < task.spec.outputConstraints.size(); ++j) {
      exactPenalty += objective.ocPenaltyExact(j, m);
    }
    EXPECT_EQ(feasible, exactPenalty == 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskSweep,
                         ::testing::Values("T1", "T2", "T3", "T4"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace isop::core
