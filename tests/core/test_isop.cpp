// End-to-end IsopOptimizer tests using the oracle surrogate (the EM model
// behind the Surrogate interface) so optimizer behaviour is isolated from
// surrogate fitting error. Budgets are kept small; these are correctness
// tests, not benchmark runs.
#include "core/isop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

IsopConfig quickConfig(std::uint64_t seed = 1) {
  IsopConfig cfg;
  cfg.harmonica.iterations = 2;
  cfg.harmonica.samplesPerIter = 150;
  cfg.harmonica.topMonomials = 4;
  cfg.hyperband.maxResource = 9;
  cfg.refine.epochs = 25;
  cfg.localSeeds = 3;
  cfg.candNum = 3;
  cfg.seed = seed;
  return cfg;
}

class IsopTest : public ::testing::Test {
 protected:
  em::EmSimulator sim_;
  std::shared_ptr<SimulatorSurrogate> oracle_ = std::make_shared<SimulatorSurrogate>(sim_);
};

TEST_F(IsopTest, FindsFeasibleT1DesignWithOracle) {
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), quickConfig());
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  const IsopCandidate& best = result.best();
  EXPECT_TRUE(best.feasible);
  EXPECT_NEAR(best.metrics.z, 85.0, 1.0);
  EXPECT_LT(best.fom, 0.9);  // found a reasonably low-loss design
  EXPECT_TRUE(em::spaceS1().contains(best.params));
}

TEST_F(IsopTest, CandidatesAreValidGridPointsRankedByG) {
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), quickConfig(2));
  const IsopResult result = optimizer.run();
  ASSERT_LE(result.candidates.size(), 3u);
  for (const auto& c : result.candidates) {
    EXPECT_TRUE(em::spaceS1().contains(c.params));
  }
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    const auto& prev = result.candidates[i - 1];
    const auto& cur = result.candidates[i];
    EXPECT_TRUE(prev.feasible >= cur.feasible);
    if (prev.feasible == cur.feasible) EXPECT_LE(prev.g, cur.g);
  }
}

TEST_F(IsopTest, AccountingIsConsistent) {
  sim_.resetCounters();
  oracle_->resetQueryCount();
  IsopConfig cfg = quickConfig(3);
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  EXPECT_EQ(result.simulatorCalls, result.candidates.size());
  EXPECT_GE(result.surrogateQueries,
            cfg.harmonica.iterations * cfg.harmonica.samplesPerIter / 2);
  EXPECT_GT(result.modeledSeconds, result.algoSeconds);  // includes EM latency
}

TEST_F(IsopTest, GradientStageRequiresDifferentiableSurrogate) {
  // A surrogate without gradients must be rejected when the GD stage is on.
  class NoGradOracle final : public ml::Surrogate {
   public:
    explicit NoGradOracle(const em::EmSimulator& sim) : inner_(sim) {}
    std::size_t inputDim() const override { return em::kNumParams; }
    std::size_t outputDim() const override { return em::kNumMetrics; }
    void predict(std::span<const double> x, std::span<double> out) const override {
      inner_.predict(x, out);
    }

   private:
    SimulatorSurrogate inner_;
  };
  auto noGrad = std::make_shared<NoGradOracle>(sim_);
  IsopConfig cfg = quickConfig(4);
  cfg.useGradientStage = true;
  EXPECT_THROW(IsopOptimizer(sim_, noGrad, em::spaceS1(), taskT1(), cfg),
               std::invalid_argument);
  cfg.useGradientStage = false;
  EXPECT_NO_THROW(IsopOptimizer(sim_, noGrad, em::spaceS1(), taskT1(), cfg));
}

TEST_F(IsopTest, HVariantRunsWithoutGradientStage) {
  IsopConfig cfg = quickConfig(5);
  cfg.useGradientStage = false;  // the DATE-version "H" optimizer
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_TRUE(result.best().feasible);
}

TEST_F(IsopTest, NaiveSeedPickVariantRuns) {
  IsopConfig cfg = quickConfig(6);
  cfg.useHyperband = false;
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  EXPECT_FALSE(optimizer.run().candidates.empty());
}

TEST_F(IsopTest, UnsmoothedObjectiveVariantRuns) {
  IsopConfig cfg = quickConfig(7);
  cfg.useSmoothObjective = false;
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  EXPECT_FALSE(optimizer.run().candidates.empty());
}

TEST_F(IsopTest, AdaptiveWeightsChangeDuringRun) {
  // A wide Z band (easily satisfied by random samples) guarantees the
  // >= beta feasibility ratio Algorithm 2 needs to trigger a decay; T1's
  // tight 1-ohm band rightly keeps the weight pinned instead.
  Task relaxed = taskT1();
  relaxed.spec.outputConstraints[0].tolerance = 25.0;
  // Small FoM coefficient keeps Alg. 2's FoM-derived floor well below the
  // decayed weight so the decay is observable.
  relaxed.spec.fom[0].coefficient = 0.1;
  IsopConfig cfg = quickConfig(8);
  cfg.adaptiveWeights.enabled = true;
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), relaxed, cfg);
  const IsopResult result = optimizer.run();
  ASSERT_EQ(result.finalWeights.oc.size(), 1u);
  EXPECT_LT(result.finalWeights.oc[0], 1.0);

  IsopConfig off = quickConfig(8);
  off.adaptiveWeights.enabled = false;
  const IsopResult fixedResult =
      IsopOptimizer(sim_, oracle_, em::spaceS1(), relaxed, off).run();
  EXPECT_DOUBLE_EQ(fixedResult.finalWeights.oc[0], 1.0);
}

TEST_F(IsopTest, T4CompositeObjectiveProducesLowCrosstalk) {
  IsopConfig cfg = quickConfig(9);
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT4(), cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  const auto& best = result.best();
  EXPECT_TRUE(best.feasible);
  // FoM = |L| + 2|NEXT| pressures crosstalk down hard.
  EXPECT_LT(-best.metrics.next, 0.5);
}

TEST_F(IsopTest, InputConstraintsRestrictRollout) {
  Task task = taskT1();
  task.spec.inputConstraints = tableIxInputConstraints();
  IsopConfig cfg = quickConfig(10);
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1Prime(), task, cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  const auto& best = result.best();
  if (best.feasible) {
    const double wt = best.params[em::Param::Wt];
    const double st = best.params[em::Param::St];
    EXPECT_LE(2.0 * wt + st, 20.0 + 1e-9);
  }
}

TEST_F(IsopTest, GrayCodedPipelineFindsFeasibleDesign) {
  IsopConfig cfg = quickConfig(12);
  cfg.coding = hpo::BitCoding::Gray;
  const IsopOptimizer optimizer(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const IsopResult result = optimizer.run();
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_TRUE(result.best().feasible);
  EXPECT_TRUE(em::spaceS1().contains(result.best().params));
}

TEST_F(IsopTest, DeterministicForFixedSeed) {
  IsopConfig cfg = quickConfig(11);
  cfg.harmonica.parallelEval = false;
  const IsopOptimizer a(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const IsopOptimizer b(sim_, oracle_, em::spaceS1(), taskT1(), cfg);
  const auto ra = a.run(), rb = b.run();
  ASSERT_EQ(ra.candidates.size(), rb.candidates.size());
  EXPECT_EQ(ra.best().params.values, rb.best().params.values);
}

TEST_F(IsopTest, RejectsNullSurrogate) {
  EXPECT_THROW(IsopOptimizer(sim_, nullptr, em::spaceS1(), taskT1(), quickConfig()),
               std::invalid_argument);
}

}  // namespace
}  // namespace isop::core
