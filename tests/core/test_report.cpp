#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/simulator_surrogate.hpp"

namespace isop::core {
namespace {

IsopResult smallResult() {
  em::EmSimulator sim;
  auto oracle = std::make_shared<SimulatorSurrogate>(sim);
  IsopConfig cfg;
  cfg.harmonica.iterations = 2;
  cfg.harmonica.samplesPerIter = 100;
  cfg.hyperband.maxResource = 9;
  cfg.refine.epochs = 15;
  cfg.localSeeds = 2;
  cfg.seed = 3;
  const IsopOptimizer optimizer(sim, oracle, em::spaceS1(), taskT1(), cfg);
  return optimizer.run();
}

TEST(Report, ParamsJsonHasAllFifteenFields) {
  const json::Value v = toJson(manualDesignTableIx());
  const std::string s = v.dump();
  for (auto name : em::paramNames()) {
    EXPECT_NE(s.find("\"" + std::string(name) + "\""), std::string::npos) << name;
  }
}

TEST(Report, MetricsJsonUsesUnitsInKeys) {
  const json::Value v = toJson(em::PerformanceMetrics{85.0, -0.43, -0.5});
  const std::string s = v.dump();
  EXPECT_NE(s.find("\"Z_ohm\":85"), std::string::npos);
  EXPECT_NE(s.find("\"L_dB_per_inch\":-0.43"), std::string::npos);
  EXPECT_NE(s.find("\"NEXT_mV\":-0.5"), std::string::npos);
}

TEST(Report, IsopResultJsonStructure) {
  const IsopResult result = smallResult();
  const json::Value v = toJson(result);
  const std::string s = v.dump();
  EXPECT_NE(s.find("\"candidates\""), std::string::npos);
  EXPECT_NE(s.find("\"surrogate_queries\""), std::string::npos);
  EXPECT_NE(s.find("\"rollout_rounds_used\""), std::string::npos);
  EXPECT_NE(s.find("\"feasible\""), std::string::npos);
}

TEST(Report, TrialStatsJson) {
  TrialStats stats;
  stats.method = "SA-1";
  stats.trials = 10;
  stats.successes = 9;
  stats.fomMean = 0.446;
  const std::string s = toJson(stats).dump();
  EXPECT_NE(s.find("\"method\":\"SA-1\""), std::string::npos);
  EXPECT_NE(s.find("\"successes\":9"), std::string::npos);
  EXPECT_NE(s.find("\"fom_mean\":0.446"), std::string::npos);
}

TEST(Report, BoardResultJson) {
  BoardResult board;
  LayerResult layer;
  layer.name = "L3 DDR";
  layer.feasible = true;
  layer.fom = 0.42;
  layer.optimization = smallResult();
  board.layers.push_back(std::move(layer));
  board.feasibleLayers = 1;
  board.totalAlgoSeconds = 1.5;
  const std::string s = toJson(board).dump();
  EXPECT_NE(s.find("\"name\":\"L3 DDR\""), std::string::npos);
  EXPECT_NE(s.find("\"all_feasible\":true"), std::string::npos);
  EXPECT_NE(s.find("\"feasible_layers\":1"), std::string::npos);
  EXPECT_NE(s.find("\"layers\":["), std::string::npos);
}

TEST(Report, WriteJsonFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "isop_report_test.json").string();
  json::Value v = json::Value::object();
  v.set("ok", json::Value::boolean(true));
  writeJsonFile(path, v);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"ok\": true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFileBadPathThrows) {
  EXPECT_THROW(writeJsonFile("/no/such/dir/x.json", json::Value::object()),
               std::runtime_error);
}

}  // namespace
}  // namespace isop::core
