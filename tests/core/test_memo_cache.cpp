#include "core/eval/memo_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace isop::core::eval {
namespace {

using Key = MemoCache::Key;
using Value = MemoCache::Value;

// Shard fan-out of the cache (kShards in memo_cache.hpp). The LRU bound is
// per shard, so recency tests need keys that collide on one shard.
constexpr std::size_t kShardCount = 16;

Key makeKey(double v) {
  Key k{};
  k[0] = v;
  return k;
}

Value makeValue(double v) {
  Value out{};
  out[0] = v;
  return out;
}

// First `n` keys (scanning k[0] = 0, 1, 2, ...) that hash into `shard`.
std::vector<Key> keysInShard(std::size_t shard, std::size_t n) {
  std::vector<Key> keys;
  for (double v = 0.0; keys.size() < n; v += 1.0) {
    Key k = makeKey(v);
    if ((MemoCache::KeyHash{}(k) & (kShardCount - 1)) == shard) keys.push_back(k);
  }
  return keys;
}

TEST(MemoCache, MissThenInsertThenHit) {
  MemoCache cache(64);
  const Key k = makeKey(1.0);
  Value out{};
  EXPECT_FALSE(cache.lookup(k, out));
  cache.insert(k, makeValue(7.0));
  ASSERT_TRUE(cache.lookup(k, out));
  EXPECT_EQ(out[0], 7.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(MemoCache, EvictsLeastRecentlyUsedWithinShard) {
  // maxEntries = kShardCount gives every shard a capacity of exactly 1.
  MemoCache cache(kShardCount);
  const auto keys = keysInShard(3, 2);
  cache.insert(keys[0], makeValue(1.0));
  cache.insert(keys[1], makeValue(2.0));
  Value out{};
  EXPECT_FALSE(cache.lookup(keys[0], out)) << "oldest entry should be evicted";
  ASSERT_TRUE(cache.lookup(keys[1], out));
  EXPECT_EQ(out[0], 2.0);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(MemoCache, LookupRefreshesRecency) {
  // Shard capacity 2: insert A, B; touch A; insert C -> B (now LRU) evicted.
  MemoCache cache(2 * kShardCount);
  const auto keys = keysInShard(5, 3);
  cache.insert(keys[0], makeValue(1.0));
  cache.insert(keys[1], makeValue(2.0));
  Value out{};
  ASSERT_TRUE(cache.lookup(keys[0], out));
  cache.insert(keys[2], makeValue(3.0));
  EXPECT_TRUE(cache.lookup(keys[0], out)) << "touched entry must survive";
  EXPECT_FALSE(cache.lookup(keys[1], out)) << "untouched entry is the LRU victim";
  EXPECT_TRUE(cache.lookup(keys[2], out));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(MemoCache, ReinsertingResidentKeyRefreshesInsteadOfEvicting) {
  MemoCache cache(2 * kShardCount);
  const auto keys = keysInShard(9, 3);
  cache.insert(keys[0], makeValue(1.0));
  cache.insert(keys[1], makeValue(2.0));
  cache.insert(keys[0], makeValue(1.0));  // refresh, not a new entry
  EXPECT_EQ(cache.evictions(), 0u);
  cache.insert(keys[2], makeValue(3.0));
  Value out{};
  EXPECT_TRUE(cache.lookup(keys[0], out)) << "refreshed key must survive";
  EXPECT_FALSE(cache.lookup(keys[1], out));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(MemoCache, CapacityBoundHoldsUnderChurn) {
  constexpr std::size_t kMax = 64;
  MemoCache cache(kMax);
  constexpr std::size_t kInserts = 1000;
  for (std::size_t i = 0; i < kInserts; ++i) {
    cache.insert(makeKey(static_cast<double>(i)), makeValue(static_cast<double>(i)));
  }
  EXPECT_LE(cache.size(), kMax);
  EXPECT_EQ(cache.size() + cache.evictions(), kInserts);
}

TEST(MemoCache, ZeroCapacityCachesNothing) {
  MemoCache cache(0);
  const Key k = makeKey(1.0);
  cache.insert(k, makeValue(7.0));
  Value out{};
  EXPECT_FALSE(cache.lookup(k, out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(MemoCache, ClearEmptiesAndAllowsReuse) {
  MemoCache cache(64);
  for (int i = 0; i < 10; ++i) {
    cache.insert(makeKey(static_cast<double>(i)), makeValue(1.0));
  }
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.insert(makeKey(3.0), makeValue(9.0));
  Value out{};
  ASSERT_TRUE(cache.lookup(makeKey(3.0), out));
  EXPECT_EQ(out[0], 9.0);
  EXPECT_EQ(cache.size(), 1u);
}

// Regression test for the size-drift race: the old implementation kept a
// detached atomic entry counter next to the sharded maps, and a clear()
// racing concurrent inserts could leave the counter permanently out of sync
// with the actual resident entries. size() now sums the shard maps under
// their locks, so it can never disagree with what lookup() can see.
TEST(MemoCache, SizeStaysConsistentWhenClearRacesInserts) {
  constexpr std::size_t kMax = 256;
  MemoCache cache(kMax);
  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) cache.clear();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        cache.insert(makeKey(static_cast<double>(t * 3000 + i)), makeValue(1.0));
        if (i % 64 == 0) EXPECT_LE(cache.size(), kMax);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop = true;
  clearer.join();

  // Quiescent check: size() must equal the number of keys lookup() can hit.
  std::size_t resident = 0;
  Value out{};
  for (int i = 0; i < 4 * 3000; ++i) {
    if (cache.lookup(makeKey(static_cast<double>(i)), out)) ++resident;
  }
  EXPECT_EQ(cache.size(), resident);
  EXPECT_LE(cache.size(), kMax);
}

}  // namespace
}  // namespace isop::core::eval
