#include "em/simulator.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "em/parameter_space.hpp"

namespace isop::em {
namespace {

StackupParams someDesign() {
  StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

TEST(Simulator, CountsOnlyCountedCalls) {
  EmSimulator sim;
  EXPECT_EQ(sim.callCount(), 0u);
  sim.simulate(someDesign());
  sim.simulate(someDesign());
  sim.evaluateUncounted(someDesign());
  EXPECT_EQ(sim.callCount(), 2u);
  sim.resetCounters();
  EXPECT_EQ(sim.callCount(), 0u);
}

TEST(Simulator, ModeledSecondsUsesBatchLatency) {
  SimulatorConfig cfg;
  cfg.secondsPerBatch = 45.5;
  cfg.parallelism = 3;
  EmSimulator sim(cfg);
  EXPECT_DOUBLE_EQ(sim.modeledSeconds(), 0.0);
  sim.simulate(someDesign());
  EXPECT_DOUBLE_EQ(sim.modeledSeconds(), 45.5);  // 1 call -> 1 batch
  sim.simulate(someDesign());
  sim.simulate(someDesign());
  EXPECT_DOUBLE_EQ(sim.modeledSeconds(), 45.5);  // 3 calls -> still 1 batch
  sim.simulate(someDesign());
  EXPECT_DOUBLE_EQ(sim.modeledSeconds(), 91.0);  // 4 calls -> 2 batches
}

TEST(Simulator, ExactModeIsDeterministic) {
  EmSimulator sim;
  const auto a = sim.simulate(someDesign());
  const auto b = sim.simulate(someDesign());
  EXPECT_DOUBLE_EQ(a.z, b.z);
  EXPECT_DOUBLE_EQ(a.l, b.l);
  EXPECT_DOUBLE_EQ(a.next, b.next);
}

TEST(Simulator, NoiseIsDeterministicPerDesign) {
  SimulatorConfig cfg;
  cfg.noiseRelZ = 0.01;
  cfg.noiseRelL = 0.01;
  cfg.noiseSeed = 7;
  EmSimulator sim(cfg);
  const auto a = sim.simulate(someDesign());
  const auto b = sim.simulate(someDesign());
  EXPECT_DOUBLE_EQ(a.z, b.z);  // same design -> same noisy value
  StackupParams other = someDesign();
  other[Param::Wt] = 5.1;
  const auto c = sim.simulate(other);
  EXPECT_NE(a.z, c.z);
}

TEST(Simulator, NoisePerturbsAroundExactValue) {
  SimulatorConfig noisy;
  noisy.noiseRelZ = 0.01;
  noisy.noiseSeed = 11;
  EmSimulator sim(noisy);
  EmSimulator exact;
  const double zNoisy = sim.simulate(someDesign()).z;
  const double zExact = exact.simulate(someDesign()).z;
  EXPECT_NE(zNoisy, zExact);
  EXPECT_NEAR(zNoisy, zExact, 0.05 * zExact);  // 5 sigma
}

TEST(Simulator, DifferentNoiseSeedsGiveDifferentFields) {
  SimulatorConfig a, b;
  a.noiseRelZ = b.noiseRelZ = 0.01;
  a.noiseSeed = 1;
  b.noiseSeed = 2;
  EXPECT_NE(EmSimulator(a).simulate(someDesign()).z,
            EmSimulator(b).simulate(someDesign()).z);
}

TEST(Simulator, ThreadSafeCounting) {
  EmSimulator sim;
  const auto design = someDesign();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) sim.simulate(design);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sim.callCount(), 800u);
}

TEST(Simulator, MetricsAgreeWithComponentModels) {
  EmSimulator sim;
  const auto design = someDesign();
  const auto m = sim.simulate(design);
  EXPECT_DOUBLE_EQ(m.z, differentialImpedance(design));
  EXPECT_DOUBLE_EQ(m.l, insertionLossDbPerInch(design));
  EXPECT_DOUBLE_EQ(m.next, nearEndCrosstalkMv(design));
}

TEST(PerformanceMetrics, ArrayRoundTrip) {
  PerformanceMetrics m{85.0, -0.4, -1.2};
  const auto arr = m.asArray();
  const auto back = PerformanceMetrics::fromArray(arr);
  EXPECT_DOUBLE_EQ(back.z, 85.0);
  EXPECT_DOUBLE_EQ(back.l, -0.4);
  EXPECT_DOUBLE_EQ(back.next, -1.2);
}

}  // namespace
}  // namespace isop::em
