#include "em/stripline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "em/parameter_space.hpp"

namespace isop::em {
namespace {

/// The Table IX manual expert design: the calibration anchor of the model.
StackupParams manualDesign() {
  StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

TEST(Stripline, CalibrationPointMatchesPaperManualDesign) {
  // Paper Table IX reports Z = 85.69 ohm for the manual design.
  EXPECT_NEAR(differentialImpedance(manualDesign()), 85.69, 1.0);
}

TEST(Stripline, DifferentialIsAboveSingleEndedTimesTwoMinusCoupling) {
  const StackupParams p = manualDesign();
  const double z0 = singleEndedImpedance(p);
  const double zd = differentialImpedance(p);
  EXPECT_LT(zd, 2.0 * z0);   // coupling always reduces below 2*Z0
  EXPECT_GT(zd, 1.2 * z0);   // but not absurdly
}

TEST(Stripline, GeometryDerivation) {
  StackupParams p = manualDesign();
  const StriplineGeometry g = deriveGeometry(p);
  EXPECT_DOUBLE_EQ(g.traceWidthEff, 5.0);          // E = 0: no trapezoid
  EXPECT_DOUBLE_EQ(g.planeSpacing, 2.0 * 8.0 + 1.5);
  EXPECT_NEAR(g.dkEff, 4.3, 1e-9);                 // homogeneous dielectric
  EXPECT_DOUBLE_EQ(g.pairPitch, 11.0);
  p[Param::Et] = 0.2;
  EXPECT_NEAR(deriveGeometry(p).traceWidthEff, 5.0 - 0.2 * 1.5, 1e-12);
}

TEST(Stripline, AsymmetryLowersImpedanceTowardCloserPlane) {
  StackupParams sym = manualDesign();
  StackupParams asym = sym;
  // Same total dielectric, asymmetric split: harmonic mean < arithmetic.
  asym[Param::Hc] = 4.0;
  asym[Param::Hp] = 12.0;
  EXPECT_LT(differentialImpedance(asym), differentialImpedance(sym));
}

// --- Monotone trend properties (the physics the optimizer exploits) --------

struct TrendCase {
  const char* name;
  Param param;
  double delta;      ///< perturbation
  int expectedSign;  ///< sign of dZ for +delta
};

class ImpedanceTrend : public ::testing::TestWithParam<TrendCase> {};

TEST_P(ImpedanceTrend, HoldsAcrossRandomS1Designs) {
  const auto& tc = GetParam();
  const auto space = spaceS1();
  Rng rng(42);
  int agree = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    StackupParams p = space.sample(rng);
    StackupParams q = p;
    q[tc.param] += tc.delta;
    const double dz = differentialImpedance(q) - differentialImpedance(p);
    if (dz != 0.0) {
      ++total;
      if ((dz > 0) == (tc.expectedSign > 0)) ++agree;
    }
  }
  // Strict monotonicity everywhere.
  EXPECT_EQ(agree, total) << tc.name;
  EXPECT_GT(total, 50);
}

INSTANTIATE_TEST_SUITE_P(
    Physics, ImpedanceTrend,
    ::testing::Values(TrendCase{"WiderTraceLowersZ", Param::Wt, 0.5, -1},
                      TrendCase{"TallerCoreRaisesZ", Param::Hc, 0.5, +1},
                      TrendCase{"TallerPrepregRaisesZ", Param::Hp, 0.5, +1},
                      TrendCase{"HigherDkCoreLowersZ", Param::DkC, 0.3, -1},
                      TrendCase{"HigherDkPrepregLowersZ", Param::DkP, 0.3, -1},
                      TrendCase{"WiderPairSpacingRaisesZ", Param::St, 1.0, +1},
                      TrendCase{"MoreEtchRaisesZ", Param::Et, 0.1, +1},
                      TrendCase{"ThickerTraceLowersZ", Param::Ht, 0.3, -1}),
    [](const auto& info) { return info.param.name; });

TEST(Stripline, PositiveAndFiniteOverTrainingSpace) {
  const auto space = trainingSpace();
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    StackupParams p = space.sample(rng);
    const double z = differentialImpedance(p);
    ASSERT_TRUE(std::isfinite(z));
    ASSERT_GT(z, 0.0);
    ASSERT_LT(z, 1000.0);
  }
}

}  // namespace
}  // namespace isop::em
