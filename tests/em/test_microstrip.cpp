#include "em/microstrip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "em/parameter_space.hpp"
#include "em/simulator.hpp"

namespace isop::em {
namespace {

StackupParams surfaceDesign() {
  StackupParams p;
  // 5 mil trace over a 4 mil FR-4 substrate, thin solder mask.
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 4.0, 2.0, 5.8e7,
              -14.5, 4.0, 4.3, 3.5, 0.001, 0.02, 0.02};
  return p;
}

TEST(Microstrip, EffectiveDkBetweenAirAndSubstrate) {
  const StackupParams p = surfaceDesign();
  const double erEff = microstripEffectiveDk(p);
  EXPECT_GT(erEff, 1.0);
  EXPECT_LT(erEff, p[Param::DkC]);  // some field is in the air
}

TEST(Microstrip, ImpedancePlausibleForTypicalGeometry) {
  // ~5 mil over 4 mil FR-4 is a classic ~50 ohm single-ended / ~90-100 ohm
  // differential regime.
  const StackupParams p = surfaceDesign();
  const double z0 = microstripSingleEndedImpedance(p);
  const double zd = microstripDifferentialImpedance(p);
  EXPECT_GT(z0, 30.0);
  EXPECT_LT(z0, 80.0);
  EXPECT_GT(zd, 1.3 * z0);
  EXPECT_LT(zd, 2.0 * z0);
}

TEST(Microstrip, FasterThanStriplineAtSameDk) {
  // Lower effective dielectric -> higher impedance for the same geometry
  // than a fully-embedded stripline with that dielectric everywhere.
  StackupParams p = surfaceDesign();
  p[Param::Hp] = p[Param::Hc];  // make the stripline comparison symmetric
  p[Param::DkP] = p[Param::DkC];
  EXPECT_GT(microstripSingleEndedImpedance(p), singleEndedImpedance(p));
}

struct TrendCase {
  const char* name;
  Param param;
  double delta;
  int expectedSign;  ///< sign of dZ for +delta
};

class MicrostripTrend : public ::testing::TestWithParam<TrendCase> {};

TEST_P(MicrostripTrend, HoldsAcrossRandomDesigns) {
  const auto& tc = GetParam();
  const auto space = spaceS1();
  Rng rng(31);
  int agree = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    StackupParams p = space.sample(rng);
    StackupParams q = p;
    q[tc.param] += tc.delta;
    const double dz =
        microstripDifferentialImpedance(q) - microstripDifferentialImpedance(p);
    if (dz != 0.0) {
      ++total;
      if ((dz > 0) == (tc.expectedSign > 0)) ++agree;
    }
  }
  EXPECT_EQ(agree, total) << tc.name;
  EXPECT_GT(total, 50);
}

INSTANTIATE_TEST_SUITE_P(
    Physics, MicrostripTrend,
    ::testing::Values(TrendCase{"WiderTraceLowersZ", Param::Wt, 0.5, -1},
                      TrendCase{"TallerSubstrateRaisesZ", Param::Hc, 0.5, +1},
                      TrendCase{"HigherDkLowersZ", Param::DkC, 0.3, -1},
                      TrendCase{"WiderSpacingRaisesZ", Param::St, 1.0, +1}),
    [](const auto& info) { return info.param.name; });

TEST(Microstrip, LossNegativeAndRoughnessSensitive) {
  StackupParams p = surfaceDesign();
  const double smooth = microstripInsertionLossDbPerInch(p);
  EXPECT_LT(smooth, 0.0);
  p[Param::Rt] = 14.0;
  EXPECT_LT(microstripInsertionLossDbPerInch(p), smooth);  // rough = more loss
}

TEST(Microstrip, CrosstalkStrongerThanStripline) {
  StackupParams p = surfaceDesign();
  p[Param::Hp] = p[Param::Hc];
  p[Param::DkP] = p[Param::DkC];
  EXPECT_LT(microstripNearEndCrosstalkMv(p), nearEndCrosstalkMv(p));  // more negative
}

TEST(Microstrip, FarEndCrosstalkIsFirstOrder) {
  // Unlike stripline, microstrip FEXT is substantial and grows with length.
  const StackupParams p = surfaceDesign();
  const double at2 = microstripFarEndCrosstalkMv(p, 2.0);
  const double at8 = microstripFarEndCrosstalkMv(p, 8.0);
  EXPECT_LT(at2, 0.0);
  EXPECT_NEAR(at8, 4.0 * at2, 1e-12);
  // The same geometry as a (homogenized) stripline has ~zero FEXT.
  StackupParams strip = p;
  strip[Param::DkP] = strip[Param::DkC];
  EXPECT_NEAR(farEndCrosstalkMv(strip, 8.0), 0.0, 1e-9);
  EXPECT_GT(-at8, -farEndCrosstalkMv(strip, 8.0));
}

TEST(Microstrip, CrosstalkDecaysWithDistance) {
  StackupParams near = surfaceDesign(), far = surfaceDesign();
  near[Param::Dt] = 15.0;
  far[Param::Dt] = 40.0;
  EXPECT_LT(microstripNearEndCrosstalkMv(near), microstripNearEndCrosstalkMv(far));
}

TEST(Microstrip, SimulatorLayerTypeSwitch) {
  SimulatorConfig cfg;
  cfg.layerType = LayerType::Microstrip;
  const EmSimulator micro(cfg);
  const EmSimulator strip;  // default: stripline
  const StackupParams p = surfaceDesign();
  const auto mm = micro.evaluateUncounted(p);
  const auto ms = strip.evaluateUncounted(p);
  EXPECT_DOUBLE_EQ(mm.z, microstripDifferentialImpedance(p));
  EXPECT_NE(mm.z, ms.z);
  EXPECT_LT(mm.l, 0.0);
  EXPECT_LE(mm.next, 0.0);
}

TEST(Microstrip, FiniteOverTrainingSpace) {
  const auto space = trainingSpace();
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const StackupParams p = space.sample(rng);
    ASSERT_TRUE(std::isfinite(microstripDifferentialImpedance(p)));
    ASSERT_TRUE(std::isfinite(microstripInsertionLossDbPerInch(p)));
    ASSERT_TRUE(std::isfinite(microstripNearEndCrosstalkMv(p)));
    ASSERT_GT(microstripDifferentialImpedance(p), 0.0);
  }
}

}  // namespace
}  // namespace isop::em
