#include "em/parameter_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::em {
namespace {

TEST(ParameterRange, CaseCountAndBits) {
  // Wt in S1: 2..5 step 0.1 -> 31 cases / 5 bits (Table III).
  ParameterRange r{2.0, 5.0, 0.1};
  EXPECT_EQ(r.caseCount(), 31u);
  EXPECT_EQ(r.bitCount(), 5u);
}

TEST(ParameterRange, SingleCaseRange) {
  ParameterRange r{3.0, 3.0, 1.0};
  EXPECT_EQ(r.caseCount(), 1u);
  EXPECT_EQ(r.bitCount(), 1u);
  EXPECT_DOUBLE_EQ(r.snap(99.0), 3.0);
}

TEST(ParameterRange, SnapAndNearestIndex) {
  ParameterRange r{0.0, 1.0, 0.25};
  EXPECT_DOUBLE_EQ(r.snap(0.3), 0.25);
  EXPECT_DOUBLE_EQ(r.snap(0.38), 0.5);
  EXPECT_DOUBLE_EQ(r.snap(-5.0), 0.0);   // clamps below
  EXPECT_DOUBLE_EQ(r.snap(5.0), 1.0);    // clamps above
  EXPECT_EQ(r.nearestIndex(0.77), 3u);
}

TEST(ParameterRange, Contains) {
  ParameterRange r{2.0, 10.0, 0.5};
  EXPECT_TRUE(r.contains(2.0));
  EXPECT_TRUE(r.contains(6.5));
  EXPECT_FALSE(r.contains(6.3));
  EXPECT_FALSE(r.contains(10.5));
  EXPECT_FALSE(r.contains(1.5));
}

// --- Table III cross-checks --------------------------------------------------

struct SpaceBitsCase {
  const char* name;
  std::size_t expectedBits;
};

class SpaceBits : public ::testing::TestWithParam<SpaceBitsCase> {};

TEST_P(SpaceBits, TotalBitsMatchTableIII) {
  const auto& param = GetParam();
  EXPECT_EQ(spaceByName(param.name).totalBits(), param.expectedBits);
}

INSTANTIATE_TEST_SUITE_P(TableIII, SpaceBits,
                         ::testing::Values(SpaceBitsCase{"S1", 73},
                                           SpaceBitsCase{"S2", 78},
                                           SpaceBitsCase{"S1p", 78}),
                         [](const auto& info) { return std::string(info.param.name) == "S1p"
                                                            ? "S1prime"
                                                            : info.param.name; });

TEST(ParameterSpace, S1CaseCountMatchesPaper) {
  // Paper: 7.14e19 valid designs in S1.
  EXPECT_NEAR(spaceS1().log10CaseCount(), std::log10(7.14e19), 0.01);
}

TEST(ParameterSpace, S2CaseCountMatchesPaper) {
  EXPECT_NEAR(spaceS2().log10CaseCount(), std::log10(2.97e21), 0.01);
}

TEST(ParameterSpace, S1PrimeCaseCountMatchesPaper) {
  EXPECT_NEAR(spaceS1Prime().log10CaseCount(), std::log10(6.53e20), 0.01);
}

TEST(ParameterSpace, TrainingSpaceCaseCountMatchesPaper) {
  EXPECT_NEAR(trainingSpace().log10CaseCount(), std::log10(1.31e29), 0.05);
}

TEST(ParameterSpace, ExperimentSpacesLieInsideTrainingSpace) {
  const auto training = trainingSpace();
  // The surrogate must have seen the whole experiment region (sigma_t of S1
  // starts above training lo, etc.) — bounding boxes must nest.
  EXPECT_TRUE(spaceS1().isWithin(training));
  EXPECT_TRUE(spaceS2().isWithin(training));
  EXPECT_TRUE(spaceS1Prime().isWithin(training));
}

TEST(ParameterSpace, S1IsWithinS2) {
  EXPECT_TRUE(spaceS1().isWithin(spaceS2()));
  EXPECT_FALSE(spaceS2().isWithin(spaceS1()));
}

TEST(ParameterSpace, SampleIsOnGridAndContained) {
  const auto space = spaceS1();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    StackupParams p = space.sample(rng);
    EXPECT_TRUE(space.contains(p));
  }
}

TEST(ParameterSpace, SnapProducesContainedPoint) {
  const auto space = spaceS1();
  StackupParams p;
  p.values = {3.17, 9.9, 33.0, 0.12, 1.04, 5.3, 7.77, 4.63e7,
              0.3, 3.33, 2.51, 4.49, 0.0113, 0.0029, 0.0197};
  StackupParams snapped = space.snap(p);
  EXPECT_TRUE(space.contains(snapped));
  EXPECT_NEAR(snapped[Param::Wt], 3.2, 1e-12);
  EXPECT_NEAR(snapped[Param::Dt], 35.0, 1e-12);
}

TEST(ParameterSpace, SpaceByNameUnknownThrows) {
  EXPECT_THROW(spaceByName("S9"), std::invalid_argument);
}

TEST(ParameterSpace, ParamNameLookup) {
  EXPECT_EQ(paramIndex("Wt"), 0u);
  EXPECT_EQ(paramIndex("Df_p"), 14u);
  EXPECT_THROW(paramIndex("nope"), std::out_of_range);
  EXPECT_EQ(paramNames().size(), kNumParams);
}

}  // namespace
}  // namespace isop::em
