#include "em/stackup.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::em {
namespace {

TEST(StackupParams, VectorRoundTrip) {
  StackupParams p;
  for (std::size_t i = 0; i < kNumParams; ++i) p.values[i] = static_cast<double>(i) + 0.5;
  const StackupParams q = StackupParams::fromVector(p.asVector());
  EXPECT_EQ(q.values, p.values);
}

TEST(StackupParams, NamedAccessorsAliasTheVector) {
  StackupParams p{};
  p[Param::Wt] = 5.0;
  p[Param::DfP] = 0.002;
  EXPECT_DOUBLE_EQ(p.values[0], 5.0);
  EXPECT_DOUBLE_EQ(p.values[14], 0.002);
  const StackupParams& cref = p;
  EXPECT_DOUBLE_EQ(cref[Param::Wt], 5.0);
}

TEST(StackupParams, ToStringListsEveryParameter) {
  StackupParams p{};
  p[Param::Wt] = 5.0;
  const std::string s = p.toString();
  for (auto name : paramNames()) {
    EXPECT_NE(s.find(std::string(name) + "="), std::string::npos) << name;
  }
  EXPECT_NE(s.find("Wt=5"), std::string::npos);
}

TEST(StackupParams, MutableVectorWritesThrough) {
  StackupParams p{};
  auto v = p.asVector();
  v[3] = 0.25;
  EXPECT_DOUBLE_EQ(p[Param::Et], 0.25);
}

TEST(Metrics, NamesMatchEnumOrder) {
  const auto names = metricNames();
  ASSERT_EQ(names.size(), kNumMetrics);
  EXPECT_EQ(names[static_cast<std::size_t>(Metric::Z)], "Z");
  EXPECT_EQ(names[static_cast<std::size_t>(Metric::L)], "L");
  EXPECT_EQ(names[static_cast<std::size_t>(Metric::Next)], "NEXT");
}

TEST(ParamNames, RoundTripThroughIndexLookup) {
  const auto names = paramNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(paramIndex(names[i]), i);
  }
}

}  // namespace
}  // namespace isop::em
