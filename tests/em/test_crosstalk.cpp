#include "em/crosstalk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "em/parameter_space.hpp"

namespace isop::em {
namespace {

StackupParams manualDesign() {
  StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

TEST(Crosstalk, CalibrationPointMatchesPaperManualDesign) {
  // Paper Table IX: NEXT = -2.77 mV for the manual design (Dt = 20 mil).
  EXPECT_NEAR(nearEndCrosstalkMv(manualDesign()), -2.77, 0.6);
}

TEST(Crosstalk, AlwaysNonPositive) {
  const auto space = trainingSpace();
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    StackupParams p = space.sample(rng);
    ASSERT_LE(nearEndCrosstalkMv(p), 0.0);
    ASSERT_TRUE(std::isfinite(nearEndCrosstalkMv(p)));
  }
}

TEST(Crosstalk, DecaysSteeplyWithPairDistance) {
  StackupParams p = manualDesign();
  p[Param::Dt] = 20.0;
  const double at20 = -nearEndCrosstalkMv(p);
  p[Param::Dt] = 30.0;
  const double at30 = -nearEndCrosstalkMv(p);
  p[Param::Dt] = 40.0;
  const double at40 = -nearEndCrosstalkMv(p);
  EXPECT_GT(at20, 2.0 * at30);  // steep roll-off
  EXPECT_GT(at30, 2.0 * at40);
}

TEST(Crosstalk, TallerDielectricCouplesMore) {
  StackupParams p = manualDesign();
  StackupParams thin = p;
  thin[Param::Hc] = 3.0;
  thin[Param::Hp] = 3.0;
  EXPECT_LT(-nearEndCrosstalkMv(thin), -nearEndCrosstalkMv(p));
}

TEST(Crosstalk, CouplingCoefficientNonNegativeAndBelowOne) {
  const auto space = trainingSpace();
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double k = differentialCoupling(space.sample(rng));
    ASSERT_GE(k, 0.0);
    ASSERT_LE(k, 1.0);
  }
}

TEST(Crosstalk, ScalesLinearlyWithAggressorSwing) {
  CrosstalkModelConfig oneVolt;
  CrosstalkModelConfig twoVolt = oneVolt;
  twoVolt.aggressorSwingV = 2.0;
  const StackupParams p = manualDesign();
  EXPECT_NEAR(nearEndCrosstalkMv(p, twoVolt), 2.0 * nearEndCrosstalkMv(p, oneVolt), 1e-9);
}

TEST(Fext, StriplineFarEndNearlyCancels) {
  // Homogeneous stripline: FEXT ~ 0. The manual design has Dk_c == Dk_p.
  const StackupParams p = manualDesign();
  EXPECT_NEAR(farEndCrosstalkMv(p, 10.0), 0.0, 1e-9);
  // |FEXT| stays well below |NEXT| even with mismatched laminates.
  StackupParams mismatched = p;
  mismatched[Param::DkC] = 3.0;
  mismatched[Param::DkP] = 4.5;
  const double fext = farEndCrosstalkMv(mismatched, 10.0);
  EXPECT_LT(fext, 0.0);
  EXPECT_LT(-fext, -nearEndCrosstalkMv(mismatched));
}

TEST(Fext, GrowsLinearlyWithCoupledLength) {
  StackupParams p = manualDesign();
  p[Param::DkC] = 3.0;
  p[Param::DkP] = 4.5;
  const double at5 = farEndCrosstalkMv(p, 5.0);
  const double at10 = farEndCrosstalkMv(p, 10.0);
  EXPECT_NEAR(at10, 2.0 * at5, 1e-12);
  EXPECT_DOUBLE_EQ(farEndCrosstalkMv(p, 0.0), 0.0);
}

TEST(Crosstalk, S1AllowsNearZeroCrosstalkDesigns) {
  // The T3 task constrains |NEXT| <= 0.05 mV: feasible designs must exist in
  // S1 (max pair distance, thin dielectrics).
  StackupParams p = manualDesign();
  p[Param::Dt] = 40.0;
  p[Param::Hc] = 2.0;
  p[Param::Hp] = 2.0;
  EXPECT_LT(-nearEndCrosstalkMv(p), 0.05);
}

}  // namespace
}  // namespace isop::em
