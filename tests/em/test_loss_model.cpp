#include "em/loss_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "em/parameter_space.hpp"

namespace isop::em {
namespace {

StackupParams manualDesign() {
  StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

TEST(LossModel, CalibrationPointMatchesPaperManualDesign) {
  // Paper Table IX: L = -0.434 dB/inch at 16 GHz for the manual design.
  EXPECT_NEAR(insertionLossDbPerInch(manualDesign()), -0.434, 0.03);
}

TEST(LossModel, SkinDepthOfCopperAt16GHz) {
  // Copper at 16 GHz: delta ~ 0.52 um.
  EXPECT_NEAR(skinDepthUm(16.0e9, 5.8e7), 0.522, 0.02);
}

TEST(LossModel, SurfaceResistanceGrowsWithFrequency) {
  EXPECT_GT(surfaceResistance(32.0e9, 5.8e7), surfaceResistance(16.0e9, 5.8e7));
  // Rs ~ sqrt(f): doubling f multiplies by sqrt(2).
  EXPECT_NEAR(surfaceResistance(32.0e9, 5.8e7) / surfaceResistance(16.0e9, 5.8e7),
              std::sqrt(2.0), 1e-9);
}

TEST(LossModel, RoughnessFactorBoundsAndMonotonicity) {
  StackupParams p = manualDesign();
  p[Param::Rt] = -14.5;
  const double smooth = roughnessFactor(p);
  p[Param::Rt] = 0.0;
  const double mid = roughnessFactor(p);
  p[Param::Rt] = 14.0;
  const double rough = roughnessFactor(p);
  EXPECT_GE(smooth, 1.0);
  EXPECT_LT(smooth, 1.1);  // near-smooth foil
  EXPECT_GT(mid, smooth);
  EXPECT_GT(rough, mid);
  EXPECT_LT(rough, 2.0);   // Hammerstad saturates at 2
}

TEST(LossModel, TotalIsNegativeAndComponentsPositive) {
  const StackupParams p = manualDesign();
  EXPECT_GT(conductorLossDbPerInch(p), 0.0);
  EXPECT_GT(dielectricLossDbPerInch(p), 0.0);
  EXPECT_LT(insertionLossDbPerInch(p), 0.0);
  EXPECT_NEAR(-insertionLossDbPerInch(p),
              conductorLossDbPerInch(p) + dielectricLossDbPerInch(p), 1e-12);
}

struct LossTrendCase {
  const char* name;
  Param param;
  double delta;
  int lossMagnitudeSign;  ///< sign of d|L| for +delta
};

class LossTrend : public ::testing::TestWithParam<LossTrendCase> {};

TEST_P(LossTrend, HoldsAcrossRandomS1Designs) {
  const auto& tc = GetParam();
  const auto space = spaceS1();
  Rng rng(99);
  int agree = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    StackupParams p = space.sample(rng);
    StackupParams q = p;
    q[tc.param] += tc.delta;
    const double d = -insertionLossDbPerInch(q) - (-insertionLossDbPerInch(p));
    if (d != 0.0) {
      ++total;
      if ((d > 0) == (tc.lossMagnitudeSign > 0)) ++agree;
    }
  }
  EXPECT_EQ(agree, total) << tc.name;
  EXPECT_GT(total, 50);
}

INSTANTIATE_TEST_SUITE_P(
    Physics, LossTrend,
    ::testing::Values(
        LossTrendCase{"HigherDfCoreMoreLoss", Param::DfC, 0.005, +1},
        LossTrendCase{"HigherDfPrepregMoreLoss", Param::DfP, 0.005, +1},
        LossTrendCase{"RougherCopperMoreLoss", Param::Rt, 5.0, +1},
        LossTrendCase{"BetterConductorLessLoss", Param::SigmaT, 1.0e7, -1},
        LossTrendCase{"WiderTraceLessLoss", Param::Wt, 1.0, -1}),
    [](const auto& info) { return info.param.name; });

TEST(LossModel, DielectricLossScalesWithFrequency) {
  StackupParams p = manualDesign();
  LossModelConfig at16;
  LossModelConfig at32 = at16;
  at32.frequencyHz = 32.0e9;
  EXPECT_NEAR(dielectricLossDbPerInch(p, at32) / dielectricLossDbPerInch(p, at16), 2.0,
              1e-9);
}

TEST(LossModel, FiniteOverTrainingSpace) {
  const auto space = trainingSpace();
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    StackupParams p = space.sample(rng);
    const double l = insertionLossDbPerInch(p);
    ASSERT_TRUE(std::isfinite(l));
    ASSERT_LT(l, 0.0);
    ASSERT_GT(l, -100.0);
  }
}

}  // namespace
}  // namespace isop::em
