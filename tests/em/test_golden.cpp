// Golden-value regression tests for the calibrated EM models.
//
// The constants below snapshot the model outputs at fixed design points
// (stripline and microstrip). Any change to the physics or its calibration
// constants shows up here first — intentional recalibration must update
// these values AND re-check the Table IX anchors in docs/physics.md.
#include <gtest/gtest.h>

#include <cmath>

#include "em/simulator.hpp"

namespace isop::em {
namespace {

struct GoldenCase {
  std::array<double, kNumParams> params;
  double stripZ, stripL, stripNext;
  double microZ, microL, microNext;
};

// Generated from spaceS1().sample with seed 20260706.
const GoldenCase kGolden[] = {
  {{2.9, 10, 30, 0.2, 0.6, 7, 5.2, 58000000, -2.5, 4.05, 4.45, 3.7, 0.012, 0.015, 0.008},
   114.746432427, -1.56063870525, -0.31644389924, 198.397528839, -1.34212750654, -1.51068906509},
  {{2.6, 3, 30, 0, 0.7, 7.4, 2.4, 44000000, -1, 4.1, 3.25, 3.9, 0.004, 0.011, 0.013},
   87.9916955248, -1.88075609431, -0.014655737143, 167.82801523, -1.10762253692, -0.577021177707},
  {{4.2, 5, 40, 0.05, 0.8, 6.8, 3.4, 49000000, 8, 3.85, 4.35, 3.85, 0.02, 0.017, 0.02},
   82.1445229037, -2.36636688719, -0.0107080866399, 148.391145404, -1.54516970906, -0.39524783319},
  {{2.9, 5, 40, 0.25, 1, 2.8, 2.2, 44000000, 13.5, 3.05, 4.35, 4.05, 0.009, 0.001, 0.006},
   78.9172232164, -2.16787467444, -5.89294830046e-05, 136.474177583, -1.30489370372, -0.0551107338581},
  {{4.3, 7.5, 40, 0.25, 1.4, 4.2, 3.8, 53000000, -8, 3.25, 2.95, 2.7, 0.014, 0.006, 0.007},
   96.1290303388, -0.996118930242, -0.00699508142454, 154.714490959, -0.667245786632, -0.210401838567},
  {{4.7, 8, 40, 0.15, 1.1, 5.6, 5.6, 56000000, 7, 3.35, 3.55, 3.85, 0.004, 0.003, 0.004},
   92.7928111791, -0.99842672038, -0.0540798528576, 156.637366745, -0.683088252579, -0.410536778842},
};

class GoldenPhysics : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenPhysics, StriplineMetricsFrozen) {
  const GoldenCase& c = kGolden[GetParam()];
  EmSimulator sim;
  StackupParams p;
  p.values = c.params;
  const auto m = sim.evaluateUncounted(p);
  EXPECT_NEAR(m.z, c.stripZ, 1e-6 * std::abs(c.stripZ));
  EXPECT_NEAR(m.l, c.stripL, 1e-6 * std::abs(c.stripL));
  EXPECT_NEAR(m.next, c.stripNext, 1e-6 * std::abs(c.stripNext) + 1e-12);
}

TEST_P(GoldenPhysics, MicrostripMetricsFrozen) {
  const GoldenCase& c = kGolden[GetParam()];
  SimulatorConfig cfg;
  cfg.layerType = LayerType::Microstrip;
  EmSimulator sim(cfg);
  StackupParams p;
  p.values = c.params;
  const auto m = sim.evaluateUncounted(p);
  EXPECT_NEAR(m.z, c.microZ, 1e-6 * std::abs(c.microZ));
  EXPECT_NEAR(m.l, c.microL, 1e-6 * std::abs(c.microL));
  EXPECT_NEAR(m.next, c.microNext, 1e-6 * std::abs(c.microNext) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenPhysics,
                         ::testing::Range<std::size_t>(0, std::size(kGolden)));

TEST(GoldenPhysics, TableIxAnchorsHold) {
  // The calibration contract with the paper (docs/physics.md).
  EmSimulator sim;
  StackupParams manual;
  manual.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
                   -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  const auto m = sim.evaluateUncounted(manual);
  EXPECT_NEAR(m.z, 85.69, 0.2);    // paper: 85.69
  EXPECT_NEAR(m.l, -0.434, 0.01);  // paper: -0.434
  EXPECT_NEAR(m.next, -2.77, 0.2); // paper: -2.77
}

}  // namespace
}  // namespace isop::em
