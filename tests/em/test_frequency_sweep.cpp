#include "em/frequency_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "em/parameter_space.hpp"
#include "em/stripline.hpp"

namespace isop::em {
namespace {

StackupParams manualDesign() {
  StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

TEST(Rlgc, BackboneMatchesImpedanceAndVelocity) {
  const StackupParams p = manualDesign();
  const RlgcPoint rlgc = deriveRlgc(p, 16.0e9);
  // sqrt(L/C) equals the single-ended impedance the geometry model gives.
  EXPECT_NEAR(std::sqrt(rlgc.l / rlgc.c), singleEndedImpedance(p), 1e-6);
  // 1/sqrt(LC) equals c0/sqrt(dkEff).
  const double v = 1.0 / std::sqrt(rlgc.l * rlgc.c);
  const double dkEff = deriveGeometry(p).dkEff;
  EXPECT_NEAR(v, 2.99792458e8 / std::sqrt(dkEff), 1.0);
}

TEST(Rlgc, LossTermsPositiveAndFrequencyScaling) {
  const StackupParams p = manualDesign();
  const RlgcPoint at16 = deriveRlgc(p, 16.0e9);
  const RlgcPoint at32 = deriveRlgc(p, 32.0e9);
  EXPECT_GT(at16.r, 0.0);
  EXPECT_GT(at16.g, 0.0);
  // Skin effect: R ~ sqrt(f) (roughness factor adds a little more).
  EXPECT_GT(at32.r, 1.3 * at16.r);
  EXPECT_LT(at32.r, 2.5 * at16.r);
  // Dielectric conductance: G ~ f.
  EXPECT_NEAR(at32.g / at16.g, 2.0, 0.05);
}

TEST(Rlgc, CharacteristicImpedanceNearlyReal) {
  const RlgcPoint rlgc = deriveRlgc(manualDesign(), 16.0e9);
  const auto zc = rlgc.characteristicImpedance();
  EXPECT_GT(zc.real(), 20.0);
  EXPECT_LT(std::abs(zc.imag()), 0.05 * zc.real());  // low-loss line
}

TEST(SParams, MatchedLineLossAgreesWithScalarModel) {
  // This is the consistency contract between the frequency-domain view and
  // the scalar L the optimizer uses.
  const StackupParams p = manualDesign();
  const auto s = lineSParameters(p, 16.0e9, 1.0);  // 1 inch, matched
  EXPECT_NEAR(s.s21Db(), insertionLossDbPerInch(p), 0.01);
}

TEST(SParams, MatchedLineHasTinyReflection) {
  const auto s = lineSParameters(manualDesign(), 16.0e9, 1.0);
  EXPECT_LT(s.s11Db(), -30.0);
}

TEST(SParams, MismatchedReferenceReflects) {
  const StackupParams p = manualDesign();
  const auto matched = lineSParameters(p, 16.0e9, 1.0);
  const auto mismatched = lineSParameters(p, 16.0e9, 1.0, 25.0);  // ~2:1
  EXPECT_GT(mismatched.s11Db(), matched.s11Db() + 10.0);
}

TEST(SParams, LossScalesWithLength) {
  const StackupParams p = manualDesign();
  const double oneInch = lineSParameters(p, 16.0e9, 1.0).s21Db();
  const double tenInch = lineSParameters(p, 16.0e9, 10.0).s21Db();
  EXPECT_NEAR(tenInch, 10.0 * oneInch, 0.05);
}

TEST(SParams, PassivityOverSweep) {
  const auto sweep = frequencySweep(manualDesign(), {.points = 60, .lengthInches = 5.0});
  ASSERT_EQ(sweep.size(), 60u);
  for (const auto& s : sweep) {
    const double power = std::norm(s.s11) + std::norm(s.s21);
    EXPECT_LE(power, 1.0 + 1e-9) << "active at " << s.frequencyHz;
    EXPECT_GT(std::abs(s.s21), 0.0);
  }
}

TEST(SParams, InsertionLossMonotoneInFrequency) {
  const auto sweep = frequencySweep(manualDesign(), {.points = 30, .lengthInches = 1.0});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].s21Db(), sweep[i - 1].s21Db() + 1e-6);
  }
}

TEST(Sweep, LogSpacingCoversRange) {
  SweepConfig cfg;
  cfg.startHz = 1e9;
  cfg.stopHz = 64e9;
  cfg.points = 7;
  cfg.logSpacing = true;
  const auto sweep = frequencySweep(manualDesign(), cfg);
  EXPECT_DOUBLE_EQ(sweep.front().frequencyHz, 1e9);
  EXPECT_NEAR(sweep.back().frequencyHz, 64e9, 1.0);
  EXPECT_NEAR(sweep[1].frequencyHz / sweep[0].frequencyHz, 2.0, 1e-6);
}

TEST(ChannelSummary, ReportsConsistentFigures) {
  SweepConfig cfg;
  cfg.lengthInches = 10.0;  // long enough to cross -3 dB inside the sweep
  const ChannelSummary summary = summarizeChannel(manualDesign(), cfg);
  EXPECT_NEAR(summary.lossAt16GHzDbPerInch, insertionLossDbPerInch(manualDesign()),
              0.01);
  EXPECT_LE(summary.worstReturnLossDb, 0.0);
  EXPECT_GT(summary.bandwidth3DbGHz, 1.0);
  EXPECT_LT(summary.bandwidth3DbGHz, 40.0);
}

TEST(ChannelSummary, LossierLaminateShrinksBandwidth) {
  StackupParams lowLoss = manualDesign();
  StackupParams highLoss = manualDesign();
  highLoss[Param::DfC] = 0.02;
  highLoss[Param::DfP] = 0.02;
  highLoss[Param::DfT] = 0.02;
  SweepConfig cfg;
  cfg.lengthInches = 10.0;
  EXPECT_LT(summarizeChannel(highLoss, cfg).bandwidth3DbGHz,
            summarizeChannel(lowLoss, cfg).bandwidth3DbGHz);
}

TEST(Touchstone, WritesParseableS2p) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "isop_test.s2p").string();
  const auto sweep = frequencySweep(manualDesign(), {.points = 5, .lengthInches = 2.0});
  writeTouchstone(path, sweep, 42.5);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line[0], '!');  // comment header
  std::getline(in, line);
  EXPECT_EQ(line, "# Hz S RI R 42.5");  // option line
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++rows;
    std::istringstream cells(line);
    double v;
    std::size_t count = 0;
    while (cells >> v) ++count;
    EXPECT_EQ(count, 9u);  // f + 4 complex pairs
  }
  EXPECT_EQ(rows, 5u);
  std::remove(path.c_str());
}

TEST(Touchstone, ReciprocalAndSymmetric) {
  namespace fs = std::filesystem;
  const std::string path = (fs::temp_directory_path() / "isop_test2.s2p").string();
  const auto sweep = frequencySweep(manualDesign(), {.points = 3});
  writeTouchstone(path, sweep);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    double f, s11r, s11i, s21r, s21i, s12r, s12i, s22r, s22i;
    cells >> f >> s11r >> s11i >> s21r >> s21i >> s12r >> s12i >> s22r >> s22i;
    EXPECT_DOUBLE_EQ(s12r, s21r);
    EXPECT_DOUBLE_EQ(s12i, s21i);
    EXPECT_DOUBLE_EQ(s22r, s11r);
    EXPECT_DOUBLE_EQ(s22i, s11i);
  }
  std::remove(path.c_str());
}

TEST(Touchstone, BadPathThrows) {
  const auto sweep = frequencySweep(manualDesign(), {.points = 3});
  EXPECT_THROW(writeTouchstone("/no/such/dir/x.s2p", sweep), std::runtime_error);
}

TEST(Sweep, FiniteAcrossRandomDesigns) {
  const auto space = spaceS1();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const StackupParams p = space.sample(rng);
    const auto s = lineSParameters(p, 16.0e9, 2.0);
    ASSERT_TRUE(std::isfinite(s.s21Db()));
    ASSERT_TRUE(std::isfinite(s.s11Db()));
  }
}

}  // namespace
}  // namespace isop::em
