#!/usr/bin/env python3
"""Self-test for scripts/isop_lint.py: one positive and one negative fixture
per rule, plus the suppression contract (reasoned suppressions accepted,
bare suppressions rejected, rule-scoped suppressions only silence their
rule). Registered as a ctest (`IsopLint.SelfTest`); stdlib unittest only.

Each fixture is written into a temp tree shaped like the repo (<root>/src/…)
and linted through the real public entry points, so the walker, rule
dispatch, allowlists and exit codes are all under test — not just the
regexes.
"""

from __future__ import annotations

import importlib.util
import io
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "isop_lint", REPO_ROOT / "scripts" / "isop_lint.py")
isop_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(isop_lint)


class LintFixture(unittest.TestCase):
    """Lint a single in-memory file and assert on the rule ids found."""

    def lint(self, source: str, rules: set[str] | None = None,
             rel: str = "src/core/fixture.cpp") -> list:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
            return isop_lint.lint_file(path, rel,
                                       rules or set(isop_lint.ALL_RULES))

    def rule_ids(self, source: str, **kwargs) -> list[str]:
        return [f.rule for f in self.lint(source, **kwargs)]


class DeterminismRules(LintFixture):
    def test_b1_flags_rand_and_srand(self):
        self.assertEqual(self.rule_ids("int x = rand();\n"), ["B1"])
        self.assertEqual(self.rule_ids("srand(42);\n"), ["B1"])

    def test_b1_ignores_method_named_suffix(self):
        self.assertEqual(self.rule_ids("rng.brand(7);\nisop::Rng r(1);\n"), [])

    def test_b2_flags_random_device(self):
        self.assertEqual(self.rule_ids("std::random_device rd;\n"), ["B2"])

    def test_b3_flags_wall_clock_reads(self):
        src = "auto t = std::chrono::system_clock::now();\n"
        self.assertEqual(self.rule_ids(src), ["B3"])
        self.assertEqual(self.rule_ids("time(nullptr);\n"), ["B3"])

    def test_b3_allows_steady_clock(self):
        self.assertEqual(
            self.rule_ids("auto t = std::chrono::steady_clock::now();\n"), [])

    def test_b4_flags_ranged_for_over_unordered(self):
        src = ("std::unordered_map<int, int> memo;\n"
               "for (const auto& kv : memo) { use(kv); }\n")
        self.assertEqual(self.rule_ids(src), ["B4"])

    def test_b4_allows_ordered_containers(self):
        src = ("std::map<int, int> memo;\n"
               "for (const auto& kv : memo) { use(kv); }\n")
        self.assertEqual(self.rule_ids(src), [])


class LockRules(LintFixture):
    def test_l1_flags_raw_mutex_and_guards(self):
        self.assertEqual(self.rule_ids("std::mutex m;\n"), ["L1"])
        self.assertEqual(
            self.rule_ids("std::lock_guard<std::mutex> g(m);\n"),
            ["L1"])
        self.assertEqual(self.rule_ids("std::unique_lock lk(m);\n"), ["L1"])
        self.assertEqual(self.rule_ids("#include <mutex>\n"), ["L1"])

    def test_l1_allows_annotated_wrappers(self):
        src = ("AnnotatedMutex m{\"x\"};\n"
               "int v ISOP_GUARDED_BY(m);\n"
               "MutexLock lock(m);\n")
        self.assertEqual(self.rule_ids(src), [])

    def test_l2_flags_mutex_guarding_nothing(self):
        ids = self.rule_ids("mutable AnnotatedMutex mutex_{\"core.x\"};\n")
        self.assertEqual(ids, ["L2"])

    def test_l2_satisfied_by_guarded_sibling(self):
        src = ("mutable AnnotatedMutex mutex_{\"core.x\"};\n"
               "int state_ ISOP_GUARDED_BY(mutex_);\n")
        self.assertEqual(self.rule_ids(src), [])

    def test_l2_satisfied_by_requires_annotation(self):
        src = ("mutable AnnotatedMutex mutex_{\"core.x\"};\n"
               "void drain() ISOP_REQUIRES(mutex_);\n")
        self.assertEqual(self.rule_ids(src), [])

    def test_l3_flags_blocking_calls_under_mutexlock(self):
        src = ("void f() {\n"
               "  MutexLock lock(mutex_);\n"
               "  worker_.join();\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), ["L3"])
        src = ("void g() {\n"
               "  MutexLock lock(mutex_);\n"
               "  std::fwrite(p, 1, n, file_);\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), ["L3"])
        src = ("void h() {\n"
               "  MutexLock lock(mutex_);\n"
               "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), ["L3"])

    def test_l3_scope_ends_at_closing_brace(self):
        src = ("void f() {\n"
               "  { MutexLock lock(mutex_); state_ = 1; }\n"
               "  worker_.join();\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), [])

    def test_l3_exempts_cvlock_waits(self):
        src = ("void f() {\n"
               "  CvLock lock(mutex_);\n"
               "  cv_.wait(lock);\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), [])


class Suppressions(LintFixture):
    def test_reasoned_lint_ok_is_accepted(self):
        src = "std::mutex m;  // lint-ok(L1): fixture needs the raw type\n"
        self.assertEqual(self.rule_ids(src), [])

    def test_bare_lint_ok_is_rejected(self):
        ids = self.rule_ids("std::mutex m;  // lint-ok(L1)\n")
        self.assertEqual(ids, ["S1"])

    def test_suppression_only_silences_named_rule(self):
        # L1 suppressed, but the same line's B2 finding must survive.
        src = "std::mutex m; std::random_device rd;  // lint-ok(L1): fixture\n"
        self.assertEqual(self.rule_ids(src), ["B2"])

    def test_multi_rule_suppression(self):
        src = ("void f() {\n"
               "  MutexLock lock(mutex_);\n"
               "  std::fwrite(p, 1, n, f_);  // lint-ok(L3, B3): fixture\n"
               "}\n")
        self.assertEqual(self.rule_ids(src), [])

    def test_legacy_determinism_ok_covers_b_rules_only(self):
        src = "auto t = std::chrono::system_clock::now();  // determinism-ok: stamp\n"
        self.assertEqual(self.rule_ids(src), [])
        src = "std::mutex m;  // determinism-ok: wrong spelling for L rules\n"
        self.assertEqual(self.rule_ids(src), ["L1"])

    def test_bare_determinism_ok_is_rejected(self):
        ids = self.rule_ids("time(nullptr);  // determinism-ok\n")
        self.assertEqual(ids, ["S1"])


class RuleSelectionAndAllowlists(LintFixture):
    def test_rules_flag_scopes_the_run(self):
        src = "std::mutex m;\nint x = rand();\n"
        self.assertEqual(self.rule_ids(src, rules={"B1"}), ["B1"])
        self.assertEqual(self.rule_ids(src, rules={"L1"}), ["L1"])

    def test_parse_rules_groups_and_ids(self):
        self.assertEqual(isop_lint.parse_rules("determinism"),
                         isop_lint.DETERMINISM_RULES)
        self.assertEqual(isop_lint.parse_rules("locks"), isop_lint.LOCK_RULES)
        self.assertEqual(isop_lint.parse_rules("B1,L3"), {"B1", "L3"})
        self.assertIsNone(isop_lint.parse_rules("Z9"))

    def test_file_allowlist_exempts_rule_for_that_file_only(self):
        src = "auto t = std::chrono::system_clock::now();\n"
        self.assertEqual(self.rule_ids(src, rel="src/common/logging.cpp"), [])
        self.assertEqual(self.rule_ids(src, rel="src/common/timer.cpp"),
                         ["B3"])


class CommandLine(unittest.TestCase):
    def run_main(self, *argv: str) -> tuple[int, str]:
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            rc = isop_lint.main(["isop_lint.py", *argv])
        return rc, out.getvalue()

    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "src").mkdir()
            (Path(tmp) / "src" / "ok.cpp").write_text("int main() {}\n")
            rc, _ = self.run_main(tmp)
        self.assertEqual(rc, 0)

    def test_findings_exit_one_with_rule_ids(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "src").mkdir()
            (Path(tmp) / "src" / "bad.cpp").write_text("std::mutex m;\n")
            rc, out = self.run_main(tmp)
        self.assertEqual(rc, 1)
        self.assertIn("[L1]", out)
        self.assertIn("src/bad.cpp:1", out)

    def test_missing_src_is_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            rc, _ = self.run_main(tmp)
        self.assertEqual(rc, 2)

    def test_bad_rules_flag_is_usage_error(self):
        rc, _ = self.run_main(str(REPO_ROOT), "--rules", "nonsense")
        self.assertEqual(rc, 2)

    def test_repo_tree_is_clean(self):
        rc, out = self.run_main(str(REPO_ROOT))
        self.assertEqual(rc, 0, f"repo lint regressions:\n{out}")


if __name__ == "__main__":
    unittest.main()
