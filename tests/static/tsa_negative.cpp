// Negative compile test for the thread-safety gate. This file MUST NOT
// compile under `clang++ -Wthread-safety -Werror=thread-safety-analysis`:
// every function below contains an intentional locking bug that the
// analysis is required to reject. scripts/check_static.sh builds this TU
// (with -DISOP_TSA_NEGATIVE_SEAM for the MemoCache case) and fails the gate
// if the compiler ACCEPTS it — a passing compile would mean the annotations
// have silently stopped guarding anything.
//
// Not registered with CMake/CTest: it is compiled standalone by the gate
// script only. See docs/static_analysis.md.

#include "common/thread_annotations.hpp"
#include "core/eval/memo_cache.hpp"
#include "serve/server.hpp"

namespace {

// Bug 1: reading a guarded member without holding its mutex.
struct Counter {
  isop::AnnotatedMutex mutex;
  long value ISOP_GUARDED_BY(mutex) = 0;
};

long readWithoutLock(Counter& c) {
  return c.value;  // expected-error: reading variable requires holding mutex
}

// Bug 2: writing under the wrong lock.
struct TwoLocks {
  isop::AnnotatedMutex a;
  isop::AnnotatedMutex b;
  long guardedByA ISOP_GUARDED_BY(a) = 0;
};

void writeUnderWrongLock(TwoLocks& t) {
  isop::MutexLock lock(t.b);
  t.guardedByA = 1;  // expected-error: holds b, needs a
}

// Bug 3: calling a REQUIRES function without the capability.
class Queue {
 public:
  void pushLocked() ISOP_REQUIRES(mutex_) { ++depth_; }
  isop::AnnotatedMutex mutex_;

 private:
  long depth_ ISOP_GUARDED_BY(mutex_) = 0;
};

void callWithoutCapability(Queue& q) {
  q.pushLocked();  // expected-error: requires holding mutex_
}

// Bug 4: the injected MemoCache seam — iterating the shard maps with no
// shard lock held. This is the acceptance case: real MemoCache state,
// real guard annotations, unguarded access, and the build must die.
std::size_t memoCacheUnguarded(const isop::core::eval::MemoCache& cache) {
#ifdef ISOP_TSA_NEGATIVE_SEAM
  return cache.unguardedSize();  // the seam itself fails to compile
#else
  (void)cache;
  return 0;
#endif
}

// Bug 5: the injected serve seam — reading the Server connection registry
// with no lock held (Server::unguardedConnectionCount, which reads
// connections_ without connectionsMutex_). Proves the gate covers the
// serve layer's annotations, not just core/eval. The error fires inside
// the header's inline seam body; calling it here keeps the TU's shape
// parallel to the MemoCache case. (This TU is only ever syntax-checked —
// nothing runs, so no server is really constructed.)
std::size_t serveUnguarded(const isop::serve::Server& server) {
#ifdef ISOP_TSA_NEGATIVE_SEAM
  return server.unguardedConnectionCount();  // the seam itself fails to compile
#else
  (void)server;
  return 0;
#endif
}

}  // namespace

int main() {
  Counter c;
  TwoLocks t;
  Queue q;
  isop::core::eval::MemoCache cache(16);
  isop::serve::Server server({}, nullptr, nullptr);
  return static_cast<int>(readWithoutLock(c) + memoCacheUnguarded(cache) +
                          serveUnguarded(server)) +
         (writeUnderWrongLock(t), callWithoutCapability(q), 0);
}
