#include "hpo/lasso.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace isop::hpo {
namespace {

TEST(Lasso, RecoversSparseCoefficients) {
  // y = 3 x2 - 2 x7 + 1, 20 features, 120 samples.
  Rng rng(1);
  const std::size_t n = 120, d = 20;
  Matrix x(n, d);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
    y[i] = 3.0 * x(i, 2) - 2.0 * x(i, 7) + 1.0;
  }
  const LassoResult result = lassoFit(x, y, {.lambda = 0.05});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.coefficients[2], 3.0, 0.25);
  EXPECT_NEAR(result.coefficients[7], -2.0, 0.25);
  EXPECT_NEAR(result.intercept, 1.0, 0.1);
  std::size_t nonzero = 0;
  for (double c : result.coefficients) {
    if (c != 0.0) ++nonzero;
  }
  EXPECT_LE(nonzero, 6u);  // sparse solution
}

TEST(Lasso, LargeLambdaKillsAllCoefficients) {
  Rng rng(2);
  Matrix x(50, 5);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
    y[i] = 0.1 * x(i, 0);
  }
  const LassoResult result = lassoFit(x, y, {.lambda = 10.0});
  for (double c : result.coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Lasso, ZeroLambdaApproachesLeastSquares) {
  Rng rng(3);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 2.0 * x(i, 0) - 0.5 * x(i, 1);
  }
  const LassoResult result = lassoFit(x, y, {.lambda = 1e-6, .maxIters = 500});
  EXPECT_NEAR(result.coefficients[0], 2.0, 1e-2);
  EXPECT_NEAR(result.coefficients[1], -0.5, 1e-2);
}

TEST(Lasso, HandlesConstantColumn) {
  Matrix x(30, 2);
  std::vector<double> y(30);
  Rng rng(4);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = 1.0;  // constant
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = x(i, 1);
  }
  const LassoResult result = lassoFit(x, y, {.lambda = 0.01});
  EXPECT_NEAR(result.coefficients[1], 1.0, 0.1);
  EXPECT_TRUE(std::isfinite(result.coefficients[0]));
}

TEST(Lasso, NoInterceptMode) {
  Rng rng(5);
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(0.5, 1.5);
    y[i] = 2.0 * x(i, 0);
  }
  const LassoResult result = lassoFit(x, y, {.lambda = 1e-4, .fitIntercept = false});
  EXPECT_DOUBLE_EQ(result.intercept, 0.0);
  EXPECT_NEAR(result.coefficients[0], 2.0, 0.05);
}

}  // namespace
}  // namespace isop::hpo
