#include "hpo/binary_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::hpo {
namespace {

TEST(GrayCode, RoundTripAndAdjacency) {
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(grayToBinary(binaryToGray(v)), v);
  }
  // Consecutive values differ in exactly one Gray bit.
  for (std::uint64_t v = 0; v + 1 < 64; ++v) {
    const std::uint64_t diff = binaryToGray(v) ^ binaryToGray(v + 1);
    EXPECT_EQ(__builtin_popcountll(diff), 1);
  }
}

class CodecTest : public ::testing::TestWithParam<BitCoding> {
 protected:
  BinaryCodec makeCodec() const { return BinaryCodec(em::spaceS1(), GetParam()); }
};

TEST_P(CodecTest, TotalBitsMatchesTableIII) {
  EXPECT_EQ(makeCodec().totalBits(), 73u);
}

TEST_P(CodecTest, EncodeDecodeRoundTrip) {
  const auto codec = makeCodec();
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const em::StackupParams p = codec.space().sample(rng);
    const BitVector bits = codec.encode(p);
    const auto decoded = codec.decode(bits);
    ASSERT_TRUE(decoded.has_value());
    for (std::size_t j = 0; j < em::kNumParams; ++j) {
      EXPECT_NEAR(decoded->values[j], p.values[j], 1e-9) << "param " << j;
    }
  }
}

TEST_P(CodecTest, SampleValidAlwaysDecodes) {
  const auto codec = makeCodec();
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(codec.isValid(codec.sampleValid(rng)));
  }
}

TEST_P(CodecTest, DetectsInvalidPatterns) {
  const auto codec = makeCodec();
  // Wt has 31 cases in 5 bits -> index 31 is invalid.
  BitVector bits(codec.totalBits(), 0);
  for (std::size_t b = 0; b < codec.bitCount(0); ++b) bits[codec.bitOffset(0) + b] = 1;
  if (GetParam() == BitCoding::Binary) {
    // All-ones = index 31 (binary) -> invalid.
    EXPECT_FALSE(codec.decode(bits).has_value());
  } else {
    // All-ones Gray = binary 0b10101 = 21 -> valid; craft index 31 instead:
    // gray(31) = 31 ^ 15 = 0b10000.
    for (std::size_t b = 0; b < 5; ++b) bits[codec.bitOffset(0) + b] = 0;
    bits[codec.bitOffset(0)] = 1;
    EXPECT_FALSE(codec.decode(bits).has_value());
  }
}

TEST_P(CodecTest, DecodeClampedAlwaysSucceeds) {
  const auto codec = makeCodec();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    BitVector bits(codec.totalBits());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    const em::StackupParams p = codec.decodeClamped(bits);
    EXPECT_TRUE(codec.space().contains(p));
  }
}

TEST_P(CodecTest, BitLayoutIsContiguous) {
  const auto codec = makeCodec();
  std::size_t expectedOffset = 0;
  for (std::size_t i = 0; i < codec.paramCount(); ++i) {
    EXPECT_EQ(codec.bitOffset(i), expectedOffset);
    expectedOffset += codec.bitCount(i);
  }
  EXPECT_EQ(expectedOffset, codec.totalBits());
}

INSTANTIATE_TEST_SUITE_P(Codings, CodecTest,
                         ::testing::Values(BitCoding::Binary, BitCoding::Gray),
                         [](const auto& info) {
                           return info.param == BitCoding::Binary ? "Binary" : "Gray";
                         });

TEST(CodecEncoding, OffGridValuesSnapBeforeEncoding) {
  const BinaryCodec codec(em::spaceS1());
  em::StackupParams p = em::spaceS1().sample(*std::make_unique<Rng>(4));
  p.values[0] = 3.14;  // off the 0.1 grid
  const auto decoded = codec.decode(codec.encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NEAR(decoded->values[0], 3.1, 1e-9);
}


// Round-trip property over every space the paper defines (plus the
// envelope), under both codings.
struct SpaceCodingCase {
  const char* space;
  BitCoding coding;
};

class CodecSpaceSweep : public ::testing::TestWithParam<SpaceCodingCase> {};

TEST_P(CodecSpaceSweep, RoundTripAndValidity) {
  const auto& param = GetParam();
  const BinaryCodec codec(em::spaceByName(param.space), param.coding);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const em::StackupParams p = codec.space().sample(rng);
    const auto decoded = codec.decode(codec.encode(p));
    ASSERT_TRUE(decoded.has_value());
    for (std::size_t j = 0; j < em::kNumParams; ++j) {
      ASSERT_NEAR(decoded->values[j], p.values[j], 1e-9);
    }
    ASSERT_TRUE(codec.isValid(codec.sampleValid(rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpaces, CodecSpaceSweep,
    ::testing::Values(SpaceCodingCase{"S1", BitCoding::Binary},
                      SpaceCodingCase{"S2", BitCoding::Binary},
                      SpaceCodingCase{"S1p", BitCoding::Binary},
                      SpaceCodingCase{"envelope", BitCoding::Binary},
                      SpaceCodingCase{"S2", BitCoding::Gray},
                      SpaceCodingCase{"envelope", BitCoding::Gray}),
    [](const auto& info) {
      return std::string(info.param.space == std::string("S1p") ? "S1prime"
                                                                : info.param.space) +
             (info.param.coding == BitCoding::Binary ? "_Binary" : "_Gray");
    });

}  // namespace
}  // namespace isop::hpo
