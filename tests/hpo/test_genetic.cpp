#include "hpo/genetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hpo/random_search.hpp"

namespace isop::hpo {
namespace {

double bowlObjective(const em::StackupParams& p) {
  const auto space = em::spaceS1();
  double acc = 0.0;
  for (std::size_t i = 0; i < em::kNumParams; ++i) {
    const auto& r = space.range(i);
    const double mid = 0.5 * (r.lo + r.hi);
    const double norm = (p.values[i] - mid) / (r.hi - r.lo);
    acc += norm * norm;
  }
  return acc;
}

TEST(GeneticAlgorithm, RespectsEvaluationBudget) {
  GaConfig cfg;
  cfg.evaluations = 500;
  cfg.seed = 1;
  std::size_t calls = 0;
  const auto result = GeneticAlgorithm(cfg).optimize(em::spaceS1(), [&](const auto& p) {
    ++calls;
    return bowlObjective(p);
  });
  EXPECT_LE(calls, 500u);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_GT(result.generations, 2u);
}

TEST(GeneticAlgorithm, BeatsRandomSearchAtEqualBudget) {
  GaConfig gaCfg;
  gaCfg.evaluations = 3000;
  gaCfg.seed = 2;
  RandomSearchConfig rsCfg;
  rsCfg.evaluations = 3000;
  rsCfg.seed = 2;
  const double ga =
      GeneticAlgorithm(gaCfg).optimize(em::spaceS1(), bowlObjective).bestValue;
  const double rs = RandomSearch(rsCfg).optimize(em::spaceS1(), bowlObjective).bestValue;
  EXPECT_LT(ga, rs);
}

TEST(GeneticAlgorithm, ConvergesOnSmoothObjective) {
  GaConfig cfg;
  cfg.evaluations = 8000;
  cfg.seed = 3;
  const auto result = GeneticAlgorithm(cfg).optimize(em::spaceS1(), bowlObjective);
  EXPECT_LT(result.bestValue, 0.05);
}

TEST(GeneticAlgorithm, StaysOnGrid) {
  GaConfig cfg;
  cfg.evaluations = 600;
  cfg.seed = 4;
  const auto space = em::spaceS1();
  const auto result = GeneticAlgorithm(cfg).optimize(space, [&](const em::StackupParams& p) {
    EXPECT_TRUE(space.contains(p));
    return bowlObjective(p);
  });
  EXPECT_TRUE(space.contains(result.best));
}

TEST(GeneticAlgorithm, DeterministicForFixedSeed) {
  GaConfig cfg;
  cfg.evaluations = 1000;
  cfg.seed = 5;
  const auto a = GeneticAlgorithm(cfg).optimize(em::spaceS1(), bowlObjective);
  const auto b = GeneticAlgorithm(cfg).optimize(em::spaceS1(), bowlObjective);
  EXPECT_EQ(a.bestValue, b.bestValue);
  EXPECT_EQ(a.best.values, b.best.values);
}

TEST(GeneticAlgorithm, ElitesNeverRegress) {
  // The running best value must be monotone across the search (elitism plus
  // best-so-far tracking make this structural, but it guards regressions).
  GaConfig cfg;
  cfg.evaluations = 1500;
  cfg.seed = 6;
  double bestSeen = std::numeric_limits<double>::infinity();
  bool monotone = true;
  double last = std::numeric_limits<double>::infinity();
  GeneticAlgorithm(cfg).optimize(em::spaceS1(), [&](const auto& p) {
    const double v = bowlObjective(p);
    bestSeen = std::min(bestSeen, v);
    if (bestSeen > last + 1e-12) monotone = false;
    last = bestSeen;
    return v;
  });
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace isop::hpo
