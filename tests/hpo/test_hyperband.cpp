#include "hpo/hyperband.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <atomic>

namespace isop::hpo {
namespace {

/// Toy objective over 8-bit configs: number of set bits (minimize -> all 0).
double popcountValue(const BitVector& bits) {
  double acc = 0.0;
  for (auto b : bits) acc += b;
  return acc;
}

Hyperband::Sampler sampler8() {
  return [](Rng& rng) {
    BitVector bits(8);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    return bits;
  };
}

TEST(Hyperband, FindsGoodConfigurations) {
  HyperbandConfig cfg;
  cfg.maxResource = 27;
  cfg.seed = 1;
  const Hyperband hb(cfg);
  // Resource = hill-climb probes: flip one bit, keep improvements.
  Rng probe(2);
  auto eval = [&](BitVector& bits, std::size_t resource) {
    double best = popcountValue(bits);
    for (std::size_t i = 0; i < resource; ++i) {
      BitVector n = bits;
      n[probe.below(8)] ^= 1u;
      if (popcountValue(n) < best) {
        best = popcountValue(n);
        bits = n;
      }
    }
    return best;
  };
  auto picks = hb.run(sampler8(), eval, 3);
  ASSERT_EQ(picks.size(), 3u);
  // Sorted ascending and clearly better than the ~4.0 random mean.
  EXPECT_LE(picks[0].value, picks[1].value);
  EXPECT_LE(picks[1].value, picks[2].value);
  EXPECT_LE(picks[0].value, 1.0);
}

TEST(Hyperband, AllocatesMoreResourceToSurvivors) {
  HyperbandConfig cfg;
  cfg.maxResource = 9;
  cfg.eta = 3.0;
  cfg.seed = 3;
  std::atomic<std::size_t> maxResourceSeen{0};
  auto eval = [&](BitVector& bits, std::size_t resource) {
    std::size_t prev = maxResourceSeen.load();
    while (resource > prev && !maxResourceSeen.compare_exchange_weak(prev, resource)) {
    }
    return popcountValue(bits);
  };
  Hyperband(cfg).run(sampler8(), eval, 2);
  EXPECT_GE(maxResourceSeen.load(), 9u);  // some arm got the full budget
}

TEST(Hyperband, KeepLimitsOutput) {
  HyperbandConfig cfg;
  cfg.maxResource = 3;
  cfg.seed = 4;
  auto eval = [](BitVector& bits, std::size_t) { return popcountValue(bits); };
  auto picks = Hyperband(cfg).run(sampler8(), eval, 1);
  EXPECT_EQ(picks.size(), 1u);
}

TEST(Hyperband, DeterministicForFixedSeed) {
  HyperbandConfig cfg;
  cfg.maxResource = 9;
  cfg.seed = 5;
  auto eval = [](BitVector& bits, std::size_t) { return popcountValue(bits); };
  auto a = Hyperband(cfg).run(sampler8(), eval, 2);
  auto b = Hyperband(cfg).run(sampler8(), eval, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bits, b[i].bits);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(Hyperband, MinimalResourceStillWorks) {
  HyperbandConfig cfg;
  cfg.maxResource = 1;
  cfg.seed = 6;
  auto eval = [](BitVector& bits, std::size_t) { return popcountValue(bits); };
  auto picks = Hyperband(cfg).run(sampler8(), eval, 4);
  EXPECT_FALSE(picks.empty());
}

}  // namespace
}  // namespace isop::hpo
