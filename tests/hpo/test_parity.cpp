#include "hpo/parity_features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::hpo {
namespace {

TEST(Parity, ValueConvention) {
  // bit 0 -> +1, bit 1 -> -1.
  BitVector bits{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(parityValue({0}, bits), 1.0);
  EXPECT_DOUBLE_EQ(parityValue({1}, bits), -1.0);
  EXPECT_DOUBLE_EQ(parityValue({1, 3}, bits), 1.0);   // (-1)*(-1)
  EXPECT_DOUBLE_EQ(parityValue({0, 1}, bits), -1.0);  // (+1)*(-1)
  EXPECT_DOUBLE_EQ(parityValue({1, 2, 3}, bits), 1.0);
}

TEST(Parity, EnumerationCounts) {
  std::vector<std::size_t> pos{0, 1, 2, 3, 4};
  EXPECT_EQ(enumerateMonomials(pos, 1).size(), 5u);
  EXPECT_EQ(enumerateMonomials(pos, 2).size(), 5u + 10u);
  EXPECT_EQ(enumerateMonomials(pos, 3).size(), 5u + 10u + 10u);
}

TEST(Parity, EnumerationUsesGivenPositions) {
  std::vector<std::size_t> pos{7, 9};
  auto monomials = enumerateMonomials(pos, 2);
  ASSERT_EQ(monomials.size(), 3u);
  EXPECT_EQ(monomials[0], Monomial{7});
  EXPECT_EQ(monomials[1], Monomial{9});
  EXPECT_EQ(monomials[2], (Monomial{7, 9}));
}

TEST(Parity, DesignMatrixShapeAndValues) {
  std::vector<BitVector> samples{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  std::vector<std::size_t> pos{0, 1};
  auto monomials = enumerateMonomials(pos, 2);
  Matrix design = parityDesignMatrix(samples, monomials);
  ASSERT_EQ(design.rows(), 4u);
  ASSERT_EQ(design.cols(), 3u);
  // chi_{0,1} column is the XOR parity: +1, -1, -1, +1.
  EXPECT_DOUBLE_EQ(design(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(design(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(design(2, 2), -1.0);
  EXPECT_DOUBLE_EQ(design(3, 2), 1.0);
}

TEST(Parity, ParityColumnsAreOrthogonalOverFullCube) {
  // Over all 8 vertices of {0,1}^3, distinct parities are orthogonal.
  std::vector<BitVector> cube;
  for (int v = 0; v < 8; ++v) {
    cube.push_back({static_cast<std::uint8_t>(v & 1),
                    static_cast<std::uint8_t>((v >> 1) & 1),
                    static_cast<std::uint8_t>((v >> 2) & 1)});
  }
  std::vector<std::size_t> pos{0, 1, 2};
  auto monomials = enumerateMonomials(pos, 3);
  Matrix design = parityDesignMatrix(cube, monomials);
  for (std::size_t a = 0; a < monomials.size(); ++a) {
    for (std::size_t b = a + 1; b < monomials.size(); ++b) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 8; ++r) dot += design(r, a) * design(r, b);
      EXPECT_DOUBLE_EQ(dot, 0.0) << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace isop::hpo
