#include "hpo/adam_refiner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isop::hpo {
namespace {

/// Quadratic bowl centred inside S1 with analytic gradient.
struct Bowl {
  em::StackupParams center;
  em::ParameterSpace space = em::spaceS1();

  Bowl() {
    center.values = {3.5, 6.0, 35.0, 0.15, 1.0, 5.0, 5.0, 4.8e7,
                     0.0, 3.5, 3.5, 3.5, 0.01, 0.01, 0.01};
  }

  double operator()(const em::StackupParams& x, std::span<double> grad) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < em::kNumParams; ++i) {
      const auto& r = space.range(i);
      const double span = r.hi - r.lo;
      const double norm = (x.values[i] - center.values[i]) / span;
      acc += norm * norm;
      grad[i] = 2.0 * norm / span;
    }
    return acc;
  }
};

TEST(AdamRefiner, ConvergesToInteriorMinimum) {
  Bowl bowl;
  RefineConfig cfg;
  cfg.epochs = 200;
  cfg.learningRate = 0.05;
  const AdamRefiner refiner(cfg);
  Rng rng(1);
  std::vector<em::StackupParams> seeds{bowl.space.sample(rng), bowl.space.sample(rng)};
  const auto result = refiner.refine(
      bowl.space, seeds,
      [&](const em::StackupParams& x, std::span<double> g) { return bowl(x, g); });
  ASSERT_EQ(result.refined.size(), 2u);
  for (double v : result.values) EXPECT_LT(v, 0.002);
  EXPECT_GT(result.gradientEvaluations, 2u * 200u);
}

TEST(AdamRefiner, ClampsToBox) {
  // Minimum far outside the box: refiner must stop at the boundary.
  const auto space = em::spaceS1();
  RefineConfig cfg;
  cfg.epochs = 150;
  cfg.learningRate = 0.1;
  const AdamRefiner refiner(cfg);
  Rng rng(2);
  std::vector<em::StackupParams> seeds{space.sample(rng)};
  const auto result = refiner.refine(
      space, seeds, [&](const em::StackupParams& x, std::span<double> g) {
        // Push Wt toward +infinity: objective = -Wt.
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = -1.0;
        return -x.values[0];
      });
  EXPECT_NEAR(result.refined[0].values[0], space.range(0).hi, 1e-9);
  for (std::size_t i = 0; i < em::kNumParams; ++i) {
    EXPECT_GE(result.refined[0].values[i], space.range(i).lo - 1e-9);
    EXPECT_LE(result.refined[0].values[i], space.range(i).hi + 1e-9);
  }
}

TEST(AdamRefiner, EmptySeedsIsNoop) {
  const AdamRefiner refiner;
  const auto result =
      refiner.refine(em::spaceS1(), {}, [](const em::StackupParams&, std::span<double>) {
        ADD_FAILURE() << "objective must not be called";
        return 0.0;
      });
  EXPECT_TRUE(result.refined.empty());
  EXPECT_EQ(result.gradientEvaluations, 0u);
}

TEST(AdamRefiner, ImprovesEverySeed) {
  Bowl bowl;
  RefineConfig cfg;
  cfg.epochs = 80;
  cfg.learningRate = 0.03;
  const AdamRefiner refiner(cfg);
  Rng rng(3);
  std::vector<em::StackupParams> seeds;
  std::vector<double> initial;
  std::vector<double> g(em::kNumParams);
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(bowl.space.sample(rng));
    initial.push_back(bowl(seeds.back(), g));
  }
  const auto result = refiner.refine(
      bowl.space, seeds,
      [&](const em::StackupParams& x, std::span<double> gr) { return bowl(x, gr); });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_LT(result.values[i], initial[i]);
  }
}

TEST(AdamRefiner, HandlesMixedParameterScales) {
  // sigma_t spans 2e7 while Df spans 0.019: normalized updates must move
  // both substantially from range edge to interior target.
  Bowl bowl;
  RefineConfig cfg;
  cfg.epochs = 250;
  cfg.learningRate = 0.05;
  const AdamRefiner refiner(cfg);
  em::StackupParams seed = bowl.space.sample(*std::make_unique<Rng>(4));
  seed.values[7] = bowl.space.range(7).lo;   // sigma at lower edge
  seed.values[12] = bowl.space.range(12).hi; // Df at upper edge
  const auto result = refiner.refine(
      bowl.space, std::vector<em::StackupParams>{seed},
      [&](const em::StackupParams& x, std::span<double> g) { return bowl(x, g); });
  EXPECT_NEAR(result.refined[0].values[7], bowl.center.values[7], 2e6);
  EXPECT_NEAR(result.refined[0].values[12], bowl.center.values[12], 2e-3);
}

}  // namespace
}  // namespace isop::hpo
