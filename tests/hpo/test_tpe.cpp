#include "hpo/tpe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hpo/random_search.hpp"

namespace isop::hpo {
namespace {

double bowlObjective(const em::StackupParams& p) {
  const auto space = em::spaceS1();
  double acc = 0.0;
  for (std::size_t i = 0; i < em::kNumParams; ++i) {
    const auto& r = space.range(i);
    const double mid = 0.5 * (r.lo + r.hi);
    const double norm = (p.values[i] - mid) / (r.hi - r.lo);
    acc += norm * norm;
  }
  return acc;
}

TEST(Tpe, RespectsEvaluationBudget) {
  TpeConfig cfg;
  cfg.evaluations = 120;
  cfg.seed = 1;
  std::size_t calls = 0;
  const auto result = TpeOptimizer(cfg).optimize(em::spaceS1(), [&](const auto& p) {
    ++calls;
    return bowlObjective(p);
  });
  EXPECT_EQ(calls, 120u);
  EXPECT_EQ(result.evaluations, 120u);
}

TEST(Tpe, BeatsRandomSearchAtEqualBudget) {
  TpeConfig tpeCfg;
  tpeCfg.evaluations = 300;
  tpeCfg.seed = 2;
  RandomSearchConfig rsCfg;
  rsCfg.evaluations = 300;
  rsCfg.seed = 2;
  const double tpe = TpeOptimizer(tpeCfg).optimize(em::spaceS1(), bowlObjective).bestValue;
  const double rs = RandomSearch(rsCfg).optimize(em::spaceS1(), bowlObjective).bestValue;
  EXPECT_LT(tpe, rs);
}

TEST(Tpe, StaysOnGrid) {
  TpeConfig cfg;
  cfg.evaluations = 80;
  cfg.seed = 3;
  const auto space = em::spaceS1();
  const auto result = TpeOptimizer(cfg).optimize(space, [&](const em::StackupParams& p) {
    EXPECT_TRUE(space.contains(p));
    return bowlObjective(p);
  });
  EXPECT_TRUE(space.contains(result.best));
}

TEST(Tpe, DeterministicForFixedSeed) {
  TpeConfig cfg;
  cfg.evaluations = 100;
  cfg.seed = 4;
  const auto a = TpeOptimizer(cfg).optimize(em::spaceS1(), bowlObjective);
  const auto b = TpeOptimizer(cfg).optimize(em::spaceS1(), bowlObjective);
  EXPECT_EQ(a.bestValue, b.bestValue);
}

TEST(Tpe, StartupPhaseOnlyWhenBudgetTiny) {
  TpeConfig cfg;
  cfg.evaluations = 10;
  cfg.startupSamples = 20;  // larger than budget
  cfg.seed = 5;
  const auto result = TpeOptimizer(cfg).optimize(em::spaceS1(), bowlObjective);
  EXPECT_EQ(result.evaluations, 10u);
}

TEST(Tpe, ImprovesOverItsOwnStartupPhase) {
  TpeConfig cfg;
  cfg.evaluations = 400;
  cfg.startupSamples = 30;
  cfg.seed = 6;
  double bestAtStartup = std::numeric_limits<double>::infinity();
  std::size_t calls = 0;
  const auto result = TpeOptimizer(cfg).optimize(em::spaceS1(), [&](const auto& p) {
    const double v = bowlObjective(p);
    if (++calls <= 30) bestAtStartup = std::min(bestAtStartup, v);
    return v;
  });
  EXPECT_LT(result.bestValue, bestAtStartup);
}

}  // namespace
}  // namespace isop::hpo
