#include "hpo/simulated_annealing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hpo/random_search.hpp"

namespace isop::hpo {
namespace {

/// Smooth separable objective with a unique grid minimum at the Table IX
/// manual design values (distance-to-target in normalized units).
double distanceObjective(const em::StackupParams& p) {
  em::StackupParams target;
  target.values = {3.5, 6.0, 35.0, 0.1, 1.0, 5.0, 5.0, 4.8e7,
                   0.0, 3.5, 3.5, 3.5, 0.01, 0.01, 0.01};
  const auto space = em::spaceS1();
  double acc = 0.0;
  for (std::size_t i = 0; i < em::kNumParams; ++i) {
    const auto& r = space.range(i);
    const double norm = (p.values[i] - target.values[i]) / (r.hi - r.lo);
    acc += norm * norm;
  }
  return acc;
}

TEST(SimulatedAnnealing, ConvergesNearOptimumOnSmoothObjective) {
  SaConfig cfg;
  cfg.evaluations = 8000;
  cfg.seed = 1;
  const auto result = SimulatedAnnealing(cfg).optimize(em::spaceS1(), distanceObjective);
  EXPECT_EQ(result.evaluations, 8000u);
  // 15-dim discrete bowl: random designs average ~1.25; SA must reach the
  // near-optimal basin (a few grid steps from the target per coordinate).
  EXPECT_LT(result.bestValue, 0.03);
}

TEST(SimulatedAnnealing, StaysOnGrid) {
  SaConfig cfg;
  cfg.evaluations = 500;
  cfg.seed = 2;
  const auto space = em::spaceS1();
  const auto result = SimulatedAnnealing(cfg).optimize(space, [&](const em::StackupParams& p) {
    EXPECT_TRUE(space.contains(p));
    return distanceObjective(p);
  });
  EXPECT_TRUE(space.contains(result.best));
}

TEST(SimulatedAnnealing, BeatsRandomSearchAtEqualBudget) {
  SaConfig saCfg;
  saCfg.evaluations = 4000;
  saCfg.seed = 3;
  RandomSearchConfig rsCfg;
  rsCfg.evaluations = 4000;
  rsCfg.seed = 3;
  const double sa =
      SimulatedAnnealing(saCfg).optimize(em::spaceS1(), distanceObjective).bestValue;
  const double rs = RandomSearch(rsCfg).optimize(em::spaceS1(), distanceObjective).bestValue;
  EXPECT_LT(sa, rs);
}

TEST(SimulatedAnnealing, AcceptsSomeUphillMovesEarly) {
  SaConfig cfg;
  cfg.evaluations = 2000;
  cfg.seed = 4;
  cfg.initialTemperature = 1.0;  // hot: plenty of uphill acceptance
  const auto result = SimulatedAnnealing(cfg).optimize(em::spaceS1(), distanceObjective);
  // Acceptance count includes uphill moves; with T0 = 1 on an objective
  // bounded by ~4, plenty of moves must be accepted.
  EXPECT_GT(result.accepted, 200u);
}

TEST(SimulatedAnnealing, DeterministicForFixedSeed) {
  SaConfig cfg;
  cfg.evaluations = 1000;
  cfg.seed = 5;
  const auto a = SimulatedAnnealing(cfg).optimize(em::spaceS1(), distanceObjective);
  const auto b = SimulatedAnnealing(cfg).optimize(em::spaceS1(), distanceObjective);
  EXPECT_EQ(a.bestValue, b.bestValue);
  EXPECT_EQ(a.best.values, b.best.values);
}

TEST(RandomSearch, TracksBestAndBudget) {
  RandomSearchConfig cfg;
  cfg.evaluations = 300;
  cfg.seed = 6;
  const auto result = RandomSearch(cfg).optimize(em::spaceS1(), distanceObjective);
  EXPECT_EQ(result.evaluations, 300u);
  EXPECT_TRUE(std::isfinite(result.bestValue));
  EXPECT_DOUBLE_EQ(distanceObjective(result.best), result.bestValue);
}

}  // namespace
}  // namespace isop::hpo
