#include "hpo/harmonica.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <atomic>

namespace isop::hpo {
namespace {

/// Sparse boolean objective: sum of a few parities plus small noise-free
/// dense term — exactly the structure Harmonica assumes.
double sparseObjective(const BitVector& bits) {
  auto sign = [&](std::size_t i) { return bits[i] ? -1.0 : 1.0; };
  // Minimized when bit3 = 1, bit10 = 0, and bits 5,6 disagree.
  return 2.0 * sign(3) - 1.5 * sign(10) + 1.0 * sign(5) * sign(6);
}

Harmonica::Sampler uniformSampler(std::size_t numBits) {
  return [numBits](Rng& rng, std::span<const FixedBit>) {
    BitVector bits(numBits);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    return bits;
  };
}

TEST(Harmonica, FixesTheSignificantBitsCorrectly) {
  HarmonicaConfig cfg;
  cfg.iterations = 2;
  cfg.samplesPerIter = 200;
  cfg.topMonomials = 4;
  cfg.seed = 1;
  const Harmonica harmonica(cfg);
  const std::size_t numBits = 20;
  auto result = harmonica.optimize(numBits, sparseObjective, uniformSampler(numBits));

  bool bit3Fixed = false, bit10Fixed = false;
  for (const FixedBit& f : result.fixedBits) {
    if (f.position == 3) {
      bit3Fixed = true;
      EXPECT_EQ(f.value, 1);  // sign(3) = -1 minimizes +2*sign(3)
    }
    if (f.position == 10) {
      bit10Fixed = true;
      EXPECT_EQ(f.value, 0);  // sign(10) = +1 minimizes -1.5*sign(10)
    }
  }
  EXPECT_TRUE(bit3Fixed);
  EXPECT_TRUE(bit10Fixed);
  EXPECT_LE(result.bestValue, -2.0);
}

TEST(Harmonica, BeatsRandomSamplingOnSparseFunction) {
  const std::size_t numBits = 30;
  HarmonicaConfig cfg;
  cfg.iterations = 3;
  cfg.samplesPerIter = 150;
  cfg.seed = 2;
  auto result = Harmonica(cfg).optimize(numBits, sparseObjective, uniformSampler(numBits));
  EXPECT_NEAR(result.bestValue, -4.5, 0.01);  // global optimum
}

TEST(Harmonica, CountsEvaluationsAndInvalids) {
  HarmonicaConfig cfg;
  cfg.iterations = 2;
  cfg.samplesPerIter = 50;
  cfg.seed = 3;
  std::atomic<int> calls{0};
  auto objective = [&](const BitVector& bits) {
    ++calls;
    if (bits[0] == 1) return std::numeric_limits<double>::infinity();  // "invalid"
    return sparseObjective(bits);
  };
  auto result = Harmonica(cfg).optimize(16, objective, uniformSampler(16));
  EXPECT_EQ(result.evaluations + result.invalidSamples,
            static_cast<std::size_t>(calls.load()));
  EXPECT_GT(result.invalidSamples, 0u);
  EXPECT_TRUE(std::isfinite(result.bestValue));
}

TEST(Harmonica, IterationCallbackSeesEveryBatch) {
  HarmonicaConfig cfg;
  cfg.iterations = 3;
  cfg.samplesPerIter = 40;
  cfg.seed = 4;
  std::size_t batches = 0, totalSamples = 0;
  Harmonica(cfg).optimize(
      12, sparseObjective, uniformSampler(12),
      [&](std::size_t iter, std::span<const BitVector> samples, std::span<const double> values) {
        EXPECT_EQ(iter, batches);
        EXPECT_EQ(samples.size(), 40u);
        EXPECT_EQ(values.size(), 40u);
        ++batches;
        totalSamples += samples.size();
      });
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(totalSamples, 120u);
}

TEST(Harmonica, RestrictedSamplesHonourFixedBits) {
  HarmonicaConfig cfg;
  cfg.iterations = 3;
  cfg.samplesPerIter = 100;
  cfg.seed = 5;
  // Keep the last iteration's batch; it must satisfy the final restriction
  // (the last restriction step runs before the final batch is drawn).
  std::vector<BitVector> lastBatch;
  auto result = Harmonica(cfg).optimize(
      20, sparseObjective, uniformSampler(20),
      [&](std::size_t iter, std::span<const BitVector> samples, std::span<const double>) {
        if (iter + 1 == cfg.iterations) lastBatch.assign(samples.begin(), samples.end());
      });
  EXPECT_FALSE(result.fixedBits.empty());
  ASSERT_FALSE(lastBatch.empty());
  for (const FixedBit& f : result.fixedBits) {
    for (const auto& s : lastBatch) EXPECT_EQ(s[f.position], f.value);
  }
}

TEST(Harmonica, ApplyFixedBits) {
  BitVector bits(8, 0);
  std::vector<FixedBit> fixed{{2, 1}, {5, 1}};
  Harmonica::applyFixedBits(fixed, bits);
  EXPECT_EQ(bits[2], 1);
  EXPECT_EQ(bits[5], 1);
  EXPECT_EQ(bits[0], 0);
}

TEST(Harmonica, ValidatorVetoesEmptyRestrictions) {
  // Declare every pattern with bit3 == 1 invalid. The objective strongly
  // prefers bit3 == 1, so the unscreened restriction would fix bit3 = 1 and
  // empty the valid space; with the validator the restriction must keep
  // bit3 == 0 (or leave it free).
  HarmonicaConfig cfg;
  cfg.iterations = 3;
  cfg.samplesPerIter = 150;
  cfg.seed = 7;
  auto validator = [](const BitVector& bits) { return bits[3] == 0; };
  auto objective = [&](const BitVector& bits) {
    if (bits[3] == 1) return std::numeric_limits<double>::infinity();
    return sparseObjective(bits);
  };
  auto result =
      Harmonica(cfg).optimize(20, objective, uniformSampler(20), {}, validator);
  for (const FixedBit& f : result.fixedBits) {
    if (f.position == 3) EXPECT_EQ(f.value, 0);
  }
  EXPECT_TRUE(std::isfinite(result.bestValue));
}

TEST(Harmonica, DeterministicForFixedSeed) {
  HarmonicaConfig cfg;
  cfg.iterations = 2;
  cfg.samplesPerIter = 60;
  cfg.seed = 6;
  cfg.parallelEval = false;  // deterministic evaluation order
  auto a = Harmonica(cfg).optimize(16, sparseObjective, uniformSampler(16));
  auto b = Harmonica(cfg).optimize(16, sparseObjective, uniformSampler(16));
  EXPECT_EQ(a.bestValue, b.bestValue);
  EXPECT_EQ(a.fixedBits.size(), b.fixedBits.size());
}

}  // namespace
}  // namespace isop::hpo
