# Empty dependencies file for bench_table8.
# This may be replaced when dependencies are built.
