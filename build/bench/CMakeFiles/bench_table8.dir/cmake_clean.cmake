file(REMOVE_RECURSE
  "CMakeFiles/bench_table8.dir/bench_table8.cpp.o"
  "CMakeFiles/bench_table8.dir/bench_table8.cpp.o.d"
  "bench_table8"
  "bench_table8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
