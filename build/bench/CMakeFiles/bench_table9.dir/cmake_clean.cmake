file(REMOVE_RECURSE
  "CMakeFiles/bench_table9.dir/bench_table9.cpp.o"
  "CMakeFiles/bench_table9.dir/bench_table9.cpp.o.d"
  "bench_table9"
  "bench_table9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
