# Empty compiler generated dependencies file for bench_table9.
# This may be replaced when dependencies are built.
