# Empty dependencies file for bench_fig7_8.
# This may be replaced when dependencies are built.
