file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8.dir/bench_fig7_8.cpp.o"
  "CMakeFiles/bench_fig7_8.dir/bench_fig7_8.cpp.o.d"
  "bench_fig7_8"
  "bench_fig7_8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
