# Empty compiler generated dependencies file for isop_bench_common.
# This may be replaced when dependencies are built.
