file(REMOVE_RECURSE
  "../lib/libisop_bench_common.a"
)
