file(REMOVE_RECURSE
  "../lib/libisop_bench_common.a"
  "../lib/libisop_bench_common.pdb"
  "CMakeFiles/isop_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/isop_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
