# Empty compiler generated dependencies file for bench_table7.
# This may be replaced when dependencies are built.
