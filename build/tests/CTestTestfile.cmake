# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isop_common_tests[1]_include.cmake")
include("/root/repo/build/tests/isop_em_tests[1]_include.cmake")
include("/root/repo/build/tests/isop_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/isop_hpo_tests[1]_include.cmake")
include("/root/repo/build/tests/isop_core_tests[1]_include.cmake")
