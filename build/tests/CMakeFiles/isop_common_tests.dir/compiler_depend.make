# Empty compiler generated dependencies file for isop_common_tests.
# This may be replaced when dependencies are built.
