file(REMOVE_RECURSE
  "CMakeFiles/isop_common_tests.dir/common/test_cli.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_cli.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_csv.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_csv.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_json.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_json.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_logging.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_logging.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_matrix.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_matrix.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_rng.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_stats.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_strings.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_strings.cpp.o.d"
  "CMakeFiles/isop_common_tests.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/isop_common_tests.dir/common/test_thread_pool.cpp.o.d"
  "isop_common_tests"
  "isop_common_tests.pdb"
  "isop_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
