
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_cli.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_cli.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_cli.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_json.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_json.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_json.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_logging.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_matrix.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_matrix.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_strings.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_strings.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_strings.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/CMakeFiles/isop_common_tests.dir/common/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/isop_common_tests.dir/common/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
