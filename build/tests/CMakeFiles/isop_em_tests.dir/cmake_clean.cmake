file(REMOVE_RECURSE
  "CMakeFiles/isop_em_tests.dir/em/test_crosstalk.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_crosstalk.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_frequency_sweep.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_frequency_sweep.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_golden.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_golden.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_loss_model.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_loss_model.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_microstrip.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_microstrip.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_parameter_space.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_parameter_space.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_simulator.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_simulator.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_stackup.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_stackup.cpp.o.d"
  "CMakeFiles/isop_em_tests.dir/em/test_stripline.cpp.o"
  "CMakeFiles/isop_em_tests.dir/em/test_stripline.cpp.o.d"
  "isop_em_tests"
  "isop_em_tests.pdb"
  "isop_em_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_em_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
