# Empty compiler generated dependencies file for isop_em_tests.
# This may be replaced when dependencies are built.
