
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/em/test_crosstalk.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_crosstalk.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_crosstalk.cpp.o.d"
  "/root/repo/tests/em/test_frequency_sweep.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_frequency_sweep.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_frequency_sweep.cpp.o.d"
  "/root/repo/tests/em/test_golden.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_golden.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_golden.cpp.o.d"
  "/root/repo/tests/em/test_loss_model.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_loss_model.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_loss_model.cpp.o.d"
  "/root/repo/tests/em/test_microstrip.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_microstrip.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_microstrip.cpp.o.d"
  "/root/repo/tests/em/test_parameter_space.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_parameter_space.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_parameter_space.cpp.o.d"
  "/root/repo/tests/em/test_simulator.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_simulator.cpp.o.d"
  "/root/repo/tests/em/test_stackup.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_stackup.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_stackup.cpp.o.d"
  "/root/repo/tests/em/test_stripline.cpp" "tests/CMakeFiles/isop_em_tests.dir/em/test_stripline.cpp.o" "gcc" "tests/CMakeFiles/isop_em_tests.dir/em/test_stripline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
