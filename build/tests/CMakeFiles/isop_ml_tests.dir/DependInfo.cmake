
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_cross_validation.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_cross_validation.cpp.o.d"
  "/root/repo/tests/ml/test_dataset.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_dataset.cpp.o.d"
  "/root/repo/tests/ml/test_ensemble_surrogate.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_ensemble_surrogate.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_ensemble_surrogate.cpp.o.d"
  "/root/repo/tests/ml/test_ensembles.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_ensembles.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_ensembles.cpp.o.d"
  "/root/repo/tests/ml/test_linear_svr.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_linear_svr.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_linear_svr.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_neural_regressor.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_neural_regressor.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_neural_regressor.cpp.o.d"
  "/root/repo/tests/ml/test_nn_layers.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_nn_layers.cpp.o.d"
  "/root/repo/tests/ml/test_nn_training.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_nn_training.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_nn_training.cpp.o.d"
  "/root/repo/tests/ml/test_scaler.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_scaler.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_scaler.cpp.o.d"
  "/root/repo/tests/ml/test_trees.cpp" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_trees.cpp.o" "gcc" "tests/CMakeFiles/isop_ml_tests.dir/ml/test_trees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
