file(REMOVE_RECURSE
  "CMakeFiles/isop_ml_tests.dir/ml/test_cross_validation.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_cross_validation.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_dataset.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_dataset.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_ensemble_surrogate.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_ensemble_surrogate.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_ensembles.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_ensembles.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_linear_svr.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_linear_svr.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_metrics.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_metrics.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_neural_regressor.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_neural_regressor.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_nn_layers.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_nn_layers.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_nn_training.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_nn_training.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_scaler.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_scaler.cpp.o.d"
  "CMakeFiles/isop_ml_tests.dir/ml/test_trees.cpp.o"
  "CMakeFiles/isop_ml_tests.dir/ml/test_trees.cpp.o.d"
  "isop_ml_tests"
  "isop_ml_tests.pdb"
  "isop_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
