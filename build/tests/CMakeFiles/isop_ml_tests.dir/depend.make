# Empty dependencies file for isop_ml_tests.
# This may be replaced when dependencies are built.
