# Empty dependencies file for isop_core_tests.
# This may be replaced when dependencies are built.
