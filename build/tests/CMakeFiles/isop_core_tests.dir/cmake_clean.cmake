file(REMOVE_RECURSE
  "CMakeFiles/isop_core_tests.dir/core/test_adaptive_weights.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_adaptive_weights.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_analysis.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_analysis.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_board.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_board.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_dataset_gen.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_dataset_gen.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_integration.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_isop.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_isop.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_objective.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_objective.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_objective_sweep.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_objective_sweep.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_pareto.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_pareto.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_report.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_report.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_surrogate_objective.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_surrogate_objective.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_tasks.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_tasks.cpp.o.d"
  "CMakeFiles/isop_core_tests.dir/core/test_trial_runner.cpp.o"
  "CMakeFiles/isop_core_tests.dir/core/test_trial_runner.cpp.o.d"
  "isop_core_tests"
  "isop_core_tests.pdb"
  "isop_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
