
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adaptive_weights.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_adaptive_weights.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_adaptive_weights.cpp.o.d"
  "/root/repo/tests/core/test_analysis.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_analysis.cpp.o.d"
  "/root/repo/tests/core/test_board.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_board.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_board.cpp.o.d"
  "/root/repo/tests/core/test_dataset_gen.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_dataset_gen.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_dataset_gen.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_isop.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_isop.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_isop.cpp.o.d"
  "/root/repo/tests/core/test_objective.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_objective.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_objective.cpp.o.d"
  "/root/repo/tests/core/test_objective_sweep.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_objective_sweep.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_objective_sweep.cpp.o.d"
  "/root/repo/tests/core/test_pareto.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_pareto.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_surrogate_objective.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_surrogate_objective.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_surrogate_objective.cpp.o.d"
  "/root/repo/tests/core/test_tasks.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_tasks.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_tasks.cpp.o.d"
  "/root/repo/tests/core/test_trial_runner.cpp" "tests/CMakeFiles/isop_core_tests.dir/core/test_trial_runner.cpp.o" "gcc" "tests/CMakeFiles/isop_core_tests.dir/core/test_trial_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
