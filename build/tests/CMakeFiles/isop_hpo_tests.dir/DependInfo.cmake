
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpo/test_adam_refiner.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_adam_refiner.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_adam_refiner.cpp.o.d"
  "/root/repo/tests/hpo/test_binary_codec.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_binary_codec.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_binary_codec.cpp.o.d"
  "/root/repo/tests/hpo/test_genetic.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_genetic.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_genetic.cpp.o.d"
  "/root/repo/tests/hpo/test_harmonica.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_harmonica.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_harmonica.cpp.o.d"
  "/root/repo/tests/hpo/test_hyperband.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_hyperband.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_hyperband.cpp.o.d"
  "/root/repo/tests/hpo/test_lasso.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_lasso.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_lasso.cpp.o.d"
  "/root/repo/tests/hpo/test_parity.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_parity.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_parity.cpp.o.d"
  "/root/repo/tests/hpo/test_simulated_annealing.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_simulated_annealing.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_simulated_annealing.cpp.o.d"
  "/root/repo/tests/hpo/test_tpe.cpp" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_tpe.cpp.o" "gcc" "tests/CMakeFiles/isop_hpo_tests.dir/hpo/test_tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
