file(REMOVE_RECURSE
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_adam_refiner.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_adam_refiner.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_binary_codec.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_binary_codec.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_genetic.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_genetic.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_harmonica.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_harmonica.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_hyperband.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_hyperband.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_lasso.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_lasso.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_parity.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_parity.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_simulated_annealing.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_simulated_annealing.cpp.o.d"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_tpe.cpp.o"
  "CMakeFiles/isop_hpo_tests.dir/hpo/test_tpe.cpp.o.d"
  "isop_hpo_tests"
  "isop_hpo_tests.pdb"
  "isop_hpo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_hpo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
