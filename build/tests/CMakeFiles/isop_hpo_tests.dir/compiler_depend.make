# Empty compiler generated dependencies file for isop_hpo_tests.
# This may be replaced when dependencies are built.
