file(REMOVE_RECURSE
  "CMakeFiles/isop_common.dir/cli.cpp.o"
  "CMakeFiles/isop_common.dir/cli.cpp.o.d"
  "CMakeFiles/isop_common.dir/csv.cpp.o"
  "CMakeFiles/isop_common.dir/csv.cpp.o.d"
  "CMakeFiles/isop_common.dir/json.cpp.o"
  "CMakeFiles/isop_common.dir/json.cpp.o.d"
  "CMakeFiles/isop_common.dir/logging.cpp.o"
  "CMakeFiles/isop_common.dir/logging.cpp.o.d"
  "CMakeFiles/isop_common.dir/matrix.cpp.o"
  "CMakeFiles/isop_common.dir/matrix.cpp.o.d"
  "CMakeFiles/isop_common.dir/rng.cpp.o"
  "CMakeFiles/isop_common.dir/rng.cpp.o.d"
  "CMakeFiles/isop_common.dir/stats.cpp.o"
  "CMakeFiles/isop_common.dir/stats.cpp.o.d"
  "CMakeFiles/isop_common.dir/string_utils.cpp.o"
  "CMakeFiles/isop_common.dir/string_utils.cpp.o.d"
  "CMakeFiles/isop_common.dir/thread_pool.cpp.o"
  "CMakeFiles/isop_common.dir/thread_pool.cpp.o.d"
  "libisop_common.a"
  "libisop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
