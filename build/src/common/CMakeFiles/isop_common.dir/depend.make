# Empty dependencies file for isop_common.
# This may be replaced when dependencies are built.
