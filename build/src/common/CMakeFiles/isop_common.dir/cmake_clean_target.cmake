file(REMOVE_RECURSE
  "libisop_common.a"
)
