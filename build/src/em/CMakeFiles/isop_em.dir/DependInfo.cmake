
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/crosstalk.cpp" "src/em/CMakeFiles/isop_em.dir/crosstalk.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/crosstalk.cpp.o.d"
  "/root/repo/src/em/frequency_sweep.cpp" "src/em/CMakeFiles/isop_em.dir/frequency_sweep.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/frequency_sweep.cpp.o.d"
  "/root/repo/src/em/loss_model.cpp" "src/em/CMakeFiles/isop_em.dir/loss_model.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/loss_model.cpp.o.d"
  "/root/repo/src/em/microstrip.cpp" "src/em/CMakeFiles/isop_em.dir/microstrip.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/microstrip.cpp.o.d"
  "/root/repo/src/em/parameter_space.cpp" "src/em/CMakeFiles/isop_em.dir/parameter_space.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/parameter_space.cpp.o.d"
  "/root/repo/src/em/simulator.cpp" "src/em/CMakeFiles/isop_em.dir/simulator.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/simulator.cpp.o.d"
  "/root/repo/src/em/stackup.cpp" "src/em/CMakeFiles/isop_em.dir/stackup.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/stackup.cpp.o.d"
  "/root/repo/src/em/stripline.cpp" "src/em/CMakeFiles/isop_em.dir/stripline.cpp.o" "gcc" "src/em/CMakeFiles/isop_em.dir/stripline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
