# Empty dependencies file for isop_em.
# This may be replaced when dependencies are built.
