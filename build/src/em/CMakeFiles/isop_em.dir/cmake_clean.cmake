file(REMOVE_RECURSE
  "CMakeFiles/isop_em.dir/crosstalk.cpp.o"
  "CMakeFiles/isop_em.dir/crosstalk.cpp.o.d"
  "CMakeFiles/isop_em.dir/frequency_sweep.cpp.o"
  "CMakeFiles/isop_em.dir/frequency_sweep.cpp.o.d"
  "CMakeFiles/isop_em.dir/loss_model.cpp.o"
  "CMakeFiles/isop_em.dir/loss_model.cpp.o.d"
  "CMakeFiles/isop_em.dir/microstrip.cpp.o"
  "CMakeFiles/isop_em.dir/microstrip.cpp.o.d"
  "CMakeFiles/isop_em.dir/parameter_space.cpp.o"
  "CMakeFiles/isop_em.dir/parameter_space.cpp.o.d"
  "CMakeFiles/isop_em.dir/simulator.cpp.o"
  "CMakeFiles/isop_em.dir/simulator.cpp.o.d"
  "CMakeFiles/isop_em.dir/stackup.cpp.o"
  "CMakeFiles/isop_em.dir/stackup.cpp.o.d"
  "CMakeFiles/isop_em.dir/stripline.cpp.o"
  "CMakeFiles/isop_em.dir/stripline.cpp.o.d"
  "libisop_em.a"
  "libisop_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
