file(REMOVE_RECURSE
  "libisop_em.a"
)
