file(REMOVE_RECURSE
  "CMakeFiles/isop_data.dir/cache.cpp.o"
  "CMakeFiles/isop_data.dir/cache.cpp.o.d"
  "CMakeFiles/isop_data.dir/dataset_gen.cpp.o"
  "CMakeFiles/isop_data.dir/dataset_gen.cpp.o.d"
  "libisop_data.a"
  "libisop_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
