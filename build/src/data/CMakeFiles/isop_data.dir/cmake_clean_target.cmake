file(REMOVE_RECURSE
  "libisop_data.a"
)
