# Empty dependencies file for isop_data.
# This may be replaced when dependencies are built.
