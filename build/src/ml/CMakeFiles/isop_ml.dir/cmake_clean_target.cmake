file(REMOVE_RECURSE
  "libisop_ml.a"
)
