# Empty dependencies file for isop_ml.
# This may be replaced when dependencies are built.
