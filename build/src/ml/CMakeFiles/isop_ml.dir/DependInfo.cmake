
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/isop_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/isop_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/isop_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/ensemble_surrogate.cpp" "src/ml/CMakeFiles/isop_ml.dir/ensemble_surrogate.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/ensemble_surrogate.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/isop_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/isop_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/neural_regressor.cpp" "src/ml/CMakeFiles/isop_ml.dir/neural_regressor.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/neural_regressor.cpp.o.d"
  "/root/repo/src/ml/nn/activation.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/activation.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/activation.cpp.o.d"
  "/root/repo/src/ml/nn/adam.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/adam.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/adam.cpp.o.d"
  "/root/repo/src/ml/nn/batch_norm.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/batch_norm.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/batch_norm.cpp.o.d"
  "/root/repo/src/ml/nn/conv1d.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/conv1d.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/conv1d.cpp.o.d"
  "/root/repo/src/ml/nn/dense.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/dense.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/dense.cpp.o.d"
  "/root/repo/src/ml/nn/dropout.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/dropout.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/ml/nn/sequential.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/sequential.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/ml/nn/trainer.cpp" "src/ml/CMakeFiles/isop_ml.dir/nn/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/isop_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/single_output.cpp" "src/ml/CMakeFiles/isop_ml.dir/single_output.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/single_output.cpp.o.d"
  "/root/repo/src/ml/surrogate.cpp" "src/ml/CMakeFiles/isop_ml.dir/surrogate.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/surrogate.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/isop_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/svr.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/isop_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/isop_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
