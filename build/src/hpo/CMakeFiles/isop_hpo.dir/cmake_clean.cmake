file(REMOVE_RECURSE
  "CMakeFiles/isop_hpo.dir/adam_refiner.cpp.o"
  "CMakeFiles/isop_hpo.dir/adam_refiner.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/binary_codec.cpp.o"
  "CMakeFiles/isop_hpo.dir/binary_codec.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/genetic.cpp.o"
  "CMakeFiles/isop_hpo.dir/genetic.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/harmonica.cpp.o"
  "CMakeFiles/isop_hpo.dir/harmonica.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/hyperband.cpp.o"
  "CMakeFiles/isop_hpo.dir/hyperband.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/lasso.cpp.o"
  "CMakeFiles/isop_hpo.dir/lasso.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/parity_features.cpp.o"
  "CMakeFiles/isop_hpo.dir/parity_features.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/random_search.cpp.o"
  "CMakeFiles/isop_hpo.dir/random_search.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/simulated_annealing.cpp.o"
  "CMakeFiles/isop_hpo.dir/simulated_annealing.cpp.o.d"
  "CMakeFiles/isop_hpo.dir/tpe.cpp.o"
  "CMakeFiles/isop_hpo.dir/tpe.cpp.o.d"
  "libisop_hpo.a"
  "libisop_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
