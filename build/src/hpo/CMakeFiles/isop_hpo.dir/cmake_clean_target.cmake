file(REMOVE_RECURSE
  "libisop_hpo.a"
)
