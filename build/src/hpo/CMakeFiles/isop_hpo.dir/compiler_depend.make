# Empty compiler generated dependencies file for isop_hpo.
# This may be replaced when dependencies are built.
