
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpo/adam_refiner.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/adam_refiner.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/adam_refiner.cpp.o.d"
  "/root/repo/src/hpo/binary_codec.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/binary_codec.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/binary_codec.cpp.o.d"
  "/root/repo/src/hpo/genetic.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/genetic.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/genetic.cpp.o.d"
  "/root/repo/src/hpo/harmonica.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/harmonica.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/harmonica.cpp.o.d"
  "/root/repo/src/hpo/hyperband.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/hyperband.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/hyperband.cpp.o.d"
  "/root/repo/src/hpo/lasso.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/lasso.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/lasso.cpp.o.d"
  "/root/repo/src/hpo/parity_features.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/parity_features.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/parity_features.cpp.o.d"
  "/root/repo/src/hpo/random_search.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/random_search.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/random_search.cpp.o.d"
  "/root/repo/src/hpo/simulated_annealing.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/simulated_annealing.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/simulated_annealing.cpp.o.d"
  "/root/repo/src/hpo/tpe.cpp" "src/hpo/CMakeFiles/isop_hpo.dir/tpe.cpp.o" "gcc" "src/hpo/CMakeFiles/isop_hpo.dir/tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
