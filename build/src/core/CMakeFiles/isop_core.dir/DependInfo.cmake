
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/isop_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/board.cpp" "src/core/CMakeFiles/isop_core.dir/board.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/board.cpp.o.d"
  "/root/repo/src/core/isop.cpp" "src/core/CMakeFiles/isop_core.dir/isop.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/isop.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/isop_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/isop_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/isop_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/report.cpp.o.d"
  "/root/repo/src/core/simulator_surrogate.cpp" "src/core/CMakeFiles/isop_core.dir/simulator_surrogate.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/simulator_surrogate.cpp.o.d"
  "/root/repo/src/core/surrogate_objective.cpp" "src/core/CMakeFiles/isop_core.dir/surrogate_objective.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/surrogate_objective.cpp.o.d"
  "/root/repo/src/core/tasks.cpp" "src/core/CMakeFiles/isop_core.dir/tasks.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/tasks.cpp.o.d"
  "/root/repo/src/core/trial_runner.cpp" "src/core/CMakeFiles/isop_core.dir/trial_runner.cpp.o" "gcc" "src/core/CMakeFiles/isop_core.dir/trial_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
