# Empty compiler generated dependencies file for isop_core.
# This may be replaced when dependencies are built.
