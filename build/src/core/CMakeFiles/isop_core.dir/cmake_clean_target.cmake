file(REMOVE_RECURSE
  "libisop_core.a"
)
