file(REMOVE_RECURSE
  "CMakeFiles/isop_core.dir/analysis.cpp.o"
  "CMakeFiles/isop_core.dir/analysis.cpp.o.d"
  "CMakeFiles/isop_core.dir/board.cpp.o"
  "CMakeFiles/isop_core.dir/board.cpp.o.d"
  "CMakeFiles/isop_core.dir/isop.cpp.o"
  "CMakeFiles/isop_core.dir/isop.cpp.o.d"
  "CMakeFiles/isop_core.dir/objective.cpp.o"
  "CMakeFiles/isop_core.dir/objective.cpp.o.d"
  "CMakeFiles/isop_core.dir/pareto.cpp.o"
  "CMakeFiles/isop_core.dir/pareto.cpp.o.d"
  "CMakeFiles/isop_core.dir/report.cpp.o"
  "CMakeFiles/isop_core.dir/report.cpp.o.d"
  "CMakeFiles/isop_core.dir/simulator_surrogate.cpp.o"
  "CMakeFiles/isop_core.dir/simulator_surrogate.cpp.o.d"
  "CMakeFiles/isop_core.dir/surrogate_objective.cpp.o"
  "CMakeFiles/isop_core.dir/surrogate_objective.cpp.o.d"
  "CMakeFiles/isop_core.dir/tasks.cpp.o"
  "CMakeFiles/isop_core.dir/tasks.cpp.o.d"
  "CMakeFiles/isop_core.dir/trial_runner.cpp.o"
  "CMakeFiles/isop_core.dir/trial_runner.cpp.o.d"
  "libisop_core.a"
  "libisop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
