# Empty compiler generated dependencies file for isop_cli.
# This may be replaced when dependencies are built.
