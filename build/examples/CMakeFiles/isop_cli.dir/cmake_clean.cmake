file(REMOVE_RECURSE
  "CMakeFiles/isop_cli.dir/isop_cli.cpp.o"
  "CMakeFiles/isop_cli.dir/isop_cli.cpp.o.d"
  "isop_cli"
  "isop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
