file(REMOVE_RECURSE
  "CMakeFiles/custom_constraints.dir/custom_constraints.cpp.o"
  "CMakeFiles/custom_constraints.dir/custom_constraints.cpp.o.d"
  "custom_constraints"
  "custom_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
