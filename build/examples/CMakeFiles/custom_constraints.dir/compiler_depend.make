# Empty compiler generated dependencies file for custom_constraints.
# This may be replaced when dependencies are built.
