
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpo/CMakeFiles/isop_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/isop_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/isop_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
