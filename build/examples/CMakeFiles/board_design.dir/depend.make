# Empty dependencies file for board_design.
# This may be replaced when dependencies are built.
