file(REMOVE_RECURSE
  "CMakeFiles/board_design.dir/board_design.cpp.o"
  "CMakeFiles/board_design.dir/board_design.cpp.o.d"
  "board_design"
  "board_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
