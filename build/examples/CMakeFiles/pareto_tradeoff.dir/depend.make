# Empty dependencies file for pareto_tradeoff.
# This may be replaced when dependencies are built.
