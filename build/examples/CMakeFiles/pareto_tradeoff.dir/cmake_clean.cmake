file(REMOVE_RECURSE
  "CMakeFiles/pareto_tradeoff.dir/pareto_tradeoff.cpp.o"
  "CMakeFiles/pareto_tradeoff.dir/pareto_tradeoff.cpp.o.d"
  "pareto_tradeoff"
  "pareto_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
