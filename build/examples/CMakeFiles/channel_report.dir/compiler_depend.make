# Empty compiler generated dependencies file for channel_report.
# This may be replaced when dependencies are built.
