file(REMOVE_RECURSE
  "CMakeFiles/channel_report.dir/channel_report.cpp.o"
  "CMakeFiles/channel_report.dir/channel_report.cpp.o.d"
  "channel_report"
  "channel_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
