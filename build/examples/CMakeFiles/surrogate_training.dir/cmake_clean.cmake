file(REMOVE_RECURSE
  "CMakeFiles/surrogate_training.dir/surrogate_training.cpp.o"
  "CMakeFiles/surrogate_training.dir/surrogate_training.cpp.o.d"
  "surrogate_training"
  "surrogate_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
