# Empty compiler generated dependencies file for surrogate_training.
# This may be replaced when dependencies are built.
