file(REMOVE_RECURSE
  "CMakeFiles/stackup_explorer.dir/stackup_explorer.cpp.o"
  "CMakeFiles/stackup_explorer.dir/stackup_explorer.cpp.o.d"
  "stackup_explorer"
  "stackup_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackup_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
