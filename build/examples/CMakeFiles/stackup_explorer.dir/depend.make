# Empty dependencies file for stackup_explorer.
# This may be replaced when dependencies are built.
