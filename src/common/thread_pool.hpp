// Fixed-size worker pool used for parallel batch evaluation (the paper's
// Harmonica stage evaluates q candidate configurations in parallel) and for
// data-parallel ML training.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace isop {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all complete. Exceptions from fn propagate
  /// (first one wins).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace isop
