// Fixed-size worker pool used for parallel batch evaluation (the paper's
// Harmonica stage evaluates q candidate configurations in parallel) and for
// data-parallel ML training.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace isop {

class ThreadPool {
 public:
  /// Load counters for observability (see obs::captureThreadPoolStats).
  /// waitSeconds is cumulative enqueue-to-start latency, runSeconds
  /// cumulative execution time, both summed over all completed tasks.
  struct PoolStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::size_t queueDepth = 0;
    std::size_t maxQueueDepth = 0;
    double waitSeconds = 0.0;
    double runSeconds = 0.0;
  };

  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all complete. Exceptions from fn propagate
  /// (first one wins).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Consistent-enough snapshot of the load counters (each field is read
  /// atomically; the set is not mutually synchronized).
  PoolStats stats() const;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Pending {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<Pending> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t maxQueueDepth_ = 0;  // guarded by mutex_

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> waitNanos_{0};
  std::atomic<std::uint64_t> runNanos_{0};
};

}  // namespace isop
