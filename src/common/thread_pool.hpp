// Fixed-size worker pool used for parallel batch evaluation (the paper's
// Harmonica stage evaluates q candidate configurations in parallel) and for
// data-parallel ML training.
//
// Queue state (tasks, stop flag, depth high-water mark, submit counter) is
// guarded by one AnnotatedMutex and compile-time checked under Clang
// -Wthread-safety; completion-side counters are relaxed atomics updated by
// workers outside the lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace isop {

class ThreadPool {
 public:
  /// Load counters for observability (see obs::captureThreadPoolStats).
  /// waitSeconds is cumulative enqueue-to-start latency, runSeconds
  /// cumulative execution time, both summed over all completed tasks.
  struct PoolStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::size_t queueDepth = 0;
    std::size_t maxQueueDepth = 0;
    /// Tasks popped by a worker but not yet completed (running right now).
    /// Derived as submitted - completed - queueDepth inside one stats()
    /// snapshot; the read order there guarantees it is never negative. This
    /// is the single source of truth behind both the scheduler's
    /// backpressure view and the "threadpool.inflight" obs gauge.
    std::uint64_t inFlight = 0;
    double waitSeconds = 0.0;
    double runSeconds = 0.0;
  };

  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task) ISOP_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all complete. Exceptions from fn propagate
  /// (first one wins).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Snapshot of the load counters. The submit-side fields (submitted,
  /// queueDepth, maxQueueDepth) are read under the queue lock; the
  /// completion-side fields are relaxed atomics. A task is counted in
  /// `submitted` before it can run, so `completed <= submitted` holds in
  /// every snapshot (regression-tested in tests/common/test_thread_pool.cpp).
  PoolStats stats() const ISOP_EXCLUDES(mutex_);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Pending {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void workerLoop() ISOP_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable AnnotatedMutex mutex_{"pool.queue", lock_order::rank::kThreadPool};
  std::condition_variable_any cv_;
  std::queue<Pending> tasks_ ISOP_GUARDED_BY(mutex_);
  bool stop_ ISOP_GUARDED_BY(mutex_) = false;
  std::size_t maxQueueDepth_ ISOP_GUARDED_BY(mutex_) = 0;
  // Counted inside the enqueue critical section — never after the task is
  // already visible to workers — so a stats() snapshot can never observe
  // completed > submitted.
  std::uint64_t submitted_ ISOP_GUARDED_BY(mutex_) = 0;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> waitNanos_{0};
  std::atomic<std::uint64_t> runNanos_{0};
};

}  // namespace isop
