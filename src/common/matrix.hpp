// Minimal dense linear-algebra kernels used by the ML library and the HPO
// sparse-recovery (Lasso) solver. Row-major storage, double precision.
//
// This intentionally is not a full BLAS: the surrogate networks are small
// (tens of thousands of parameters) and the profiling hot spots are the
// matmul kernels below, which are blocked/unrolled enough for that scale.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace isop {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    ISOP_ASSERT(data_.size() == rows_ * cols_, "storage size must be rows*cols");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    ISOP_ASSERT(r < rows_ && c < cols_, "matrix element out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    ISOP_ASSERT(r < rows_ && c < cols_, "matrix element out of range");
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    ISOP_ASSERT(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    ISOP_ASSERT(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  void fill(double v) { data_.assign(data_.size(), v); }
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// this += other (element-wise). Shapes must match.
  void add(const Matrix& other);
  /// this *= s (element-wise).
  void scale(double s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

namespace linalg {

/// out = a * b. out is resized to (a.rows, b.cols).
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b. out is resized to (a.cols, b.cols).
void matmulTransA(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T. out is resized to (a.rows, b.rows).
void matmulTransB(const Matrix& a, const Matrix& b, Matrix& out);

/// y = A * x for a vector x (x.size() == A.cols()).
void matvec(const Matrix& a, std::span<const double> x, std::span<double> y);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// Solves (A + ridge*I) x = b for symmetric positive-definite A via Cholesky.
/// Returns false if A is not SPD even after the ridge is applied.
bool choleskySolve(const Matrix& a, std::span<const double> b,
                   std::span<double> x, double ridge = 0.0);

}  // namespace linalg

}  // namespace isop
