// Summary statistics used by the trial runner and the benchmark tables
// (mean / sample standard deviation / min / quantiles), plus streaming
// accumulation so long trials don't need to retain every sample.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace isop::stats {

double mean(std::span<const double> xs);

/// Sample (n-1) standard deviation; 0 for fewer than two samples.
double stdev(std::span<const double> xs);

double minValue(std::span<const double> xs);
double maxValue(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. xs need not be sorted.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// R^2 of predictions vs. ground truth (1 - SS_res / SS_tot).
double r2(std::span<const double> truth, std::span<const double> pred);

/// Welford streaming mean/variance accumulator.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double stdev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace isop::stats
