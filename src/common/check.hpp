// Contract macros: precondition / invariant checks with file:line context.
//
//   ISOP_REQUIRE(cond, msg)   — always-on precondition at API boundaries
//                               (per-call cost, never per-element); aborts
//                               with context on violation in every build.
//   ISOP_ASSERT(cond, msg)    — debug-only invariant for hot inner loops;
//                               compiled out under NDEBUG (the condition is
//                               not even evaluated), aborts with context in
//                               debug builds. Drop-in for <cassert> assert.
//   ISOP_UNREACHABLE(msg)     — marks impossible control flow; always aborts.
//
// Violation output goes to stderr in one write:
//   isop: ISOP_REQUIRE failed: x.cols() == inputDim() (batch width must
//   match the model input) at src/ml/surrogate.cpp:17
//
// Define ISOP_FORCE_CHECKS to keep ISOP_ASSERT active in release builds
// (used by the sanitizer presets). tests/common/test_check.cpp holds the
// death tests and the release-mode zero-cost probe.
#pragma once

namespace isop::check {

/// Prints "isop: <kind> failed: <expr> (<msg>) at <file>:<line>" to stderr
/// and aborts. Never returns; noexcept so a contract failure cannot be
/// swallowed by exception handling.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const char* msg) noexcept;

}  // namespace isop::check

#if defined(NDEBUG) && !defined(ISOP_FORCE_CHECKS)
#define ISOP_CHECKS_ENABLED 0
#else
#define ISOP_CHECKS_ENABLED 1
#endif

#define ISOP_REQUIRE(cond, msg)                                                \
  ((cond) ? static_cast<void>(0)                                               \
          : ::isop::check::fail("ISOP_REQUIRE", #cond, __FILE__, __LINE__,     \
                                (msg)))

#if ISOP_CHECKS_ENABLED
#define ISOP_ASSERT(cond, msg)                                                 \
  ((cond) ? static_cast<void>(0)                                               \
          : ::isop::check::fail("ISOP_ASSERT", #cond, __FILE__, __LINE__,      \
                                (msg)))
#else
#define ISOP_ASSERT(cond, msg) static_cast<void>(0)
#endif

#define ISOP_UNREACHABLE(msg)                                                  \
  ::isop::check::fail("ISOP_UNREACHABLE", "reached", __FILE__, __LINE__, (msg))
