#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace isop::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double minValue(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double maxValue(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  double pos = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double r2(std::span<const double> truth, std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double m = mean(truth);
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ssTot += (truth[i] - m) * (truth[i] - m);
  }
  if (ssTot <= 0.0) return ssRes <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ssRes / ssTot;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stdev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace isop::stats
