#include "common/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace isop::strings {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> toDouble(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<long long> toInt(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string padLeft(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string padRight(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace isop::strings
