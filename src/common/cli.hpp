// Minimal command-line flag parser for the benchmark harnesses and examples.
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace isop {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string getString(const std::string& name, const std::string& fallback) const;
  long long getInt(const std::string& name, long long fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace isop
