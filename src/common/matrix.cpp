#include "common/matrix.hpp"

#include <cmath>

namespace isop {

void Matrix::add(const Matrix& other) {
  ISOP_ASSERT(rows_ == other.rows_ && cols_ == other.cols_, "add: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::scale(double s) {
  for (double& v : data_) v *= s;
}

namespace linalg {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  ISOP_ASSERT(a.cols() == b.rows(), "matmul: inner dims must agree");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out.resize(m, n, 0.0);
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    double* outRow = out.data() + i * n;
    const double* aRow = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      const double* bRow = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) outRow[j] += av * bRow[j];
    }
  }
}

void matmulTransA(const Matrix& a, const Matrix& b, Matrix& out) {
  ISOP_ASSERT(a.rows() == b.rows(), "matmulTransA: row counts must agree");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  out.resize(m, n, 0.0);
  for (std::size_t p = 0; p < k; ++p) {
    const double* aRow = a.data() + p * m;
    const double* bRow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = aRow[i];
      if (av == 0.0) continue;
      double* outRow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) outRow[j] += av * bRow[j];
    }
  }
}

void matmulTransB(const Matrix& a, const Matrix& b, Matrix& out) {
  ISOP_ASSERT(a.cols() == b.cols(), "matmulTransB: col counts must agree");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a.data() + i * k;
    double* outRow = out.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bRow = b.data() + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += aRow[p] * bRow[p];
      outRow[j] = acc;
    }
  }
}

void matvec(const Matrix& a, std::span<const double> x, std::span<double> y) {
  ISOP_ASSERT(x.size() == a.cols() && y.size() == a.rows(), "matvec: vector dims must match");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  ISOP_ASSERT(a.size() == b.size(), "dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ISOP_ASSERT(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

bool choleskySolve(const Matrix& a, std::span<const double> b,
                   std::span<double> x, double ridge) {
  ISOP_ASSERT(a.rows() == a.cols(), "choleskySolve: matrix must be square");
  const std::size_t n = a.rows();
  ISOP_ASSERT(b.size() == n && x.size() == n, "choleskySolve: rhs/solution size mismatch");
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j) + (i == j ? ridge : 0.0);
      for (std::size_t p = 0; p < j; ++p) sum -= l(i, p) * l(j, p);
      if (i == j) {
        if (sum <= 0.0) return false;
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L z = b (z stored in x).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t p = 0; p < i; ++p) sum -= l(i, p) * x[p];
    x[i] = sum / l(i, i);
  }
  // Back solve L^T x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t p = ii + 1; p < n; ++p) sum -= l(p, ii) * x[p];
    x[ii] = sum / l(ii, ii);
  }
  return true;
}

}  // namespace linalg
}  // namespace isop
