// Minimal JSON support for result export (isop_cli --json, report files)
// and for reading back the observability artifacts (JSONL convergence
// records, trace files) in tests and tools: a builder/serializer with
// correct string escaping and locale-independent number formatting, plus a
// strict recursive-descent parser.
#pragma once

#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace isop::json {

class Value;

/// A JSON value. Build with the static factories, serialize with dump(), or
/// load from text with parse() and read through the typed accessors.
class Value {
 public:
  enum class Kind { Null, Bool, Number, Integer, String, Array, Object };

  Value() : kind_(Kind::Null) {}

  static Value null();
  static Value boolean(bool v);
  static Value number(double v);
  static Value integer(long long v);
  static Value string(std::string v);
  static Value array();
  static Value object();

  /// Container nesting accepted by parse(). Documents beyond this depth are
  /// rejected (std::nullopt) instead of risking parser stack exhaustion on
  /// adversarial wire input like a megabyte of '['. Generous for real
  /// payloads: the serve protocol and obs records nest < 10 levels.
  static constexpr std::size_t kMaxParseDepth = 192;

  /// Strict parse of a complete JSON document (trailing whitespace allowed);
  /// std::nullopt on any syntax error, and on container nesting deeper than
  /// kMaxParseDepth. Integral numbers without fraction or exponent parse as
  /// Kind::Integer, everything else as Kind::Number. NaN/Infinity literals
  /// are not JSON and do not parse.
  static std::optional<Value> parse(std::string_view text);

  /// Array append. Requires an array value.
  Value& push(Value v);

  /// Object insert/overwrite. Requires an object value.
  Value& set(const std::string& key, Value v);

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }
  bool isNumeric() const { return kind_ == Kind::Number || kind_ == Kind::Integer; }
  std::size_t size() const { return children_.size(); }

  /// Typed reads; each throws std::logic_error on a kind mismatch.
  bool asBool() const;
  double asNumber() const;      ///< Number or Integer
  long long asInteger() const;  ///< Integer only
  const std::string& asString() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  /// Object member access; throws std::out_of_range when absent.
  const Value& at(std::string_view key) const;
  /// Array element access; throws std::out_of_range when out of bounds.
  const Value& at(std::size_t index) const;
  /// The key of the i-th object member (insertion order).
  const std::string& keyAt(std::size_t index) const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  /// Non-finite numbers (NaN, +/-Inf) have no JSON representation and are
  /// serialized as `null` — the defined, documented wire behaviour relied on
  /// by the serve protocol (a non-finite metric can never emit a line that
  /// fails to parse on the client). Round-trip consequence: such a value
  /// parses back as Kind::Null, not Kind::Number.
  std::string dump(int indent = 0) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> children_;  // array: empty keys
};

/// Escapes a string for embedding in JSON (without surrounding quotes).
std::string escape(std::string_view s);

}  // namespace isop::json
