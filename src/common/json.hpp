// Minimal JSON writer for result export (isop_cli --json, report files).
// Write-only by design — the library never needs to parse JSON — with
// correct string escaping and locale-independent number formatting.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace isop::json {

class Value;

/// A JSON value under construction. Build with the static factories, then
/// serialize with dump().
class Value {
 public:
  Value() : kind_(Kind::Null) {}

  static Value null();
  static Value boolean(bool v);
  static Value number(double v);
  static Value integer(long long v);
  static Value string(std::string v);
  static Value array();
  static Value object();

  /// Array append. Requires an array value.
  Value& push(Value v);

  /// Object insert/overwrite. Requires an object value.
  Value& set(const std::string& key, Value v);

  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }
  std::size_t size() const { return children_.size(); }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { Null, Bool, Number, Integer, String, Array, Object };

  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> children_;  // array: empty keys
};

/// Escapes a string for embedding in JSON (without surrounding quotes).
std::string escape(std::string_view s);

}  // namespace isop::json
