// Tiny CSV reader/writer used for dataset caching and for emitting the
// figure-reproduction series (Fig. 5 curves, Fig. 6 scatter data).
//
// Deliberately minimal: numeric tables with a single header row, comma
// separated, no quoting (none of our data contains commas or quotes).
#pragma once

#include <string>
#include <vector>

namespace isop::csv {

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  std::size_t columnIndex(const std::string& name) const;  // throws if absent
};

/// Reads a numeric CSV. Throws std::runtime_error on I/O failure or any
/// non-numeric cell.
Table read(const std::string& path);

/// Writes a numeric CSV. Throws std::runtime_error on I/O failure.
void write(const std::string& path, const Table& table);

}  // namespace isop::csv
