#include "common/lock_order.hpp"

#if ISOP_LOCK_ORDER_ENABLED

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>  // lint-ok(L1): the detector's own internals cannot use AnnotatedMutex (it would recurse into these hooks)
#include <string>
#include <vector>

namespace isop::lock_order {

namespace {

// Per-thread held-lock stack. A raw trivially-destructible array, not a
// std::vector: the hooks run from arbitrary code including thread-exit
// destructors, after which a non-trivial thread_local would already be gone.
struct Held {
  const void* mutex;
  const char* name;  // nullptr = unnamed (excluded from the graph)
  int rank;
};

constexpr std::size_t kMaxHeld = 64;
thread_local Held tHeld[kMaxHeld];
thread_local std::size_t tHeldCount = 0;

// The acquired-after graph. Nodes are lock *names* (instances sharing a
// name collapse — that is the point: ordering discipline is per lock class,
// and it makes node identity stable across mutex destruction/reuse).
// Each edge from->to stores the full held chain observed when the edge was
// first recorded, so an inversion report can show *how* the conflicting
// order was established, not just that it exists.
struct Graph {
  // edges[from][to] = acquisition chain (oldest lock first, `to` last).
  std::map<std::string, std::map<std::string, std::vector<std::string>>> edges;
};

std::mutex& graphMutex() {  // lint-ok(L1): detector-internal, see header include note
  static std::mutex m;  // lint-ok(L1): detector-internal, see header include note
  return m;
}

Graph& graph() {
  // Leaked on purpose: worker threads (ThreadPool::global(), detached
  // samplers) may still acquire locks during static destruction, after a
  // destroyed graph would be a use-after-free.
  static Graph* g = new Graph;
  return *g;
}

/// DFS: is `to` reachable from `from` over recorded acquired-after edges?
/// On success, fills `path` with the node sequence from -> ... -> to.
/// Caller holds graphMutex().
bool reaches(const Graph& g, const std::string& from, const std::string& to,
             std::vector<std::string>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  const auto it = g.edges.find(from);
  if (it == g.edges.end()) return false;
  path.push_back(from);
  for (const auto& [next, chain] : it->second) {
    // path doubles as the visited set; cycles in `edges` cannot exist yet
    // (every insertion runs this check first), so membership is enough.
    bool seen = false;
    for (const std::string& node : path) {
      if (node == next) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (next == to || reaches(g, next, to, path)) {
      if (path.back() != to) path.push_back(to);
      return true;
    }
  }
  path.pop_back();
  return false;
}

void printChain(const char* label, const Held* held, std::size_t count,
                const char* acquiring) {
  std::fprintf(stderr, "  %s:", label);
  for (std::size_t i = 0; i < count; ++i) {
    std::fprintf(stderr, " \"%s\"(rank %d) ->", held[i].name ? held[i].name : "<unnamed>",
                 held[i].rank);
  }
  std::fprintf(stderr, " \"%s\"\n", acquiring);
}

[[noreturn]] void failRank(const Held& held, const char* name, int rank) {
  std::fprintf(stderr,
               "isop: LOCK RANK inversion: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d) — the declared table "
               "(common/lock_order.hpp) requires strictly descending ranks\n",
               name ? name : "<unnamed>", rank, held.name ? held.name : "<unnamed>",
               held.rank);
  printChain("this thread holds (oldest first)", tHeld, tHeldCount,
             name ? name : "<unnamed>");
  std::abort();
}

[[noreturn]] void failCycle(const char* name, const std::string& holdingName,
                            const std::vector<std::string>& reversePath,
                            const std::vector<std::string>& establishedChain) {
  std::fprintf(stderr,
               "isop: LOCK ORDER inversion: acquiring \"%s\" while holding "
               "\"%s\", but the reverse order is already on record\n",
               name, holdingName.c_str());
  printChain("this thread holds (oldest first)", tHeld, tHeldCount, name);
  std::fprintf(stderr, "  conflicting acquired-after path:");
  for (std::size_t i = 0; i < reversePath.size(); ++i) {
    std::fprintf(stderr, "%s \"%s\"", i == 0 ? "" : " ->", reversePath[i].c_str());
  }
  std::fprintf(stderr, "\n  first established by the acquisition chain:");
  for (std::size_t i = 0; i < establishedChain.size(); ++i) {
    std::fprintf(stderr, "%s \"%s\"", i == 0 ? "" : " ->",
                 establishedChain[i].c_str());
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

void push(const void* mutex, const char* name, int rank) {
  if (tHeldCount >= kMaxHeld) {
    std::fprintf(stderr,
                 "isop: lock-order detector: thread holds more than %zu locks "
                 "(runaway nesting?)\n",
                 kMaxHeld);
    std::abort();
  }
  tHeld[tHeldCount++] = Held{mutex, name, rank};
}

}  // namespace

void onAcquire(const void* mutex, const char* name, int rank) {
  // Rank table first: it rejects declared-order violations even before the
  // reverse order was ever executed.
  if (rank != kUnranked) {
    for (std::size_t i = 0; i < tHeldCount; ++i) {
      if (tHeld[i].rank != kUnranked && tHeld[i].rank <= rank) {
        failRank(tHeld[i], name, rank);
      }
    }
  }

  if (name != nullptr && tHeldCount > 0) {
    std::lock_guard<std::mutex> g(graphMutex());  // lint-ok(L1): detector-internal
    Graph& gr = graph();
    for (std::size_t i = 0; i < tHeldCount; ++i) {
      if (tHeld[i].name == nullptr) continue;
      const std::string from(tHeld[i].name);
      const std::string to(name);
      if (from == to) {
        // Two locks of the same class held at once (e.g. two MemoCache
        // shards): no intra-class order exists, so another thread nesting
        // them the other way round deadlocks. Flag it as a length-1 cycle.
        std::vector<std::string> path{to, from};
        failCycle(name, from, path, {from, to});
      }
      // Would the new edge from->to close a cycle? Check to ~> from first.
      std::vector<std::string> path;
      if (reaches(gr, to, from, path)) {
        // The first edge on the reverse path carries the chain that
        // established the conflicting order.
        std::vector<std::string> established;
        if (path.size() >= 2) {
          const auto eIt = gr.edges.find(path[0]);
          if (eIt != gr.edges.end()) {
            const auto cIt = eIt->second.find(path[1]);
            if (cIt != eIt->second.end()) established = cIt->second;
          }
        }
        failCycle(name, from, path, established);
      }
      auto& chain = gr.edges[from][to];
      if (chain.empty()) {
        for (std::size_t j = 0; j < tHeldCount; ++j) {
          if (tHeld[j].name != nullptr) chain.emplace_back(tHeld[j].name);
        }
        chain.emplace_back(to);
      }
    }
  }

  push(mutex, name, rank);
}

void onRelease(const void* mutex) {
  // Out-of-order release is legal; search from the top of the stack.
  for (std::size_t i = tHeldCount; i > 0; --i) {
    if (tHeld[i - 1].mutex == mutex) {
      for (std::size_t j = i - 1; j + 1 < tHeldCount; ++j) tHeld[j] = tHeld[j + 1];
      --tHeldCount;
      return;
    }
  }
  // Releasing a lock the detector never saw acquired: tolerated (the mutex
  // may have been locked before the detector was compiled in — impossible
  // today, but cheap to be lenient about).
}

void onTryAcquire(const void* mutex, const char* name, int rank) {
  push(mutex, name, rank);
}

std::size_t heldCount() { return tHeldCount; }

}  // namespace isop::lock_order

#endif  // ISOP_LOCK_ORDER_ENABLED
