// Wall-clock timer used for runtime accounting in the benchmark tables.
#pragma once

#include <chrono>

namespace isop {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace isop
