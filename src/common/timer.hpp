// Wall-clock timer used for runtime accounting in the benchmark tables.
#pragma once

#include <chrono>

namespace isop {

class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since the previous lap() (or construction/reset), then starts
  /// the next lap — one timer can split consecutive pipeline stages without
  /// touching the total measured by seconds().
  double lap() {
    const auto now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return elapsed;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace isop
