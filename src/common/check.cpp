#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace isop::check {

void fail(const char* kind, const char* expr, const char* file, int line,
          const char* msg) noexcept {
  // One formatted write so concurrent failures don't interleave mid-line.
  std::fprintf(stderr, "isop: %s failed: %s (%s) at %s:%d\n", kind, expr, msg,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace isop::check
