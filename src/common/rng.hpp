// Deterministic pseudo-random number generation for all stochastic components.
//
// Every stochastic piece of the ISOP+ framework (samplers, optimizers, ML
// training, noise injection) takes an explicit 64-bit seed so that trials are
// exactly reproducible. We use the PCG32 generator (O'Neill, 2014): small
// state, excellent statistical quality, and — unlike std::mt19937 — identical
// output across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace isop {

/// PCG32 (XSH-RR variant) uniform random bit generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can be used with
/// <random> distributions, but the helpers below are preferred because their
/// results are platform-independent.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. Distinct (seed, stream) pairs give independent
  /// sequences; the default stream is fine for most uses.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 raw bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher–Yates).
  std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; useful for giving each thread or
  /// trial its own stream without correlations.
  Rng split();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace isop
