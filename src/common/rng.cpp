#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace isop {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += seed;
  (*this)();
}

Rng::result_type Rng::operator()() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  std::uint64_t hi = (*this)();
  std::uint64_t lo = (*this)();
  std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  if (n == 1) return 0;
  // Lemire's method on 64-bit draws.
  std::uint64_t x = ((static_cast<std::uint64_t>((*this)()) << 32) | (*this)());
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = ((static_cast<std::uint64_t>((*this)()) << 32) | (*this)());
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  // Box–Muller; regenerate if u1 underflows to 0.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sampleIndices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() {
  std::uint64_t s = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  std::uint64_t t = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return Rng(s, t);
}

}  // namespace isop
