#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace isop::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value Value::null() { return Value(); }

Value Value::boolean(bool v) {
  Value out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

Value Value::number(double v) {
  Value out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

Value Value::integer(long long v) {
  Value out;
  out.kind_ = Kind::Integer;
  out.integer_ = v;
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

Value Value::array() {
  Value out;
  out.kind_ = Kind::Array;
  return out;
}

Value Value::object() {
  Value out;
  out.kind_ = Kind::Object;
  return out;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::Array) throw std::logic_error("json: push on non-array");
  children_.emplace_back(std::string(), std::move(v));
  return *this;
}

Value& Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::Object) throw std::logic_error("json: set on non-object");
  for (auto& [k, existing] : children_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(v));
  return *this;
}

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

void Value::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string closePad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Integer: out += std::to_string(integer_); break;
    case Kind::Number: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      break;
    }
    case Kind::String:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        children_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) out += closePad;
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        out += '"';
        out += escape(children_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        children_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) out += closePad;
      out += '}';
      break;
    }
  }
}

}  // namespace isop::json
