#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace isop::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value Value::null() { return Value(); }

Value Value::boolean(bool v) {
  Value out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

Value Value::number(double v) {
  Value out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

Value Value::integer(long long v) {
  Value out;
  out.kind_ = Kind::Integer;
  out.integer_ = v;
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

Value Value::array() {
  Value out;
  out.kind_ = Kind::Array;
  return out;
}

Value Value::object() {
  Value out;
  out.kind_ = Kind::Object;
  return out;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::Array) throw std::logic_error("json: push on non-array");
  children_.emplace_back(std::string(), std::move(v));
  return *this;
}

Value& Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::Object) throw std::logic_error("json: set on non-object");
  for (auto& [k, existing] : children_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(v));
  return *this;
}

bool Value::asBool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("json: asBool on non-bool");
  return bool_;
}

double Value::asNumber() const {
  if (kind_ == Kind::Number) return number_;
  if (kind_ == Kind::Integer) return static_cast<double>(integer_);
  throw std::logic_error("json: asNumber on non-numeric value");
}

long long Value::asInteger() const {
  if (kind_ != Kind::Integer) throw std::logic_error("json: asInteger on non-integer");
  return integer_;
}

const std::string& Value::asString() const {
  if (kind_ != Kind::String) throw std::logic_error("json: asString on non-string");
  return string_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : children_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw std::out_of_range("json: missing key '" + std::string(key) + "'");
}

const Value& Value::at(std::size_t index) const {
  if (kind_ != Kind::Array && kind_ != Kind::Object) {
    throw std::logic_error("json: at(index) on scalar");
  }
  if (index >= children_.size()) throw std::out_of_range("json: index out of range");
  return children_[index].second;
}

const std::string& Value::keyAt(std::size_t index) const {
  if (kind_ != Kind::Object) throw std::logic_error("json: keyAt on non-object");
  if (index >= children_.size()) throw std::out_of_range("json: index out of range");
  return children_[index].first;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    auto v = parseValue();
    if (!v) return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return consumeLiteral("null") ? std::optional(Value::null()) : std::nullopt;
      case 't': return consumeLiteral("true") ? std::optional(Value::boolean(true)) : std::nullopt;
      case 'f':
        return consumeLiteral("false") ? std::optional(Value::boolean(false)) : std::nullopt;
      case '"': return parseString();
      case '[': return parseArray();
      case '{': return parseObject();
      default: return parseNumber();
    }
  }

  std::optional<Value> parseString() {
    std::string out;
    if (!parseRawString(out)) return std::nullopt;
    return Value::string(std::move(out));
  }

  bool parseRawString(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — fine for the ASCII-centric records we
          // read back).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  std::optional<Value> parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    bool anyDigits = false;
    const std::size_t digitsStart = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      anyDigits = true;
    }
    if (!anyDigits) return std::nullopt;
    // Strict JSON: a leading zero must stand alone ("01" is invalid).
    if (text_[digitsStart] == '0' && pos_ - digitsStart > 1) return std::nullopt;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      bool fracDigits = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        fracDigits = true;
      }
      if (!fracDigits) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      bool expDigits = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        expDigits = true;
      }
      if (!expDigits) return std::nullopt;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    const char* first = token.data();
    const char* last = token.data() + token.size();
    if (integral) {
      long long v = 0;
      const auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && ptr == last) return Value::integer(v);
      // Falls through to double on overflow.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) return std::nullopt;
    return Value::number(d);
  }

  std::optional<Value> parseArray() {
    if (!consume('[')) return std::nullopt;
    if (++depth_ > Value::kMaxParseDepth) return std::nullopt;
    Value arr = Value::array();
    skipWs();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    for (;;) {
      auto element = parseValue();
      if (!element) return std::nullopt;
      arr.push(std::move(*element));
      skipWs();
      if (consume(']')) {
        --depth_;
        return arr;
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Value> parseObject() {
    if (!consume('{')) return std::nullopt;
    if (++depth_ > Value::kMaxParseDepth) return std::nullopt;
    Value obj = Value::object();
    skipWs();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (!parseRawString(key)) return std::nullopt;
      skipWs();
      if (!consume(':')) return std::nullopt;
      auto member = parseValue();
      if (!member) return std::nullopt;
      obj.set(key, std::move(*member));
      skipWs();
      if (consume('}')) {
        --depth_;
        return obj;
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  ///< open containers; capped at kMaxParseDepth
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  return Parser(text).run();
}

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

void Value::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string closePad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Integer: out += std::to_string(integer_); break;
    case Kind::Number: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      // Shortest representation that parses back to the exact same double:
      // values crossing the wire (job specs, persisted results) must survive
      // a dump -> parse round trip bit for bit.
      char buf[40];
      for (int digits = 15; digits <= 17; ++digits) {
        std::snprintf(buf, sizeof(buf), "%.*g", digits, number_);
        if (std::strtod(buf, nullptr) == number_) break;
      }
      out += buf;
      break;
    }
    case Kind::String:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        children_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) out += closePad;
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        out += '"';
        out += escape(children_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        children_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) out += closePad;
      out += '}';
      break;
    }
  }
}

}  // namespace isop::json
