// Small string helpers shared by the CSV reader, CLI parser and report
// formatters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace isop::strings {

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Parses a double; nullopt on any trailing garbage or empty input.
std::optional<double> toDouble(std::string_view s);

/// Parses a signed integer; nullopt on any trailing garbage or empty input.
std::optional<long long> toInt(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);

/// printf-style double formatting with fixed decimals (used by the table
/// printers so output matches the paper's layout).
std::string fixed(double v, int decimals);

/// Left-pads to `width` with spaces.
std::string padLeft(std::string_view s, std::size_t width);
/// Right-pads to `width` with spaces.
std::string padRight(std::string_view s, std::size_t width);

}  // namespace isop::strings
