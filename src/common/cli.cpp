#include "common/cli.hpp"

#include "common/string_utils.hpp"

namespace isop {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!strings::startsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; else boolean.
    if (i + 1 < argc && !strings::startsWith(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::getString(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return it->second;
}

long long CliArgs::getInt(const std::string& name, long long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto v = strings::toInt(it->second);
  return v ? *v : fallback;
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto v = strings::toDouble(it->second);
  return v ? *v : fallback;
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" || it->second == "yes") {
    return true;
  }
  return false;
}

}  // namespace isop
