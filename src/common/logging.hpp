// Lightweight leveled logging to stderr. The optimizers log per-iteration
// search-space reductions at Debug level; benches default to Info.
#pragma once

#include <sstream>
#include <string>

namespace isop::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLevel(Level level);
Level level();

void message(Level level, const std::string& text);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::Debug) message(Level::Debug, detail::concat(args...));
}
template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::Info) message(Level::Info, detail::concat(args...));
}
template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::Warn) message(Level::Warn, detail::concat(args...));
}
template <typename... Args>
void error(const Args&... args) {
  if (level() <= Level::Error) message(Level::Error, detail::concat(args...));
}

}  // namespace isop::log
