// Lightweight leveled logging to stderr. The optimizers log per-iteration
// search-space reductions at Debug level; benches default to Info.
//
// Each line carries an ISO-8601 UTC timestamp (millisecond precision), the
// level, and the emitting thread's id, and is written with a single call
// under a mutex so concurrent messages never interleave:
//
//   2026-08-06T12:34:56.789Z [INFO ] [tid 1a2b3c4d] harmonica: ...
//
// The initial threshold comes from the ISOP_LOG_LEVEL environment variable
// (debug|info|warn|error|off, parsed once at startup, default info);
// setLevel() and isop_cli --log-level override it at runtime.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace isop::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLevel(Level level);
Level level();

/// "debug" -> Level::Debug etc., case-insensitive; `fallback` if unknown.
Level levelFromString(std::string_view name, Level fallback = Level::Info);

void message(Level level, const std::string& text);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::Debug) message(Level::Debug, detail::concat(args...));
}
template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::Info) message(Level::Info, detail::concat(args...));
}
template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::Warn) message(Level::Warn, detail::concat(args...));
}
template <typename... Args>
void error(const Args&... args) {
  if (level() <= Level::Error) message(Level::Error, detail::concat(args...));
}

}  // namespace isop::log
