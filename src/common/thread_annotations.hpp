// Clang Thread Safety Analysis wiring (compile-time race rejection).
//
// Wraps Clang's capability attributes behind ISOP_* macros that expand to
// nothing on other compilers, plus an AnnotatedMutex/MutexLock pair the
// shared-state classes (MemoCache, ThreadPool, obs::Registry/Tracer/
// ConvergenceRecorder, the logger) use instead of raw std::mutex /
// std::lock_guard — Clang cannot see through the unannotated standard
// library types, so the wrappers are what make `-Wthread-safety` able to
// prove every access to an ISOP_GUARDED_BY member happens under its lock.
//
// Build with the `static-analysis` CMake preset (Clang + -Wthread-safety
// -Werror, see docs/static_analysis.md) to turn violations into build
// failures; scripts/check_static.sh runs it as part of the project gate.
//
// Locks additionally carry an optional *name* and *rank* consumed by the
// runtime lock-order detector (src/common/lock_order.hpp) when the build
// defines ISOP_LOCK_ORDER; in ordinary builds the name/rank constructor
// compiles to nothing and AnnotatedMutex stays layout-identical to
// std::mutex (asserted by tests/common/test_lock_order.cpp).
#pragma once

#include <mutex>  // lint-ok(L1): this header IS the sanctioned std::mutex wrapper

#include "common/lock_order.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ISOP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ISOP_THREAD_ANNOTATION
#define ISOP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define ISOP_CAPABILITY(x) ISOP_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define ISOP_SCOPED_CAPABILITY ISOP_THREAD_ANNOTATION(scoped_lockable)
/// Data member may only be read/written while holding the given mutex.
#define ISOP_GUARDED_BY(x) ISOP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member: the pointee is guarded by the given mutex.
#define ISOP_PT_GUARDED_BY(x) ISOP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry.
#define ISOP_REQUIRES(...) ISOP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define ISOP_ACQUIRE(...) ISOP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define ISOP_RELEASE(...) ISOP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define ISOP_TRY_ACQUIRE(ret, ...) \
  ISOP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (non-reentrancy guard).
#define ISOP_EXCLUDES(...) ISOP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define ISOP_RETURN_CAPABILITY(x) ISOP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use must
/// carry a written reason (see the suppression policy in
/// docs/static_analysis.md).
#define ISOP_NO_THREAD_SAFETY_ANALYSIS \
  ISOP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace isop {

/// std::mutex annotated as a Clang capability. Same cost as std::mutex.
///
/// The (name, rank) constructor registers the lock with the lock-order
/// detector under ISOP_LOCK_ORDER builds: `name` makes it a node in the
/// acquired-after graph (instances sharing a name collapse to one node),
/// `rank` (a lock_order::rank constant) additionally enforces the declared
/// rank table. Elsewhere both arguments are discarded at compile time.
class ISOP_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
#if ISOP_LOCK_ORDER_ENABLED
  explicit AnnotatedMutex(const char* name, int rank = lock_order::kUnranked)
      : name_(name), rank_(rank) {}
#else
  explicit AnnotatedMutex(const char* /*name*/, int /*rank*/ = 0) {}
#endif
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() ISOP_ACQUIRE() {
    // The detector hook runs BEFORE blocking: a real would-be ABBA deadlock
    // aborts with both acquisition chains instead of hanging.
#if ISOP_LOCK_ORDER_ENABLED
    lock_order::onAcquire(this, name_, rank_);
#endif
    mutex_.lock();
  }
  void unlock() ISOP_RELEASE() {
    mutex_.unlock();
#if ISOP_LOCK_ORDER_ENABLED
    lock_order::onRelease(this);
#endif
  }
  bool try_lock() ISOP_TRY_ACQUIRE(true) {
    const bool ok = mutex_.try_lock();
#if ISOP_LOCK_ORDER_ENABLED
    // try_lock cannot deadlock, so it is tracked (for later nested
    // acquisitions) but never checked.
    if (ok) lock_order::onTryAcquire(this, name_, rank_);
#endif
    return ok;
  }

 private:
  std::mutex mutex_;  // lint-ok(L1): the primitive this wrapper sanctions
#if ISOP_LOCK_ORDER_ENABLED
  const char* name_ = nullptr;
  int rank_ = lock_order::kUnranked;
#endif
};

/// Scoped lock over AnnotatedMutex (the analysable std::lock_guard).
class ISOP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mutex) ISOP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ISOP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mutex_;
};

/// Scoped lock that std::condition_variable_any can wait on (it needs
/// lock()/unlock() on the lock object itself). Owns the mutex between
/// construction and destruction except while a wait has it released.
class ISOP_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(AnnotatedMutex& mutex) ISOP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~CvLock() ISOP_RELEASE() { mutex_.unlock(); }

  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  // condition_variable_any calls these around the wait; the analysis treats
  // the capability as continuously held across wait(), which matches the
  // program logic (guarded state is only touched while the lock is held).
  void lock() ISOP_ACQUIRE() { mutex_.lock(); }
  void unlock() ISOP_RELEASE() { mutex_.unlock(); }

 private:
  AnnotatedMutex& mutex_;
};

}  // namespace isop
