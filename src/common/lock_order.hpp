// Runtime lock-order detector: the dynamic complement to the Clang
// thread-safety gate. TSA proves every *access* happens under the right
// lock; this layer proves locks are *acquired in a consistent order*, so an
// ABBA deadlock is rejected on the first run that establishes both orders —
// not on the unlucky schedule that actually interleaves them.
//
// Two independent checks, both driven from AnnotatedMutex's lock()/unlock()
// hooks (src/common/thread_annotations.hpp):
//
//   1. Acquired-after graph. Every named mutex is a node (instances sharing
//      a name collapse to one node — all 16 MemoCache shards are "one"
//      lock for ordering purposes). Acquiring B while holding A records the
//      edge A -> B together with the acquiring thread's held-lock chain;
//      incremental cycle detection aborts the process the moment an
//      acquisition would close a cycle, printing both participating
//      acquisition chains. Detection runs *before* blocking on the mutex,
//      so a true inversion reports instead of deadlocking.
//
//   2. Declared rank table. Locks carrying a rank (the constants below)
//      must be acquired rank-monotonically: taking a lock whose rank is >=
//      any held ranked lock aborts immediately, even before the reverse
//      order is ever observed. The table *is* the documented architecture:
//      Server > Scheduler > JobQueue > SessionManager > MemoCache shard >
//      ThreadPool queue > plan workspace pool > obs > LineWriter > logger.
//
// Cost model: compiled in only under ISOP_LOCK_ORDER (the CMake option of
// the same name — ON in Debug builds and the sanitizer presets). Without
// it every hook is an empty inline function and AnnotatedMutex carries no
// extra state: sizeof(AnnotatedMutex) == sizeof(std::mutex), asserted by
// tests/common/test_lock_order.cpp.
//
// See docs/static_analysis.md ("Lock-order detector") for the policy and
// how to name a new mutex.
#pragma once

#include <cstddef>

namespace isop::lock_order {

/// Rank of a mutex that does not participate in the declared table (it is
/// still a node in the acquired-after graph when named).
inline constexpr int kUnranked = 0;

/// The declared lock-rank table. Acquisition must be strictly
/// rank-descending: holding a rank-r lock, only locks with rank < r (or
/// unranked locks) may be acquired. Gaps are deliberate — slot new locks
/// between existing layers without renumbering.
namespace rank {
/// serve: connection registry (Server::connectionsMutex_).
inline constexpr int kServer = 80;
/// serve: Scheduler live-job map. Held across JobQueue pushes and event
/// sink writes (submit admits under the lock by design).
inline constexpr int kScheduler = 70;
/// serve: JobQueue state.
inline constexpr int kJobQueue = 60;
/// serve: SessionManager session map. Held across session build (surrogate
/// training), so everything training touches must rank below.
inline constexpr int kSessionManager = 50;
/// serve: a session Context's lazily-trained inverse-model slot. Acquired
/// under the session manager's pin (never the manager lock itself at the
/// same time as training runs); inverse training touches memo shards, the
/// thread pool and plan pools, all strictly below.
inline constexpr int kInverseModel = 45;
/// core/eval: one MemoCache shard. Never hold two shards at once — same
/// name means the detector flags shard-vs-shard nesting as an inversion.
inline constexpr int kMemoShard = 40;
/// common: ThreadPool queue state (submit/stats/worker pop).
inline constexpr int kThreadPool = 35;
/// ml/nn: CompiledPlan workspace pool.
inline constexpr int kPlanPool = 30;
/// obs: MetricsSampler tick-thread lifecycle.
inline constexpr int kSamplerThread = 26;
/// obs: MetricsSampler sample/ring state (takes the registry lock inside).
inline constexpr int kSamplerSample = 24;
/// obs: SpanTracer event buffer.
inline constexpr int kObsTracer = 22;
/// obs: MetricsRegistry name->instrument map.
inline constexpr int kObsRegistry = 20;
/// obs: ConvergenceRecorder sink.
inline constexpr int kObsConvergence = 18;
/// serve: LineWriter stream serialization (written to under the scheduler
/// lock by the accepted/rejected emits).
inline constexpr int kLineWriter = 15;
/// common: ThreadPool::parallelFor first-exception capture.
inline constexpr int kPoolError = 12;
/// common: the logging backend. The floor — any thread may log while
/// holding anything, so nothing may be acquired while holding it.
inline constexpr int kLogger = 10;
}  // namespace rank

#if defined(ISOP_LOCK_ORDER)
#define ISOP_LOCK_ORDER_ENABLED 1

/// Called by AnnotatedMutex::lock() *before* blocking: runs the rank check
/// and the cycle check against the acquiring thread's held stack, records
/// the acquired-after edges, then pushes the lock. Aborts with both
/// acquisition chains on an inversion.
void onAcquire(const void* mutex, const char* name, int rank);

/// Called by AnnotatedMutex::unlock() after releasing: pops the lock from
/// the thread's held stack (locks may be released out of order).
void onRelease(const void* mutex);

/// Called by AnnotatedMutex::try_lock() on success only. Pushes the lock so
/// later nested acquisitions see it, but records no edges and runs no
/// checks — a try_lock cannot deadlock, so an "inverted" try order is legal.
void onTryAcquire(const void* mutex, const char* name, int rank);

/// Locks currently held by the calling thread (test observability).
std::size_t heldCount();

#else
#define ISOP_LOCK_ORDER_ENABLED 0

inline void onAcquire(const void*, const char*, int) {}
inline void onRelease(const void*) {}
inline void onTryAcquire(const void*, const char*, int) {}
inline std::size_t heldCount() { return 0; }

#endif

}  // namespace isop::lock_order
