#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <thread>

#include "common/thread_annotations.hpp"

namespace isop::log {

namespace {

const char* levelName(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    default: return "?????";
  }
}

Level levelFromEnv() {
  const char* env = std::getenv("ISOP_LOG_LEVEL");
  return env ? levelFromString(env, Level::Info) : Level::Info;
}

// The env var is parsed exactly once, before main() touches the logger.
// Serializes the single fprintf per line. Ranked at the floor of the lock
// table: any thread may log while holding anything, nothing is acquired
// while holding this.
AnnotatedMutex g_mutex{"log.stream", lock_order::rank::kLogger};  // lint-ok(L2): guards the stderr stream, not a member field
std::atomic<Level> g_level{levelFromEnv()};

/// "2026-08-06T12:34:56.789Z" into buf (must hold >= 25 chars + NUL).
void formatUtcTimestamp(char* buf, std::size_t size) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03dZ", date, static_cast<int>(millis));
}

}  // namespace

void setLevel(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

Level levelFromString(std::string_view name, Level fallback) {
  std::string lowered(name);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "debug") return Level::Debug;
  if (lowered == "info") return Level::Info;
  if (lowered == "warn" || lowered == "warning") return Level::Warn;
  if (lowered == "error") return Level::Error;
  if (lowered == "off" || lowered == "none" || lowered == "quiet") return Level::Off;
  return fallback;
}

void message(Level lvl, const std::string& text) {
  if (lvl < level()) return;
  char stamp[32];
  formatUtcTimestamp(stamp, sizeof(stamp));
  static thread_local const auto tid = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  // One formatted write under the mutex: concurrent lines never interleave.
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "%s [%s] [tid %08x] %s\n", stamp, levelName(lvl), tid,  // lint-ok(L3): serializing this exact write is the lock's whole job
               text.c_str());
}

}  // namespace isop::log
