#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace isop::log {

namespace {
std::atomic<Level> g_level{Level::Info};
std::mutex g_mutex;

const char* levelName(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void setLevel(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

void message(Level lvl, const std::string& text) {
  if (lvl < level()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", levelName(lvl), text.c_str());
}

}  // namespace isop::log
