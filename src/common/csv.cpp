#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_utils.hpp"

namespace isop::csv {

std::size_t Table::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::runtime_error("csv: no column named '" + name + "'");
}

Table read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open '" + path + "' for reading");
  Table table;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("csv: '" + path + "' is empty");
  table.header = strings::split(line, ',');
  while (std::getline(in, line)) {
    if (strings::trim(line).empty()) continue;
    auto cells = strings::split(line, ',');
    if (cells.size() != table.header.size()) {
      throw std::runtime_error("csv: row width mismatch in '" + path + "'");
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) {
      auto v = strings::toDouble(cell);
      if (!v) throw std::runtime_error("csv: non-numeric cell '" + cell + "' in '" + path + "'");
      row.push_back(*v);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

void write(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open '" + path + "' for writing");
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) out << ',';
    out << table.header[i];
  }
  out << '\n';
  std::ostringstream row;
  for (const auto& r : table.rows) {
    row.str({});
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) row << ',';
      row << r[i];
    }
    out << row.str() << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for '" + path + "'");
}

}  // namespace isop::csv
