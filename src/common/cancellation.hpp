// Cooperative cancellation for long-running optimizer loops and the serve
// subsystem's job scheduler.
//
// A CancelToken is a cheap copyable handle onto shared cancellation state.
// Producers (the scheduler, a signal handler, a deadline) call cancel() or
// arm a steady-clock deadline; consumers (Harmonica iterations, Hyperband
// rounds, Adam epochs, TrialRunner trials) poll cancelled() or call
// throwIfCancelled() at iteration boundaries. A default-constructed token is
// inert — never cancelled, and its checks cost a single null-pointer test —
// so every optimizer config can carry one without taxing batch runs.
//
// Cancellation is *cooperative*: nothing is interrupted mid-evaluation, so a
// cancelled run stops at the next iteration boundary with all invariants
// intact. Checks never consume RNG draws or touch results, so an uncancelled
// run is bitwise identical with or without a token attached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

namespace isop {

/// Thrown by CancelToken::throwIfCancelled(); carries the cancellation
/// reason ("cancelled" or "deadline exceeded").
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(const std::string& reason)
      : std::runtime_error(reason) {}
};

class CancelToken {
 public:
  /// Inert token: cancelled() is always false, cancel() is a no-op.
  CancelToken() = default;

  /// A live token backed by fresh shared state.
  static CancelToken create() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// False for default-constructed (inert) tokens.
  bool valid() const noexcept { return state_ != nullptr; }

  /// Requests cancellation. Idempotent; safe from any thread and from
  /// signal-handler-adjacent contexts (one relaxed atomic store).
  void cancel() const noexcept {
    if (state_) state_->flag.store(true, std::memory_order_relaxed);
  }

  /// Arms (or tightens) a steady-clock deadline; the token reads as
  /// cancelled once the deadline passes. Later calls can only move the
  /// deadline earlier.
  void setDeadline(std::chrono::steady_clock::time_point tp) const noexcept {
    if (!state_) return;
    const std::int64_t nanos = tp.time_since_epoch().count();
    std::int64_t current = state_->deadlineNanos.load(std::memory_order_relaxed);
    while (nanos < current && !state_->deadlineNanos.compare_exchange_weak(
                                  current, nanos, std::memory_order_relaxed)) {
    }
  }

  /// Convenience: deadline `timeout` from now.
  void setTimeout(std::chrono::nanoseconds timeout) const noexcept {
    setDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool deadlineArmed() const noexcept {
    return state_ != nullptr &&
           state_->deadlineNanos.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Seconds until the armed deadline (negative once it has passed);
  /// +infinity when no deadline is armed or the token is inert. The live
  /// "deadline remaining" figure the serve stats request reports per job.
  double secondsToDeadline() const noexcept {
    if (!deadlineArmed()) return std::numeric_limits<double>::infinity();
    const std::int64_t deadline = state_->deadlineNanos.load(std::memory_order_relaxed);
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    return std::chrono::duration<double>(std::chrono::nanoseconds(deadline - now))
        .count();
  }

  /// True once cancel() was called or an armed deadline has passed.
  bool cancelled() const noexcept {
    if (!state_) return false;
    if (state_->flag.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = state_->deadlineNanos.load(std::memory_order_relaxed);
    return deadline != kNoDeadline &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= deadline;
  }

  /// "cancelled" for explicit cancellation, "deadline exceeded" when only
  /// the deadline fired, "" when not cancelled.
  const char* reason() const noexcept {
    if (!state_) return "";
    if (state_->flag.load(std::memory_order_relaxed)) return "cancelled";
    return cancelled() ? "deadline exceeded" : "";
  }

  /// Throws OperationCancelled when cancelled; the designated check for
  /// optimizer iteration boundaries.
  void throwIfCancelled() const {
    if (cancelled()) throw OperationCancelled(reason());
  }

 private:
  static constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

  struct State {
    std::atomic<bool> flag{false};
    std::atomic<std::int64_t> deadlineNanos{kNoDeadline};
  };

  std::shared_ptr<State> state_;
};

}  // namespace isop
