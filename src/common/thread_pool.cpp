#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace isop {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    MutexLock lock(mutex_);
    tasks_.push({std::move(packaged), std::chrono::steady_clock::now()});
    maxQueueDepth_ = std::max(maxQueueDepth_, tasks_.size());
    ++submitted_;
  }
  cv_.notify_one();
  return fut;
}

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats s;
  // completed_ is read *before* taking the queue lock: any task finishing
  // between the read and the lock only makes the derived inFlight count
  // larger, never negative (submitted/queueDepth move together under the
  // lock, so submitted - completed - queueDepth >= running >= 0).
  s.completed = completed_.load(std::memory_order_relaxed);
  s.waitSeconds = static_cast<double>(waitNanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.runSeconds = static_cast<double>(runNanos_.load(std::memory_order_relaxed)) * 1e-9;
  {
    MutexLock lock(mutex_);
    s.submitted = submitted_;
    s.queueDepth = tasks_.size();
    s.maxQueueDepth = maxQueueDepth_;
  }
  s.inFlight = s.submitted - s.completed - s.queueDepth;
  return s;
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t grain = (n + chunks - 1) / chunks;
  // First-exception capture, annotated so TSA proves the claim loops only
  // touch `error` under the lock (and the lock-order detector sees it as
  // the leaf it is — fn's own locks are released by unwinding before the
  // catch block runs).
  struct ErrState {
    AnnotatedMutex mutex{"pool.parallel_for_err", lock_order::rank::kPoolError};
    std::exception_ptr error ISOP_GUARDED_BY(mutex);
  } err;
  auto claimLoop = [&] {
    for (;;) {
      std::size_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(err.mutex);
        if (!err.error) err.error = std::current_exception();
        return;
      }
    }
  };
  // The caller runs the same claim loop as the workers: even if every worker
  // is busy (e.g. parallelFor called from inside a pool task), the calling
  // thread alone drains the range, so nested invocations cannot deadlock.
  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t c = 0; c + 1 < chunks; ++c) futs.push_back(submit(claimLoop));
  claimLoop();
  for (auto& f : futs) f.get();
  std::exception_ptr error;
  {
    MutexLock lock(err.mutex);
    error = err.error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::workerLoop() {
  using std::chrono::duration_cast;
  using std::chrono::nanoseconds;
  using std::chrono::steady_clock;
  for (;;) {
    Pending pending;
    {
      CvLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      pending = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto started = steady_clock::now();
    pending.task();
    const auto finished = steady_clock::now();
    waitNanos_.fetch_add(
        static_cast<std::uint64_t>(
            duration_cast<nanoseconds>(started - pending.enqueued).count()),
        std::memory_order_relaxed);
    runNanos_.fetch_add(static_cast<std::uint64_t>(
                            duration_cast<nanoseconds>(finished - started).count()),
                        std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace isop
