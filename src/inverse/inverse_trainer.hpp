// InverseTrainer: trains the spec→design net against the *frozen* forward
// surrogate (Withöft et al.).
//
// Self-supervised setup — no labeled (spec, design) pairs exist, so the
// trainer manufactures them from the feasible region:
//
//   1. sample N designs x_i uniformly from the parameter space;
//   2. label each with the frozen surrogate's prediction y_i = M̂(x_i) —
//      every target spec is *achievable* by construction;
//   3. train the inverse net F so that M̂(decode(F(y))) ≈ y, backpropagating
//      the spec-match error through the surrogate via
//      EvalEngine::gradientBatch (d metric / d design), the affine decode
//      (unit → raw span), and the net.
//
// Composite loss per spec row i (scaled space, s_k = spec-scaler stddev):
//
//   L_i = Σ_k ((m_k(x̂_i) − y_ik) / s_k)²  +  λ Σ_j pen(u_ij)
//
// where x̂_i = decode(clamp(u_i)) and pen pushes unit coordinates back into
// [0,1] (quadratic outside the box, zero inside) — the constraint/bounds
// penalty that keeps decoded designs on BinaryCodec-encodable grid ranges.
// Coordinates clamped at the box edge get zero spec-match gradient (the
// decode is flat there); only the bounds penalty acts, exactly mirroring
// the clamp used at inference.
//
// Determinism: one Rng seeded from config.seed drives He init, design
// sampling and batch shuffling on the training thread; all parallelism is
// inside EvalEngine, whose chunking depends only on row count — so a fixed
// seed gives bitwise-identical weights at any thread count (pinned by
// tests/inverse/test_inverse_model.cpp).
#pragma once

#include <cstdint>
#include <memory>

#include "core/eval/eval_engine.hpp"
#include "inverse/inverse_model.hpp"

namespace isop::inverse {

struct InverseTrainConfig {
  /// Designs sampled from the space to manufacture target specs.
  std::size_t samples = 512;
  std::size_t epochs = 24;
  std::size_t batchSize = 128;
  double learningRate = 3e-3;
  double weightDecay = 0.0;
  /// Multiplicative LR decay applied at the end of each epoch.
  double lrDecay = 0.97;
  /// Weight λ of the out-of-box penalty on unit coordinates.
  double boundsPenalty = 0.1;
  std::uint64_t seed = 1;
  InverseModelConfig model{};
};

struct InverseTrainReport {
  double finalTrainLoss = 0.0;
  std::size_t steps = 0;
  double trainSeconds = 0.0;
};

/// Trains an inverse model for `space` against the engine's frozen forward
/// surrogate (requires engine.model().hasInputGradient()). The returned
/// model has its compiled plan built and its spec scaler fitted. `report`
/// may be null.
std::unique_ptr<InverseModel> trainInverseModel(const core::EvalEngine& engine,
                                                const em::ParameterSpace& space,
                                                const InverseTrainConfig& config,
                                                InverseTrainReport* report = nullptr);

}  // namespace isop::inverse
