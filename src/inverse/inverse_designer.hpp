// InverseDesigner: target spec → ranked candidate designs in one batched
// forward pass of the trained inverse net.
//
// The solve path is the serve tier's microsecond answer: build a small batch
// of spec rows (the exact target plus jittered neighbors so the net's local
// spec→design map is explored, not just point-sampled), run them through the
// compiled inverse plan, snap the decoded designs onto the grid, score every
// distinct candidate against the forward surrogate's predictions with the
// task's objective, and rank feasible-first / ascending g — the same order
// TrialRunner reports its roll-out candidates in.
//
// An optional refine hop hands the snapped candidates to the existing
// AdamRefiner local stage (gradients through EvalEngine::gradientBatch, the
// idiom of core::SurrogateObjective::evaluateWithGradientBatch) — trading
// ~refineEpochs surrogate gradient batches for better constraint residuals
// when the amortized answer alone is not sharp enough. The full ISOP+
// pipeline remains the slow/accurate fallback for specs outside the trained
// region (see docs/inverse_design.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/eval/eval_engine.hpp"
#include "core/tasks.hpp"
#include "inverse/inverse_model.hpp"

namespace isop::inverse {

/// The designer's question: hit z (within the task's impedance band) while
/// steering loss / crosstalk toward l / next.
struct TargetSpec {
  double z = 0.0;
  double l = 0.0;
  double next = 0.0;
};

struct InverseCandidate {
  em::StackupParams params{};
  em::PerformanceMetrics predicted{};  ///< forward-surrogate metrics
  double g = 0.0;                      ///< hard-clip objective (Eq. 8)
  double fom = 0.0;
  bool feasible = false;
  bool refined = false;  ///< went through the AdamRefiner hop
};

struct InverseSolveConfig {
  /// Spec rows in the batched forward pass; also the ranked-list cap.
  std::size_t candidates = 3;
  /// 0 = amortized answer only; > 0 runs the AdamRefiner local stage.
  std::size_t refineEpochs = 0;
  /// Seeds the spec-jitter stream (row 0 is always the exact target).
  std::uint64_t seed = 1;
};

struct InverseResult {
  std::vector<InverseCandidate> ranked;  ///< feasible-first, ascending g
  double solveSeconds = 0.0;
  std::string planSummary;
};

/// Maps `target` to ranked candidate designs for `task`. Thread-safe for a
/// shared immutable model (serve calls it from many scheduler workers).
InverseResult solveInverse(const InverseModel& model,
                           const core::EvalEngine& engine,
                           const core::Task& task, const TargetSpec& target,
                           const InverseSolveConfig& config);

}  // namespace isop::inverse
