#include "inverse/inverse_model.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "ml/nn/activation.hpp"
#include "ml/nn/dense.hpp"

namespace isop::inverse {

namespace {

// Serialization header guards: magic pins the format, the limits below bound
// untrusted header fields before any allocation.
constexpr std::uint32_t kModelMagic = 0x49564e4du;  // "IVNM"
constexpr std::uint64_t kMaxHiddenLayers = 64;
constexpr std::uint64_t kMaxHiddenWidth = 1u << 16;

template <typename T>
void writePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool readPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  return static_cast<bool>(in);
}

void buildNet(ml::nn::Sequential& net, const InverseModelConfig& config,
              std::size_t dim, Rng& rng) {
  std::size_t prev = em::kNumMetrics;
  for (const std::size_t width : config.hidden) {
    ISOP_REQUIRE(width > 0, "inverse hidden width must be positive");
    net.add(std::make_unique<ml::nn::Dense>(prev, width, rng));
    net.add(std::make_unique<ml::nn::LeakyRelu>(width, config.leakySlope));
    prev = width;
  }
  net.add(std::make_unique<ml::nn::Dense>(prev, dim, rng));
}

}  // namespace

InverseModel::InverseModel(em::ParameterSpace space,
                           const InverseModelConfig& config, Rng& rng)
    : space_(std::move(space)), config_(config) {
  ISOP_REQUIRE(space_.dim() == em::kNumParams,
               "inverse model requires the canonical 15-dim design space");
  buildNet(net_, config_, space_.dim(), rng);
}

void InverseModel::compilePlan() {
  if (plan_) return;
  ISOP_REQUIRE(specScaler_.fitted(),
               "compilePlan requires a fitted spec scaler");
  ml::nn::PlanOptions options;
  options.inputMean.resize(em::kNumMetrics);
  options.inputStd.resize(em::kNumMetrics);
  for (std::size_t k = 0; k < em::kNumMetrics; ++k) {
    options.inputMean[k] = specScaler_.mean(k);
    options.inputStd[k] = specScaler_.stddev(k);
  }
  plan_ = ml::nn::CompiledPlan::compile(net_, std::move(options));
}

std::string InverseModel::planSummary() const {
  return plan_ ? plan_->summary() : "per-row";
}

void InverseModel::forwardSpecs(const Matrix& specs, Matrix& unit) const {
  ISOP_REQUIRE(specs.cols() == em::kNumMetrics,
               "spec rows must be (z, l, next)");
  if (plan_) {
    plan_->forwardBatch(specs, unit);
    return;
  }
  Matrix scaled = specs;
  specScaler_.transformInPlace(scaled);
  net_.infer(scaled, unit);
}

em::StackupParams InverseModel::decodeRow(std::span<const double> unit,
                                          bool snapToGrid) const {
  ISOP_REQUIRE(unit.size() == space_.dim(), "unit row dimension mismatch");
  em::StackupParams x;
  for (std::size_t j = 0; j < space_.dim(); ++j) {
    const double u = std::clamp(unit[j], 0.0, 1.0);
    const em::ParameterRange& r = space_.range(j);
    x.values[j] = r.lo + u * (r.hi - r.lo);
    if (snapToGrid) x.values[j] = r.snap(x.values[j]);
  }
  return x;
}

void InverseModel::save(std::ostream& out) const {
  writePod(out, kModelMagic);
  writePod(out, static_cast<std::uint64_t>(config_.hidden.size()));
  for (const std::size_t width : config_.hidden) {
    writePod(out, static_cast<std::uint64_t>(width));
  }
  writePod(out, config_.leakySlope);
  specScaler_.save(out);
  writePod(out, static_cast<std::uint64_t>(net_.parameterCount()));
  net_.saveParams(out);
}

std::unique_ptr<InverseModel> InverseModel::load(std::istream& in,
                                                 const em::ParameterSpace& space,
                                                 std::string* error) {
  const auto fail = [&](const char* why) -> std::unique_ptr<InverseModel> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  std::uint32_t magic = 0;
  if (!readPod(in, &magic) || magic != kModelMagic) {
    return fail("bad inverse-model magic");
  }
  std::uint64_t hiddenCount = 0;
  if (!readPod(in, &hiddenCount) || hiddenCount > kMaxHiddenLayers) {
    return fail("implausible hidden layer count");
  }
  InverseModelConfig config;
  config.hidden.clear();
  for (std::uint64_t i = 0; i < hiddenCount; ++i) {
    std::uint64_t width = 0;
    if (!readPod(in, &width) || width == 0 || width > kMaxHiddenWidth) {
      return fail("implausible hidden width");
    }
    config.hidden.push_back(static_cast<std::size_t>(width));
  }
  if (!readPod(in, &config.leakySlope)) return fail("truncated header");

  // He init is immediately overwritten by loadParams; the seed is arbitrary.
  Rng rng(0);
  auto model = std::make_unique<InverseModel>(space, config, rng);
  model->specScaler_.load(in);
  if (!in || model->specScaler_.dim() != em::kNumMetrics) {
    return fail("bad spec scaler");
  }
  std::uint64_t paramCount = 0;
  if (!readPod(in, &paramCount) ||
      paramCount != model->net_.parameterCount()) {
    return fail("parameter count mismatch");
  }
  // Sequential::loadParams treats truncation as a contract violation (its
  // callers sit behind SessionStore's checksummed envelope), so pre-verify
  // the remaining byte count against the rebuilt topology before handing the
  // stream over: per layer, a u64-framed params blob and a u64-framed state
  // blob.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < model->net_.layerCount(); ++i) {
    const ml::nn::Layer& layer = model->net_.layer(i);
    expected += 2 * sizeof(std::uint64_t) +
                (layer.params().size() + layer.state().size()) * sizeof(double);
  }
  std::string blob(expected, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(expected));
  if (in.gcount() != static_cast<std::streamsize>(expected)) {
    return fail("truncated parameter stream");
  }
  try {
    std::istringstream params(blob, std::ios::binary);
    model->net_.loadParams(params);
  } catch (const std::exception&) {
    return fail("malformed parameter stream");
  }
  model->compilePlan();
  return model;
}

}  // namespace isop::inverse
