#include "inverse/inverse_designer.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "hpo/adam_refiner.hpp"
#include "obs/trace.hpp"

namespace isop::inverse {

namespace {

/// The impedance tolerance of the task (the jitter half-width for spec row
/// variants); tasks always constrain Z, but fall back to 1 ohm defensively.
double impedanceTolerance(const core::Task& task) {
  for (const auto& oc : task.spec.outputConstraints) {
    if (oc.metric == em::Metric::Z) return oc.tolerance;
  }
  return 1.0;
}

bool sameDesign(const em::StackupParams& a, const em::StackupParams& b) {
  return a.values == b.values;
}

/// Appends `x` unless an identical design is already present (snapping many
/// jittered specs onto a coarse grid collapses neighbors constantly).
void pushUnique(std::vector<em::StackupParams>& xs, const em::StackupParams& x) {
  for (const auto& seen : xs) {
    if (sameDesign(seen, x)) return;
  }
  xs.push_back(x);
}

/// Scores designs with the forward surrogate and the task objective. The
/// engine memoizes, so re-scoring a design another spec row already produced
/// is a cache hit, not a second model pass.
void scoreDesigns(const core::EvalEngine& engine, const core::Objective& obj,
                  std::span<const em::StackupParams> xs, bool refined,
                  std::vector<InverseCandidate>& out) {
  std::vector<em::PerformanceMetrics> metrics;
  engine.predictMetrics(xs, metrics);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    InverseCandidate c;
    c.params = xs[i];
    c.predicted = metrics[i];
    c.g = obj.gValue(metrics[i], xs[i]);
    c.fom = obj.fomValue(metrics[i]);
    c.feasible = obj.feasible(metrics[i], xs[i]);
    c.refined = refined;
    out.push_back(c);
  }
}

/// The batched smooth-objective-with-gradient the AdamRefiner consumes —
/// the same one-gradientBatch-per-needed-metric shape as
/// core::SurrogateObjective::evaluateWithGradientBatch.
hpo::AdamRefiner::BatchObjectiveWithGrad refineObjective(
    const core::EvalEngine& engine, const core::Objective& obj) {
  return [&engine, &obj](std::span<const em::StackupParams> xs,
                         std::span<double> values, Matrix& grads) {
    const std::size_t n = xs.size();
    std::vector<em::PerformanceMetrics> metrics;
    engine.predictMetrics(xs, metrics);
    std::array<bool, em::kNumMetrics> needed{};
    for (const auto& term : obj.spec().fom) {
      needed[static_cast<std::size_t>(term.metric)] = true;
    }
    const auto& ocs = obj.spec().outputConstraints;
    for (std::size_t j = 0; j < ocs.size(); ++j) {
      const std::size_t k = static_cast<std::size_t>(ocs[j].metric);
      if (needed[k]) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (obj.ocPenaltySmoothDerivative(j, metrics[i]) != 0.0) {
          needed[k] = true;
          break;
        }
      }
    }
    std::array<Matrix, em::kNumMetrics> metricGrads;
    for (std::size_t k = 0; k < em::kNumMetrics; ++k) {
      if (needed[k]) engine.gradientBatch(xs, k, metricGrads[k]);
    }
    grads.resize(n, em::kNumParams);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = obj.gSmoothWithGradient(
          metrics[i], xs[i],
          [&](em::Metric metric, std::span<double> mg) {
            const auto row = metricGrads[static_cast<std::size_t>(metric)].row(i);
            std::copy(row.begin(), row.end(), mg.begin());
          },
          grads.row(i));
    }
  };
}

}  // namespace

InverseResult solveInverse(const InverseModel& model,
                           const core::EvalEngine& engine,
                           const core::Task& task, const TargetSpec& target,
                           const InverseSolveConfig& config) {
  const Timer timer;
  obs::Span span("inverse.solve");
  const std::size_t rows = std::max<std::size_t>(1, config.candidates);

  // Spec batch: the exact target plus jittered neighbors. Jitter stays
  // inside the task's impedance band for Z and within a fraction of the
  // training spec spread for L / NEXT, so every row is a plausible ask.
  Rng rng(config.seed);
  const double tolZ = impedanceTolerance(task);
  Matrix specs(rows, em::kNumMetrics);
  for (std::size_t i = 0; i < rows; ++i) {
    double z = target.z, l = target.l, next = target.next;
    if (i > 0) {
      z += 0.5 * tolZ * rng.uniform(-1.0, 1.0);
      l += 0.25 * model.specScaler().stddev(1) * rng.uniform(-1.0, 1.0);
      next += 0.25 * model.specScaler().stddev(2) * rng.uniform(-1.0, 1.0);
    }
    specs(i, 0) = z;
    specs(i, 1) = l;
    specs(i, 2) = next;
  }

  // One batched pass through the compiled inverse plan, snap onto the grid,
  // and collapse duplicates.
  Matrix unit;
  model.forwardSpecs(specs, unit);
  std::vector<em::StackupParams> candidates;
  candidates.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    pushUnique(candidates, model.decodeRow(unit.row(i), /*snapToGrid=*/true));
  }

  const core::Objective obj(task.spec);
  InverseResult result;
  scoreDesigns(engine, obj, candidates, /*refined=*/false, result.ranked);

  if (config.refineEpochs > 0) {
    hpo::RefineConfig refineConfig;
    refineConfig.epochs = config.refineEpochs;
    const hpo::AdamRefiner refiner(refineConfig);
    const hpo::RefineResult refined =
        refiner.refine(model.space(), candidates, refineObjective(engine, obj));
    std::vector<em::StackupParams> snapped;
    snapped.reserve(refined.refined.size());
    for (const auto& x : refined.refined) {
      const em::StackupParams onGrid = model.space().snap(x);
      bool fresh = true;
      for (const auto& seen : candidates) {
        if (sameDesign(seen, onGrid)) {
          fresh = false;
          break;
        }
      }
      if (fresh) pushUnique(snapped, onGrid);
    }
    scoreDesigns(engine, obj, snapped, /*refined=*/true, result.ranked);
  }

  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const InverseCandidate& a, const InverseCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.g < b.g;
                   });
  if (result.ranked.size() > rows) result.ranked.resize(rows);
  result.planSummary = model.planSummary();
  result.solveSeconds = timer.seconds();
  return result;
}

}  // namespace isop::inverse
