#include "inverse/inverse_trainer.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "ml/nn/adam.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace isop::inverse {

std::unique_ptr<InverseModel> trainInverseModel(const core::EvalEngine& engine,
                                                const em::ParameterSpace& space,
                                                const InverseTrainConfig& config,
                                                InverseTrainReport* report) {
  ISOP_REQUIRE(engine.model().hasInputGradient(),
               "inverse training needs a differentiable forward surrogate");
  ISOP_REQUIRE(config.samples > 0, "inverse training needs samples");
  const Timer timer;
  obs::Span span("inverse.train");

  Rng rng(config.seed);
  auto model = std::make_unique<InverseModel>(space, config.model, rng);

  // Manufacture achievable target specs: sample designs, label them with the
  // frozen surrogate. predictMetrics dedups/memoizes inside the engine.
  std::vector<em::StackupParams> sampled(config.samples);
  for (auto& x : sampled) x = space.sample(rng);
  std::vector<em::PerformanceMetrics> labels;
  engine.predictMetrics(sampled, labels);
  Matrix specs(config.samples, em::kNumMetrics);
  for (std::size_t i = 0; i < config.samples; ++i) {
    const auto row = labels[i].asArray();
    std::copy(row.begin(), row.end(), specs.row(i).begin());
  }
  model->specScaler().fit(specs);
  Matrix scaledSpecs = specs;
  model->specScaler().transformInPlace(scaledSpecs);

  ml::nn::Sequential& net = model->net();
  ml::nn::Adam adam({.learningRate = config.learningRate,
                     .weightDecay = config.weightDecay});
  std::vector<std::span<double>> paramBlocks, gradBlocks;
  net.forEachParamBlock([&](std::span<double> p, std::span<double> g) {
    adam.registerBlock(p);
    paramBlocks.push_back(p);
    gradBlocks.push_back(g);
  });

  const std::size_t n = config.samples;
  const std::size_t dim = space.dim();
  const std::size_t batch = std::max<std::size_t>(1, std::min(config.batchSize, n));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  InverseTrainReport localReport;
  Matrix bx, unit, gradOut, gradIn;
  std::array<Matrix, em::kNumMetrics> metricGrads;
  std::vector<em::StackupParams> decoded;
  std::vector<em::PerformanceMetrics> predicted;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epochLoss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < n; begin += batch) {
      const std::size_t end = std::min(begin + batch, n);
      const std::size_t bn = end - begin;
      bx.resize(bn, em::kNumMetrics);
      for (std::size_t r = 0; r < bn; ++r) {
        const auto src = scaledSpecs.row(order[begin + r]);
        std::copy(src.begin(), src.end(), bx.row(r).begin());
      }

      net.zeroGrads();
      net.forwardTrain(bx, unit, rng);

      // Decode the whole batch (clamped, unsnapped — snapping is an
      // inference-time projection; training stays differentiable) and run
      // it through the frozen surrogate: one forward batch, one backward
      // batch per metric.
      decoded.resize(bn);
      for (std::size_t r = 0; r < bn; ++r) {
        decoded[r] = model->decodeRow(unit.row(r), /*snapToGrid=*/false);
      }
      engine.predictMetrics(decoded, predicted);
      for (std::size_t k = 0; k < em::kNumMetrics; ++k) {
        engine.gradientBatch(decoded, k, metricGrads[k]);
      }

      gradOut.resize(bn, dim);
      gradOut.fill(0.0);
      double loss = 0.0;
      const double invCount = 1.0 / static_cast<double>(bn);
      for (std::size_t r = 0; r < bn; ++r) {
        const std::size_t src = order[begin + r];
        const auto target = specs.row(src);
        const auto m = predicted[r].asArray();
        // Spec-match term, chained through the surrogate and the decode.
        for (std::size_t k = 0; k < em::kNumMetrics; ++k) {
          const double s = model->specScaler().stddev(k);
          const double d = (m[k] - target[k]) / s;
          loss += d * d;
          const double dLdm = 2.0 * d / s * invCount;
          const auto mg = metricGrads[k].row(r);
          for (std::size_t j = 0; j < dim; ++j) {
            const double u = unit(r, j);
            if (u <= 0.0 || u >= 1.0) continue;  // clamp is flat outside
            const em::ParameterRange& range = space.range(j);
            gradOut(r, j) += dLdm * mg[j] * (range.hi - range.lo);
          }
        }
        // Bounds penalty: quadratic outside the unit box.
        for (std::size_t j = 0; j < dim; ++j) {
          const double u = unit(r, j);
          const double over = u < 0.0 ? u : (u > 1.0 ? u - 1.0 : 0.0);
          loss += config.boundsPenalty * over * over;
          gradOut(r, j) += 2.0 * config.boundsPenalty * over * invCount;
        }
      }
      loss *= invCount;

      net.backward(gradOut, gradIn);
      adam.step(paramBlocks, gradBlocks);
      epochLoss += loss;
      ++batches;
      ++localReport.steps;
    }
    localReport.finalTrainLoss = epochLoss / static_cast<double>(batches);
    adam.setLearningRate(adam.config().learningRate * config.lrDecay);
  }

  model->compilePlan();
  localReport.trainSeconds = timer.seconds();
  if (report != nullptr) *report = localReport;
  return model;
}

}  // namespace isop::inverse
