// InverseModel: the amortized spec→design network.
//
// The forward surrogates answer "what does this stack-up do?"; the inverse
// model answers the designer's actual question — "which stack-up hits this
// (Z, L, NEXT) target?" — in one network evaluation instead of a full ISOP+
// pipeline run (Withöft et al., amortized neural optimization).
//
// Architecture: a small MLP from the 3-dim spec to the 15-dim design space.
// Specs are standardized by a StandardScaler fitted on the training specs;
// outputs are *unit coordinates* u ∈ [0,1]^15 mapped affinely onto each
// ParameterRange — the same normalized domain AdamRefiner optimizes in, so
// the net never has to learn the ~10-orders-of-magnitude raw parameter
// scales. Decoding clamps u into the box and (at inference) snaps onto the
// discrete grid, which makes every emitted design BinaryCodec-encodable and
// directly simulatable.
//
// Inference runs through a CompiledPlan with the spec scaler folded into the
// pack stage (PlanOptions::inputMean/inputStd), so mapping a batch of raw
// target specs to unit coordinates is one fused pass; the interpreted
// scale-then-infer path stays available and is bitwise identical (the
// identity suite in tests/inverse pins it).
//
// Serialization stores the topology header (hidden widths, leaky slope),
// the fitted scaler and the raw parameter blobs; load() rebuilds the same
// topology for a caller-supplied ParameterSpace. The space itself is *not*
// serialized — serve keys inverse models by session (surrogate, space,
// layer), so the space is always known at load time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "em/parameter_space.hpp"
#include "em/stackup.hpp"
#include "ml/nn/plan.hpp"
#include "ml/nn/sequential.hpp"
#include "ml/scaler.hpp"

namespace isop::inverse {

/// Topology knobs shared by the trainer and the (de)serializer.
struct InverseModelConfig {
  std::vector<std::size_t> hidden = {64, 64};
  double leakySlope = 0.01;
};

class InverseModel {
 public:
  /// Builds an untrained net (He init consumes `rng`) for designs in `space`.
  InverseModel(em::ParameterSpace space, const InverseModelConfig& config,
               Rng& rng);

  const em::ParameterSpace& space() const { return space_; }
  const InverseModelConfig& modelConfig() const { return config_; }

  ml::nn::Sequential& net() { return net_; }
  const ml::nn::Sequential& net() const { return net_; }
  ml::StandardScaler& specScaler() { return specScaler_; }
  const ml::StandardScaler& specScaler() const { return specScaler_; }

  std::size_t parameterCount() const { return net_.parameterCount(); }

  /// Compiles the fused inference plan with the fitted spec scaler folded
  /// into the pack stage. Call once after training or load (requires a
  /// fitted scaler); idempotent.
  void compilePlan();
  bool hasPlan() const { return plan_ != nullptr; }
  /// "plan(ops=.. fused=..)" or "per-row" before compilePlan().
  std::string planSummary() const;

  /// Raw spec rows (z, l, next) → unit-coordinate rows. Uses the compiled
  /// plan when present, else scales through the scaler and runs the
  /// interpreted net — bitwise identical by the plan contract. Thread-safe.
  void forwardSpecs(const Matrix& specs, Matrix& unit) const;

  /// One unit row → a design: clamp u into [0,1], map onto [lo, hi] per
  /// parameter, and optionally snap onto the discrete grid (Eq. 6). Snapped
  /// designs satisfy space().contains() and are BinaryCodec-encodable.
  em::StackupParams decodeRow(std::span<const double> unit,
                              bool snapToGrid) const;

  /// Topology header + scaler + raw parameter blobs.
  void save(std::ostream& out) const;

  /// Rebuilds the serialized topology over `space` and loads the weights.
  /// Returns nullptr (with `*error` set when non-null) on a malformed or
  /// truncated stream.
  static std::unique_ptr<InverseModel> load(std::istream& in,
                                            const em::ParameterSpace& space,
                                            std::string* error = nullptr);

 private:
  em::ParameterSpace space_;
  InverseModelConfig config_;
  ml::nn::Sequential net_;
  ml::StandardScaler specScaler_;
  std::unique_ptr<const ml::nn::CompiledPlan> plan_;
};

}  // namespace isop::inverse
