// Metrics registry: named counters, gauges and latency histograms shared by
// every layer of the ISOP+ pipeline (EM simulator call counts, surrogate
// query counts, per-stage span durations, thread-pool load).
//
// Design constraints, in order:
//   * near-zero cost when observability is off — hot call sites guard with
//     one relaxed atomic load (obs::metricsEnabled()) and skip everything;
//   * safe under concurrent updates — counters/gauges are lock-free atomics,
//     histograms use atomic log-scale buckets (Harmonica evaluates batches
//     on the global thread pool, so every instrument may be hit from many
//     threads at once);
//   * stable handles — instruments are created once and never move, so call
//     sites can cache a reference (Registry never deletes an instrument).
//
// Exporters: a JSON document (isop_cli --metrics-out) and a flat CSV
// (name,kind,value columns) for spreadsheet-side bench analysis.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace isop::obs {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, weight values, ...).
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double delta) noexcept {
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(expected, pack(unpack(expected) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() noexcept { set(0.0); }

 private:
  static std::uint64_t pack(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
  static double unpack(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }
  std::atomic<std::uint64_t> bits_{0};  // 0 == +0.0
};

/// Concurrent histogram over positive values (durations in seconds, sizes).
///
/// Values land in logarithmic buckets — kBucketsPerDecade per power of ten
/// across [1e-9, 1e5) — giving ~15% relative quantile error with a few KB of
/// fixed storage and wait-free recording. Percentiles interpolate inside the
/// winning bucket; min/max/sum/count are tracked exactly.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kMinExponent = -9;  ///< 1e-9 lower edge
  static constexpr int kMaxExponent = 5;   ///< 1e5 upper edge
  static constexpr int kBuckets =
      (kMaxExponent - kMinExponent) * kBucketsPerDecade + 2;  // +under/overflow

  void record(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept;
  double min() const noexcept;  ///< +inf when empty
  double max() const noexcept;  ///< -inf when empty
  double mean() const noexcept;

  /// Quantile in [0, 1]; returns 0 when empty. p=0.5 is the median.
  double percentile(double p) const noexcept;

  void reset() noexcept;

 private:
  static int bucketIndex(double v) noexcept;
  static double bucketLowerEdge(int index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_{};
  // CAS-updated running extrema (packed doubles), valid when count() > 0.
  std::atomic<std::uint64_t> min_{
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity())};
  std::atomic<std::uint64_t> max_{
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity())};
};

/// Snapshot of every instrument as flat name -> value pairs. Histograms
/// expand to name.count / name.p50 / name.p90 / name.p95 / name.p99 /
/// name.mean.
using MetricsSnapshot = std::map<std::string, double>;

/// One flat-snapshot entry annotated with monotonicity: counter values and
/// histogram .count expansions only ever grow, so a time-series sampler can
/// delta-encode them (per-interval rates); everything else is an
/// instantaneous reading and is reported absolute.
struct FlatSample {
  double value = 0.0;
  bool monotone = false;
};

class Registry {
 public:
  /// Returns the instrument with this name, creating it on first use. The
  /// returned reference stays valid for the registry's lifetime — cache it
  /// at hot call sites. Requesting an existing name as a different kind
  /// throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Prometheus-style label suffix: labeled("trial.runs", "method", "SA-1")
  /// == "trial.runs{method=SA-1}".
  static std::string labeled(std::string_view name, std::string_view key,
                             std::string_view value);

  MetricsSnapshot snapshot() const;

  /// snapshot() plus the monotone flag per key (see FlatSample) — the input
  /// MetricsSampler delta-encodes from.
  std::map<std::string, FlatSample> flatSample() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
  /// max, mean, p50, p90, p95, p99}}}
  json::Value toJson() const;

  /// "name,kind,value" rows (histograms expanded like snapshot()).
  std::string toCsv() const;

  /// Zeroes every instrument in place; handles stay valid.
  void reset();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Instrument& get(std::string_view name, Kind kind) ISOP_EXCLUDES(mutex_);

  mutable AnnotatedMutex mutex_{"obs.registry", lock_order::rank::kObsRegistry};
  // The map is guarded; the pointed-to instruments are lock-free atomics and
  // are deliberately updated outside the lock (never deleted, handles stable).
  std::map<std::string, Instrument, std::less<>> instruments_
      ISOP_GUARDED_BY(mutex_);
};

}  // namespace isop::obs
