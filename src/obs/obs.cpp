#include "obs/obs.hpp"

#include <cstdio>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace isop::obs {

namespace detail {
std::atomic<bool> gMetricsEnabled{false};
}  // namespace detail

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: usable in atexit paths
  return *instance;
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();
  return *instance;
}

ConvergenceRecorder& convergence() {
  static ConvergenceRecorder* instance = new ConvergenceRecorder();
  return *instance;
}

void setMetricsEnabled(bool on) noexcept {
  detail::gMetricsEnabled.store(on, std::memory_order_relaxed);
}

void captureThreadPoolStats() {
  const ThreadPool::PoolStats stats = ThreadPool::global().stats();
  Registry& reg = registry();
  reg.gauge("threadpool.threads").set(static_cast<double>(ThreadPool::global().threadCount()));
  reg.gauge("threadpool.tasks.submitted").set(static_cast<double>(stats.submitted));
  reg.gauge("threadpool.tasks.completed").set(static_cast<double>(stats.completed));
  reg.gauge("threadpool.queue.depth").set(static_cast<double>(stats.queueDepth));
  reg.gauge("threadpool.queue.max_depth").set(static_cast<double>(stats.maxQueueDepth));
  reg.gauge("threadpool.inflight").set(static_cast<double>(stats.inFlight));
  reg.gauge("threadpool.task.wait_seconds.total").set(stats.waitSeconds);
  reg.gauge("threadpool.task.run_seconds.total").set(stats.runSeconds);
}

ObsConfig ObsConfig::fromOutputs(std::string metricsOut, std::string traceOut,
                                 std::string convergenceOut) {
  ObsConfig cfg;
  cfg.metrics = !metricsOut.empty();
  cfg.trace = !traceOut.empty();
  cfg.convergence = !convergenceOut.empty();
  cfg.metricsOut = std::move(metricsOut);
  cfg.traceOut = std::move(traceOut);
  cfg.convergenceOut = std::move(convergenceOut);
  return cfg;
}

Session::Session(ObsConfig config) : config_(std::move(config)) {
  if (!config_.anyEnabled()) return;
  active_ = true;
  prevMetrics_ = metricsEnabled();
  prevTrace_ = tracer().enabled();
  prevConvergence_ = convergence().enabled();
  if (config_.metrics) setMetricsEnabled(true);
  if (config_.trace) tracer().setEnabled(true);
  if (config_.convergence) {
    if (!config_.convergenceOut.empty()) {
      if (convergence().openFile(config_.convergenceOut)) {
        openedConvergenceFile_ = true;
      } else {
        log::warn("obs: cannot open convergence output '", config_.convergenceOut,
                  "'; recording to memory instead");
      }
    }
    convergence().setEnabled(true);
  }
}

Session::~Session() {
  if (!active_) return;
  flush();
  setMetricsEnabled(prevMetrics_);
  tracer().setEnabled(prevTrace_);
  convergence().setEnabled(prevConvergence_);
  if (openedConvergenceFile_) convergence().close();
}

void Session::flush() {
  if (!active_) return;
  if (config_.metrics) captureThreadPoolStats();
  auto writeText = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      log::warn("obs: cannot write '", path, "'");
      return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  };
  if (config_.metrics && !config_.metricsOut.empty()) {
    writeText(config_.metricsOut, registry().toJson().dump(2) + "\n");
  }
  if (config_.metrics && !config_.metricsCsvOut.empty()) {
    writeText(config_.metricsCsvOut, registry().toCsv());
  }
  if (config_.trace && !config_.traceOut.empty()) {
    if (!tracer().writeChromeTrace(config_.traceOut)) {
      log::warn("obs: cannot write trace '", config_.traceOut, "'");
    }
  }
}

}  // namespace isop::obs
