#include "obs/sampler.hpp"

#include <cmath>
#include <utility>

#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace isop::obs {

MetricsSampler::MetricsSampler(Registry& registry, MetricsSamplerConfig config)
    : registry_(&registry),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  if (!config_.path.empty()) {
    file_ = std::fopen(config_.path.c_str(), "w");
    if (!file_) {
      log::warn("obs: cannot open metrics series '", config_.path,
                "'; sampling to the ring buffer only");
    }
  }
}

MetricsSampler::~MetricsSampler() {
  stop();
  if (file_) std::fclose(file_);
}

void MetricsSampler::start() {
  {
    CvLock lock(threadMutex_);
    if (running_) return;
    running_ = true;
    stopRequested_ = false;
  }
  thread_ = std::thread([this] { tickLoop(); });
}

void MetricsSampler::stop() {
  {
    CvLock lock(threadMutex_);
    if (!running_) return;
    stopRequested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    CvLock lock(threadMutex_);
    running_ = false;
  }
  sampleOnce();  // final record so short-lived servers still leave a trail
  if (file_) std::fflush(file_);
}

bool MetricsSampler::running() const {
  CvLock lock(threadMutex_);
  return running_;
}

void MetricsSampler::tickLoop() {
  for (;;) {
    {
      CvLock lock(threadMutex_);
      const auto deadline = std::chrono::steady_clock::now() + config_.interval;
      while (!stopRequested_ && std::chrono::steady_clock::now() < deadline) {
        wake_.wait_until(lock, deadline);
      }
      if (stopRequested_) return;
    }
    sampleOnce();
    if (file_) std::fflush(file_);
  }
}

json::Value MetricsSampler::buildRecord() {
  json::Value counters = json::Value::object();
  json::Value values = json::Value::object();
  const std::map<std::string, FlatSample> sample = registry_->flatSample();
  for (const auto& [name, entry] : sample) {
    if (entry.monotone) {
      // Delta since the key's previous tick; a key's first appearance
      // reports its full value, so deltas always sum to the raw counter.
      const auto it = prevMonotone_.find(name);
      const double prev = it == prevMonotone_.end() ? 0.0 : it->second;
      const double delta = entry.value - prev;
      prevMonotone_[name] = entry.value;
      if (delta != 0.0) counters.set(name, json::Value::number(delta));
    } else {
      const auto it = prevValues_.find(name);
      const bool changed = it == prevValues_.end() || it->second != entry.value;
      prevValues_[name] = entry.value;
      if (changed && std::isfinite(entry.value)) {
        values.set(name, json::Value::number(entry.value));
      }
    }
  }
  json::Value record = json::Value::object();
  record.set("seq", json::Value::integer(static_cast<long long>(seq_)));
  record.set("uptime_seconds",
             json::Value::number(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - epoch_)
                                     .count()));
  record.set("counters", std::move(counters));
  record.set("values", std::move(values));
  ++seq_;
  return record;
}

void MetricsSampler::appendLine(const std::string& line) {
  if (file_) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
  ring_.push_back(line);
  while (ring_.size() > config_.ringCapacity) {
    ring_.pop_front();
    ++dropped_;
  }
}

json::Value MetricsSampler::sampleOnce() {
  if (config_.captureThreadPool) captureThreadPoolStats();
  MutexLock lock(sampleMutex_);
  json::Value record = buildRecord();
  appendLine(record.dump());
  return record;
}

std::vector<std::string> MetricsSampler::lines() const {
  MutexLock lock(sampleMutex_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

std::uint64_t MetricsSampler::ticks() const {
  MutexLock lock(sampleMutex_);
  return seq_;
}

std::uint64_t MetricsSampler::droppedLines() const {
  MutexLock lock(sampleMutex_);
  return dropped_;
}

}  // namespace isop::obs
