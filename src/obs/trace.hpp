// Low-overhead scoped-span tracer with Chrome trace_event export.
//
// Usage:
//   { obs::Span span("stage1.harmonica"); ...work... }   // global tracer
//
// When tracing is disabled (the default) a Span costs one relaxed atomic
// load in the constructor and a null check in the destructor — no clock
// reads, no allocation, no locking (the null-sink fast path). When enabled,
// each span records a steady-clock complete event ('X' phase) with
// microsecond start/duration and the recording thread's id, bounded by a
// fixed event cap so a runaway loop cannot exhaust memory.
//
// The exported JSON loads directly in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace isop::obs {

struct TraceEvent {
  std::string name;
  std::string tag;                ///< span context tag ("" = untagged)
  std::uint64_t startMicros = 0;  ///< since tracer epoch
  std::uint64_t durMicros = 0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  /// Default cap: 1M events (~64 MB worst case).
  explicit Tracer(std::size_t maxEvents = 1 << 20);

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Records one complete event, stamped with the calling thread's current
  /// span tag (see ScopedSpanTag); events recorded outside any tag scope are
  /// untagged.
  void record(std::string name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::duration duration);

  /// All events, or (with a non-empty `tagFilter`) only the events recorded
  /// under that exact span tag — the per-job view of a shared tracer.
  std::vector<TraceEvent> events(std::string_view tagFilter = {}) const;
  std::size_t eventCount() const;
  std::size_t droppedEvents() const;
  void clear();

  /// Chrome trace_event "JSON object format": {"traceEvents": [...],
  /// "displayTimeUnit": "ms"}. Tagged events carry args:{"job": tag}; a
  /// non-empty `tagFilter` exports only that tag's events.
  json::Value toChromeJson(std::string_view tagFilter = {}) const;

  /// Writes toChromeJson(tagFilter) to `path`; returns false on I/O failure.
  bool writeChromeTrace(const std::string& path,
                        std::string_view tagFilter = {}) const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t maxEvents_;
  mutable AnnotatedMutex mutex_{"obs.tracer", lock_order::rank::kObsTracer};
  std::vector<TraceEvent> events_ ISOP_GUARDED_BY(mutex_);
  std::size_t dropped_ ISOP_GUARDED_BY(mutex_) = 0;
};

/// Current thread's id folded to 32 bits (stable within a run).
std::uint32_t currentThreadId() noexcept;

namespace detail {
/// The calling thread's active span tag, or nullptr outside any
/// ScopedSpanTag scope. Read by Tracer::record when stamping events.
const std::string* currentSpanTag() noexcept;
}  // namespace detail

/// Thread-local span-context tag: while alive, every TraceEvent recorded by
/// this thread carries `tag` (the serve scheduler tags a worker with the job
/// id for the duration of that job, so one job's spans can be filtered out
/// of a tracer shared by concurrent jobs). Scopes nest — the innermost tag
/// wins and the previous one is restored on destruction. Same pattern as
/// ConvergenceRecorder::ScopedTap; costs nothing on the disabled-tracer path
/// (the tag is only read when an event is actually recorded).
class ScopedSpanTag {
 public:
  explicit ScopedSpanTag(std::string tag);
  ~ScopedSpanTag();

  ScopedSpanTag(const ScopedSpanTag&) = delete;
  ScopedSpanTag& operator=(const ScopedSpanTag&) = delete;

 private:
  std::string tag_;
  const std::string* prev_;
};

/// RAII scoped span against the global tracer (see obs.hpp). Null-sink fast
/// path: when tracing is off at construction the span holds no tracer and
/// both constructor and destructor are branch-only.
class Span {
 public:
  explicit Span(const char* name);
  Span(Tracer& tracer, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Seconds elapsed since construction (0 when the tracer was disabled).
  double seconds() const;

 private:
  Tracer* tracer_;  // nullptr == disabled at construction
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Span that additionally records its duration into the metrics registry
/// histogram "span.<name>.seconds" — the per-stage latency distributions the
/// bench tables and the metrics exporter report. Each sink (trace, metrics)
/// engages independently from its own enabled flag.
class StageSpan {
 public:
  explicit StageSpan(const char* name);
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Span span_;
  const char* name_;
  bool metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace isop::obs
