#include "obs/convergence.hpp"

namespace isop::obs {

namespace detail {
namespace {
// One tap slot per thread; ScopedTap saves/restores it so taps nest.
thread_local const std::function<void(const json::Value&)>* tTap = nullptr;
}  // namespace

const std::function<void(const json::Value&)>* currentConvergenceTap() noexcept {
  return tTap;
}
}  // namespace detail

ConvergenceRecorder::ScopedTap::ScopedTap(std::function<void(const json::Value&)> fn)
    : fn_(std::move(fn)), prev_(detail::tTap) {
  detail::tTap = &fn_;
}

ConvergenceRecorder::ScopedTap::~ScopedTap() { detail::tTap = prev_; }

namespace {

json::Value sizeValue(std::size_t v) {
  return json::Value::integer(static_cast<long long>(v));
}

std::optional<std::size_t> readSize(const json::Value& v, std::string_view key) {
  const json::Value* field = v.find(key);
  if (!field || field->kind() != json::Value::Kind::Integer) return std::nullopt;
  const long long raw = field->asInteger();
  if (raw < 0) return std::nullopt;
  return static_cast<std::size_t>(raw);
}

std::optional<double> readNumber(const json::Value& v, std::string_view key) {
  const json::Value* field = v.find(key);
  if (!field || !field->isNumeric()) return std::nullopt;
  return field->asNumber();
}

std::optional<bool> readBool(const json::Value& v, std::string_view key) {
  const json::Value* field = v.find(key);
  if (!field || field->kind() != json::Value::Kind::Bool) return std::nullopt;
  return field->asBool();
}

bool typeIs(const json::Value& v, std::string_view type) {
  const json::Value* field = v.find("type");
  return field && field->kind() == json::Value::Kind::String &&
         field->asString() == type;
}

}  // namespace

ConvergenceRecorder::~ConvergenceRecorder() { close(); }

bool ConvergenceRecorder::openFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  MutexLock lock(mutex_);
  if (file_) std::fclose(file_);  // lint-ok(L3): file_ is guarded state; swap must be atomic with the close
  file_ = f;
  return true;
}

void ConvergenceRecorder::useMemory() {
  MutexLock lock(mutex_);
  if (file_) {
    std::fclose(file_);  // lint-ok(L3): closing the guarded sink is the lock's job
    file_ = nullptr;
  }
}

void ConvergenceRecorder::record(const json::Value& record) {
  if (const auto* tap = detail::currentConvergenceTap()) {
    (*tap)(record);
    return;
  }
  if (!enabled()) return;
  const std::string line = record.dump();
  MutexLock lock(mutex_);
  if (file_) {
    std::fwrite(line.data(), 1, line.size(), file_);  // lint-ok(L3): serializing whole-line appends is this lock's purpose
    std::fputc('\n', file_);                          // lint-ok(L3): same serialized append
  } else {
    memory_.push_back(line);
  }
}

std::vector<std::string> ConvergenceRecorder::lines() const {
  MutexLock lock(mutex_);
  return memory_;
}

void ConvergenceRecorder::clear() {
  MutexLock lock(mutex_);
  memory_.clear();
}

void ConvergenceRecorder::close() {
  MutexLock lock(mutex_);
  if (file_) {
    std::fclose(file_);  // lint-ok(L3): closing the guarded sink is the lock's job
    file_ = nullptr;
  }
}

// ---- Typed records ---------------------------------------------------------

json::Value HarmonicaIterationRecord::toJson() const {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("harmonica_iteration"));
  v.set("iteration", sizeValue(iteration));
  v.set("best_ghat", json::Value::number(bestGhat));
  v.set("evaluations", sizeValue(evaluations));
  v.set("invalid_samples", sizeValue(invalidSamples));
  v.set("fixed_bits", sizeValue(fixedBits));
  v.set("free_bits", sizeValue(freeBits));
  return v;
}

std::optional<HarmonicaIterationRecord> HarmonicaIterationRecord::fromJson(
    const json::Value& v) {
  if (!typeIs(v, "harmonica_iteration")) return std::nullopt;
  HarmonicaIterationRecord r;
  const auto iteration = readSize(v, "iteration");
  const auto bestGhat = readNumber(v, "best_ghat");
  const auto evaluations = readSize(v, "evaluations");
  const auto invalid = readSize(v, "invalid_samples");
  const auto fixed = readSize(v, "fixed_bits");
  const auto free = readSize(v, "free_bits");
  if (!iteration || !bestGhat || !evaluations || !invalid || !fixed || !free) {
    return std::nullopt;
  }
  r.iteration = *iteration;
  r.bestGhat = *bestGhat;
  r.evaluations = *evaluations;
  r.invalidSamples = *invalid;
  r.fixedBits = *fixed;
  r.freeBits = *free;
  return r;
}

json::Value HyperbandRoundRecord::toJson() const {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("hyperband_round"));
  v.set("bracket", sizeValue(bracket));
  v.set("round", sizeValue(round));
  v.set("resource", sizeValue(resource));
  v.set("arms", sizeValue(arms));
  v.set("survivors", sizeValue(survivors));
  v.set("best_value", json::Value::number(bestValue));
  return v;
}

std::optional<HyperbandRoundRecord> HyperbandRoundRecord::fromJson(const json::Value& v) {
  if (!typeIs(v, "hyperband_round")) return std::nullopt;
  HyperbandRoundRecord r;
  const auto bracket = readSize(v, "bracket");
  const auto round = readSize(v, "round");
  const auto resource = readSize(v, "resource");
  const auto arms = readSize(v, "arms");
  const auto survivors = readSize(v, "survivors");
  const auto best = readNumber(v, "best_value");
  if (!bracket || !round || !resource || !arms || !survivors || !best) {
    return std::nullopt;
  }
  r.bracket = *bracket;
  r.round = *round;
  r.resource = *resource;
  r.arms = *arms;
  r.survivors = *survivors;
  r.bestValue = *best;
  return r;
}

json::Value AdamEpochRecord::toJson() const {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("adam_epoch"));
  v.set("epoch", sizeValue(epoch));
  v.set("seeds", sizeValue(seeds));
  v.set("best_value", json::Value::number(bestValue));
  v.set("mean_value", json::Value::number(meanValue));
  return v;
}

std::optional<AdamEpochRecord> AdamEpochRecord::fromJson(const json::Value& v) {
  if (!typeIs(v, "adam_epoch")) return std::nullopt;
  AdamEpochRecord r;
  const auto epoch = readSize(v, "epoch");
  const auto seeds = readSize(v, "seeds");
  const auto best = readNumber(v, "best_value");
  const auto mean = readNumber(v, "mean_value");
  if (!epoch || !seeds || !best || !mean) return std::nullopt;
  r.epoch = *epoch;
  r.seeds = *seeds;
  r.bestValue = *best;
  r.meanValue = *mean;
  return r;
}

json::Value AdaptiveWeightsRecord::toJson() const {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("adaptive_weights"));
  v.set("iteration", sizeValue(iteration));
  v.set("w_fom", json::Value::number(wFom));
  json::Value oc = json::Value::array();
  for (double w : wOc) oc.push(json::Value::number(w));
  v.set("w_oc", std::move(oc));
  json::Value ic = json::Value::array();
  for (double w : wIc) ic.push(json::Value::number(w));
  v.set("w_ic", std::move(ic));
  return v;
}

std::optional<AdaptiveWeightsRecord> AdaptiveWeightsRecord::fromJson(
    const json::Value& v) {
  if (!typeIs(v, "adaptive_weights")) return std::nullopt;
  AdaptiveWeightsRecord r;
  const auto iteration = readSize(v, "iteration");
  const auto wFom = readNumber(v, "w_fom");
  const json::Value* oc = v.find("w_oc");
  const json::Value* ic = v.find("w_ic");
  if (!iteration || !wFom || !oc || !oc->isArray() || !ic || !ic->isArray()) {
    return std::nullopt;
  }
  r.iteration = *iteration;
  r.wFom = *wFom;
  for (std::size_t i = 0; i < oc->size(); ++i) {
    if (!oc->at(i).isNumeric()) return std::nullopt;
    r.wOc.push_back(oc->at(i).asNumber());
  }
  for (std::size_t i = 0; i < ic->size(); ++i) {
    if (!ic->at(i).isNumeric()) return std::nullopt;
    r.wIc.push_back(ic->at(i).asNumber());
  }
  return r;
}

json::Value RolloutValidationRecord::toJson() const {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("rollout_validation"));
  v.set("round", sizeValue(round));
  v.set("g", json::Value::number(g));
  v.set("fom", json::Value::number(fom));
  v.set("feasible", json::Value::boolean(feasible));
  v.set("z", json::Value::number(z));
  v.set("l", json::Value::number(l));
  v.set("next", json::Value::number(next));
  return v;
}

std::optional<RolloutValidationRecord> RolloutValidationRecord::fromJson(
    const json::Value& v) {
  if (!typeIs(v, "rollout_validation")) return std::nullopt;
  RolloutValidationRecord r;
  const auto round = readSize(v, "round");
  const auto g = readNumber(v, "g");
  const auto fom = readNumber(v, "fom");
  const auto feasible = readBool(v, "feasible");
  const auto z = readNumber(v, "z");
  const auto l = readNumber(v, "l");
  const auto next = readNumber(v, "next");
  if (!round || !g || !fom || !feasible || !z || !l || !next) return std::nullopt;
  r.round = *round;
  r.g = *g;
  r.fom = *fom;
  r.feasible = *feasible;
  r.z = *z;
  r.l = *l;
  r.next = *next;
  return r;
}

std::string recordType(const json::Value& v) {
  const json::Value* field = v.find("type");
  if (!field || field->kind() != json::Value::Kind::String) return "";
  return field->asString();
}

}  // namespace isop::obs
