// Background metrics time-series sampler for long-running processes (the
// serve mode): at a fixed interval it flat-samples the Registry and appends
// one delta-encoded JSONL record to a file and/or a bounded in-memory ring,
// so queue depth / throughput / latency percentiles can be plotted over a
// server's lifetime instead of only as an exit-time snapshot.
//
// Record schema (one JSON object per line):
//   {"seq": N,                    // 0-based tick number
//    "uptime_seconds": S,         // steady-clock seconds since construction
//    "counters": {name: delta},   // monotone keys: increment since the
//                                 //   previous tick (rate * interval)
//    "values":   {name: value}}   // non-monotone keys: absolute reading,
//                                 //   only when changed since the last tick
// Unchanged keys are omitted, so an idle server costs a few bytes per tick.
// A counter increment is reported in exactly one tick: deltas across any
// run of records sum to the raw counter difference (tested under concurrent
// publishes in tests/obs/test_sampler.cpp).
//
// The sampler never blocks instrument updates — it reads the same lock-free
// atomics the exporters use; only the tick itself is serialized (the
// background thread and tests' explicit sampleOnce() share one mutex).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace isop::obs {

struct MetricsSamplerConfig {
  /// Tick period for the background thread started by start().
  std::chrono::milliseconds interval{1000};
  /// JSONL output path; "" = ring buffer only.
  std::string path;
  /// Most recent records kept in memory (lines()); older ones are dropped
  /// once the ring is full (droppedLines() counts them).
  std::size_t ringCapacity = 512;
  /// Refresh threadpool.* gauges before each tick (obs::captureThreadPoolStats).
  bool captureThreadPool = true;
};

class MetricsSampler {
 public:
  explicit MetricsSampler(Registry& registry, MetricsSamplerConfig config);
  ~MetricsSampler();  ///< stop()s; the file (if any) is closed here

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Starts the background tick thread. Idempotent.
  void start();

  /// Takes one final sample, stops the thread, and flushes the file.
  /// Idempotent; sampleOnce() remains usable afterwards.
  void stop();

  bool running() const;

  /// Takes one sample now (also what the background thread calls each tick)
  /// and returns the record. Thread-safe; tests drive deterministic tick
  /// sequences through this without starting the thread.
  json::Value sampleOnce();

  /// The ring buffer contents, oldest first (each entry one JSONL record).
  std::vector<std::string> lines() const;

  std::uint64_t ticks() const;
  std::uint64_t droppedLines() const;

 private:
  json::Value buildRecord() ISOP_REQUIRES(sampleMutex_);
  void appendLine(const std::string& line) ISOP_REQUIRES(sampleMutex_);
  void tickLoop();

  Registry* registry_;
  const MetricsSamplerConfig config_;
  const std::chrono::steady_clock::time_point epoch_;
  std::FILE* file_ = nullptr;

  // Takes the registry lock inside (flatSample), so it ranks above it.
  mutable AnnotatedMutex sampleMutex_{"obs.sampler_sample",
                                      lock_order::rank::kSamplerSample};
  std::map<std::string, double> prevMonotone_ ISOP_GUARDED_BY(sampleMutex_);
  std::map<std::string, double> prevValues_ ISOP_GUARDED_BY(sampleMutex_);
  std::uint64_t seq_ ISOP_GUARDED_BY(sampleMutex_) = 0;
  std::deque<std::string> ring_ ISOP_GUARDED_BY(sampleMutex_);
  std::uint64_t dropped_ ISOP_GUARDED_BY(sampleMutex_) = 0;

  mutable AnnotatedMutex threadMutex_{"obs.sampler_thread",
                                      lock_order::rank::kSamplerThread};
  std::condition_variable_any wake_;
  bool stopRequested_ ISOP_GUARDED_BY(threadMutex_) = false;
  bool running_ ISOP_GUARDED_BY(threadMutex_) = false;
  std::thread thread_;
};

}  // namespace isop::obs
