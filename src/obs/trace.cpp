#include "obs/trace.hpp"

#include <cstdio>
#include <functional>
#include <thread>

#include "obs/obs.hpp"

namespace isop::obs {

Tracer::Tracer(std::size_t maxEvents)
    : epoch_(std::chrono::steady_clock::now()), maxEvents_(maxEvents) {}

namespace detail {

namespace {
thread_local const std::string* tCurrentSpanTag = nullptr;
}  // namespace

const std::string* currentSpanTag() noexcept { return tCurrentSpanTag; }

}  // namespace detail

ScopedSpanTag::ScopedSpanTag(std::string tag)
    : tag_(std::move(tag)), prev_(detail::tCurrentSpanTag) {
  detail::tCurrentSpanTag = &tag_;
}

ScopedSpanTag::~ScopedSpanTag() { detail::tCurrentSpanTag = prev_; }

void Tracer::record(std::string name, std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::duration duration) {
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  TraceEvent event;
  event.name = std::move(name);
  if (const std::string* tag = detail::currentSpanTag()) event.tag = *tag;
  event.startMicros =
      static_cast<std::uint64_t>(duration_cast<microseconds>(start - epoch_).count());
  event.durMicros =
      static_cast<std::uint64_t>(duration_cast<microseconds>(duration).count());
  event.tid = currentThreadId();
  MutexLock lock(mutex_);
  if (events_.size() >= maxEvents_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events(std::string_view tagFilter) const {
  MutexLock lock(mutex_);
  if (tagFilter.empty()) return events_;
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.tag == tagFilter) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::eventCount() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::size_t Tracer::droppedEvents() const {
  MutexLock lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  MutexLock lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

json::Value Tracer::toChromeJson(std::string_view tagFilter) const {
  json::Value list = json::Value::array();
  {
    MutexLock lock(mutex_);
    for (const TraceEvent& e : events_) {
      if (!tagFilter.empty() && e.tag != tagFilter) continue;
      json::Value ev = json::Value::object();
      ev.set("name", json::Value::string(e.name));
      ev.set("cat", json::Value::string("isop"));
      ev.set("ph", json::Value::string("X"));
      ev.set("ts", json::Value::integer(static_cast<long long>(e.startMicros)));
      ev.set("dur", json::Value::integer(static_cast<long long>(e.durMicros)));
      ev.set("pid", json::Value::integer(1));
      ev.set("tid", json::Value::integer(static_cast<long long>(e.tid)));
      if (!e.tag.empty()) {
        json::Value args = json::Value::object();
        args.set("job", json::Value::string(e.tag));
        ev.set("args", std::move(args));
      }
      list.push(std::move(ev));
    }
  }
  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(list));
  root.set("displayTimeUnit", json::Value::string("ms"));
  return root;
}

bool Tracer::writeChromeTrace(const std::string& path,
                              std::string_view tagFilter) const {
  const std::string text = toChromeJson(tagFilter).dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::uint32_t currentThreadId() noexcept {
  static thread_local const std::uint32_t id = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return id;
}

Span::Span(const char* name) : Span(tracer(), name) {}

Span::Span(Tracer& tracer, const char* name)
    : tracer_(tracer.enabled() ? &tracer : nullptr), name_(name) {
  if (tracer_) start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!tracer_) return;
  tracer_->record(name_, start_, std::chrono::steady_clock::now() - start_);
}

double Span::seconds() const {
  if (!tracer_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

StageSpan::StageSpan(const char* name)
    : span_(name), name_(name), metrics_(metricsEnabled()) {
  if (metrics_) start_ = std::chrono::steady_clock::now();
}

StageSpan::~StageSpan() {
  if (!metrics_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  registry()
      .histogram(std::string("span.") + name_ + ".seconds")
      .record(seconds);
}

}  // namespace isop::obs
