#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace isop::obs {

namespace {

void casExtreme(std::atomic<std::uint64_t>& slot, double candidate, bool wantMin) {
  std::uint64_t expected = slot.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(expected);
    if (wantMin ? candidate >= current : candidate <= current) return;
    if (slot.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(candidate),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

int Histogram::bucketIndex(double v) noexcept {
  if (!(v > 0.0)) return 0;  // underflow bucket (also NaN / non-positive)
  const double exponent = std::log10(v) - kMinExponent;
  const auto slot = static_cast<long>(std::floor(exponent * kBucketsPerDecade));
  if (slot < 0) return 0;
  if (slot >= kBuckets - 2) return kBuckets - 1;  // overflow bucket
  return static_cast<int>(slot) + 1;
}

double Histogram::bucketLowerEdge(int index) noexcept {
  if (index <= 0) return 0.0;
  return std::pow(10.0, kMinExponent +
                            static_cast<double>(index - 1) / kBucketsPerDecade);
}

void Histogram::record(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(v);
  casExtreme(min_, v, /*wantMin=*/true);
  casExtreme(max_, v, /*wantMin=*/false);
}

double Histogram::sum() const noexcept { return sum_.value(); }

double Histogram::min() const noexcept {
  return std::bit_cast<double>(min_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
  return std::bit_cast<double>(max_.load(std::memory_order_relaxed));
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      p * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t inBucket = buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (inBucket == 0) continue;
    if (seen + inBucket < target) {
      seen += inBucket;
      continue;
    }
    // Interpolate inside the bucket, clamped to the exact extrema so tiny
    // histograms (one or two samples) report faithful percentiles.
    const double lo = std::max(bucketLowerEdge(b), min());
    const double hi = std::min(b + 1 < kBuckets ? bucketLowerEdge(b + 1)
                                                : std::numeric_limits<double>::max(),
                               max());
    if (!(hi > lo)) return std::clamp(lo, min(), max());
    const double frac =
        static_cast<double>(target - seen) / static_cast<double>(inBucket);
    return lo + frac * (hi - lo);
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.reset();
  min_.store(std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
             std::memory_order_relaxed);
  max_.store(std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity()),
             std::memory_order_relaxed);
}

Registry::Instrument& Registry::get(std::string_view name, Kind kind) {
  MutexLock lock(mutex_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst{kind, nullptr, nullptr, nullptr};
    switch (kind) {
      case Kind::Counter: inst.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: inst.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram: inst.histogram = std::make_unique<Histogram>(); break;
    }
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs::Registry: instrument '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *get(name, Kind::Counter).counter;
}

Gauge& Registry::gauge(std::string_view name) { return *get(name, Kind::Gauge).gauge; }

Histogram& Registry::histogram(std::string_view name) {
  return *get(name, Kind::Histogram).histogram;
}

std::string Registry::labeled(std::string_view name, std::string_view key,
                              std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 3);
  out.append(name).append("{").append(key).append("=").append(value).append("}");
  return out;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, sample] : flatSample()) snap[name] = sample.value;
  return snap;
}

std::map<std::string, FlatSample> Registry::flatSample() const {
  std::map<std::string, FlatSample> snap;
  MutexLock lock(mutex_);
  for (const auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::Counter:
        snap[name] = {static_cast<double>(inst.counter->value()), true};
        break;
      case Kind::Gauge:
        snap[name] = {inst.gauge->value(), false};
        break;
      case Kind::Histogram: {
        const Histogram& h = *inst.histogram;
        snap[name + ".count"] = {static_cast<double>(h.count()), true};
        snap[name + ".mean"] = {h.mean(), false};
        snap[name + ".p50"] = {h.percentile(0.50), false};
        snap[name + ".p90"] = {h.percentile(0.90), false};
        snap[name + ".p95"] = {h.percentile(0.95), false};
        snap[name + ".p99"] = {h.percentile(0.99), false};
        break;
      }
    }
  }
  return snap;
}

json::Value Registry::toJson() const {
  json::Value counters = json::Value::object();
  json::Value gauges = json::Value::object();
  json::Value histograms = json::Value::object();
  MutexLock lock(mutex_);
  for (const auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::Counter:
        counters.set(name, json::Value::integer(
                               static_cast<long long>(inst.counter->value())));
        break;
      case Kind::Gauge:
        gauges.set(name, json::Value::number(inst.gauge->value()));
        break;
      case Kind::Histogram: {
        const Histogram& h = *inst.histogram;
        json::Value entry = json::Value::object();
        entry.set("count", json::Value::integer(static_cast<long long>(h.count())));
        if (h.count() > 0) {
          entry.set("min", json::Value::number(h.min()));
          entry.set("max", json::Value::number(h.max()));
          entry.set("mean", json::Value::number(h.mean()));
          entry.set("p50", json::Value::number(h.percentile(0.50)));
          entry.set("p90", json::Value::number(h.percentile(0.90)));
          entry.set("p95", json::Value::number(h.percentile(0.95)));
          entry.set("p99", json::Value::number(h.percentile(0.99)));
        }
        histograms.set(name, std::move(entry));
        break;
      }
    }
  }
  json::Value root = json::Value::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

std::string Registry::toCsv() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "name,kind,value\n";
  MutexLock lock(mutex_);
  for (const auto& [name, value] : snap) {
    // Derive the kind from the registered instrument (histogram rows carry
    // a .count/.p50/... suffix not present in the instrument map).
    auto it = instruments_.find(name);
    const char* kind = "histogram";
    if (it != instruments_.end()) {
      kind = it->second.kind == Kind::Counter ? "counter" : "gauge";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    out.append(name).append(",").append(kind).append(",").append(buf).append("\n");
  }
  return out;
}

void Registry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::Counter: inst.counter->reset(); break;
      case Kind::Gauge: inst.gauge->reset(); break;
      case Kind::Histogram: inst.histogram->reset(); break;
    }
  }
}

}  // namespace isop::obs
