// Convergence recorder: a stream of per-iteration optimizer state, one JSON
// object per line (JSONL), for diagnosing and regression-testing the ISOP+
// search the way He et al. and Withöft et al. use convergence traces.
//
// Record types emitted by the instrumented pipeline (each also carries a
// "type" discriminator and is documented in docs/observability.md):
//   harmonica_iteration — best ghat, evaluation counts, search-space size;
//   adaptive_weights    — the constraint weights after Algorithm 2 updates;
//   hyperband_round     — per-bracket successive-halving eliminations;
//   adam_epoch          — local-stage objective trajectory;
//   rollout_validation  — each EM-validated candidate with its exact g.
//
// Sinks: an append-only file (streaming, line-buffered under a mutex) or an
// in-memory line buffer (tests, programmatic consumers). Disabled by
// default; a disabled recorder costs one relaxed atomic load per call site.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace isop::obs {

namespace detail {
/// The record tap installed on the current thread (nullptr when none). See
/// ConvergenceRecorder::ScopedTap.
const std::function<void(const json::Value&)>* currentConvergenceTap() noexcept;
}  // namespace detail

class ConvergenceRecorder {
 public:
  /// Per-thread record tap. While one is installed, record() calls made on
  /// that thread are routed to the tap instead of the global file/memory
  /// sink, and enabled() reads true on that thread regardless of the global
  /// flag. This is how the serve scheduler streams each job's convergence
  /// records as its own progress events: every worker thread taps the
  /// recorder for the duration of its job, so concurrent jobs never
  /// interleave in one sink. Taps nest (the previous tap is restored on
  /// destruction) and must be destroyed on the thread that created them.
  class ScopedTap {
   public:
    explicit ScopedTap(std::function<void(const json::Value&)> fn);
    ~ScopedTap();

    ScopedTap(const ScopedTap&) = delete;
    ScopedTap& operator=(const ScopedTap&) = delete;

   private:
    std::function<void(const json::Value&)> fn_;
    const std::function<void(const json::Value&)>* prev_;
  };

  ConvergenceRecorder() = default;
  ~ConvergenceRecorder();

  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed) ||
           detail::currentConvergenceTap() != nullptr;
  }
  void setEnabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Switches to a file sink; returns false if the file cannot be opened
  /// (the recorder then keeps its previous sink). Closes any previous file.
  bool openFile(const std::string& path);

  /// Switches (back) to the in-memory sink, dropping any open file.
  void useMemory();

  /// Serializes `record` as one line into the global sink — unless the
  /// calling thread has a ScopedTap installed, in which case the record goes
  /// to the tap only. No-op when disabled.
  void record(const json::Value& record);

  /// Lines captured by the memory sink (copy; empty under a file sink).
  std::vector<std::string> lines() const;

  void clear();

  /// Flushes and closes a file sink (also done on destruction).
  void close();

 private:
  std::atomic<bool> enabled_{false};
  mutable AnnotatedMutex mutex_{"obs.convergence",
                                lock_order::rank::kObsConvergence};
  std::FILE* file_ ISOP_GUARDED_BY(mutex_) = nullptr;
  std::vector<std::string> memory_ ISOP_GUARDED_BY(mutex_);
};

// ---- Typed records ---------------------------------------------------------
// Plain structs with to/from JSON so tests can assert a lossless round-trip
// through common/json and downstream tools get a stable schema.

struct HarmonicaIterationRecord {
  std::size_t iteration = 0;
  double bestGhat = 0.0;
  std::size_t evaluations = 0;     ///< cumulative valid objective calls
  std::size_t invalidSamples = 0;  ///< cumulative invalid encodings skipped
  std::size_t fixedBits = 0;       ///< total bits fixed so far
  std::size_t freeBits = 0;        ///< log2 of the restricted-space size

  json::Value toJson() const;
  static std::optional<HarmonicaIterationRecord> fromJson(const json::Value& v);
  bool operator==(const HarmonicaIterationRecord&) const = default;
};

struct HyperbandRoundRecord {
  std::size_t bracket = 0;
  std::size_t round = 0;
  std::size_t resource = 0;
  std::size_t arms = 0;       ///< arms evaluated this round
  std::size_t survivors = 0;  ///< arms kept for the next round
  double bestValue = 0.0;

  json::Value toJson() const;
  static std::optional<HyperbandRoundRecord> fromJson(const json::Value& v);
  bool operator==(const HyperbandRoundRecord&) const = default;
};

struct AdamEpochRecord {
  std::size_t epoch = 0;
  std::size_t seeds = 0;
  double bestValue = 0.0;
  double meanValue = 0.0;

  json::Value toJson() const;
  static std::optional<AdamEpochRecord> fromJson(const json::Value& v);
  bool operator==(const AdamEpochRecord&) const = default;
};

struct AdaptiveWeightsRecord {
  std::size_t iteration = 0;
  double wFom = 1.0;
  std::vector<double> wOc;
  std::vector<double> wIc;

  json::Value toJson() const;
  static std::optional<AdaptiveWeightsRecord> fromJson(const json::Value& v);
  bool operator==(const AdaptiveWeightsRecord&) const = default;
};

struct RolloutValidationRecord {
  std::size_t round = 1;  ///< roll-out (repair) round, 1-based
  double g = 0.0;
  double fom = 0.0;
  bool feasible = false;
  double z = 0.0, l = 0.0, next = 0.0;

  json::Value toJson() const;
  static std::optional<RolloutValidationRecord> fromJson(const json::Value& v);
  bool operator==(const RolloutValidationRecord&) const = default;
};

/// The "type" field of a serialized record, or "" when absent.
std::string recordType(const json::Value& v);

}  // namespace isop::obs
