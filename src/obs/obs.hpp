// Observability subsystem entry point: process-global metrics registry,
// span tracer, and convergence recorder, plus the ObsConfig/Session pair
// that turns them on for a bounded scope and flushes the configured output
// files when the scope ends.
//
// All three sinks are disabled by default. The contract relied on by the
// hot paths (surrogate predict, EM simulate, Harmonica batch evaluation):
// with every sink disabled, an instrumentation site costs one relaxed
// atomic load and a predictable branch — measured at < 2% on the pipeline
// micro-benchmarks (scripts/check_obs_overhead.sh enforces this).
//
// Typical use:
//   obs::ObsConfig cfg;
//   cfg.metrics = true;  cfg.metricsOut = "m.json";
//   cfg.trace = true;    cfg.traceOut = "t.json";
//   { obs::Session session(cfg);  optimizer.run(); }   // files written here
//
// IsopConfig/TrialRunner embed an ObsConfig, so isop_cli and the benches
// only set flags; IsopOptimizer::run / TrialRunner::run open the Session.
// Sessions nest: a default-constructed (all-off) config is a no-op and
// leaves an enclosing session's enablement untouched.
#pragma once

#include <string>

#include "obs/convergence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace isop::obs {

/// Process-global instrument sinks (created on first use, never destroyed
/// before exit).
Registry& registry();
Tracer& tracer();
ConvergenceRecorder& convergence();

namespace detail {
extern std::atomic<bool> gMetricsEnabled;
}  // namespace detail

/// Fast-path guard for metrics call sites. Trace and convergence sites use
/// tracer().enabled() / convergence().enabled() (same cost).
inline bool metricsEnabled() noexcept {
  return detail::gMetricsEnabled.load(std::memory_order_relaxed);
}
void setMetricsEnabled(bool on) noexcept;

/// Copies the global thread pool's load counters (queue depth, task wait /
/// run time, tasks submitted/completed) into registry gauges. Called by
/// Session::flush and by TrialRunner snapshots; callable any time metrics
/// are enabled.
void captureThreadPoolStats();

/// What to record and where to write it. Default: everything off.
struct ObsConfig {
  bool metrics = false;      ///< counters / gauges / span histograms
  bool trace = false;        ///< Chrome trace spans
  bool convergence = false;  ///< JSONL per-iteration records

  std::string metricsOut;      ///< metrics JSON path ("" = keep in memory)
  std::string metricsCsvOut;   ///< optional flat CSV export
  std::string traceOut;        ///< Chrome trace JSON path
  std::string convergenceOut;  ///< JSONL path ("" = in-memory lines())

  bool anyEnabled() const { return metrics || trace || convergence; }

  /// Convenience for CLI flag wiring: enables each sink iff its output path
  /// is nonempty.
  static ObsConfig fromOutputs(std::string metricsOut, std::string traceOut,
                               std::string convergenceOut = {});
};

/// Enables the configured sinks for its lifetime and flushes the output
/// files on destruction (or on an explicit flush()). An all-off config is a
/// complete no-op, so nested sessions (TrialRunner around IsopOptimizer)
/// compose: the innermost *active* session wins, inactive ones pass through.
class Session {
 public:
  explicit Session(ObsConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool active() const { return active_; }

  /// Writes metricsOut / metricsCsvOut / traceOut from the current sink
  /// contents. Idempotent; also called by the destructor.
  void flush();

 private:
  ObsConfig config_;
  bool active_ = false;
  bool prevMetrics_ = false;
  bool prevTrace_ = false;
  bool prevConvergence_ = false;
  bool openedConvergenceFile_ = false;
};

}  // namespace isop::obs
