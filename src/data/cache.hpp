// On-disk caching of generated datasets and trained neural surrogates so the
// benchmark binaries (one per paper table) share work instead of regenerating
// a dataset and retraining a CNN each. Cache keys encode the generation and
// training settings; files live under a cache directory (default
// "isop_cache/" in the working directory, override with ISOP_CACHE_DIR).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "data/dataset_gen.hpp"
#include "ml/neural_regressor.hpp"

namespace isop::data {

/// Resolves the cache directory (creates it if missing).
std::string cacheDir();

/// Atomic file publication: `save` writes to a unique temp file next to
/// `path` (same directory, so the rename never crosses a filesystem), which
/// is then renamed into place — readers see either the complete old file,
/// the complete new file, or no file; never a torn one. Before publishing,
/// stale `<path>.tmp.*` leftovers from crashed writers are removed; only
/// temps older than a staleness threshold (minutes) qualify, so a live
/// concurrent writer's in-progress temp — whose bytes may legitimately
/// differ, e.g. session-store memo snapshots from two jobs or replicas — is
/// never deleted out from under it.
/// Used by the dataset/model caches here and by serve's session store.
void atomicSave(const std::string& path,
                const std::function<void(const std::string&)>& save);

/// Loads the dataset for (config) if cached, else generates and caches it.
ml::Dataset getOrGenerateDataset(const em::EmSimulator& sim,
                                 const em::ParameterSpace& space,
                                 const GenerationConfig& config);

/// Loads a trained 1D-CNN surrogate for the given dataset settings if
/// cached, else trains (80% split of the generated dataset) and caches it.
std::shared_ptr<ml::Cnn1dRegressor> getOrTrainCnnSurrogate(
    const em::EmSimulator& sim, const GenerationConfig& datasetConfig,
    const ml::nn::TrainConfig& trainConfig);

/// Same for the MLP surrogate (the DATE-version ISOP model).
std::shared_ptr<ml::MlpRegressor> getOrTrainMlpSurrogate(
    const em::EmSimulator& sim, const GenerationConfig& datasetConfig,
    const ml::nn::TrainConfig& trainConfig);

}  // namespace isop::data
