// Training-data generation: the stand-in for the paper's 90k-design dataset
// queried from the commercial ICAT simulator.
//
// Designs are sampled uniformly on the training-space grid (Table III, last
// column) and labelled with the EM model; generation is parallel and fully
// deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>

#include "em/parameter_space.hpp"
#include "em/simulator.hpp"
#include "ml/dataset.hpp"

namespace isop::data {

struct GenerationConfig {
  std::size_t samples = 30000;  ///< paper scale: 90000
  std::uint64_t seed = 42;
  /// Deduplicate identical grid points (the paper's dataset is "unique
  /// stack-up design combinations"); duplicates are resampled.
  bool unique = true;
  /// Sampling space for the cache helpers ("envelope", "training", "S1",
  /// "S2", "S1p") — see em::designerEnvelope() for why "envelope" is the
  /// default for the optimization benches.
  std::string spaceName = "envelope";
};

/// Samples designs from `space` and labels them via `sim` (uncounted calls —
/// dataset generation is not billed as optimizer simulation time).
ml::Dataset generateDataset(const em::EmSimulator& sim, const em::ParameterSpace& space,
                            const GenerationConfig& config);

}  // namespace isop::data
