#include "data/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <sstream>

#include "common/logging.hpp"

namespace isop::data {

namespace fs = std::filesystem;

std::string cacheDir() {
  const char* env = std::getenv("ISOP_CACHE_DIR");
  std::string dir = env && *env ? env : "isop_cache";
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; open errors surface later
  return dir;
}

namespace {
std::string datasetPath(const GenerationConfig& config) {
  std::ostringstream os;
  os << cacheDir() << "/dataset_" << config.spaceName << "_n" << config.samples
     << "_s" << config.seed << (config.unique ? "_u" : "") << ".bin";
  return os.str();
}

std::string modelPath(const char* kind, const GenerationConfig& dsConfig,
                      const ml::nn::TrainConfig& trainConfig) {
  std::ostringstream os;
  os << cacheDir() << "/" << kind << "_" << dsConfig.spaceName << "_n"
     << dsConfig.samples << "_s" << dsConfig.seed << "_e" << trainConfig.epochs
     << "_b" << trainConfig.batchSize << "_ts" << trainConfig.seed << ".bin";
  return os.str();
}

ml::Dataset trainSplit(const em::EmSimulator& sim, const GenerationConfig& dsConfig) {
  ml::Dataset ds =
      getOrGenerateDataset(sim, em::spaceByName(dsConfig.spaceName), dsConfig);
  Rng rng(dsConfig.seed ^ 0x5ca1ab1eULL);
  ds.shuffle(rng);
  auto [train, test] = ds.split(0.8);
  (void)test;
  return train;
}
}  // namespace

// rename(2) is atomic on POSIX; see the contract in cache.hpp. The temp name
// is unique per process and call, so concurrent writers cannot clobber each
// other's temp files; the losing writer simply renames last (both wrote
// identical bytes — cache keys encode every generation/training setting).
void atomicSave(const std::string& path,
                const std::function<void(const std::string&)>& save) {
  static std::atomic<unsigned> counter{0};
  std::ostringstream os;
  os << path << ".tmp." << ::getpid() << "." << counter.fetch_add(1);
  const std::string tmp = os.str();

  // Crash-consistency sweep: a writer killed between save(tmp) and the
  // rename leaves `<path>.tmp.<pid>.<n>` behind forever (loaders skip it —
  // it never matches the published name — but it eats disk). The next
  // publication of the same path is the natural owner of that cleanup.
  // Only plausibly-dead temps are swept: a fresh temp may be a live
  // concurrent writer mid-publication, and deleting it would fail that
  // writer's rename — harmless for the identical-bytes data cache, but a
  // session-store memo snapshot from another job or replica differs, and its
  // newer state would be silently dropped.
  {
    const fs::path target(path);
    const std::string prefix = target.filename().string() + ".tmp.";
    constexpr auto kStaleAge = std::chrono::minutes(10);
    const auto now = fs::file_time_type::clock::now();
    std::error_code ec;
    for (fs::directory_iterator it(target.parent_path().empty()
                                       ? fs::path(".")
                                       : target.parent_path(),
                                   ec),
         end;
         !ec && it != end; it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        std::error_code ageEc;
        const auto mtime = fs::last_write_time(it->path(), ageEc);
        if (ageEc || now - mtime < kStaleAge) continue;  // plausibly live
        std::error_code rmEc;
        fs::remove(it->path(), rmEc);  // best effort
      }
    }
  }

  try {
    save(tmp);
    fs::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);  // best effort; the original error is what matters
    throw;
  }
}

ml::Dataset getOrGenerateDataset(const em::EmSimulator& sim,
                                 const em::ParameterSpace& space,
                                 const GenerationConfig& config) {
  const std::string path = datasetPath(config);
  if (fs::exists(path)) {
    try {
      return ml::loadDataset(path);
    } catch (const std::exception& e) {
      log::warn("dataset cache '", path, "' unreadable (", e.what(), "); regenerating");
    }
  }
  log::info("generating dataset: ", config.samples, " samples (seed ", config.seed, ")");
  ml::Dataset ds = generateDataset(sim, space, config);
  try {
    atomicSave(path, [&](const std::string& tmp) { saveDataset(tmp, ds); });
  } catch (const std::exception& e) {
    log::warn("could not cache dataset to '", path, "': ", e.what());
  }
  return ds;
}

std::shared_ptr<ml::Cnn1dRegressor> getOrTrainCnnSurrogate(
    const em::EmSimulator& sim, const GenerationConfig& datasetConfig,
    const ml::nn::TrainConfig& trainConfig) {
  const std::string path = modelPath("cnn", datasetConfig, trainConfig);
  if (fs::exists(path)) {
    try {
      return std::shared_ptr<ml::Cnn1dRegressor>(ml::Cnn1dRegressor::load(path));
    } catch (const std::exception& e) {
      log::warn("model cache '", path, "' unreadable (", e.what(), "); retraining");
    }
  }
  // Accuracy-oriented architecture: wide expansion, no dropout (ample data,
  // and the +-1 ohm constraint band punishes any regularization bias).
  ml::Cnn1dConfig arch;
  arch.expandChannels = 16;
  arch.expandLength = 32;
  arch.convChannels = 32;
  arch.headHidden = 96;
  arch.dropout = 0.0;
  auto model = std::make_shared<ml::Cnn1dRegressor>(arch);
  model->setOutputTransforms(ml::metricLogTransforms());
  log::info("training 1D-CNN surrogate (", trainConfig.epochs, " epochs)");
  model->fit(trainSplit(sim, datasetConfig), trainConfig);
  try {
    atomicSave(path, [&](const std::string& tmp) { model->save(tmp); });
  } catch (const std::exception& e) {
    log::warn("could not cache model to '", path, "': ", e.what());
  }
  return model;
}

std::shared_ptr<ml::MlpRegressor> getOrTrainMlpSurrogate(
    const em::EmSimulator& sim, const GenerationConfig& datasetConfig,
    const ml::nn::TrainConfig& trainConfig) {
  const std::string path = modelPath("mlp", datasetConfig, trainConfig);
  if (fs::exists(path)) {
    try {
      return std::shared_ptr<ml::MlpRegressor>(ml::MlpRegressor::load(path));
    } catch (const std::exception& e) {
      log::warn("model cache '", path, "' unreadable (", e.what(), "); retraining");
    }
  }
  ml::MlpConfig arch;
  arch.hidden = {256, 256, 128};
  arch.dropout = 0.0;
  auto model = std::make_shared<ml::MlpRegressor>(arch);
  model->setOutputTransforms(ml::metricLogTransforms());
  log::info("training MLP surrogate (", trainConfig.epochs, " epochs)");
  model->fit(trainSplit(sim, datasetConfig), trainConfig);
  try {
    atomicSave(path, [&](const std::string& tmp) { model->save(tmp); });
  } catch (const std::exception& e) {
    log::warn("could not cache model to '", path, "': ", e.what());
  }
  return model;
}

}  // namespace isop::data
