#include "data/dataset_gen.hpp"

#include <unordered_set>

#include "common/thread_pool.hpp"

namespace isop::data {

namespace {
/// Key for grid-point dedup: the per-parameter case indices.
std::uint64_t gridKey(const em::ParameterSpace& space, const em::StackupParams& p) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < space.dim(); ++i) {
    const std::uint64_t idx = space.range(i).nearestIndex(p.values[i]);
    h ^= idx + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}
}  // namespace

ml::Dataset generateDataset(const em::EmSimulator& sim, const em::ParameterSpace& space,
                            const GenerationConfig& config) {
  ml::Dataset ds;
  ds.x.resize(config.samples, em::kNumParams);
  ds.y.resize(config.samples, em::kNumMetrics);

  // Draw the design points sequentially (dedup needs a single stream), then
  // label them in parallel.
  std::vector<em::StackupParams> designs;
  designs.reserve(config.samples);
  Rng rng(config.seed);
  std::unordered_set<std::uint64_t> seen;
  std::size_t attempts = 0;
  const std::size_t maxAttempts = config.samples * 20 + 1000;
  while (designs.size() < config.samples && attempts < maxAttempts) {
    ++attempts;
    em::StackupParams p = space.sample(rng);
    if (config.unique) {
      auto [it, inserted] = seen.insert(gridKey(space, p));
      (void)it;
      if (!inserted) continue;
    }
    designs.push_back(p);
  }
  // Exceedingly unlikely fallback: pad with (possibly duplicate) samples.
  while (designs.size() < config.samples) designs.push_back(space.sample(rng));

  ThreadPool::global().parallelFor(designs.size(), [&](std::size_t i) {
    const auto& p = designs[i];
    const em::PerformanceMetrics m = sim.evaluateUncounted(p);
    for (std::size_t j = 0; j < em::kNumParams; ++j) ds.x(i, j) = p.values[j];
    ds.y(i, 0) = m.z;
    ds.y(i, 1) = m.l;
    ds.y(i, 2) = m.next;
  });
  return ds;
}

}  // namespace isop::data
