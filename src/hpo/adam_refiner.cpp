#include "hpo/adam_refiner.hpp"

#include <algorithm>

#include "common/check.hpp"

#include "obs/obs.hpp"

namespace isop::hpo {

RefineResult AdamRefiner::refine(const em::ParameterSpace& space,
                                 std::span<const em::StackupParams> seeds,
                                 const ObjectiveWithGrad& objective) const {
  const BatchObjectiveWithGrad batch = [&](std::span<const em::StackupParams> xs,
                                           std::span<double> values, Matrix& grads) {
    grads.resize(xs.size(), em::kNumParams);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      values[i] = objective(xs[i], grads.row(i));
    }
  };
  return refine(space, seeds, batch);
}

RefineResult AdamRefiner::refine(const em::ParameterSpace& space,
                                 std::span<const em::StackupParams> seeds,
                                 const BatchObjectiveWithGrad& objective) const {
  const std::size_t d = space.dim();
  const std::size_t p = seeds.size();
  RefineResult result;
  result.refined.assign(seeds.begin(), seeds.end());
  result.values.assign(p, 0.0);
  if (p == 0) return result;

  // Normalized coordinates: u = (x - lo) / span, one flat block per seed.
  std::vector<double> lo(d), span(d);
  for (std::size_t j = 0; j < d; ++j) {
    lo[j] = space.range(j).lo;
    span[j] = std::max(space.range(j).hi - space.range(j).lo, 1e-12);
  }
  std::vector<double> u(p * d), grad(p * d);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      u[i * d + j] = std::clamp((seeds[i].values[j] - lo[j]) / span[j], 0.0, 1.0);
    }
  }

  ml::nn::AdamConfig adamCfg = config_.adam;
  adamCfg.learningRate = config_.learningRate;
  ml::nn::Adam adam(adamCfg);
  adam.registerBlock(u);

  // One batched value+gradient evaluation per epoch over all p seeds.
  std::vector<em::StackupParams> xs(p);
  Matrix rawGrads;
  obs::StageSpan refineSpan("adam.refine");
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    config_.cancel.throwIfCancelled();
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < d; ++j) xs[i].values[j] = lo[j] + u[i * d + j] * span[j];
    }
    objective(xs, result.values, rawGrads);
    ISOP_REQUIRE(rawGrads.rows() == p && rawGrads.cols() == d,
                 "AdamRefiner: batch objective must fill one gradient row per seed");
    result.gradientEvaluations += p;
    // Chain rule du: dg/du_j = dg/dx_j * span_j.
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < d; ++j) grad[i * d + j] = rawGrads(i, j) * span[j];
    }
    if (obs::convergence().enabled()) {
      obs::AdamEpochRecord rec;
      rec.epoch = epoch;
      rec.seeds = p;
      rec.bestValue = *std::min_element(result.values.begin(), result.values.end());
      double sum = 0.0;
      for (double v : result.values) sum += v;
      rec.meanValue = sum / static_cast<double>(p);
      obs::convergence().record(rec.toJson());
    }
    std::span<double> blocks[] = {std::span<double>(u)};
    std::span<double> gblocks[] = {std::span<double>(grad)};
    adam.step(blocks, gblocks);
    for (double& v : u) v = std::clamp(v, 0.0, 1.0);
  }

  // Final values at the refined points.
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      result.refined[i].values[j] = lo[j] + u[i * d + j] * span[j];
    }
  }
  objective(result.refined, result.values, rawGrads);
  result.gradientEvaluations += p;
  return result;
}

}  // namespace isop::hpo
