// Hyperband (Li et al., JMLR 2017): bandit-based configuration selection via
// successive halving across multiple exploration/exploitation brackets.
//
// In ISOP+ it picks the p seeds for the gradient-descent local stage out of
// the Harmonica-restricted space (Algorithm 1, line 8). The "resource" given
// to a configuration is the budget of a short stochastic local search around
// it (more resource = more neighbour probes = a sharper estimate of the
// basin's quality), which is what makes adaptive resource allocation
// meaningful on a deterministic surrogate.
#pragma once

#include <functional>
#include <span>

#include "common/cancellation.hpp"
#include "hpo/binary_codec.hpp"

namespace isop::hpo {

struct HyperbandConfig {
  std::size_t maxResource = 27;  ///< R
  double eta = 3.0;              ///< halving factor
  std::uint64_t seed = 2;
  /// Checked before every successive-halving round; a cancelled token makes
  /// run() throw OperationCancelled. Inert by default.
  CancelToken cancel{};
};

struct ScoredConfig {
  BitVector bits;
  double value = 0.0;
};

class Hyperband {
 public:
  /// Draws a random configuration.
  using Sampler = std::function<BitVector(Rng&)>;

  /// Evaluates a configuration with the given resource; may refine the
  /// configuration in place (the local-probe semantics) and returns its
  /// score (lower is better).
  using Eval = std::function<double(BitVector& bits, std::size_t resource)>;

  /// Batched round evaluation: scores (and may refine) every surviving arm
  /// of a bracket round in one call — the eval layer batches the base
  /// evaluations across arms. Must fill arm.value for each arm.
  using BatchEval =
      std::function<void(std::span<ScoredConfig> arms, std::size_t resource)>;

  explicit Hyperband(HyperbandConfig config = {}) : config_(config) {}

  const HyperbandConfig& config() const { return config_; }

  /// Runs all brackets and returns the best `keep` configurations found,
  /// sorted by ascending value.
  std::vector<ScoredConfig> run(const Sampler& sampler, const BatchEval& eval,
                                std::size_t keep) const;

  /// Scalar-eval compatibility overload (wraps into a per-arm loop).
  std::vector<ScoredConfig> run(const Sampler& sampler, const Eval& eval,
                                std::size_t keep) const;

 private:
  HyperbandConfig config_;
};

}  // namespace isop::hpo
