#include "hpo/lasso.hpp"

#include <cmath>

#include "common/check.hpp"

namespace isop::hpo {

namespace {
double softThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}
}  // namespace

LassoResult lassoFit(const Matrix& x, std::span<const double> y, const LassoConfig& config) {
  const std::size_t n = x.rows(), d = x.cols();
  ISOP_REQUIRE(y.size() == n && n > 0,
               "lassoFit: y must have one response per design row");

  // Column standardization (zero mean, unit scale) for a scale-free lambda.
  // Standardize around the mean actually subtracted: the coordinate-descent
  // update below assumes (1/n) z_j . z_j == 1, so without an intercept the
  // scale must be the raw RMS, not the centered standard deviation.
  std::vector<double> colMean(d, 0.0), colScale(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += x(i, j);
    m /= static_cast<double>(n);
    colMean[j] = config.fitIntercept ? m : 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double c = x(i, j) - colMean[j];
      s += c * c;
    }
    s = std::sqrt(s / static_cast<double>(n));
    colScale[j] = s > 1e-12 ? s : 1.0;
  }
  double yMean = 0.0;
  if (config.fitIntercept) {
    for (double v : y) yMean += v;
    yMean /= static_cast<double>(n);
  }

  // Work on standardized columns: z_j = (x_j - mean) / scale.
  // residual r = y_centered - Z w.
  std::vector<double> w(d, 0.0);
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - yMean;

  LassoResult result;
  const double invN = 1.0 / static_cast<double>(n);
  for (std::size_t iter = 0; iter < config.maxIters; ++iter) {
    double maxDelta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      // rho = (1/n) z_j . (r + z_j w_j); with standardized z, (1/n) z.z = 1.
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double zij = (x(i, j) - colMean[j]) / colScale[j];
        rho += zij * residual[i];
      }
      rho = rho * invN + w[j];
      const double next = softThreshold(rho, config.lambda);
      const double delta = next - w[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          const double zij = (x(i, j) - colMean[j]) / colScale[j];
          residual[i] -= delta * zij;
        }
        w[j] = next;
        maxDelta = std::max(maxDelta, std::abs(delta));
      }
    }
    result.iterations = iter + 1;
    if (maxDelta < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // De-standardize: y = yMean + sum_j w_j (x_j - mean_j)/scale_j.
  result.coefficients.assign(d, 0.0);
  double intercept = yMean;
  for (std::size_t j = 0; j < d; ++j) {
    result.coefficients[j] = w[j] / colScale[j];
    intercept -= w[j] * colMean[j] / colScale[j];
  }
  result.intercept = config.fitIntercept ? intercept : 0.0;
  return result;
}

}  // namespace isop::hpo
