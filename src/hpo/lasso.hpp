// L1-regularized least squares via cyclic coordinate descent with
// soft-thresholding — the polynomial sparse recovery (PSR) subroutine of
// the Harmonica algorithm (Eq. 3 of the paper).
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace isop::hpo {

struct LassoConfig {
  double lambda = 0.05;     ///< L1 strength (on standardized columns)
  std::size_t maxIters = 200;
  double tolerance = 1e-6;  ///< max coefficient change for convergence
  bool fitIntercept = true;
};

struct LassoResult {
  std::vector<double> coefficients;  ///< per feature column
  double intercept = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimizes (1/2n)||y - Xw - b||^2 + lambda * ||w||_1. Columns are
/// internally standardized so lambda is scale-free; returned coefficients
/// are de-standardized back to the original column scales.
LassoResult lassoFit(const Matrix& x, std::span<const double> y,
                     const LassoConfig& config = {});

}  // namespace isop::hpo
