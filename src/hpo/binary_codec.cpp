#include "hpo/binary_codec.hpp"

#include "common/check.hpp"

namespace isop::hpo {

std::uint64_t binaryToGray(std::uint64_t v) { return v ^ (v >> 1); }

std::uint64_t grayToBinary(std::uint64_t v) {
  for (std::uint64_t shift = 1; shift < 64; shift <<= 1) v ^= v >> shift;
  return v;
}

BinaryCodec::BinaryCodec(em::ParameterSpace space, BitCoding coding)
    : space_(std::move(space)), coding_(coding) {
  bits_.reserve(space_.dim());
  offsets_.reserve(space_.dim());
  for (std::size_t i = 0; i < space_.dim(); ++i) {
    offsets_.push_back(totalBits_);
    bits_.push_back(space_.range(i).bitCount());
    totalBits_ += bits_.back();
  }
}

std::uint64_t BinaryCodec::indexFromBits(const BitVector& bits, std::size_t param) const {
  std::uint64_t v = 0;
  const std::size_t off = offsets_[param];
  for (std::size_t b = 0; b < bits_[param]; ++b) {
    v = (v << 1) | (bits[off + b] ? 1u : 0u);  // MSB first
  }
  return coding_ == BitCoding::Gray ? grayToBinary(v) : v;
}

void BinaryCodec::bitsFromIndex(std::uint64_t index, std::size_t param,
                                BitVector& bits) const {
  std::uint64_t v = coding_ == BitCoding::Gray ? binaryToGray(index) : index;
  const std::size_t off = offsets_[param];
  const std::size_t n = bits_[param];
  for (std::size_t b = 0; b < n; ++b) {
    bits[off + n - 1 - b] = static_cast<std::uint8_t>(v & 1u);
    v >>= 1;
  }
}

BitVector BinaryCodec::encode(const em::StackupParams& p) const {
  BitVector bits(totalBits_, 0);
  for (std::size_t i = 0; i < space_.dim(); ++i) {
    const std::uint64_t idx = space_.range(i).nearestIndex(p.values[i]);
    bitsFromIndex(idx, i, bits);
  }
  return bits;
}

std::optional<em::StackupParams> BinaryCodec::decode(const BitVector& bits) const {
  ISOP_REQUIRE(bits.size() == totalBits_,
               "decode: bit vector length must equal the codec width");
  em::StackupParams p;
  for (std::size_t i = 0; i < space_.dim(); ++i) {
    const std::uint64_t idx = indexFromBits(bits, i);
    const auto& range = space_.range(i);
    if (!range.isValidIndex(idx)) return std::nullopt;
    p.values[i] = range.valueAt(idx);
  }
  return p;
}

em::StackupParams BinaryCodec::decodeClamped(const BitVector& bits) const {
  ISOP_REQUIRE(bits.size() == totalBits_,
               "decodeClamped: bit vector length must equal the codec width");
  em::StackupParams p;
  for (std::size_t i = 0; i < space_.dim(); ++i) {
    std::uint64_t idx = indexFromBits(bits, i);
    const auto& range = space_.range(i);
    if (!range.isValidIndex(idx)) idx = range.caseCount() - 1;
    p.values[i] = range.valueAt(idx);
  }
  return p;
}

BitVector BinaryCodec::sampleValid(Rng& rng) const {
  BitVector bits(totalBits_, 0);
  for (std::size_t i = 0; i < space_.dim(); ++i) {
    const std::uint64_t idx = rng.below(space_.range(i).caseCount());
    bitsFromIndex(idx, i, bits);
  }
  return bits;
}

}  // namespace isop::hpo
