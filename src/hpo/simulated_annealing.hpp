// Simulated annealing baseline, implemented exactly as the paper describes
// its own SA comparator: random initial solution, random grid-neighbour
// moves, acceptance probability exp((cost - new_cost) / T) compared against
// a uniform draw, temperature decreasing linearly over the iteration budget.
#pragma once

#include <functional>
#include <limits>

#include "em/parameter_space.hpp"

namespace isop::hpo {

struct SaConfig {
  std::size_t evaluations = 16000;  ///< total objective calls
  double initialTemperature = 0.3;
  /// Max grid steps a single move can take in one parameter.
  std::size_t maxStepsPerMove = 3;
  /// Number of parameters perturbed per move.
  std::size_t paramsPerMove = 1;
  std::uint64_t seed = 3;
};

struct SaResult {
  em::StackupParams best{};
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
  std::size_t accepted = 0;  ///< accepted moves (diagnostics)
};

class SimulatedAnnealing {
 public:
  using Objective = std::function<double(const em::StackupParams&)>;

  explicit SimulatedAnnealing(SaConfig config = {}) : config_(config) {}

  const SaConfig& config() const { return config_; }

  SaResult optimize(const em::ParameterSpace& space, const Objective& objective) const;

 private:
  SaConfig config_;
};

}  // namespace isop::hpo
