#include "hpo/genetic.hpp"

#include <algorithm>
#include <cassert>

namespace isop::hpo {

GaResult GeneticAlgorithm::optimize(const em::ParameterSpace& space,
                                    const Objective& objective) const {
  Rng rng(config_.seed);
  GaResult result;
  const std::size_t popSize = std::max<std::size_t>(config_.populationSize, 4);

  struct Individual {
    em::StackupParams params{};
    double value = std::numeric_limits<double>::infinity();
  };

  auto evaluate = [&](Individual& ind) {
    ind.value = objective(ind.params);
    ++result.evaluations;
    if (ind.value < result.bestValue) {
      result.bestValue = ind.value;
      result.best = ind.params;
    }
  };

  std::vector<Individual> population(popSize);
  for (auto& ind : population) {
    ind.params = space.sample(rng);
    if (result.evaluations >= config_.evaluations) break;
    evaluate(ind);
  }

  auto tournament = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t t = 0; t < config_.tournamentSize; ++t) {
      const Individual& cand = population[rng.below(popSize)];
      if (!best || cand.value < best->value) best = &cand;
    }
    return *best;
  };

  std::vector<Individual> next(popSize);
  while (result.evaluations < config_.evaluations) {
    ++result.generations;
    // Elitism: carry the best individuals over unchanged.
    std::partial_sort(population.begin(),
                      population.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(config_.elites, popSize)),
                      population.end(),
                      [](const Individual& a, const Individual& b) {
                        return a.value < b.value;
                      });
    for (std::size_t e = 0; e < std::min(config_.elites, popSize); ++e) {
      next[e] = population[e];
    }

    for (std::size_t i = std::min(config_.elites, popSize); i < popSize; ++i) {
      const Individual& mom = tournament();
      const Individual& dad = tournament();
      Individual child;
      // Uniform crossover.
      if (rng.bernoulli(config_.crossoverRate)) {
        for (std::size_t g = 0; g < em::kNumParams; ++g) {
          child.params.values[g] =
              rng.bernoulli(0.5) ? mom.params.values[g] : dad.params.values[g];
        }
      } else {
        child.params = mom.params;
      }
      // Grid-step mutation.
      for (std::size_t g = 0; g < em::kNumParams; ++g) {
        if (!rng.bernoulli(config_.mutationRate)) continue;
        const auto& range = space.range(g);
        const auto cases = static_cast<std::int64_t>(range.caseCount());
        if (cases <= 1) continue;
        auto idx = static_cast<std::int64_t>(range.nearestIndex(child.params.values[g]));
        const auto maxStep = static_cast<std::int64_t>(config_.mutationMaxSteps);
        std::int64_t step = 0;
        while (step == 0) step = rng.range(-maxStep, maxStep);
        idx = std::clamp<std::int64_t>(idx + step, 0, cases - 1);
        child.params.values[g] = range.valueAt(static_cast<std::size_t>(idx));
      }
      evaluate(child);
      next[i] = std::move(child);
      if (result.evaluations >= config_.evaluations) {
        // Budget exhausted mid-generation: fill the rest by copying parents
        // so the population stays well-formed, then stop.
        for (std::size_t j = i + 1; j < popSize; ++j) next[j] = population[j];
        population = next;
        return result;
      }
    }
    population.swap(next);
  }
  return result;
}

}  // namespace isop::hpo
