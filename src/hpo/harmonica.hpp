// Harmonica (Hazan, Klivans & Yuan, ICLR 2018): spectral hyperparameter
// optimization over the boolean cube, as adapted by ISOP+ for the global
// search-space exploration stage (Algorithm 1, lines 1–8).
//
// Each iteration:
//   1. draws q random valid configurations from the current restricted
//      space and evaluates them in parallel;
//   2. fits a sparse low-degree Fourier polynomial to the observed values
//      with Lasso (the PSR subroutine, Eq. 3);
//   3. takes the k most significant monomials, enumerates all assignments
//      of the bits they touch, and fixes those bits to the minimizer —
//      shrinking the search space for the next iteration.
//
// An iteration callback exposes each evaluated batch so the caller can run
// the paper's adaptive weight adjustment (Algorithm 2) between iterations.
#pragma once

#include <functional>
#include <limits>

#include "common/cancellation.hpp"
#include "hpo/binary_codec.hpp"
#include "hpo/lasso.hpp"
#include "hpo/parity_features.hpp"

namespace isop::hpo {

struct HarmonicaConfig {
  std::size_t iterations = 3;        ///< search-space reduction rounds
  std::size_t samplesPerIter = 300;  ///< q
  std::size_t polyDegree = 2;        ///< Fourier polynomial degree
  std::size_t topMonomials = 5;      ///< k significant monomials per round
  double lassoLambda = 0.02;
  std::size_t maxEnumerationBits = 14;  ///< cap on bits fixed per round
  std::uint64_t seed = 1;
  bool parallelEval = true;  ///< evaluate batches on the global thread pool
  /// Checked at the top of every iteration; a cancelled token makes
  /// optimize() throw OperationCancelled before the next sampling round.
  /// Inert by default (see common/cancellation.hpp).
  CancelToken cancel{};
};

/// One fixed-bit restriction: position and value.
struct FixedBit {
  std::size_t position = 0;
  std::uint8_t value = 0;
};

struct HarmonicaResult {
  std::vector<FixedBit> fixedBits;  ///< accumulated space restriction
  BitVector bestBits;               ///< best evaluated configuration
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;      ///< objective calls (valid samples)
  std::size_t invalidSamples = 0;   ///< samples skipped as invalid encodings
};

class Harmonica {
 public:
  /// Objective over bit vectors; return +inf to mark a sample invalid
  /// (excluded from the regression, counted in invalidSamples).
  using Objective = std::function<double(const BitVector&)>;

  /// Batched objective: fills values[i] for samples[i] (+inf = invalid).
  /// Preferred entry point — one call per iteration lets the eval layer
  /// dedup the batch and run one inference pass instead of q matvecs.
  using BatchObjective =
      std::function<void(std::span<const BitVector> samples, std::span<double> values)>;

  /// Draws a random configuration given the current restriction (the fixed
  /// bits accumulated so far). The sampler should honour the restriction —
  /// e.g. by rejection-sampling valid encodings — but as a safety net the
  /// fixed bits are re-applied to whatever it returns.
  using Sampler = std::function<BitVector(Rng&, std::span<const FixedBit>)>;

  /// Called after each iteration with the evaluated batch.
  using IterationCallback = std::function<void(
      std::size_t iteration, std::span<const BitVector> samples,
      std::span<const double> values)>;

  /// True iff the bit pattern is a valid encoding. When provided, candidate
  /// bit-fixing assignments are screened so the restricted subspace still
  /// contains valid designs (the fitted polynomial knows nothing about
  /// encoding validity, and e.g. fixing a 5-bit field to index 31 of a
  /// 31-case parameter would otherwise empty the space).
  using Validator = std::function<bool(const BitVector&)>;

  explicit Harmonica(HarmonicaConfig config = {}) : config_(config) {}

  const HarmonicaConfig& config() const { return config_; }

  HarmonicaResult optimize(std::size_t numBits, const BatchObjective& objective,
                           const Sampler& sampler,
                           const IterationCallback& onIteration = {},
                           const Validator& validator = {}) const;

  /// Scalar-objective compatibility overload: wraps the objective into a
  /// batch (fanning rows across the thread pool when config.parallelEval).
  HarmonicaResult optimize(std::size_t numBits, const Objective& objective,
                           const Sampler& sampler,
                           const IterationCallback& onIteration = {},
                           const Validator& validator = {}) const;

  /// Applies a restriction to a freshly sampled configuration.
  static void applyFixedBits(std::span<const FixedBit> fixed, BitVector& bits);

 private:
  HarmonicaConfig config_;
};

}  // namespace isop::hpo
