#include "hpo/parity_features.hpp"

#include <cassert>

namespace isop::hpo {

std::vector<Monomial> enumerateMonomials(std::span<const std::size_t> positions,
                                         std::size_t maxDegree) {
  std::vector<Monomial> out;
  const std::size_t n = positions.size();
  // Degree 1.
  if (maxDegree >= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back({positions[i]});
  }
  // Degree 2.
  if (maxDegree >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        out.push_back({positions[i], positions[j]});
      }
    }
  }
  // Degree 3 (only used for small position sets; cubic blow-up).
  if (maxDegree >= 3) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          out.push_back({positions[i], positions[j], positions[k]});
        }
      }
    }
  }
  return out;
}

double parityValue(const Monomial& monomial, const BitVector& bits) {
  double v = 1.0;
  for (std::size_t idx : monomial) {
    assert(idx < bits.size());
    v *= bits[idx] ? -1.0 : 1.0;  // 0 -> +1, 1 -> -1
  }
  return v;
}

Matrix parityDesignMatrix(std::span<const BitVector> samples,
                          std::span<const Monomial> monomials) {
  Matrix out(samples.size(), monomials.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    for (std::size_t c = 0; c < monomials.size(); ++c) {
      out(r, c) = parityValue(monomials[c], samples[r]);
    }
  }
  return out;
}

}  // namespace isop::hpo
