// Binary encoding of the discrete design space (Eqs. 4–6 of the paper).
//
// Each parameter's grid index is packed into ceil(log2(cases)) bits; the
// concatenation over all parameters is the Harmonica search domain
// {0,1}^n. Because case counts are generally not powers of two, some bit
// patterns decode to out-of-range indices — those are the "invalid cases"
// the paper excludes from performance evaluation; decode() reports them.
//
// Both plain binary and Gray code are supported (the paper motivates its
// local gradient stage with the Hamming-cliff problem of plain binary,
// e.g. 31 -> 32 flipping all five bits; Gray code is the classic mitigation
// and is exposed here for the ablation bench).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "em/parameter_space.hpp"

namespace isop::hpo {

using BitVector = std::vector<std::uint8_t>;  // each element 0 or 1

enum class BitCoding { Binary, Gray };

class BinaryCodec {
 public:
  explicit BinaryCodec(em::ParameterSpace space, BitCoding coding = BitCoding::Binary);

  const em::ParameterSpace& space() const { return space_; }
  std::size_t totalBits() const { return totalBits_; }
  std::size_t paramCount() const { return space_.dim(); }

  /// Bit range [offset, offset+count) of parameter i in the vector.
  std::size_t bitOffset(std::size_t param) const { return offsets_[param]; }
  std::size_t bitCount(std::size_t param) const { return bits_[param]; }

  /// Encodes an on-grid design (coordinates are snapped to the grid first).
  BitVector encode(const em::StackupParams& p) const;

  /// Decodes a bit pattern; nullopt if any parameter index is out of range
  /// (an "invalid case").
  std::optional<em::StackupParams> decode(const BitVector& bits) const;

  /// Decodes with out-of-range indices clamped to the last valid case —
  /// always succeeds; used where a best-effort design is preferable.
  em::StackupParams decodeClamped(const BitVector& bits) const;

  bool isValid(const BitVector& bits) const { return decode(bits).has_value(); }

  /// Uniform random *valid* bit pattern (samples grid indices, not raw bits,
  /// so the distribution over designs is uniform).
  BitVector sampleValid(Rng& rng) const;

 private:
  std::uint64_t indexFromBits(const BitVector& bits, std::size_t param) const;
  void bitsFromIndex(std::uint64_t index, std::size_t param, BitVector& bits) const;

  em::ParameterSpace space_;
  BitCoding coding_;
  std::vector<std::size_t> bits_;     // per-param bit counts
  std::vector<std::size_t> offsets_;  // per-param bit offsets
  std::size_t totalBits_ = 0;
};

/// Gray-code helpers (exposed for tests).
std::uint64_t binaryToGray(std::uint64_t v);
std::uint64_t grayToBinary(std::uint64_t v);

}  // namespace isop::hpo
