#include "hpo/tpe.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace isop::hpo {

namespace {

/// Discrete Parzen density over grid indices for one dimension: a mixture of
/// triangular kernels centred at the observations plus a uniform floor.
class ParzenDensity {
 public:
  ParzenDensity(std::size_t cases, std::span<const std::size_t> observations,
                double smoothing)
      : cases_(cases), weights_(cases, 0.0) {
    // Bandwidth scales with the grid size and shrinks as data accumulates.
    const double n = static_cast<double>(std::max<std::size_t>(observations.size(), 1));
    bandwidth_ = std::max(1.0, static_cast<double>(cases) / (4.0 + std::sqrt(n)));
    const auto bw = static_cast<std::ptrdiff_t>(std::ceil(bandwidth_));
    for (std::size_t obs : observations) {
      for (std::ptrdiff_t d = -bw; d <= bw; ++d) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(obs) + d;
        if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(cases)) continue;
        const double k = 1.0 - std::abs(static_cast<double>(d)) / (bandwidth_ + 1.0);
        weights_[static_cast<std::size_t>(idx)] += k;
      }
    }
    double total = 0.0;
    for (double w : weights_) total += w;
    const double uniform = smoothing / static_cast<double>(cases);
    for (double& w : weights_) {
      w = (total > 0.0 ? (1.0 - smoothing) * w / total : 0.0) + uniform;
    }
  }

  double pdf(std::size_t index) const { return weights_[index]; }

  std::size_t sample(Rng& rng) const {
    double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < cases_; ++i) {
      acc += weights_[i];
      if (u <= acc) return i;
    }
    return cases_ - 1;
  }

 private:
  std::size_t cases_;
  double bandwidth_ = 1.0;
  std::vector<double> weights_;
};

}  // namespace

TpeResult TpeOptimizer::optimize(const em::ParameterSpace& space,
                                 const Objective& objective) const {
  Rng rng(config_.seed);
  TpeResult result;

  const std::size_t d = space.dim();
  // History as grid indices per dimension + objective values.
  std::vector<std::vector<std::size_t>> historyIdx;  // row per observation
  std::vector<double> historyVal;

  auto evaluate = [&](const em::StackupParams& p) {
    const double v = objective(p);
    ++result.evaluations;
    std::vector<std::size_t> idx(d);
    for (std::size_t j = 0; j < d; ++j) idx[j] = space.range(j).nearestIndex(p.values[j]);
    historyIdx.push_back(std::move(idx));
    historyVal.push_back(v);
    if (v < result.bestValue) {
      result.bestValue = v;
      result.best = p;
    }
  };

  const std::size_t startup = std::min(config_.startupSamples, config_.evaluations);
  for (std::size_t i = 0; i < startup; ++i) evaluate(space.sample(rng));

  while (result.evaluations < config_.evaluations) {
    // Split observations at the gamma quantile.
    std::vector<std::size_t> order(historyVal.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return historyVal[a] < historyVal[b]; });
    const auto goodCount = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.gammaQuantile *
                                    static_cast<double>(order.size())));

    // Per-dimension densities.
    std::vector<ParzenDensity> good, bad;
    good.reserve(d);
    bad.reserve(d);
    std::vector<std::size_t> goodObs, badObs;
    for (std::size_t j = 0; j < d; ++j) {
      goodObs.clear();
      badObs.clear();
      for (std::size_t i = 0; i < order.size(); ++i) {
        (i < goodCount ? goodObs : badObs).push_back(historyIdx[order[i]][j]);
      }
      const std::size_t cases = space.range(j).caseCount();
      good.emplace_back(cases, goodObs, config_.smoothing);
      bad.emplace_back(cases, badObs, config_.smoothing);
    }

    // Draw candidates from l(x), score by log l(x) - log g(x).
    double bestScore = -std::numeric_limits<double>::infinity();
    em::StackupParams bestCandidate{};
    for (std::size_t c = 0; c < config_.candidates; ++c) {
      em::StackupParams candidate{};
      double score = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const std::size_t idx = good[j].sample(rng);
        candidate.values[j] = space.range(j).valueAt(idx);
        score += std::log(good[j].pdf(idx)) - std::log(bad[j].pdf(idx));
      }
      if (score > bestScore) {
        bestScore = score;
        bestCandidate = candidate;
      }
    }
    evaluate(bestCandidate);
  }
  return result;
}

}  // namespace isop::hpo
