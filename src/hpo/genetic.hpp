// Genetic-algorithm baseline over the discrete design grid. The paper's
// related-work section cites GA as the classic metaheuristic for the
// analogous analog-sizing inverse problem; this implementation rounds out
// the baseline roster (random / SA / TPE / GA) for the extended comparison
// bench.
//
// Standard generational GA: tournament selection, uniform crossover on the
// parameter vector, per-gene grid-step mutation, elitism.
#pragma once

#include <functional>
#include <limits>

#include "em/parameter_space.hpp"

namespace isop::hpo {

struct GaConfig {
  std::size_t evaluations = 16000;   ///< total objective calls
  std::size_t populationSize = 80;
  std::size_t tournamentSize = 3;
  double crossoverRate = 0.9;
  double mutationRate = 0.15;        ///< per gene
  std::size_t mutationMaxSteps = 3;  ///< grid steps per mutated gene
  std::size_t elites = 2;
  std::uint64_t seed = 29;
};

struct GaResult {
  em::StackupParams best{};
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
  std::size_t generations = 0;
};

class GeneticAlgorithm {
 public:
  using Objective = std::function<double(const em::StackupParams&)>;

  explicit GeneticAlgorithm(GaConfig config = {}) : config_(config) {}

  const GaConfig& config() const { return config_; }

  GaResult optimize(const em::ParameterSpace& space, const Objective& objective) const;

 private:
  GaConfig config_;
};

}  // namespace isop::hpo
