#include "hpo/simulated_annealing.hpp"

#include <cmath>

namespace isop::hpo {

SaResult SimulatedAnnealing::optimize(const em::ParameterSpace& space,
                                      const Objective& objective) const {
  Rng rng(config_.seed);
  SaResult result;

  em::StackupParams current = space.sample(rng);
  double currentValue = objective(current);
  ++result.evaluations;
  result.best = current;
  result.bestValue = currentValue;

  const std::size_t total = config_.evaluations;
  for (std::size_t iter = 1; iter < total; ++iter) {
    // Linear cooling (as the paper describes its SA), floored to keep the
    // acceptance test well-defined.
    const double progress = static_cast<double>(iter) / static_cast<double>(total);
    const double temperature =
        std::max(config_.initialTemperature * (1.0 - progress), 1e-9);

    // Neighbour: perturb paramsPerMove random coordinates by up to
    // maxStepsPerMove grid steps.
    em::StackupParams candidate = current;
    for (std::size_t m = 0; m < config_.paramsPerMove; ++m) {
      const auto p = static_cast<std::size_t>(rng.below(space.dim()));
      const auto& range = space.range(p);
      const auto cases = static_cast<std::int64_t>(range.caseCount());
      if (cases <= 1) continue;
      auto idx = static_cast<std::int64_t>(range.nearestIndex(candidate.values[p]));
      const auto maxStep = static_cast<std::int64_t>(config_.maxStepsPerMove);
      std::int64_t step = 0;
      while (step == 0) step = rng.range(-maxStep, maxStep);
      idx = std::clamp<std::int64_t>(idx + step, 0, cases - 1);
      candidate.values[p] = range.valueAt(static_cast<std::size_t>(idx));
    }

    const double candidateValue = objective(candidate);
    ++result.evaluations;

    bool accept = candidateValue <= currentValue;
    if (!accept) {
      const double prob = std::exp((currentValue - candidateValue) / temperature);
      accept = rng.uniform() < prob;
    }
    if (accept) {
      current = candidate;
      currentValue = candidateValue;
      ++result.accepted;
      if (currentValue < result.bestValue) {
        result.bestValue = currentValue;
        result.best = current;
      }
    }
  }
  return result;
}

}  // namespace isop::hpo
