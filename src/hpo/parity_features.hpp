// Fourier (parity) monomial features over the boolean cube for Harmonica's
// sparse recovery. A monomial is a subset S of bit positions; its value on a
// bit vector x in {0,1}^n is chi_S(x) = prod_{i in S} (1 - 2 x_i), i.e. the
// parity of the selected bits in the {-1,+1} convention.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "hpo/binary_codec.hpp"

namespace isop::hpo {

/// A monomial: sorted, distinct bit indices (empty = constant term, which is
/// the intercept and therefore not generated here).
using Monomial = std::vector<std::size_t>;

/// All monomials of degree 1..maxDegree over the given bit positions.
/// Count grows as sum_k C(|positions|, k); callers cap positions/degree.
std::vector<Monomial> enumerateMonomials(std::span<const std::size_t> positions,
                                         std::size_t maxDegree);

/// chi_S(x) for one monomial.
double parityValue(const Monomial& monomial, const BitVector& bits);

/// Design matrix: rows = samples, cols = monomials.
Matrix parityDesignMatrix(std::span<const BitVector> samples,
                          std::span<const Monomial> monomials);

}  // namespace isop::hpo
