#include "hpo/harmonica.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace isop::hpo {

void Harmonica::applyFixedBits(std::span<const FixedBit> fixed, BitVector& bits) {
  for (const FixedBit& f : fixed) {
    assert(f.position < bits.size());
    bits[f.position] = f.value;
  }
}

HarmonicaResult Harmonica::optimize(std::size_t numBits, const Objective& objective,
                                    const Sampler& sampler,
                                    const IterationCallback& onIteration,
                                    const Validator& validator) const {
  const BatchObjective batch = [&](std::span<const BitVector> samples,
                                   std::span<double> values) {
    auto evalOne = [&](std::size_t i) { values[i] = objective(samples[i]); };
    if (config_.parallelEval) {
      ThreadPool::global().parallelFor(samples.size(), evalOne);
    } else {
      for (std::size_t i = 0; i < samples.size(); ++i) evalOne(i);
    }
  };
  return optimize(numBits, batch, sampler, onIteration, validator);
}

HarmonicaResult Harmonica::optimize(std::size_t numBits, const BatchObjective& objective,
                                    const Sampler& sampler,
                                    const IterationCallback& onIteration,
                                    const Validator& validator) const {
  HarmonicaResult result;
  Rng rng(config_.seed);
  std::set<std::size_t> fixedPositions;

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    config_.cancel.throwIfCancelled();
    obs::StageSpan iterSpan("harmonica.iteration");
    // 1. Sample q configurations from the restricted space.
    std::vector<BitVector> samples(config_.samplesPerIter);
    for (auto& s : samples) {
      s = sampler(rng, result.fixedBits);
      assert(s.size() == numBits);
      applyFixedBits(result.fixedBits, s);
    }

    // 2. One batched evaluation round (the eval engine dedups and runs one
    // inference pass; the scalar-overload wrapper fans out per row instead).
    std::vector<double> values(samples.size());
    objective(samples, values);

    // Bookkeeping: best-so-far, invalid count.
    std::vector<std::size_t> validIdx;
    validIdx.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (!std::isfinite(values[i])) {
        ++result.invalidSamples;
        continue;
      }
      validIdx.push_back(i);
      ++result.evaluations;
      if (values[i] < result.bestValue) {
        result.bestValue = values[i];
        result.bestBits = samples[i];
      }
    }

    if (onIteration) onIteration(iter, samples, values);
    if (obs::convergence().enabled()) {
      // One record per iteration, even when the restriction step below bails
      // out early — consumers rely on a gap-free monotone iteration index.
      obs::HarmonicaIterationRecord rec;
      rec.iteration = iter;
      rec.bestGhat = std::isfinite(result.bestValue) ? result.bestValue : 0.0;
      rec.evaluations = result.evaluations;
      rec.invalidSamples = result.invalidSamples;
      rec.fixedBits = fixedPositions.size();
      rec.freeBits = numBits - fixedPositions.size();
      obs::convergence().record(rec.toJson());
    }
    if (iter + 1 == config_.iterations) break;  // last round: no restriction
    if (validIdx.size() < 8) {
      log::warn("harmonica: iteration ", iter, " produced only ", validIdx.size(),
                " valid samples; skipping restriction");
      continue;
    }

    // 3. PSR: Lasso over parity features of the free bits.
    std::vector<std::size_t> freeBits;
    freeBits.reserve(numBits - fixedPositions.size());
    for (std::size_t b = 0; b < numBits; ++b) {
      if (!fixedPositions.count(b)) freeBits.push_back(b);
    }
    if (freeBits.empty()) break;
    const auto monomials = enumerateMonomials(freeBits, config_.polyDegree);

    std::vector<BitVector> validSamples;
    std::vector<double> validValues;
    validSamples.reserve(validIdx.size());
    for (std::size_t i : validIdx) {
      validSamples.push_back(samples[i]);
      validValues.push_back(values[i]);
    }
    const Matrix design = parityDesignMatrix(validSamples, monomials);
    const LassoResult lasso = lassoFit(design, validValues, {.lambda = config_.lassoLambda});

    // Rank monomials by |coefficient|; keep the top k nonzero ones, capping
    // the number of distinct bits to enumerate.
    std::vector<std::size_t> order(monomials.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(lasso.coefficients[a]) > std::abs(lasso.coefficients[b]);
    });

    std::vector<std::size_t> chosenMonomials;
    std::set<std::size_t> involved;
    for (std::size_t i : order) {
      if (chosenMonomials.size() >= config_.topMonomials) break;
      if (lasso.coefficients[i] == 0.0) break;
      std::set<std::size_t> candidate = involved;
      candidate.insert(monomials[i].begin(), monomials[i].end());
      if (candidate.size() > config_.maxEnumerationBits) continue;
      involved = std::move(candidate);
      chosenMonomials.push_back(i);
    }
    if (chosenMonomials.empty()) {
      log::debug("harmonica: iteration ", iter, " found no significant monomials");
      continue;
    }

    // 4. Enumerate all assignments of the involved bits, ranked by the
    // fitted polynomial, and fix the best assignment whose restricted
    // subspace still contains valid encodings.
    const std::vector<std::size_t> vars(involved.begin(), involved.end());
    const std::size_t combos = std::size_t{1} << vars.size();
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(combos);
    BitVector probe(numBits, 0);
    for (std::size_t mask = 0; mask < combos; ++mask) {
      for (std::size_t v = 0; v < vars.size(); ++v) {
        probe[vars[v]] = static_cast<std::uint8_t>((mask >> v) & 1u);
      }
      double p = 0.0;
      for (std::size_t mi : chosenMonomials) {
        p += lasso.coefficients[mi] * parityValue(monomials[mi], probe);
      }
      ranked.emplace_back(p, mask);
    }
    std::sort(ranked.begin(), ranked.end());

    auto admitsValidSamples = [&](std::size_t mask, Rng& probeRng) {
      if (!validator) return true;
      std::vector<FixedBit> tentative = result.fixedBits;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        tentative.push_back({vars[v], static_cast<std::uint8_t>((mask >> v) & 1u)});
      }
      for (int attempt = 0; attempt < 12; ++attempt) {
        BitVector bits = sampler(probeRng, tentative);
        applyFixedBits(tentative, bits);
        if (validator(bits)) return true;
      }
      return false;
    };

    bool fixedThisRound = false;
    const std::size_t screenLimit = std::min<std::size_t>(ranked.size(), 64);
    for (std::size_t r = 0; r < screenLimit; ++r) {
      if (!admitsValidSamples(ranked[r].second, rng)) continue;
      const std::size_t bestAssign = ranked[r].second;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        const auto value = static_cast<std::uint8_t>((bestAssign >> v) & 1u);
        result.fixedBits.push_back({vars[v], value});
        fixedPositions.insert(vars[v]);
      }
      fixedThisRound = true;
      break;
    }
    if (!fixedThisRound) {
      log::warn("harmonica: iteration ", iter,
                " found no viable restriction; keeping the space unchanged");
      continue;
    }
    log::debug("harmonica: iteration ", iter, " fixed ", vars.size(), " bits (",
               fixedPositions.size(), "/", numBits, " total), best=", result.bestValue);
  }
  return result;
}

}  // namespace isop::hpo
