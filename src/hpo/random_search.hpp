// Uniform random search over the discrete space — the sanity baseline every
// informed method must beat, and the "naive random sampling" the paper
// compares Hyperband against for local-stage seed selection.
#pragma once

#include <functional>
#include <limits>

#include "em/parameter_space.hpp"

namespace isop::hpo {

struct RandomSearchConfig {
  std::size_t evaluations = 1000;
  std::uint64_t seed = 4;
};

struct RandomSearchResult {
  em::StackupParams best{};
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
};

class RandomSearch {
 public:
  using Objective = std::function<double(const em::StackupParams&)>;

  explicit RandomSearch(RandomSearchConfig config = {}) : config_(config) {}

  RandomSearchResult optimize(const em::ParameterSpace& space,
                              const Objective& objective) const;

 private:
  RandomSearchConfig config_;
};

}  // namespace isop::hpo
