#include "hpo/random_search.hpp"

namespace isop::hpo {

RandomSearchResult RandomSearch::optimize(const em::ParameterSpace& space,
                                          const Objective& objective) const {
  Rng rng(config_.seed);
  RandomSearchResult result;
  for (std::size_t i = 0; i < config_.evaluations; ++i) {
    em::StackupParams candidate = space.sample(rng);
    const double value = objective(candidate);
    ++result.evaluations;
    if (value < result.bestValue) {
      result.bestValue = value;
      result.best = candidate;
    }
  }
  return result;
}

}  // namespace isop::hpo
