#include "hpo/hyperband.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "obs/obs.hpp"

namespace isop::hpo {

std::vector<ScoredConfig> Hyperband::run(const Sampler& sampler, const Eval& eval,
                                         std::size_t keep) const {
  const BatchEval batch = [&](std::span<ScoredConfig> arms, std::size_t resource) {
    for (auto& a : arms) a.value = eval(a.bits, resource);
  };
  return run(sampler, batch, keep);
}

std::vector<ScoredConfig> Hyperband::run(const Sampler& sampler, const BatchEval& eval,
                                         std::size_t keep) const {
  Rng rng(config_.seed);
  const double eta = std::max(config_.eta, 1.5);
  const double r = static_cast<double>(std::max<std::size_t>(config_.maxResource, 1));
  const auto sMax = static_cast<std::size_t>(std::log(r) / std::log(eta));
  const double budget = static_cast<double>(sMax + 1) * r;

  std::vector<ScoredConfig> finalists;

  for (std::size_t s = sMax + 1; s-- > 0;) {
    // Initial arms and resource for this bracket.
    auto n = static_cast<std::size_t>(
        std::ceil(budget / r * std::pow(eta, static_cast<double>(s)) /
                  static_cast<double>(s + 1)));
    double resource = r * std::pow(eta, -static_cast<double>(s));
    n = std::max<std::size_t>(n, 1);

    std::vector<ScoredConfig> arms(n);
    for (auto& a : arms) a.bits = sampler(rng);

    obs::StageSpan bracketSpan("hyperband.bracket");
    for (std::size_t round = 0; round <= s; ++round) {
      config_.cancel.throwIfCancelled();
      const auto res = static_cast<std::size_t>(
          std::max(1.0, std::floor(resource * std::pow(eta, static_cast<double>(round)))));
      eval(std::span<ScoredConfig>(arms), res);
      std::sort(arms.begin(), arms.end(),
                [](const ScoredConfig& x, const ScoredConfig& y) { return x.value < y.value; });
      const auto keepCount = static_cast<std::size_t>(
          std::floor(static_cast<double>(arms.size()) / eta));
      const bool last = round == s || keepCount == 0;
      if (obs::convergence().enabled()) {
        obs::HyperbandRoundRecord rec;
        rec.bracket = s;
        rec.round = round;
        rec.resource = res;
        rec.arms = arms.size();
        rec.survivors = last ? arms.size() : std::max<std::size_t>(keepCount, 1);
        rec.bestValue = arms.front().value;
        obs::convergence().record(rec.toJson());
      }
      if (last) break;
      arms.resize(std::max<std::size_t>(keepCount, 1));
    }
    finalists.insert(finalists.end(), arms.begin(), arms.end());
  }

  std::sort(finalists.begin(), finalists.end(),
            [](const ScoredConfig& x, const ScoredConfig& y) { return x.value < y.value; });
  if (finalists.size() > keep) finalists.resize(keep);
  return finalists;
}

}  // namespace isop::hpo
