// Tree-structured Parzen estimator (Bergstra et al., 2011) — the Bayesian
// optimization baseline. The paper uses Optuna, whose default sampler is
// TPE; this is a from-scratch implementation over the discrete design grid.
//
// Observations are split at the gamma-quantile of the objective into "good"
// and "bad" sets; per dimension, each set is modelled with a discrete Parzen
// window (triangular kernel over grid indices plus a uniform smoothing
// floor). Candidates are drawn from the good-set density l(x) and ranked by
// the acquisition ratio l(x)/g(x); the best candidate is evaluated next.
// Deliberately sequential — one evaluation per iteration — matching the
// paper's "BO is hard to parallelize" runtime comparison.
#pragma once

#include <functional>
#include <limits>

#include "em/parameter_space.hpp"

namespace isop::hpo {

struct TpeConfig {
  std::size_t evaluations = 450;
  std::size_t startupSamples = 20;  ///< random before the model kicks in
  double gammaQuantile = 0.25;      ///< good/bad split point
  std::size_t candidates = 24;      ///< EI candidates per iteration
  double smoothing = 0.05;          ///< uniform mixture floor per dimension
  std::uint64_t seed = 5;
};

struct TpeResult {
  em::StackupParams best{};
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
};

class TpeOptimizer {
 public:
  using Objective = std::function<double(const em::StackupParams&)>;

  explicit TpeOptimizer(TpeConfig config = {}) : config_(config) {}

  const TpeConfig& config() const { return config_; }

  TpeResult optimize(const em::ParameterSpace& space, const Objective& objective) const;

 private:
  TpeConfig config_;
};

}  // namespace isop::hpo
