// Gradient-descent local exploration (Algorithm 1, lines 9–12): the p
// candidates surviving the global stage are decoded to the continuous domain
// and refined as one Adam batch against the smoothed surrogate objective.
//
// Optimization runs in normalized coordinates u in [0,1]^d mapped affinely
// onto each parameter's [lo, hi] — the raw parameters span ~10 orders of
// magnitude (Df ~ 1e-3 vs sigma ~ 5.8e7), so a shared learning rate is only
// meaningful after normalization. Iterates are clamped into the box.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/cancellation.hpp"
#include "common/matrix.hpp"
#include "em/parameter_space.hpp"
#include "ml/nn/adam.hpp"

namespace isop::hpo {

struct RefineConfig {
  std::size_t epochs = 60;
  double learningRate = 0.02;  ///< in normalized [0,1] coordinates
  ml::nn::AdamConfig adam{};   ///< beta/epsilon knobs (learningRate ignored)
  /// Checked at the top of every epoch; a cancelled token makes refine()
  /// throw OperationCancelled. Inert by default.
  CancelToken cancel{};
};

struct RefineResult {
  std::vector<em::StackupParams> refined;  ///< same order as the input seeds
  std::vector<double> values;              ///< final objective values
  std::size_t gradientEvaluations = 0;
};

class AdamRefiner {
 public:
  /// Returns the objective value at x and writes dObjective/dx (raw
  /// parameter units) into grad.
  using ObjectiveWithGrad =
      std::function<double(const em::StackupParams& x, std::span<double> grad)>;

  /// Batched form: fills values[i] and grads.row(i) (resized to
  /// (xs.size(), kNumParams)) for every seed of an epoch in one call — the
  /// eval layer batches the p surrogate forward passes.
  using BatchObjectiveWithGrad = std::function<void(
      std::span<const em::StackupParams> xs, std::span<double> values, Matrix& grads)>;

  explicit AdamRefiner(RefineConfig config = {}) : config_(config) {}

  const RefineConfig& config() const { return config_; }

  /// Refines the seeds inside `space`'s bounding box (continuous, not yet
  /// snapped to the grid — rounding happens in the roll-out stage, Eq. 6).
  RefineResult refine(const em::ParameterSpace& space,
                      std::span<const em::StackupParams> seeds,
                      const BatchObjectiveWithGrad& objective) const;

  /// Scalar-objective compatibility overload (wraps into a per-seed loop).
  RefineResult refine(const em::ParameterSpace& space,
                      std::span<const em::StackupParams> seeds,
                      const ObjectiveWithGrad& objective) const;

 private:
  RefineConfig config_;
};

}  // namespace isop::hpo
