// Repeat-trial experiment harness behind Tables IV, V, VII and VIII: runs a
// method (ISOP+ / ISOP variants / SA / BO / random search) n times with
// distinct seeds against a task+space, validates each trial's final
// candidates with the EM simulator, and aggregates the paper's statistics
// (success rate, runtime, samples seen, dZ, L, NEXT, FoM).
//
// All baselines use the same ML surrogate and the same smoothed objective
// ghat with uniform initial weights, exactly as in Section IV-A; like the
// paper, each trial's final answer is selected by three EM validation
// simulations of the best surrogate-ranked candidates.
#pragma once

#include <memory>
#include <string>

#include "core/isop.hpp"

namespace isop::core {

struct MethodSpec {
  enum class Kind { Isop, SimulatedAnnealing, Tpe, RandomSearch, Genetic };

  std::string name;                  ///< row label ("ISOP+", "SA-1", "BO-2", ...)
  Kind kind = Kind::Isop;
  IsopConfig isop{};                 ///< used when kind == Isop
  std::size_t evalBudget = 16000;    ///< surrogate evaluations for baselines
  std::size_t rolloutCandidates = 3; ///< EM validations per trial
};

/// Per-trial outcome: the EM-validated final design.
struct TrialOutcome {
  em::StackupParams params{};
  em::PerformanceMetrics metrics{};
  double fom = 0.0;
  double g = 0.0;
  bool success = false;          ///< all constraints met (EM-validated)
  std::size_t samplesSeen = 0;   ///< surrogate queries
  std::size_t emCalls = 0;       ///< accurate simulator calls this trial
  double runtimeSeconds = 0.0;   ///< algo wall time + modeled EM solver time
  EvalEngineStats evalStats{};   ///< this trial's engine traffic (delta)
  /// All EM-validated roll-out candidates of the trial, ranked (feasible
  /// first, ascending g). Filled for ISOP trials — the serve subsystem
  /// streams these as the final ranked-designs result; empty for baselines
  /// (params above is still their best design).
  std::vector<IsopCandidate> candidates;
};

struct TrialStats {
  std::string method;
  std::size_t trials = 0;
  std::size_t successes = 0;
  double avgRuntime = 0.0;
  double avgSamples = 0.0;
  double dzMean = 0.0, dzStdev = 0.0;      ///< |Z - Zo| of the final designs
  double lMean = 0.0, lStdev = 0.0;
  double nextMean = 0.0, nextStdev = 0.0;
  double fomMean = 0.0, fomStdev = 0.0;
  double avgEmCalls = 0.0;
  std::vector<TrialOutcome> outcomes;

  /// Flat metrics snapshot taken right after the trials finished (empty when
  /// the runner's ObsConfig leaves metrics off).
  obs::MetricsSnapshot obsMetrics;
};

class TrialRunner {
 public:
  TrialRunner(const em::EmSimulator& simulator,
              std::shared_ptr<const ml::Surrogate> surrogate,
              em::ParameterSpace space, Task task);

  /// Observability for the whole experiment: run() wraps the trials in an
  /// obs::Session with this config, labels per-method counters
  /// ("trial.runs{method=...}"), and snapshots the registry into
  /// TrialStats::obsMetrics. Default: all off.
  void setObsConfig(obs::ObsConfig config) { obs_ = std::move(config); }
  const obs::ObsConfig& obsConfig() const { return obs_; }

  /// Lends run() an externally owned EvalEngine (it must wrap the same
  /// surrogate + simulator) instead of constructing a per-run one. The serve
  /// SessionManager uses this to share one memo cache across every job that
  /// targets the same (surrogate, space) pair, so concurrent jobs warm-start
  /// from each other's evaluations. Results are unchanged — memo hits return
  /// the exact cached model output and are still billed as queries.
  void setSharedEngine(std::shared_ptr<EvalEngine> engine) {
    sharedEngine_ = std::move(engine);
  }

  /// Cooperative cancellation: checked between trials and forwarded into
  /// every optimizer iteration loop; a cancelled run() throws
  /// OperationCancelled within one iteration. Inert by default.
  void setCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// Runs `trials` repetitions of `method`; trial t uses seed baseSeed + t.
  /// One EvalEngine (and thus one memo cache) is shared across all trials of
  /// the method, so later trials warm-start from earlier trials' memoized
  /// forward evaluations. Results are identical to per-trial engines: memo
  /// hits return the exact cached model output and are still billed as
  /// queries, so every trial's designs and "samples seen" are unchanged —
  /// only TrialOutcome::evalStats.memoHits (and wall time) move.
  TrialStats run(const MethodSpec& method, std::size_t trials,
                 std::uint64_t baseSeed = 100) const;

 private:
  TrialOutcome runIsopTrial(const MethodSpec& method, std::uint64_t seed,
                            const std::shared_ptr<EvalEngine>& engine) const;
  TrialOutcome runBaselineTrial(const MethodSpec& method, std::uint64_t seed,
                                const std::shared_ptr<EvalEngine>& engine) const;

  const em::EmSimulator* simulator_;
  std::shared_ptr<const ml::Surrogate> surrogate_;
  em::ParameterSpace space_;
  Task task_;
  obs::ObsConfig obs_{};
  std::shared_ptr<EvalEngine> sharedEngine_;
  CancelToken cancel_{};
};

/// FoM improvement of `ours` over `theirs` per Eq. 12, in percent.
double fomImprovementPercent(double theirsFom, double oursFom);

}  // namespace isop::core
