// SimulatorSurrogate: presents the exact EM model M(x) behind the Surrogate
// interface M̂(x), with central-difference input gradients.
//
// Used by tests (an oracle surrogate isolates optimizer behaviour from
// surrogate error) and by the "no-ML" ablation: running ISOP+ with the
// simulator in the search loop shows what the ML surrogate buys.
//
// Queries use the *uncounted* evaluation path — when this class stands in
// for the cheap proxy, its calls must not be billed as EM solver time.
#pragma once

#include "em/simulator.hpp"
#include "ml/surrogate.hpp"

namespace isop::core {

class SimulatorSurrogate final : public ml::Surrogate {
 public:
  explicit SimulatorSurrogate(const em::EmSimulator& simulator,
                              double relativeStep = 1e-4)
      : simulator_(&simulator), relativeStep_(relativeStep) {}

  std::size_t inputDim() const override { return em::kNumParams; }
  std::size_t outputDim() const override { return em::kNumMetrics; }

  void predict(std::span<const double> x, std::span<double> out) const override;

  /// Row loop over the uncounted oracle with one countQuery(rows); kept
  /// serial so the eval engine's chunk fan-out stays the only parallelism.
  void predictBatch(const Matrix& x, Matrix& out) const override;

  bool hasInputGradient() const override { return true; }
  void inputGradient(std::span<const double> x, std::size_t outputIndex,
                     std::span<double> grad) const override;

 private:
  const em::EmSimulator* simulator_;
  double relativeStep_;
};

}  // namespace isop::core
