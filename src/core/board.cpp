#include "core/board.hpp"

#include "common/logging.hpp"
#include "core/simulator_surrogate.hpp"

namespace isop::core {

BoardDesigner::BoardDesigner(IsopConfig baseConfig, SurrogateFactory factory)
    : baseConfig_(std::move(baseConfig)), factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [](const LayerSpec&, const em::EmSimulator& simulator) {
      return std::make_shared<SimulatorSurrogate>(simulator);
    };
  }
}

BoardResult BoardDesigner::design(std::span<const LayerSpec> layers) const {
  BoardResult board;
  board.layers.reserve(layers.size());
  std::size_t index = 0;
  for (const LayerSpec& layer : layers) {
    const em::EmSimulator simulator(layer.simulator);
    auto surrogate = factory_(layer, simulator);

    IsopConfig cfg = baseConfig_;
    cfg.seed = baseConfig_.seed + index;
    const IsopOptimizer optimizer(simulator, surrogate, layer.space, layer.task, cfg);

    LayerResult result;
    result.name = layer.name;
    result.optimization = optimizer.run();
    const IsopCandidate& best = result.optimization.best();
    result.feasible = best.feasible;
    result.fom = best.fom;
    if (result.feasible) ++board.feasibleLayers;
    board.totalAlgoSeconds += result.optimization.algoSeconds;
    board.totalModeledSeconds += result.optimization.modeledSeconds;
    log::info("board: layer '", layer.name, "' ", result.feasible ? "ok" : "INFEASIBLE",
              " fom=", result.fom);
    board.layers.push_back(std::move(result));
    ++index;
  }
  return board;
}

}  // namespace isop::core
