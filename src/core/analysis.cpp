#include "core/analysis.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace isop::core {

namespace {
bool isDimension(std::size_t param) {
  using em::Param;
  switch (static_cast<Param>(param)) {
    case Param::Wt:
    case Param::St:
    case Param::Dt:
    case Param::Et:
    case Param::Ht:
    case Param::Hc:
    case Param::Hp:
      return true;
    default:
      return false;
  }
}
}  // namespace

YieldReport yieldAnalysis(const em::EmSimulator& simulator, const Objective& objective,
                          const em::StackupParams& design,
                          const ToleranceModel& tolerances, std::size_t samples,
                          std::uint64_t seed) {
  YieldReport report;
  report.samples = samples;
  report.nominal = simulator.evaluateUncounted(design);

  double zTarget = 0.0;
  bool hasZ = false;
  for (const auto& oc : objective.spec().outputConstraints) {
    if (oc.metric == em::Metric::Z) {
      zTarget = oc.target;
      hasZ = true;
    }
  }

  Rng rng(seed);
  stats::Accumulator fom;
  report.worstL = report.nominal.l;
  report.worstNext = report.nominal.next;
  for (std::size_t i = 0; i < samples; ++i) {
    em::StackupParams perturbed = design;
    for (std::size_t j = 0; j < em::kNumParams; ++j) {
      if (j == static_cast<std::size_t>(em::Param::Rt)) {
        perturbed.values[j] += (tolerances.roughnessAbs / 3.0) * rng.normal();
      } else {
        const double rel =
            isDimension(j) ? tolerances.dimensionRel : tolerances.materialRel;
        perturbed.values[j] *= 1.0 + (rel / 3.0) * rng.normal();
      }
    }
    const em::PerformanceMetrics m = simulator.evaluateUncounted(perturbed);
    if (objective.feasible(m, perturbed)) ++report.passed;
    if (hasZ) report.worstDz = std::max(report.worstDz, std::abs(m.z - zTarget));
    report.worstL = std::min(report.worstL, m.l);
    report.worstNext = std::min(report.worstNext, m.next);
    fom.add(objective.fomValue(m));
  }
  report.yield = samples ? static_cast<double>(report.passed) /
                               static_cast<double>(samples)
                         : 0.0;
  report.fomMean = fom.mean();
  report.fomStdev = fom.stdev();
  return report;
}

std::array<SensitivityRow, em::kNumParams> sensitivityAnalysis(
    const em::EmSimulator& simulator, const em::ParameterSpace& space,
    const em::StackupParams& design) {
  std::array<SensitivityRow, em::kNumParams> rows{};
  for (std::size_t j = 0; j < em::kNumParams; ++j) {
    rows[j].param = j;
    const double h = space.range(j).step;
    em::StackupParams up = design, down = design;
    up.values[j] += h;
    down.values[j] -= h;
    const auto mUp = simulator.evaluateUncounted(up);
    const auto mDown = simulator.evaluateUncounted(down);
    // Per +1 grid step (half the central difference span).
    rows[j].dZ = (mUp.z - mDown.z) / 2.0;
    rows[j].dL = (mUp.l - mDown.l) / 2.0;
    rows[j].dNext = (mUp.next - mDown.next) / 2.0;
  }
  return rows;
}

}  // namespace isop::core
