// Adapter binding an Objective to a performance model (ML surrogate or the
// EM simulator behind the Surrogate interface): evaluates ghat/g on design
// points or on Harmonica bit vectors, provides the chained gradient for the
// local stage, and optionally records each evaluated batch so the adaptive
// weight adjustment (Alg. 2) can observe per-constraint statistics without
// re-querying the model.
#pragma once

#include <mutex>
#include <vector>

#include "core/objective.hpp"
#include "hpo/binary_codec.hpp"
#include "ml/ensemble_surrogate.hpp"
#include "ml/surrogate.hpp"

namespace isop::core {

class SurrogateObjective {
 public:
  /// `smooth` selects ghat (Eq. 9/10) vs plain g (Eq. 8) for the search
  /// stages. The objective is held by reference: weight updates made by
  /// AdaptiveWeights are visible to subsequent evaluations.
  SurrogateObjective(Objective& objective, const ml::Surrogate& model, bool smooth = true);

  em::PerformanceMetrics predict(const em::StackupParams& x) const;

  /// Objective value at a design point (thread-safe).
  double evaluate(const em::StackupParams& x) const;

  /// Objective value for an encoded configuration; +inf for invalid bit
  /// patterns (the paper's "invalid cases" exclusion).
  double evaluateBits(const hpo::BinaryCodec& codec, const hpo::BitVector& bits) const;

  /// Value plus d(objective)/dx via the surrogate's input gradients.
  /// Requires model.hasInputGradient().
  double evaluateWithGradient(const em::StackupParams& x, std::span<double> grad) const;

  /// Uncertainty penalty (extension): when the model is an
  /// ml::EnsembleSurrogate and weight > 0, evaluate() adds
  /// weight * sum_j sigma_j(x) / scale_j to the objective, where sigma is
  /// the ensemble disagreement and scale_j the constraint tolerance (or 1
  /// for unconstrained metrics). Steers the search away from regions the
  /// surrogate does not actually know — the optimizer otherwise exploits
  /// exactly the pockets where the model is optimistically wrong. The
  /// penalty is value-only (not propagated through the gradient path).
  void setUncertaintyPenalty(double weight);

  /// When recording, every evaluate() appends (metrics, design) to an
  /// internal batch retrievable with drainBatch() — used between Harmonica
  /// iterations by the weight adapter.
  void setRecording(bool on) { recording_ = on; }
  void drainBatch(std::vector<em::PerformanceMetrics>& metrics,
                  std::vector<em::StackupParams>& designs) const;

  const Objective& objective() const { return *objective_; }
  Objective& objective() { return *objective_; }
  const ml::Surrogate& model() const { return *model_; }

 private:
  double uncertaintyTerm(const em::StackupParams& x) const;

  Objective* objective_;
  const ml::Surrogate* model_;
  const ml::EnsembleSurrogate* ensemble_ = nullptr;  // set iff model is one
  double uncertaintyWeight_ = 0.0;
  bool smooth_;
  bool recording_ = false;
  mutable std::mutex batchMutex_;
  mutable std::vector<em::PerformanceMetrics> batchMetrics_;
  mutable std::vector<em::StackupParams> batchDesigns_;
};

}  // namespace isop::core
