// Adapter binding an Objective to a performance model (ML surrogate or the
// EM simulator behind the Surrogate interface): evaluates ghat/g on design
// points or on Harmonica bit vectors, provides the chained gradient for the
// local stage, and optionally records each evaluated batch so the adaptive
// weight adjustment (Alg. 2) can observe per-constraint statistics without
// re-querying the model.
//
// All model queries flow through an EvalEngine (core/eval): scalar calls go
// through its memo cache, the *Batch entry points additionally dedup the
// batch and dispatch the unique rows as one predictBatch. Several adapters
// may share one engine (the roll-out repair objective reuses the search
// objective's engine — the cached quantity is the model output, which does
// not depend on the adapter's weights).
#pragma once

#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/eval/eval_engine.hpp"
#include "core/objective.hpp"
#include "hpo/binary_codec.hpp"
#include "ml/ensemble_surrogate.hpp"
#include "ml/surrogate.hpp"

namespace isop::core {

class SurrogateObjective {
 public:
  /// `smooth` selects ghat (Eq. 9/10) vs plain g (Eq. 8) for the search
  /// stages. The objective is held by reference: weight updates made by
  /// AdaptiveWeights are visible to subsequent evaluations.
  ///
  /// `engine` routes the model queries; it must wrap the same `model`. A
  /// null engine constructs a private one with default EvalEngineConfig.
  SurrogateObjective(Objective& objective, const ml::Surrogate& model, bool smooth = true,
                     std::shared_ptr<EvalEngine> engine = nullptr);

  em::PerformanceMetrics predict(const em::StackupParams& x) const;

  /// Objective value at a design point (thread-safe).
  double evaluate(const em::StackupParams& x) const;

  /// Objective value for an encoded configuration; +inf for invalid bit
  /// patterns (the paper's "invalid cases" exclusion).
  double evaluateBits(const hpo::BinaryCodec& codec, const hpo::BitVector& bits) const;

  /// Value plus d(objective)/dx via the surrogate's input gradients.
  /// Requires model.hasInputGradient().
  double evaluateWithGradient(const em::StackupParams& x, std::span<double> grad) const;

  /// Batch forms of the three entry points above: one engine round-trip
  /// (dedup + memo + batched inference) instead of per-row queries. Results
  /// and query accounting match a scalar loop exactly.
  void evaluateBatch(std::span<const em::StackupParams> xs, std::span<double> out) const;
  void evaluateBitsBatch(const hpo::BinaryCodec& codec,
                         std::span<const hpo::BitVector> bits,
                         std::span<double> out) const;
  /// values[i] and grads.row(i) get ghat / its gradient at xs[i]; grads is
  /// resized to (xs.size(), kNumParams).
  void evaluateWithGradientBatch(std::span<const em::StackupParams> xs,
                                 std::span<double> values, Matrix& grads) const;

  /// Uncertainty penalty (extension): when the model is an
  /// ml::EnsembleSurrogate and weight > 0, evaluate() adds
  /// weight * sum_j sigma_j(x) / scale_j to the objective, where sigma is
  /// the ensemble disagreement and scale_j the constraint tolerance (or 1
  /// for unconstrained metrics). Steers the search away from regions the
  /// surrogate does not actually know — the optimizer otherwise exploits
  /// exactly the pockets where the model is optimistically wrong. The
  /// penalty is value-only (not propagated through the gradient path).
  void setUncertaintyPenalty(double weight);

  /// When recording, every evaluate() appends (metrics, design) to an
  /// internal batch retrievable with drainBatch() — used between Harmonica
  /// iterations by the weight adapter.
  void setRecording(bool on) { recording_ = on; }
  void drainBatch(std::vector<em::PerformanceMetrics>& metrics,
                  std::vector<em::StackupParams>& designs) const;

  const Objective& objective() const { return *objective_; }
  Objective& objective() { return *objective_; }
  const ml::Surrogate& model() const { return *model_; }
  const std::shared_ptr<EvalEngine>& engine() const { return engine_; }

 private:
  double uncertaintyTerm(const em::StackupParams& x) const;

  Objective* objective_;
  const ml::Surrogate* model_;
  std::shared_ptr<EvalEngine> engine_;
  const ml::EnsembleSurrogate* ensemble_ = nullptr;  // set iff model is one
  double uncertaintyWeight_ = 0.0;
  bool smooth_;
  bool recording_ = false;
  // The recording buffer is the adapter's only mutable shared state: the
  // gradient path itself is lock-free (per-call workspaces in the model's
  // backward kernels). Ranked with the memo shards: both sit under the
  // engine round-trip, neither is ever held while the other is taken.
  mutable AnnotatedMutex batchMutex_{"core.surrogate_batch",
                                     lock_order::rank::kMemoShard};
  mutable std::vector<em::PerformanceMetrics> batchMetrics_ ISOP_GUARDED_BY(batchMutex_);
  mutable std::vector<em::StackupParams> batchDesigns_ ISOP_GUARDED_BY(batchMutex_);
};

}  // namespace isop::core
