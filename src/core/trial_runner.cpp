#include "core/trial_runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "hpo/genetic.hpp"
#include "hpo/simulated_annealing.hpp"
#include "hpo/tpe.hpp"
#include "hpo/random_search.hpp"

namespace isop::core {

namespace {

/// Keeps the k best distinct designs seen by a sequential baseline search.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  void offer(const em::StackupParams& p, double value) {
    for (auto& e : entries_) {
      if (e.params.values == p.values) {
        e.value = std::min(e.value, value);
        return;
      }
    }
    entries_.push_back({p, value});
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });
    if (entries_.size() > k_) entries_.resize(k_);
  }

  std::vector<em::StackupParams> designs() const {
    std::vector<em::StackupParams> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.params);
    return out;
  }

 private:
  struct Entry {
    em::StackupParams params;
    double value;
  };
  std::size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace

double fomImprovementPercent(double theirsFom, double oursFom) {
  if (theirsFom == 0.0) return 0.0;
  return 100.0 * (theirsFom - oursFom) / theirsFom;
}

TrialRunner::TrialRunner(const em::EmSimulator& simulator,
                         std::shared_ptr<const ml::Surrogate> surrogate,
                         em::ParameterSpace space, Task task)
    : simulator_(&simulator),
      surrogate_(std::move(surrogate)),
      space_(std::move(space)),
      task_(std::move(task)) {}

TrialOutcome TrialRunner::runIsopTrial(const MethodSpec& method, std::uint64_t seed,
                                       const std::shared_ptr<EvalEngine>& engine) const {
  IsopConfig cfg = method.isop;
  cfg.seed = seed;
  cfg.candNum = method.rolloutCandidates;
  cfg.cancel = cancel_;
  IsopOptimizer optimizer(*simulator_, surrogate_, space_, task_, cfg);
  optimizer.setSharedEngine(engine);
  IsopResult result = optimizer.run();

  TrialOutcome outcome;
  const IsopCandidate& best = result.best();
  outcome.params = best.params;
  outcome.metrics = best.metrics;
  outcome.fom = best.fom;
  outcome.g = best.g;
  outcome.success = best.feasible;
  outcome.samplesSeen = result.surrogateQueries;
  outcome.emCalls = result.simulatorCalls;
  outcome.runtimeSeconds = result.modeledSeconds;
  outcome.evalStats = result.evalStats;
  outcome.candidates = std::move(result.candidates);
  return outcome;
}

TrialOutcome TrialRunner::runBaselineTrial(const MethodSpec& method, std::uint64_t seed,
                                           const std::shared_ptr<EvalEngine>& engine) const {
  Timer timer;
  surrogate_->resetQueryCount();
  const std::size_t simBefore = simulator_->callCount();
  const double simSecondsBefore = simulator_->modeledSeconds();
  const EvalEngineStats engineStatsBefore = engine->stats();

  Objective objective(task_.spec);
  const SurrogateObjective searchObjective(objective, *surrogate_, /*smooth=*/true, engine);
  TopKCollector collector(method.rolloutCandidates);
  auto tracked = [&](const em::StackupParams& p) {
    cancel_.throwIfCancelled();
    const double v = searchObjective.evaluate(p);
    collector.offer(p, v);
    return v;
  };

  switch (method.kind) {
    case MethodSpec::Kind::SimulatedAnnealing: {
      hpo::SaConfig cfg;
      cfg.evaluations = method.evalBudget;
      cfg.seed = seed;
      hpo::SimulatedAnnealing(cfg).optimize(space_, tracked);
      break;
    }
    case MethodSpec::Kind::Tpe: {
      hpo::TpeConfig cfg;
      cfg.evaluations = method.evalBudget;
      cfg.seed = seed;
      hpo::TpeOptimizer(cfg).optimize(space_, tracked);
      break;
    }
    case MethodSpec::Kind::RandomSearch: {
      hpo::RandomSearchConfig cfg;
      cfg.evaluations = method.evalBudget;
      cfg.seed = seed;
      hpo::RandomSearch(cfg).optimize(space_, tracked);
      break;
    }
    case MethodSpec::Kind::Genetic: {
      hpo::GaConfig cfg;
      cfg.evaluations = method.evalBudget;
      cfg.seed = seed;
      hpo::GeneticAlgorithm(cfg).optimize(space_, tracked);
      break;
    }
    case MethodSpec::Kind::Isop:
      break;  // handled elsewhere
  }
  const double searchSeconds = timer.lap();

  // EM-validated roll-out of the top candidates, like ISOP+'s stage 3.
  TrialOutcome outcome;
  bool first = true;
  for (const auto& design : collector.designs()) {
    const em::PerformanceMetrics m = simulator_->simulate(design);
    const double g = objective.gValue(m, design);
    const bool feasible = objective.feasible(m, design);
    const bool better =
        first || (feasible && !outcome.success) ||
        (feasible == outcome.success && g < outcome.g);
    if (better) {
      outcome.params = design;
      outcome.metrics = m;
      outcome.g = g;
      outcome.fom = objective.fomValue(m);
      outcome.success = feasible;
      first = false;
    }
  }
  outcome.samplesSeen = surrogate_->queryCount();
  outcome.emCalls = simulator_->callCount() - simBefore;
  outcome.evalStats = engine->stats() - engineStatsBefore;
  if (obs::metricsEnabled()) {
    obs::Registry& reg = obs::registry();
    reg.histogram("trial.search.seconds").record(searchSeconds);
    reg.histogram("trial.rollout.seconds").record(timer.lap());
  }
  outcome.runtimeSeconds =
      timer.seconds() + (simulator_->modeledSeconds() - simSecondsBefore);
  return outcome;
}

TrialStats TrialRunner::run(const MethodSpec& method, std::size_t trials,
                            std::uint64_t baseSeed) const {
  // The runner's session wraps every trial; per-trial IsopOptimizer sessions
  // are all-off by construction here, so they nest as no-ops.
  obs::Session session(obs_);
  obs::StageSpan runSpan("trial_runner.run");
  TrialStats stats;
  stats.method = method.name;
  stats.trials = trials;

  // One engine for all trials of this method: the memo cache (model outputs
  // keyed on exact design vectors) carries across trials, so repeated designs
  // — shared task targets pull every seed toward the same grid points — are
  // served from cache in later trials. Per-trial deltas land in
  // TrialOutcome::evalStats via the snapshots the trial helpers take.
  const auto engine = sharedEngine_ != nullptr
                          ? sharedEngine_
                          : std::make_shared<EvalEngine>(*surrogate_, *simulator_,
                                                         method.isop.evalEngine);

  std::vector<double> dz, l, next, fom, runtime, samples, emCalls;
  const double zTarget = [&] {
    for (const auto& oc : task_.spec.outputConstraints) {
      if (oc.metric == em::Metric::Z) return oc.target;
    }
    return 0.0;
  }();

  for (std::size_t t = 0; t < trials; ++t) {
    cancel_.throwIfCancelled();
    const std::uint64_t seed = baseSeed + t;
    TrialOutcome outcome = method.kind == MethodSpec::Kind::Isop
                               ? runIsopTrial(method, seed, engine)
                               : runBaselineTrial(method, seed, engine);
    if (outcome.success) ++stats.successes;
    dz.push_back(std::abs(outcome.metrics.z - zTarget));
    l.push_back(outcome.metrics.l);
    next.push_back(outcome.metrics.next);
    fom.push_back(outcome.fom);
    runtime.push_back(outcome.runtimeSeconds);
    samples.push_back(static_cast<double>(outcome.samplesSeen));
    emCalls.push_back(static_cast<double>(outcome.emCalls));
    if (obs::metricsEnabled()) {
      obs::Registry& reg = obs::registry();
      reg.counter(obs::Registry::labeled("trial.runs", "method", method.name)).add();
      if (outcome.success) {
        reg.counter(obs::Registry::labeled("trial.successes", "method", method.name)).add();
      }
      reg.histogram("trial.runtime.seconds").record(outcome.runtimeSeconds);
    }
    stats.outcomes.push_back(std::move(outcome));
  }

  stats.avgRuntime = stats::mean(runtime);
  stats.avgSamples = stats::mean(samples);
  stats.dzMean = stats::mean(dz);
  stats.dzStdev = stats::stdev(dz);
  stats.lMean = stats::mean(l);
  stats.lStdev = stats::stdev(l);
  stats.nextMean = stats::mean(next);
  stats.nextStdev = stats::stdev(next);
  stats.fomMean = stats::mean(fom);
  stats.fomStdev = stats::stdev(fom);
  stats.avgEmCalls = stats::mean(emCalls);
  if (obs::metricsEnabled()) {
    obs::captureThreadPoolStats();
    stats.obsMetrics = obs::registry().snapshot();
  }
  return stats;
}

}  // namespace isop::core
