#include "core/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace isop::core {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool noWorse =
      a.lossMagnitude <= b.lossMagnitude && a.nextMagnitude <= b.nextMagnitude;
  const bool better =
      a.lossMagnitude < b.lossMagnitude || a.nextMagnitude < b.nextMagnitude;
  return noWorse && better;
}

ParetoExplorer::ParetoExplorer(const em::EmSimulator& simulator,
                               std::shared_ptr<const ml::Surrogate> surrogate,
                               em::ParameterSpace space, Task baseTask,
                               ParetoConfig config)
    : simulator_(&simulator),
      surrogate_(std::move(surrogate)),
      space_(std::move(space)),
      baseTask_(std::move(baseTask)),
      config_(std::move(config)) {}

ParetoFront ParetoExplorer::explore() const {
  ParetoFront front;
  std::vector<ParetoPoint> candidates;

  for (std::size_t i = 0; i < config_.nextWeights.size(); ++i) {
    const double w = config_.nextWeights[i];
    Task task = baseTask_;
    task.spec.fom = {{em::Metric::L, 1.0}};
    if (w > 0.0) task.spec.fom.push_back({em::Metric::Next, w});

    IsopConfig cfg = config_.isop;
    cfg.seed = config_.baseSeed + i;
    const IsopOptimizer optimizer(*simulator_, surrogate_, space_, task, cfg);
    const IsopResult result = optimizer.run();
    ++front.sweepRuns;

    // Every EM-validated candidate is a potential frontier point.
    for (const auto& c : result.candidates) {
      if (!c.feasible) {
        ++front.infeasibleDropped;
        continue;
      }
      ParetoPoint point;
      point.params = c.params;
      point.metrics = c.metrics;
      point.lossMagnitude = std::abs(c.metrics.l);
      point.nextMagnitude = std::abs(c.metrics.next);
      point.weight = w;
      candidates.push_back(std::move(point));
    }
  }

  // Non-dominated filter.
  for (const auto& candidate : candidates) {
    bool isDominated = false;
    for (const auto& other : candidates) {
      if (&other != &candidate && dominates(other, candidate)) {
        isDominated = true;
        break;
      }
    }
    if (isDominated) {
      ++front.dominatedDropped;
    } else {
      front.points.push_back(candidate);
    }
  }
  // Dedupe identical metric pairs (different weights can land on the same
  // grid point) and sort by ascending loss.
  std::sort(front.points.begin(), front.points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.lossMagnitude != b.lossMagnitude) {
                return a.lossMagnitude < b.lossMagnitude;
              }
              return a.nextMagnitude < b.nextMagnitude;
            });
  front.points.erase(
      std::unique(front.points.begin(), front.points.end(),
                  [](const ParetoPoint& a, const ParetoPoint& b) {
                    return a.lossMagnitude == b.lossMagnitude &&
                           a.nextMagnitude == b.nextMagnitude;
                  }),
      front.points.end());
  return front;
}

}  // namespace isop::core
