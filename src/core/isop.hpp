// IsopOptimizer: the full ISOP+ inverse stack-up optimization pipeline
// (Algorithm 1 of the paper).
//
//   Stage 1 — global exploration: Harmonica over the binary-encoded space
//             with the smoothed objective ghat evaluated through the ML
//             surrogate; adaptive weight adjustment between iterations;
//             Hyperband picks the p local-stage seeds from the restricted
//             space.
//   Stage 2 — local exploration: Adam gradient descent on the decoded
//             (continuous) seeds, using input gradients backpropagated
//             through the surrogate; constraint weights frozen.
//   Stage 3 — candidate roll-out: snap to the discrete grid (Eq. 6),
//             deduplicate, validate with the accurate EM simulator, rank by
//             the exact objective g, return cand_num designs.
//
// Feature flags reproduce the paper's ablations: useGradientStage off gives
// the DATE-version "H" optimizer (Tables VII/VIII), useHyperband off gives
// the "naive random sampling" seed selection, useAdaptiveWeights and
// useSmoothObjective off give the fixed-weight / unsmoothed variants.
#pragma once

#include <memory>

#include "core/surrogate_objective.hpp"
#include "core/tasks.hpp"
#include "em/simulator.hpp"
#include "hpo/adam_refiner.hpp"
#include "hpo/harmonica.hpp"
#include "hpo/hyperband.hpp"
#include "obs/obs.hpp"

namespace isop::core {

struct IsopConfig {
  hpo::HarmonicaConfig harmonica{};
  hpo::HyperbandConfig hyperband{};
  hpo::RefineConfig refine{};
  AdaptiveWeightConfig adaptiveWeights{};
  ObjectiveConfig objective{};

  std::size_t localSeeds = 5;  ///< p
  std::size_t candNum = 3;     ///< final roll-out candidates

  /// Roll-out repair (extension beyond the paper's single roll-out): if no
  /// validated candidate is feasible, the EM-measured surrogate bias at the
  /// best candidate shifts the search targets and the local stage re-runs
  /// before validating another cand_num designs. Total EM validations are
  /// bounded by candNum * rolloutRounds. 1 = the paper's protocol.
  std::size_t rolloutRounds = 2;

  /// Uncertainty penalty weight (extension; effective only when the
  /// surrogate is an ml::EnsembleSurrogate): adds weight * normalized
  /// ensemble disagreement to the search objective. 0 disables.
  double uncertaintyPenalty = 0.0;

  bool useGradientStage = true;   ///< H_GD vs H
  bool useHyperband = true;       ///< vs naive random seed pick
  bool useSmoothObjective = true; ///< ghat vs g during search
  hpo::BitCoding coding = hpo::BitCoding::Binary;

  /// Eval-engine knobs (memoization, batching, pool selection). One engine
  /// is shared by every stage of the run, including the repair round's
  /// objective and the EM validation fan-out. `evalEngine.pool` lets tests
  /// pin the run to a fixed-size pool; results are identical at any thread
  /// count (see core/eval/eval_engine.hpp).
  EvalEngineConfig evalEngine{};

  /// Resource semantics for Hyperband: each unit of resource is one
  /// bit-flip hill-climb probe around the configuration.
  std::size_t hyperbandProbeBits = 2;

  std::uint64_t seed = 1;

  /// Observability: run() opens an obs::Session with this config (stage
  /// spans, EM/surrogate counters, convergence JSONL). Default: all off,
  /// which also lets an enclosing session (e.g. TrialRunner's) win.
  obs::ObsConfig obs{};

  /// Cooperative cancellation: forwarded into every stage's iteration loop
  /// (Harmonica iterations, Hyperband rounds, Adam epochs) and checked
  /// between stages, so a cancelled run() throws OperationCancelled within
  /// one optimizer iteration. Inert by default; checks never consume RNG
  /// draws, so attaching a token leaves results bitwise unchanged.
  CancelToken cancel{};
};

struct IsopCandidate {
  em::StackupParams params{};
  em::PerformanceMetrics metrics{};  ///< from the accurate EM simulator
  double g = 0.0;                    ///< exact objective (Eq. 8)
  double fom = 0.0;
  bool feasible = false;
};

struct IsopResult {
  std::vector<IsopCandidate> candidates;  ///< ranked by ascending g
  std::size_t surrogateQueries = 0;       ///< "samples seen"
  std::size_t simulatorCalls = 0;
  std::size_t rolloutRoundsUsed = 1;
  double algoSeconds = 0.0;     ///< measured optimizer wall time
  double modeledSeconds = 0.0;  ///< algoSeconds + modeled EM solver time
  ObjectiveWeights finalWeights{};
  EvalEngineStats evalStats{};  ///< memo/dedup/batch accounting for the run

  const IsopCandidate& best() const { return candidates.front(); }
};

class IsopOptimizer {
 public:
  /// The surrogate must be a 15-in / 3-out model; it must support input
  /// gradients when useGradientStage is on.
  IsopOptimizer(const em::EmSimulator& simulator,
                std::shared_ptr<const ml::Surrogate> surrogate,
                em::ParameterSpace space, Task task, IsopConfig config = {});

  const IsopConfig& config() const { return config_; }

  /// Lends the run an externally owned EvalEngine instead of constructing a
  /// private one, so its memo cache persists across runs (TrialRunner shares
  /// one engine over all trials for cross-trial warm-starts). The engine must
  /// wrap the same surrogate; `config().evalEngine` is ignored when set.
  /// IsopResult::evalStats then reports this run's delta, not the engine's
  /// lifetime totals.
  void setSharedEngine(std::shared_ptr<EvalEngine> engine) {
    sharedEngine_ = std::move(engine);
  }

  IsopResult run() const;

 private:
  const em::EmSimulator* simulator_;
  std::shared_ptr<const ml::Surrogate> surrogate_;
  em::ParameterSpace space_;
  Task task_;
  IsopConfig config_;
  std::shared_ptr<EvalEngine> sharedEngine_;
};

}  // namespace isop::core
