#include "core/simulator_surrogate.hpp"

#include <cassert>
#include <cmath>

namespace isop::core {

void SimulatorSurrogate::predict(std::span<const double> x, std::span<double> out) const {
  assert(x.size() == em::kNumParams && out.size() == em::kNumMetrics);
  countQuery();
  const auto m = simulator_->evaluateUncounted(em::StackupParams::fromVector(x));
  const auto arr = m.asArray();
  for (std::size_t i = 0; i < arr.size(); ++i) out[i] = arr[i];
}

void SimulatorSurrogate::predictBatch(const Matrix& x, Matrix& out) const {
  assert(x.cols() == em::kNumParams);
  countQuery(x.rows());
  out.resize(x.rows(), em::kNumMetrics);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto m = simulator_->evaluateUncounted(em::StackupParams::fromVector(x.row(i)));
    const auto arr = m.asArray();
    for (std::size_t k = 0; k < arr.size(); ++k) out(i, k) = arr[k];
  }
}

void SimulatorSurrogate::inputGradient(std::span<const double> x, std::size_t outputIndex,
                                       std::span<double> grad) const {
  assert(x.size() == em::kNumParams && grad.size() == em::kNumParams);
  assert(outputIndex < em::kNumMetrics);
  em::StackupParams p = em::StackupParams::fromVector(x);
  for (std::size_t j = 0; j < em::kNumParams; ++j) {
    const double h = std::max(std::abs(p.values[j]), 1.0) * relativeStep_;
    const double saved = p.values[j];
    p.values[j] = saved + h;
    const double up = simulator_->evaluateUncounted(p).asArray()[outputIndex];
    p.values[j] = saved - h;
    const double down = simulator_->evaluateUncounted(p).asArray()[outputIndex];
    p.values[j] = saved;
    grad[j] = (up - down) / (2.0 * h);
  }
}

}  // namespace isop::core
