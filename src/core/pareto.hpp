// Loss-vs-crosstalk Pareto exploration.
//
// The paper's T4 fixes one scalarization (FoM = |L| + 2|NEXT|); a designer
// choosing a stack-up wants the whole trade-off curve. ParetoExplorer runs
// the ISOP+ pipeline across a sweep of NEXT weights and keeps the
// non-dominated EM-validated designs — a frontier of (|L|, |NEXT|) points,
// each a complete feasible stack-up.
#pragma once

#include <memory>

#include "core/isop.hpp"

namespace isop::core {

struct ParetoConfig {
  /// NEXT coefficients swept into the FoM (|L| + w * |NEXT|); 0 recovers T1.
  std::vector<double> nextWeights{0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  IsopConfig isop{};
  std::uint64_t baseSeed = 11;
};

struct ParetoPoint {
  em::StackupParams params{};
  em::PerformanceMetrics metrics{};
  double lossMagnitude = 0.0;   ///< |L|
  double nextMagnitude = 0.0;   ///< |NEXT|
  double weight = 0.0;          ///< the sweep weight that produced it
};

struct ParetoFront {
  /// Non-dominated feasible designs, sorted by ascending |L|.
  std::vector<ParetoPoint> points;
  std::size_t sweepRuns = 0;
  std::size_t dominatedDropped = 0;
  std::size_t infeasibleDropped = 0;
};

/// True iff a dominates b (no worse in both magnitudes, better in one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

class ParetoExplorer {
 public:
  /// `baseTask` supplies the output/input constraints (e.g. T1's Z band);
  /// its FoM terms are replaced by the swept |L| + w|NEXT| scalarization.
  ParetoExplorer(const em::EmSimulator& simulator,
                 std::shared_ptr<const ml::Surrogate> surrogate,
                 em::ParameterSpace space, Task baseTask, ParetoConfig config = {});

  ParetoFront explore() const;

 private:
  const em::EmSimulator* simulator_;
  std::shared_ptr<const ml::Surrogate> surrogate_;
  em::ParameterSpace space_;
  Task baseTask_;
  ParetoConfig config_;
};

}  // namespace isop::core
