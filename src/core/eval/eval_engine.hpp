// EvalEngine: the single funnel for surrogate and EM-simulator queries.
//
// Every optimizer stage (Harmonica batches, Hyperband arms, the Adam local
// stage, SA/TPE chains via SurrogateObjective, the roll-out validation)
// routes its evaluations through one engine, which
//
//   * deduplicates repeated designs within a batch (Harmonica resamples and
//     SA revisits configurations constantly);
//   * memoizes results across the run in a thread-safe sharded cache keyed
//     on the exact design vector (shared between the search and repair
//     objectives — the cached quantity is the *model output*, which is
//     immutable, never the objective value, which changes under adaptive
//     weights);
//   * dispatches the unique rows to Surrogate::predictBatch — for neural
//     surrogates that executes the compiled model plan built at
//     construction/deserialize time (fused, shape-specialized packed blocks;
//     see ml/nn/plan.hpp and docs/compiled_model.md) — fanning fixed-size
//     row chunks across the thread pool;
//   * fans EM simulate() calls out on the pool with results scattered back
//     in submission order.
//
// Query accounting keeps the paper's "samples seen" semantics: a memo hit
// is billed to the surrogate's query counter (billQueries) / the
// simulator's call counter (billCalls) exactly as if the model had run.
//
// Determinism: chunking depends only on the row count (never the thread
// count), every chunk writes disjoint output rows, and predictBatch
// overrides are bitwise row-equivalent to predict() — so results, query
// counts and downstream optimizer trajectories are identical at any thread
// count, including 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/eval/memo_cache.hpp"
#include "em/simulator.hpp"
#include "ml/surrogate.hpp"

namespace isop::core {

using eval::MemoCache;

struct EvalEngineConfig {
  bool memoize = true;              ///< cross-run memo cache on design vectors
  std::size_t maxCacheEntries = 1u << 20;
  bool parallel = true;             ///< fan chunks / simulations onto the pool
  std::size_t chunkRows = 64;       ///< rows per dispatched surrogate chunk
  ThreadPool* pool = nullptr;       ///< nullptr = ThreadPool::global()
};

/// Plain snapshot of the engine's counters (see EvalEngine::stats()).
struct EvalEngineStats {
  std::size_t batches = 0;      ///< predict batch calls (size > 1)
  std::size_t rows = 0;         ///< total design rows requested
  std::size_t memoHits = 0;     ///< rows served from the cache
  std::size_t dedupedRows = 0;  ///< in-batch duplicates of a pending row
  std::size_t modelRows = 0;    ///< rows actually sent to the model
  std::size_t simBatches = 0;
  std::size_t simRows = 0;
  std::size_t simMemoHits = 0;
  std::size_t simDedupedRows = 0;
  std::size_t simModelRows = 0;
  std::size_t gradBatches = 0;      ///< gradientBatch calls
  std::size_t gradRows = 0;         ///< gradient rows requested
  std::size_t gradDedupedRows = 0;  ///< in-batch duplicate gradient rows
  std::size_t gradModelRows = 0;    ///< gradient rows backpropagated
  std::size_t evictions = 0;  ///< LRU evictions across both memo caches

  double hitRate() const {
    return rows == 0 ? 0.0 : static_cast<double>(memoHits) / static_cast<double>(rows);
  }
  double dedupRatio() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(memoHits + dedupedRows) / static_cast<double>(rows);
  }

  /// Counter delta (this - earlier). Engines can outlive one optimizer run
  /// (TrialRunner shares one across trials); subtracting a snapshot taken at
  /// run start yields that run's own traffic.
  EvalEngineStats operator-(const EvalEngineStats& earlier) const {
    EvalEngineStats d = *this;
    d.batches -= earlier.batches;
    d.rows -= earlier.rows;
    d.memoHits -= earlier.memoHits;
    d.dedupedRows -= earlier.dedupedRows;
    d.modelRows -= earlier.modelRows;
    d.simBatches -= earlier.simBatches;
    d.simRows -= earlier.simRows;
    d.simMemoHits -= earlier.simMemoHits;
    d.simDedupedRows -= earlier.simDedupedRows;
    d.simModelRows -= earlier.simModelRows;
    d.gradBatches -= earlier.gradBatches;
    d.gradRows -= earlier.gradRows;
    d.gradDedupedRows -= earlier.gradDedupedRows;
    d.gradModelRows -= earlier.gradModelRows;
    d.evictions -= earlier.evictions;
    return d;
  }
};

/// Slot-stable batch builder: add designs (duplicates welcome), run the
/// batch through an engine, read metrics back by slot.
class EvalBatch {
 public:
  /// Returns the slot index metrics(slot) answers after evaluation.
  std::size_t add(const em::StackupParams& x) {
    designs_.push_back(x);
    return designs_.size() - 1;
  }

  std::size_t size() const { return designs_.size(); }
  bool evaluated() const { return evaluated_; }

  std::span<const em::StackupParams> designs() const { return designs_; }

  const em::PerformanceMetrics& metrics(std::size_t slot) const {
    ISOP_REQUIRE(evaluated_, "EvalBatch::metrics before EvalEngine::run");
    ISOP_REQUIRE(slot < metrics_.size(), "EvalBatch::metrics slot out of range");
    return metrics_[slot];
  }

  void clear() {
    designs_.clear();
    metrics_.clear();
    evaluated_ = false;
  }

 private:
  friend class EvalEngine;
  std::vector<em::StackupParams> designs_;
  std::vector<em::PerformanceMetrics> metrics_;
  bool evaluated_ = false;
};

class EvalEngine {
 public:
  /// Surrogate-only engine (simulateBatch unavailable).
  explicit EvalEngine(const ml::Surrogate& model, EvalEngineConfig config = {});

  /// Full engine: surrogate predictions and EM validation.
  EvalEngine(const ml::Surrogate& model, const em::EmSimulator& simulator,
             EvalEngineConfig config = {});

  const ml::Surrogate& model() const { return *model_; }
  const EvalEngineConfig& config() const { return config_; }

  /// Metrics for each design, in submission order. Dedups, serves memo hits,
  /// batches the remainder through the model. Bills every row as a query.
  void predictMetrics(std::span<const em::StackupParams> designs,
                      std::vector<em::PerformanceMetrics>& out) const;

  /// Single-design variant (memo-checked; the SA/TPE scalar path).
  em::PerformanceMetrics predictOne(const em::StackupParams& x) const;

  /// Input gradients d(metric[outputIndex])/d(design[j]) for every design,
  /// in submission order (grads is resized to designs.size() x inputDim).
  /// Dedups duplicate designs within the batch and fans row chunks onto the
  /// pool like predictMetrics, but never memoizes — the cached quantity of
  /// the forward path is the model output, and the Adam stage moves to a new
  /// point every step, so gradient rows have no reuse across batches.
  /// Gradient rows are not billed as queries ("samples seen" counts forward
  /// predictions only). Requires model().hasInputGradient().
  void gradientBatch(std::span<const em::StackupParams> designs,
                     std::size_t outputIndex, Matrix& grads) const;

  /// Evaluates all designs in `batch`; afterwards batch.metrics(slot) holds
  /// the prediction for the slot returned by add().
  void run(EvalBatch& batch) const;

  /// Accurate EM validation of each design, in submission order, fanned out
  /// on the pool. Duplicate / previously simulated designs are served from a
  /// separate memo (the simulator is deterministic) but still billed.
  std::vector<em::PerformanceMetrics> simulateBatch(
      std::span<const em::StackupParams> designs) const;

  bool hasSimulator() const { return simulator_ != nullptr; }

  EvalEngineStats stats() const;
  std::size_t cacheSize() const { return predictCache_.size(); }
  std::size_t cacheEvictions() const {
    return predictCache_.evictions() + simCache_.evictions();
  }

  /// Deterministic export of both memo caches (predict + simulate) for
  /// warm-start persistence (serve's session store). Entries are the
  /// immutable model/simulator outputs, so a restored cache serves
  /// bitwise-identical values; only hit rates and the billing split move.
  struct MemoSnapshot {
    std::vector<MemoCache::Entry> predict;
    std::vector<MemoCache::Entry> sim;
  };
  MemoSnapshot memoSnapshot() const {
    return {predictCache_.snapshot(), simCache_.snapshot()};
  }

  /// Preloads both memo caches from a snapshot. Does not touch the query
  /// counters — restored entries surface as memo hits on first use.
  void restoreMemo(const MemoSnapshot& snapshot) {
    predictCache_.restore(snapshot.predict);
    simCache_.restore(snapshot.sim);
  }

 private:
  ThreadPool& pool() const {
    return config_.pool != nullptr ? *config_.pool : ThreadPool::global();
  }

  /// Publishes the cumulative LRU eviction count to the obs counter
  /// "eval.memo.evictions" (delta since the last publish; metrics-gated).
  void recordEvictions() const;

  /// Splits designs into memo hits and unique pending rows, writes hits into
  /// `out` directly, returns first-occurrence indices of the unique rows and
  /// fills slotOf (index into uniques, or -1 when served from the cache).
  std::vector<std::size_t> resolveBatch(std::span<const em::StackupParams> designs,
                                        const MemoCache& cache, bool memoize,
                                        std::vector<std::int32_t>& slotOf,
                                        std::vector<em::PerformanceMetrics>& out,
                                        std::size_t& hits, std::size_t& dups) const;

  const ml::Surrogate* model_;
  const em::EmSimulator* simulator_ = nullptr;
  EvalEngineConfig config_;
  mutable eval::MemoCache predictCache_;
  mutable eval::MemoCache simCache_;

  mutable std::atomic<std::size_t> batches_{0};
  mutable std::atomic<std::size_t> rows_{0};
  mutable std::atomic<std::size_t> memoHits_{0};
  mutable std::atomic<std::size_t> dedupedRows_{0};
  mutable std::atomic<std::size_t> modelRows_{0};
  mutable std::atomic<std::size_t> simBatches_{0};
  mutable std::atomic<std::size_t> simRows_{0};
  mutable std::atomic<std::size_t> simMemoHits_{0};
  mutable std::atomic<std::size_t> simDedupedRows_{0};
  mutable std::atomic<std::size_t> simModelRows_{0};
  mutable std::atomic<std::size_t> gradBatches_{0};
  mutable std::atomic<std::size_t> gradRows_{0};
  mutable std::atomic<std::size_t> gradDedupedRows_{0};
  mutable std::atomic<std::size_t> gradModelRows_{0};
  /// Evictions already published to the obs counter (delta accounting).
  mutable std::atomic<std::size_t> reportedEvictions_{0};
};

}  // namespace isop::core
