// Thread-safe design-point memo cache backing the eval engine.
//
// Keys are the raw 15-dimensional design vectors (bit-exact doubles — the
// optimizers re-submit the exact same decoded grid points, so no tolerance
// matching is needed), values the model's 3 output metrics. The map is
// sharded 16 ways on the key hash so Harmonica batches, the parallel
// roll-out and SA chains can hit it concurrently without a global lock.
//
// The cache is bounded with per-shard LRU eviction: each shard holds at most
// ceil(maxEntries / kShards) entries and evicts its least-recently-used key
// when a fresh insert would exceed that (lookups refresh recency). Eviction
// never changes results — the cached quantity is the immutable model output,
// so an evicted key is simply recomputed bitwise-identically on the next
// miss; only the hit rate (and the paper-semantics billing split) moves.
// This replaces the old `maxEntries` hard stop, so long-lived engines (memo
// reuse across TrialRunner trials) keep serving the *recent* working set
// instead of freezing the first N designs ever seen.
//
// Concurrency is compile-time checked: every map/list access is guarded by
// the shard's AnnotatedMutex (Clang -Wthread-safety, see
// docs/static_analysis.md).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "em/stackup.hpp"

namespace isop::core::eval {

class MemoCache {
 public:
  using Key = std::array<double, em::kNumParams>;
  using Value = std::array<double, em::kNumMetrics>;

  explicit MemoCache(std::size_t maxEntries)
      : maxEntries_(maxEntries),
        perShardCapacity_(maxEntries == 0 ? 0 : (maxEntries + kShards - 1) / kShards) {}

  /// Copies the cached value into `out` and returns true on a hit. A hit
  /// refreshes the entry's LRU position.
  bool lookup(const Key& key, Value& out) const {
    const Shard& s = shardFor(key);
    MutexLock lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to MRU
    out = it->second->second;
    return true;
  }

  /// Inserts, evicting the shard's LRU entry when the shard is full.
  /// Re-inserting a resident key only refreshes its recency (values for a
  /// given key are immutable model outputs, so there is nothing to update).
  void insert(const Key& key, const Value& value) {
    if (perShardCapacity_ == 0) return;
    Shard& s = shardFor(key);
    MutexLock lock(s.mutex);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    if (s.map.size() >= perShardCapacity_) {
      ISOP_ASSERT(!s.lru.empty(), "full shard must have an LRU victim");
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    s.lru.emplace_front(key, value);
    s.map.emplace(key, s.lru.begin());
  }

  /// Exact resident-entry count (sums the shards under their locks — unlike
  /// the old detached atomic counter, this cannot drift from the maps when
  /// clear() races concurrent inserts).
  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      MutexLock lock(s.mutex);
      total += s.map.size();
    }
    return total;
  }

  std::size_t capacity() const { return maxEntries_; }

  /// Entries evicted by LRU replacement since construction (monotone).
  std::size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  void clear() {
    for (Shard& s : shards_) {
      MutexLock lock(s.mutex);
      s.map.clear();
      s.lru.clear();
    }
  }

  using Entry = std::pair<Key, Value>;

  /// Deterministic export of every resident entry for warm-start
  /// persistence: shards in index order, each shard's entries oldest
  /// (LRU) first — so replaying the vector through restore() reproduces
  /// both the contents and the recency order.
  std::vector<Entry> snapshot() const {
    std::vector<Entry> out;
    for (const Shard& s : shards_) {
      MutexLock lock(s.mutex);
      for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) out.push_back(*it);
    }
    return out;
  }

  /// Replays a snapshot (in order) through insert(). Entries beyond
  /// capacity fall out via normal LRU replacement; values are immutable
  /// model outputs, so restoring never changes results — only hit rates.
  void restore(const std::vector<Entry>& entries) {
    for (const Entry& e : entries) insert(e.first, e.second);
  }

#ifdef ISOP_TSA_NEGATIVE_SEAM
  /// Deliberately racy: reads shard state without taking the shard lock.
  /// Exists only for the negative stage of scripts/check_static.sh, which
  /// compiles tests/static/tsa_negative.cpp with this seam enabled and
  /// requires the build to FAIL — proving the -Wthread-safety gate actually
  /// rejects unguarded access to MemoCache state. Never defined in real
  /// builds.
  std::size_t unguardedSize() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.map.size();
    return total;
  }
#endif

  /// splitmix64-style mix over the key's bit patterns; exposed so shard
  /// selection and the per-batch dedup map share one hash.
  struct KeyHash {
    static std::uint64_t mix(std::uint64_t h) noexcept {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ULL;
      h ^= h >> 33;
      return h;
    }
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (double v : key) h = mix(h ^ std::bit_cast<std::uint64_t>(v));
      return static_cast<std::size_t>(h);
    }
  };

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    // All 16 shards share one detector node: holding two shards at once has
    // no declared intra-class order, so the lock-order detector rejects it.
    mutable AnnotatedMutex mutex{"eval.memo_shard", lock_order::rank::kMemoShard};
    /// MRU at the front; map values point into this list. `mutable` because
    /// lookup() is const to callers but refreshes recency.
    mutable std::list<std::pair<Key, Value>> lru ISOP_GUARDED_BY(mutex);
    mutable std::unordered_map<Key, std::list<std::pair<Key, Value>>::iterator,
                               KeyHash>
        map ISOP_GUARDED_BY(mutex);
  };

  const Shard& shardFor(const Key& key) const {
    return shards_[KeyHash{}(key) & (kShards - 1)];
  }
  Shard& shardFor(const Key& key) {
    return shards_[KeyHash{}(key) & (kShards - 1)];
  }

  std::size_t maxEntries_;
  std::size_t perShardCapacity_;
  std::array<Shard, kShards> shards_;
  mutable std::atomic<std::size_t> evictions_{0};
};

}  // namespace isop::core::eval
