// Thread-safe design-point memo cache backing the eval engine.
//
// Keys are the raw 15-dimensional design vectors (bit-exact doubles — the
// optimizers re-submit the exact same decoded grid points, so no tolerance
// matching is needed), values the model's 3 output metrics. The map is
// sharded 16 ways on the key hash so Harmonica batches, the parallel
// roll-out and SA chains can hit it concurrently without a global lock.
//
// The cache is bounded: once `maxEntries` distinct keys are stored, further
// inserts are dropped (lookups still serve the resident set). Eviction is
// deliberately not implemented — a run's working set is the set of designs
// it evaluates, which is orders of magnitude below the bound; the cap only
// guards pathological callers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "em/stackup.hpp"

namespace isop::core::eval {

class MemoCache {
 public:
  using Key = std::array<double, em::kNumParams>;
  using Value = std::array<double, em::kNumMetrics>;

  explicit MemoCache(std::size_t maxEntries) : maxEntries_(maxEntries) {}

  /// Copies the cached value into `out` and returns true on a hit.
  bool lookup(const Key& key, Value& out) const {
    const Shard& s = shardFor(key);
    std::lock_guard lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    out = it->second;
    return true;
  }

  /// Inserts (no-op if the key is present or the cache is at capacity).
  void insert(const Key& key, const Value& value) {
    Shard& s = shardFor(key);
    std::lock_guard lock(s.mutex);
    if (size_.load(std::memory_order_relaxed) >= maxEntries_) return;
    if (s.map.emplace(key, value).second) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return maxEntries_; }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mutex);
      s.map.clear();
    }
    size_.store(0, std::memory_order_relaxed);
  }

  /// splitmix64-style mix over the key's bit patterns; exposed so shard
  /// selection and the per-batch dedup map share one hash.
  struct KeyHash {
    static std::uint64_t mix(std::uint64_t h) noexcept {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ULL;
      h ^= h >> 33;
      return h;
    }
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (double v : key) h = mix(h ^ std::bit_cast<std::uint64_t>(v));
      return static_cast<std::size_t>(h);
    }
  };

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, KeyHash> map;
  };

  const Shard& shardFor(const Key& key) const {
    return shards_[KeyHash{}(key) & (kShards - 1)];
  }
  Shard& shardFor(const Key& key) {
    return shards_[KeyHash{}(key) & (kShards - 1)];
  }

  std::size_t maxEntries_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace isop::core::eval
