#include "core/eval/eval_engine.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"

namespace isop::core {

namespace {

// Obs hooks: registered once, guarded by metricsEnabled() at the call site.
void recordPredictBatch(std::size_t rows, std::size_t hits, std::size_t dups,
                        std::size_t modelRows) {
  auto& reg = obs::registry();
  static obs::Counter& batches = reg.counter("eval.batches");
  static obs::Counter& rowsC = reg.counter("eval.rows");
  static obs::Counter& hitsC = reg.counter("eval.memo.hits");
  static obs::Counter& missesC = reg.counter("eval.memo.misses");
  static obs::Counter& dedupC = reg.counter("eval.dedup.rows");
  static obs::Histogram& sizeH = reg.histogram("eval.batch.rows");
  batches.add(1);
  rowsC.add(rows);
  hitsC.add(hits);
  missesC.add(rows - hits);
  dedupC.add(dups);
  static obs::Counter& modelRowsC = reg.counter("eval.model.rows");
  modelRowsC.add(modelRows);
  sizeH.record(static_cast<double>(rows));
}

void recordGradientBatch(std::size_t rows, std::size_t dups, std::size_t modelRows) {
  auto& reg = obs::registry();
  static obs::Counter& batches = reg.counter("eval.grad.batches");
  static obs::Counter& rowsC = reg.counter("eval.grad.rows");
  static obs::Counter& dedupC = reg.counter("eval.grad.dedup.rows");
  static obs::Counter& modelRowsC = reg.counter("eval.grad.model.rows");
  static obs::Histogram& sizeH = reg.histogram("eval.grad.batch.rows");
  batches.add(1);
  rowsC.add(rows);
  dedupC.add(dups);
  modelRowsC.add(modelRows);
  sizeH.record(static_cast<double>(rows));
}

void recordSimBatch(std::size_t rows, std::size_t hits, std::size_t dups) {
  auto& reg = obs::registry();
  static obs::Counter& batches = reg.counter("eval.sim.batches");
  static obs::Counter& rowsC = reg.counter("eval.sim.rows");
  static obs::Counter& hitsC = reg.counter("eval.sim.memo.hits");
  static obs::Counter& dedupC = reg.counter("eval.sim.dedup.rows");
  static obs::Histogram& sizeH = reg.histogram("eval.sim.batch.rows");
  batches.add(1);
  rowsC.add(rows);
  hitsC.add(hits);
  dedupC.add(dups);
  sizeH.record(static_cast<double>(rows));
}

}  // namespace

EvalEngine::EvalEngine(const ml::Surrogate& model, EvalEngineConfig config)
    : model_(&model),
      config_(config),
      predictCache_(config.maxCacheEntries),
      simCache_(config.maxCacheEntries) {
  ISOP_REQUIRE(model_->outputDim() == em::kNumMetrics,
               "EvalEngine model must emit the (Z, L, NEXT) metric triple");
}

void EvalEngine::recordEvictions() const {
  const std::size_t cur = cacheEvictions();
  const std::size_t prev = reportedEvictions_.exchange(cur, std::memory_order_relaxed);
  if (cur > prev) {
    static obs::Counter& evictC = obs::registry().counter("eval.memo.evictions");
    evictC.add(cur - prev);
  }
}

EvalEngine::EvalEngine(const ml::Surrogate& model, const em::EmSimulator& simulator,
                       EvalEngineConfig config)
    : EvalEngine(model, config) {
  simulator_ = &simulator;
}

std::vector<std::size_t> EvalEngine::resolveBatch(
    std::span<const em::StackupParams> designs, const MemoCache& cache, bool memoize,
    std::vector<std::int32_t>& slotOf, std::vector<em::PerformanceMetrics>& out,
    std::size_t& hits, std::size_t& dups) const {
  const std::size_t n = designs.size();
  slotOf.assign(n, -1);
  out.resize(n);
  hits = 0;
  dups = 0;
  std::vector<std::size_t> uniques;
  std::unordered_map<MemoCache::Key, std::int32_t, MemoCache::KeyHash> pending;
  for (std::size_t i = 0; i < n; ++i) {
    const MemoCache::Key& key = designs[i].values;
    MemoCache::Value cached{};
    if (memoize && cache.lookup(key, cached)) {
      out[i] = em::PerformanceMetrics::fromArray(cached);
      ++hits;
      continue;
    }
    const auto [it, inserted] =
        pending.try_emplace(key, static_cast<std::int32_t>(uniques.size()));
    if (inserted) {
      uniques.push_back(i);
    } else {
      ++dups;
    }
    slotOf[i] = it->second;
  }
  return uniques;
}

void EvalEngine::predictMetrics(std::span<const em::StackupParams> designs,
                                std::vector<em::PerformanceMetrics>& out) const {
  const std::size_t n = designs.size();
  out.resize(n);
  if (n == 0) return;
  // On the calling (job-worker) thread, so the span inherits the job's tag;
  // the chunked work fanned onto the pool is covered by this span's extent.
  obs::Span span("eval.predict_batch");
  batches_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(n, std::memory_order_relaxed);

  std::vector<std::int32_t> slotOf;
  std::size_t hits = 0, dups = 0;
  const std::vector<std::size_t> uniques =
      resolveBatch(designs, predictCache_, config_.memoize, slotOf, out, hits, dups);
  memoHits_.fetch_add(hits, std::memory_order_relaxed);
  dedupedRows_.fetch_add(dups, std::memory_order_relaxed);

  const std::size_t u = uniques.size();
  Matrix uout;
  if (u > 0) {
    modelRows_.fetch_add(u, std::memory_order_relaxed);
    const std::size_t dim = model_->inputDim();
    // Chunk count depends only on the row count, and every chunk fills a
    // disjoint row range of uout — results are thread-count independent.
    const std::size_t chunkRows = std::max<std::size_t>(config_.chunkRows, 1);
    const std::size_t chunks = (u + chunkRows - 1) / chunkRows;
    if (config_.parallel && chunks > 1) {
      uout.resize(u, model_->outputDim());
      pool().parallelFor(chunks, [&](std::size_t c) {
        const std::size_t begin = c * chunkRows;
        const std::size_t end = std::min(u, begin + chunkRows);
        // Chunks must tile [0, u) disjointly — determinism depends on every
        // output row being written by exactly one chunk.
        ISOP_ASSERT(begin < end, "empty chunk dispatched");
        Matrix cx(end - begin, dim);
        for (std::size_t r = begin; r < end; ++r) {
          const auto src = designs[uniques[r]].asVector();
          std::copy(src.begin(), src.end(), cx.row(r - begin).begin());
        }
        Matrix cout;
        model_->predictBatch(cx, cout);
        for (std::size_t r = begin; r < end; ++r) {
          const auto src = cout.row(r - begin);
          std::copy(src.begin(), src.end(), uout.row(r).begin());
        }
      });
    } else {
      Matrix ux(u, dim);
      for (std::size_t r = 0; r < u; ++r) {
        const auto src = designs[uniques[r]].asVector();
        std::copy(src.begin(), src.end(), ux.row(r).begin());
      }
      model_->predictBatch(ux, uout);
    }
  }

  // Scatter model rows back to every requesting slot and refresh the memo.
  for (std::size_t i = 0; i < n; ++i) {
    if (slotOf[i] >= 0) {
      out[i] = em::PerformanceMetrics::fromArray(
          uout.row(static_cast<std::size_t>(slotOf[i])));
    }
  }
  if (config_.memoize) {
    for (std::size_t r = 0; r < u; ++r) {
      const std::size_t i = uniques[r];
      predictCache_.insert(designs[i].values, out[i].asArray());
    }
  }

  // The model billed the u rows it actually ran; bill the served remainder
  // so "samples seen" matches the unbatched pipeline exactly.
  if (n > u) model_->billQueries(n - u);
  if (obs::metricsEnabled()) {
    recordPredictBatch(n, hits, dups, u);
    recordEvictions();
  }
}

em::PerformanceMetrics EvalEngine::predictOne(const em::StackupParams& x) const {
  rows_.fetch_add(1, std::memory_order_relaxed);
  MemoCache::Value cached{};
  if (config_.memoize && predictCache_.lookup(x.values, cached)) {
    memoHits_.fetch_add(1, std::memory_order_relaxed);
    model_->billQueries(1);
    if (obs::metricsEnabled()) recordPredictBatch(1, 1, 0, 0);
    return em::PerformanceMetrics::fromArray(cached);
  }
  modelRows_.fetch_add(1, std::memory_order_relaxed);
  MemoCache::Value out{};
  model_->predict(x.asVector(), out);
  if (config_.memoize) predictCache_.insert(x.values, out);
  if (obs::metricsEnabled()) {
    recordPredictBatch(1, 0, 0, 1);
    recordEvictions();
  }
  return em::PerformanceMetrics::fromArray(out);
}

void EvalEngine::gradientBatch(std::span<const em::StackupParams> designs,
                               std::size_t outputIndex, Matrix& grads) const {
  ISOP_REQUIRE(model_->hasInputGradient(),
               "EvalEngine::gradientBatch: model has no input gradients");
  const std::size_t n = designs.size();
  const std::size_t dim = model_->inputDim();
  grads.resize(n, dim);
  if (n == 0) return;
  obs::Span span("eval.gradient_batch");
  gradBatches_.fetch_add(1, std::memory_order_relaxed);
  gradRows_.fetch_add(n, std::memory_order_relaxed);

  // In-batch dedup only — no memo (see the header note), so every row maps
  // to a unique-row slot.
  std::vector<std::int32_t> slotOf(n, -1);
  std::vector<std::size_t> uniques;
  std::unordered_map<MemoCache::Key, std::int32_t, MemoCache::KeyHash> pending;
  std::size_t dups = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = pending.try_emplace(
        designs[i].values, static_cast<std::int32_t>(uniques.size()));
    if (inserted) {
      uniques.push_back(i);
    } else {
      ++dups;
    }
    slotOf[i] = it->second;
  }
  gradDedupedRows_.fetch_add(dups, std::memory_order_relaxed);

  const std::size_t u = uniques.size();
  gradModelRows_.fetch_add(u, std::memory_order_relaxed);
  Matrix ugrad;
  // Same row-count-only chunking as predictMetrics: chunk boundaries depend
  // on u alone and each chunk writes a disjoint row range, so results are
  // identical at any thread count.
  const std::size_t chunkRows = std::max<std::size_t>(config_.chunkRows, 1);
  const std::size_t chunks = (u + chunkRows - 1) / chunkRows;
  if (config_.parallel && chunks > 1) {
    ugrad.resize(u, dim);
    pool().parallelFor(chunks, [&](std::size_t c) {
      const std::size_t begin = c * chunkRows;
      const std::size_t end = std::min(u, begin + chunkRows);
      ISOP_ASSERT(begin < end, "empty chunk dispatched");
      Matrix cx(end - begin, dim);
      for (std::size_t r = begin; r < end; ++r) {
        const auto src = designs[uniques[r]].asVector();
        std::copy(src.begin(), src.end(), cx.row(r - begin).begin());
      }
      Matrix cgrad;
      model_->inputGradientBatch(cx, outputIndex, cgrad);
      for (std::size_t r = begin; r < end; ++r) {
        const auto src = cgrad.row(r - begin);
        std::copy(src.begin(), src.end(), ugrad.row(r).begin());
      }
    });
  } else {
    Matrix ux(u, dim);
    for (std::size_t r = 0; r < u; ++r) {
      const auto src = designs[uniques[r]].asVector();
      std::copy(src.begin(), src.end(), ux.row(r).begin());
    }
    model_->inputGradientBatch(ux, outputIndex, ugrad);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto src = ugrad.row(static_cast<std::size_t>(slotOf[i]));
    std::copy(src.begin(), src.end(), grads.row(i).begin());
  }
  if (obs::metricsEnabled()) recordGradientBatch(n, dups, u);
}

void EvalEngine::run(EvalBatch& batch) const {
  predictMetrics(batch.designs_, batch.metrics_);
  batch.evaluated_ = true;
}

std::vector<em::PerformanceMetrics> EvalEngine::simulateBatch(
    std::span<const em::StackupParams> designs) const {
  ISOP_REQUIRE(simulator_ != nullptr, "EvalEngine: no simulator bound");
  const std::size_t n = designs.size();
  std::vector<em::PerformanceMetrics> out(n);
  if (n == 0) return out;
  obs::Span span("eval.simulate_batch");
  simBatches_.fetch_add(1, std::memory_order_relaxed);
  simRows_.fetch_add(n, std::memory_order_relaxed);

  std::vector<std::int32_t> slotOf;
  std::size_t hits = 0, dups = 0;
  const std::vector<std::size_t> uniques =
      resolveBatch(designs, simCache_, config_.memoize, slotOf, out, hits, dups);
  simMemoHits_.fetch_add(hits, std::memory_order_relaxed);
  simDedupedRows_.fetch_add(dups, std::memory_order_relaxed);

  const std::size_t u = uniques.size();
  std::vector<em::PerformanceMetrics> sims(u);
  if (u > 0) {
    simModelRows_.fetch_add(u, std::memory_order_relaxed);
    auto simOne = [&](std::size_t r) { sims[r] = simulator_->simulate(designs[uniques[r]]); };
    if (config_.parallel && u > 1) {
      pool().parallelFor(u, simOne);
    } else {
      for (std::size_t r = 0; r < u; ++r) simOne(r);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (slotOf[i] >= 0) out[i] = sims[static_cast<std::size_t>(slotOf[i])];
  }
  if (config_.memoize) {
    for (std::size_t r = 0; r < u; ++r) {
      simCache_.insert(designs[uniques[r]].values, sims[r].asArray());
    }
  }
  // simulate() billed the u fresh designs; bill memo/dedup-served rows too.
  if (n > u) simulator_->billCalls(n - u);
  if (obs::metricsEnabled()) {
    recordSimBatch(n, hits, dups);
    recordEvictions();
  }
  return out;
}

EvalEngineStats EvalEngine::stats() const {
  EvalEngineStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.memoHits = memoHits_.load(std::memory_order_relaxed);
  s.dedupedRows = dedupedRows_.load(std::memory_order_relaxed);
  s.modelRows = modelRows_.load(std::memory_order_relaxed);
  s.simBatches = simBatches_.load(std::memory_order_relaxed);
  s.simRows = simRows_.load(std::memory_order_relaxed);
  s.simMemoHits = simMemoHits_.load(std::memory_order_relaxed);
  s.simDedupedRows = simDedupedRows_.load(std::memory_order_relaxed);
  s.simModelRows = simModelRows_.load(std::memory_order_relaxed);
  s.gradBatches = gradBatches_.load(std::memory_order_relaxed);
  s.gradRows = gradRows_.load(std::memory_order_relaxed);
  s.gradDedupedRows = gradDedupedRows_.load(std::memory_order_relaxed);
  s.gradModelRows = gradModelRows_.load(std::memory_order_relaxed);
  s.evictions = cacheEvictions();
  return s;
}

}  // namespace isop::core
