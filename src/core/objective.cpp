#include "core/objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace isop::core {

namespace {
double sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }
double sigmoidDerivative(double v) {
  const double s = sigmoid(v);
  return s * (1.0 - s);
}

double metricValue(const em::PerformanceMetrics& m, em::Metric metric) {
  switch (metric) {
    case em::Metric::Z: return m.z;
    case em::Metric::L: return m.l;
    case em::Metric::Next: return m.next;
  }
  return 0.0;
}
}  // namespace

ObjectiveWeights ObjectiveWeights::uniform(const ObjectiveSpec& spec, double value) {
  ObjectiveWeights w;
  w.fom = value;
  w.oc.assign(spec.outputConstraints.size(), value);
  w.ic.assign(spec.inputConstraints.size(), value);
  return w;
}

Objective::Objective(ObjectiveSpec spec, ObjectiveConfig config)
    : spec_(std::move(spec)),
      config_(config),
      weights_(ObjectiveWeights::uniform(spec_)) {}

double Objective::fomValue(const em::PerformanceMetrics& m) const {
  double acc = 0.0;
  for (const FomTerm& term : spec_.fom) {
    acc += term.coefficient * std::abs(metricValue(m, term.metric));
  }
  return acc;
}

double Objective::gamma(std::size_t j) const {
  const double tol = std::max(spec_.outputConstraints[j].tolerance, 1e-12);
  return config_.gammaFactor / tol;
}

double Objective::ocPenaltyExact(std::size_t j, const em::PerformanceMetrics& m) const {
  const OutputConstraint& c = spec_.outputConstraints[j];
  const double u = std::abs(metricValue(m, c.metric) - c.target);
  return std::max(u - c.tolerance, 0.0);
}

double Objective::ocPenaltySmooth(std::size_t j, const em::PerformanceMetrics& m) const {
  const OutputConstraint& c = spec_.outputConstraints[j];
  const double u = metricValue(m, c.metric) - c.target;
  const double g = gamma(j);
  return sigmoid(g * (u - c.tolerance)) + sigmoid(g * (-u - c.tolerance));
}

double Objective::ocPenaltySmoothDerivative(std::size_t j,
                                            const em::PerformanceMetrics& m) const {
  const OutputConstraint& c = spec_.outputConstraints[j];
  const double u = metricValue(m, c.metric) - c.target;
  const double g = gamma(j);
  return g * (sigmoidDerivative(g * (u - c.tolerance)) -
              sigmoidDerivative(g * (-u - c.tolerance)));
}

double Objective::icPenalty(std::size_t k, const em::StackupParams& x) const {
  const InputConstraint& c = spec_.inputConstraints[k];
  double y = 0.0;
  for (std::size_t i = 0; i < em::kNumParams; ++i) y += c.coefficients[i] * x.values[i];
  return std::max(y - c.bound, 0.0);
}

double Objective::gValue(const em::PerformanceMetrics& m, const em::StackupParams& x) const {
  double acc = weights_.fom * fomValue(m);
  for (std::size_t j = 0; j < spec_.outputConstraints.size(); ++j) {
    acc += weights_.oc[j] * ocPenaltyExact(j, m);
  }
  for (std::size_t k = 0; k < spec_.inputConstraints.size(); ++k) {
    acc += weights_.ic[k] * icPenalty(k, x);
  }
  return acc;
}

double Objective::gSmoothValue(const em::PerformanceMetrics& m,
                               const em::StackupParams& x) const {
  double acc = weights_.fom * fomValue(m);
  for (std::size_t j = 0; j < spec_.outputConstraints.size(); ++j) {
    acc += weights_.oc[j] * ocPenaltySmooth(j, m);
  }
  for (std::size_t k = 0; k < spec_.inputConstraints.size(); ++k) {
    acc += weights_.ic[k] * icPenalty(k, x);
  }
  return acc;
}

void Objective::gBatch(std::span<const em::PerformanceMetrics> metrics,
                       std::span<const em::StackupParams> xs,
                       std::span<double> out) const {
  assert(metrics.size() == xs.size() && out.size() == xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = gValue(metrics[i], xs[i]);
}

void Objective::gSmoothBatch(std::span<const em::PerformanceMetrics> metrics,
                             std::span<const em::StackupParams> xs,
                             std::span<double> out) const {
  assert(metrics.size() == xs.size() && out.size() == xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = gSmoothValue(metrics[i], xs[i]);
}

double Objective::gSmoothWithGradient(
    const em::PerformanceMetrics& m, const em::StackupParams& x,
    const std::function<void(em::Metric, std::span<double>)>& metricGradient,
    std::span<double> gradOut) const {
  assert(gradOut.size() == em::kNumParams);
  std::fill(gradOut.begin(), gradOut.end(), 0.0);
  std::array<double, em::kNumParams> mg{};

  double acc = 0.0;
  // FoM terms: w^FoM * c * |metric|  ->  w^FoM * c * sign(metric) * dm/dx.
  for (const FomTerm& term : spec_.fom) {
    const double v = metricValue(m, term.metric);
    acc += weights_.fom * term.coefficient * std::abs(v);
    const double sign = v >= 0.0 ? 1.0 : -1.0;
    metricGradient(term.metric, mg);
    for (std::size_t i = 0; i < em::kNumParams; ++i) {
      gradOut[i] += weights_.fom * term.coefficient * sign * mg[i];
    }
  }
  // Smoothed output constraints.
  for (std::size_t j = 0; j < spec_.outputConstraints.size(); ++j) {
    acc += weights_.oc[j] * ocPenaltySmooth(j, m);
    const double dPdm = ocPenaltySmoothDerivative(j, m);
    if (dPdm != 0.0) {
      metricGradient(spec_.outputConstraints[j].metric, mg);
      for (std::size_t i = 0; i < em::kNumParams; ++i) {
        gradOut[i] += weights_.oc[j] * dPdm * mg[i];
      }
    }
  }
  // Input constraints (piecewise-linear; subgradient at the kink).
  for (std::size_t k = 0; k < spec_.inputConstraints.size(); ++k) {
    const double pen = icPenalty(k, x);
    acc += weights_.ic[k] * pen;
    if (pen > 0.0) {
      const auto& c = spec_.inputConstraints[k];
      for (std::size_t i = 0; i < em::kNumParams; ++i) {
        gradOut[i] += weights_.ic[k] * c.coefficients[i];
      }
    }
  }
  return acc;
}

bool Objective::feasible(const em::PerformanceMetrics& m, const em::StackupParams& x) const {
  for (std::size_t j = 0; j < spec_.outputConstraints.size(); ++j) {
    if (ocPenaltyExact(j, m) > 0.0) return false;
  }
  for (std::size_t k = 0; k < spec_.inputConstraints.size(); ++k) {
    if (icPenalty(k, x) > 1e-9) return false;
  }
  return true;
}

double Objective::ocBoundaryValue(std::size_t j) const {
  // At u = tolerance: S(0) + S(-2 gamma tol) = 0.5 + S(-2 gammaFactor).
  // Independent of j because gamma_j * tolerance_j == gammaFactor for all j;
  // the index is kept for interface stability.
  (void)j;
  return 0.5 + sigmoid(-2.0 * config_.gammaFactor);
}

void AdaptiveWeights::update(std::span<const em::PerformanceMetrics> metrics,
                             std::span<const em::StackupParams> designs) {
  if (!config_.enabled || metrics.empty()) return;
  assert(metrics.size() == designs.size());
  Objective& obj = *objective_;
  const auto& spec = obj.spec();
  auto& w = obj.weights();

  // Weight floor of Alg. 2 line 3: the best (lowest) w^FoM * FoM seen so
  // far across batches. Early random batches have poor FoM; tying the floor
  // to the running minimum keeps it at the scale of achievable FoM values.
  for (const auto& m : metrics) {
    runningMinFom_ = std::min(runningMinFom_, w.fom * obj.fomValue(m));
  }
  if (!std::isfinite(runningMinFom_)) return;
  const double total = static_cast<double>(metrics.size());

  for (std::size_t j = 0; j < spec.outputConstraints.size(); ++j) {
    const double cMax = obj.ocBoundaryValue(j);
    std::size_t valid = 0;
    for (const auto& m : metrics) {
      if (obj.ocPenaltySmooth(j, m) <= cMax) ++valid;
    }
    if (static_cast<double>(valid) / total >= config_.beta) {
      const double floor = runningMinFom_ / std::max(cMax, 1e-9);
      w.oc[j] = std::min(w.oc[j], std::max((1.0 - config_.beta) * w.oc[j], floor));
    }
  }
  for (std::size_t k = 0; k < spec.inputConstraints.size(); ++k) {
    std::size_t valid = 0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
      if (obj.icPenalty(k, designs[i]) <= 1e-9) ++valid;
    }
    if (static_cast<double>(valid) / total >= config_.beta) {
      // f^IC's boundary value is 0; the weight floor degenerates, so the
      // floor is taken against C_max = 1 (documented deviation).
      w.ic[k] = std::min(w.ic[k],
                         std::max((1.0 - config_.beta) * w.ic[k], runningMinFom_));
    }
  }
}

}  // namespace isop::core
