// The paper's experiment tasks (Table II) and the Table IX input-constraint
// case study.
//
//   T1: minimize |L|            s.t. |Z - 85| <= 1
//   T2: minimize |L|            s.t. |Z - 100| <= 2
//   T3: minimize |L|            s.t. |Z - 85| <= 1, |NEXT - 0| <= 0.05 mV
//   T4: minimize |L| + 2|NEXT|  s.t. |Z - 85| <= 1
#pragma once

#include <string>

#include "core/objective.hpp"

namespace isop::core {

struct Task {
  std::string name;
  ObjectiveSpec spec;
};

Task taskT1();
Task taskT2();
Task taskT3();
Task taskT4();

/// Lookup by name ("T1".."T4"); throws std::invalid_argument on unknown.
Task taskByName(std::string_view name);

/// The three expert-defined input constraints of the Table IX study:
///   1) 2*Wt + St <= 20          (differential pair base width)
///   2) Dt - 5*Hc <= 0           (pair distance vs. core height)
///   3) Dt - 5*Hp <= 0           (pair distance vs. prepreg height)
std::vector<InputConstraint> tableIxInputConstraints();

/// The expert's manual design from Table IX (evaluated as the baseline in
/// the manual-vs-ISOP+ comparison).
em::StackupParams manualDesignTableIx();

}  // namespace isop::core
