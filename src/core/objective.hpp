// Optimization objectives of the ISOP+ framework (Section III-E/F).
//
// A task supplies three ingredients:
//   * FoM terms    — f^FoM(x) = sum_k c_k |M_k(x)|; the paper's tasks
//                    minimize loss magnitude (|L|) and, for T4, a weighted
//                    crosstalk term (|L| + 2|NEXT|);
//   * output constraints f^OC — |M_k(x) - target| <= tolerance on a metric,
//                    e.g. differential impedance within Zo +/- 1 ohm;
//   * input constraints f^IC — first-order inequalities a.x <= A over the
//                    raw design parameters (Eq. 11), e.g. 2 Wt + St <= 20.
//
// Two aggregate objectives are exposed:
//   * g(x)     (Eq. 8)  — FoM plus hard clip penalties; used with accurate
//                         EM metrics in the candidate roll-out stage;
//   * ghat(x)  (Eq. 9/10) — FoM plus the double-sigmoid smoothing of the
//                         output constraints (steepness gamma ~ 1/tol) plus
//                         clipped input constraints; used with surrogate
//                         metrics during global and local exploration, and
//                         differentiable for the gradient-descent stage.
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "em/stackup.hpp"

namespace isop::core {

/// One FoM term: coefficient * |metric|.
struct FomTerm {
  em::Metric metric = em::Metric::L;
  double coefficient = 1.0;
};

/// |metric - target| <= tolerance.
struct OutputConstraint {
  em::Metric metric = em::Metric::Z;
  double target = 0.0;
  double tolerance = 1.0;
  std::string name;  ///< for reports ("Z", "NEXT", ...)
};

/// coefficients . x <= bound over the raw 15-dim design vector.
struct InputConstraint {
  std::array<double, em::kNumParams> coefficients{};
  double bound = 0.0;
  std::string name;
};

struct ObjectiveSpec {
  std::vector<FomTerm> fom;
  std::vector<OutputConstraint> outputConstraints;
  std::vector<InputConstraint> inputConstraints;
};

/// Mutable weights (w^FoM, w^OC_j, w^IC_k); the paper initializes all to 1
/// and adapts the constraint weights during the HPO search (Alg. 2).
struct ObjectiveWeights {
  double fom = 1.0;
  std::vector<double> oc;
  std::vector<double> ic;

  static ObjectiveWeights uniform(const ObjectiveSpec& spec, double value = 1.0);
};

struct ObjectiveConfig {
  /// Sigmoid steepness multiplier: gamma_j = gammaFactor / tolerance_j.
  /// gammaFactor = 1 is the paper's literal 1/f±; larger values sharpen the
  /// feasibility boundary (see the Fig. 5 reproduction bench).
  double gammaFactor = 4.0;
};

class Objective {
 public:
  Objective(ObjectiveSpec spec, ObjectiveConfig config = {});

  const ObjectiveSpec& spec() const { return spec_; }
  const ObjectiveConfig& objectiveConfig() const { return config_; }

  ObjectiveWeights& weights() { return weights_; }
  const ObjectiveWeights& weights() const { return weights_; }

  /// f^FoM: weighted sum of |metric| values. Does not include w^FoM.
  double fomValue(const em::PerformanceMetrics& m) const;

  /// Hard-clip output-constraint penalty f_j^OC (Eq. 8's max form).
  double ocPenaltyExact(std::size_t j, const em::PerformanceMetrics& m) const;

  /// Smoothed double-sigmoid output-constraint term f̂_j^OC in (0, 2).
  double ocPenaltySmooth(std::size_t j, const em::PerformanceMetrics& m) const;

  /// d f̂_j^OC / d metric value.
  double ocPenaltySmoothDerivative(std::size_t j, const em::PerformanceMetrics& m) const;

  /// Input-constraint clip penalty f_k^IC (Eq. 11).
  double icPenalty(std::size_t k, const em::StackupParams& x) const;

  /// g(x): w^FoM f^FoM + sum w^OC f^OC(exact) + sum w^IC f^IC.
  double gValue(const em::PerformanceMetrics& m, const em::StackupParams& x) const;

  /// ghat(x): w^FoM f^FoM + sum w^OC f̂^OC(smooth) + sum w^IC f^IC.
  double gSmoothValue(const em::PerformanceMetrics& m, const em::StackupParams& x) const;

  /// Batch forms: out[i] = g / ghat of (metrics[i], xs[i]). All spans must
  /// have equal length; evaluation order is row order (weights are read per
  /// row, matching a scalar loop under concurrent weight adaptation).
  void gBatch(std::span<const em::PerformanceMetrics> metrics,
              std::span<const em::StackupParams> xs, std::span<double> out) const;
  void gSmoothBatch(std::span<const em::PerformanceMetrics> metrics,
                    std::span<const em::StackupParams> xs, std::span<double> out) const;

  /// ghat plus its gradient w.r.t. the raw design vector. `metricGradient`
  /// fills d metric_k / d x (only called for metrics the spec references).
  double gSmoothWithGradient(
      const em::PerformanceMetrics& m, const em::StackupParams& x,
      const std::function<void(em::Metric, std::span<double>)>& metricGradient,
      std::span<double> gradOut) const;

  /// True iff all output constraints hold within tolerance and all input
  /// constraints are satisfied.
  bool feasible(const em::PerformanceMetrics& m, const em::StackupParams& x) const;

  /// Boundary value C_max of the smoothed OC term (used by Alg. 2): the
  /// value of f̂^OC exactly at |metric - target| == tolerance.
  double ocBoundaryValue(std::size_t j) const;

 private:
  double gamma(std::size_t j) const;

  ObjectiveSpec spec_;
  ObjectiveConfig config_;
  ObjectiveWeights weights_;
};

/// Adaptive weight adjustment (Algorithm 2): once >= beta of a batch
/// satisfies a constraint, that constraint's weight is decayed by (1 - beta)
/// but never below min(w^FoM * FoM) / C_max observed in the batch.
struct AdaptiveWeightConfig {
  double beta = 0.2;
  bool enabled = true;
};

class AdaptiveWeights {
 public:
  AdaptiveWeights(Objective& objective, AdaptiveWeightConfig config = {})
      : objective_(&objective), config_(config) {}

  /// Consumes one batch of evaluated samples (metrics + design points, same
  /// order) and updates the objective's constraint weights in place.
  ///
  /// Two clarifications vs. the paper's Algorithm 2 pseudo-code (documented
  /// deviations): the FoM floor uses the *running* minimum across batches
  /// (the best FoM seen so far, which is what the floor is protecting
  /// against), and an update never increases a weight — the floor is a
  /// decay limiter, not a growth rule.
  void update(std::span<const em::PerformanceMetrics> metrics,
              std::span<const em::StackupParams> designs);

 private:
  Objective* objective_;
  AdaptiveWeightConfig config_;
  double runningMinFom_ = std::numeric_limits<double>::infinity();
};

}  // namespace isop::core
