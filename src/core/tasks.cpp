#include "core/tasks.hpp"

#include <stdexcept>

namespace isop::core {

namespace {
OutputConstraint zConstraint(double target, double tolerance) {
  return {em::Metric::Z, target, tolerance, "Z"};
}
}  // namespace

Task taskT1() {
  Task t;
  t.name = "T1";
  t.spec.fom = {{em::Metric::L, 1.0}};
  t.spec.outputConstraints = {zConstraint(85.0, 1.0)};
  return t;
}

Task taskT2() {
  Task t;
  t.name = "T2";
  t.spec.fom = {{em::Metric::L, 1.0}};
  t.spec.outputConstraints = {zConstraint(100.0, 2.0)};
  return t;
}

Task taskT3() {
  Task t;
  t.name = "T3";
  t.spec.fom = {{em::Metric::L, 1.0}};
  t.spec.outputConstraints = {zConstraint(85.0, 1.0),
                              {em::Metric::Next, 0.0, 0.05, "NEXT"}};
  return t;
}

Task taskT4() {
  Task t;
  t.name = "T4";
  t.spec.fom = {{em::Metric::L, 1.0}, {em::Metric::Next, 2.0}};
  t.spec.outputConstraints = {zConstraint(85.0, 1.0)};
  return t;
}

Task taskByName(std::string_view name) {
  if (name == "T1") return taskT1();
  if (name == "T2") return taskT2();
  if (name == "T3") return taskT3();
  if (name == "T4") return taskT4();
  throw std::invalid_argument("unknown task: " + std::string(name));
}

std::vector<InputConstraint> tableIxInputConstraints() {
  using em::Param;
  std::vector<InputConstraint> ics(3);
  ics[0].name = "2*Wt+St<=20";
  ics[0].coefficients[static_cast<std::size_t>(Param::Wt)] = 2.0;
  ics[0].coefficients[static_cast<std::size_t>(Param::St)] = 1.0;
  ics[0].bound = 20.0;

  ics[1].name = "Dt-5*Hc<=0";
  ics[1].coefficients[static_cast<std::size_t>(Param::Dt)] = 1.0;
  ics[1].coefficients[static_cast<std::size_t>(Param::Hc)] = -5.0;
  ics[1].bound = 0.0;

  ics[2].name = "Dt-5*Hp<=0";
  ics[2].coefficients[static_cast<std::size_t>(Param::Dt)] = 1.0;
  ics[2].coefficients[static_cast<std::size_t>(Param::Hp)] = -5.0;
  ics[2].bound = 0.0;
  return ics;
}

em::StackupParams manualDesignTableIx() {
  em::StackupParams p;
  p.values = {5.0, 6.0, 20.0, 0.0, 1.5, 8.0, 8.0, 5.8e7,
              -14.5, 4.3, 4.3, 4.3, 0.001, 0.001, 0.001};
  return p;
}

}  // namespace isop::core
