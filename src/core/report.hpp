// Result export: JSON serialization of optimization outcomes for downstream
// tooling (design databases, CI dashboards, notebook analysis).
#pragma once

#include <string>

#include "common/json.hpp"
#include "core/board.hpp"
#include "core/trial_runner.hpp"

namespace isop::core {

/// One design point with its EM-validated metrics.
json::Value toJson(const em::StackupParams& params);
json::Value toJson(const em::PerformanceMetrics& metrics);
json::Value toJson(const IsopCandidate& candidate);

/// Full optimization result: ranked candidates + accounting.
json::Value toJson(const IsopResult& result);

/// Aggregated trial statistics (one bench-table row).
json::Value toJson(const TrialStats& stats);

/// Whole-board report.
json::Value toJson(const BoardResult& board);

/// Writes any JSON value to a file (pretty-printed). Throws on I/O failure.
void writeJsonFile(const std::string& path, const json::Value& value);

}  // namespace isop::core
