#include "core/isop.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace isop::core {

IsopOptimizer::IsopOptimizer(const em::EmSimulator& simulator,
                             std::shared_ptr<const ml::Surrogate> surrogate,
                             em::ParameterSpace space, Task task, IsopConfig config)
    : simulator_(&simulator),
      surrogate_(std::move(surrogate)),
      space_(std::move(space)),
      task_(std::move(task)),
      config_(std::move(config)) {
  if (!surrogate_) throw std::invalid_argument("IsopOptimizer: null surrogate");
  if (surrogate_->inputDim() != em::kNumParams ||
      surrogate_->outputDim() != em::kNumMetrics) {
    throw std::invalid_argument("IsopOptimizer: surrogate must map 15 params -> 3 metrics");
  }
  if (config_.useGradientStage && !surrogate_->hasInputGradient()) {
    throw std::invalid_argument(
        "IsopOptimizer: gradient stage requires a differentiable surrogate "
        "(disable useGradientStage for tree-based models)");
  }
}

IsopResult IsopOptimizer::run() const {
  // The session outlives every span below (declaration order), so the trace
  // and metrics files flush after all stages have reported.
  obs::Session session(config_.obs);
  obs::StageSpan runSpan("isop.run");
  Timer timer;
  IsopResult result;
  surrogate_->resetQueryCount();
  const std::size_t simCallsBefore = simulator_->callCount();
  const double simSecondsBefore = simulator_->modeledSeconds();

  Objective objective(task_.spec, config_.objective);
  // One eval engine funnels every model/simulator query of the run: all
  // stages (and the repair objective below) share its memo cache and batch
  // dispatch. A caller-lent engine (setSharedEngine) survives past this run,
  // so later runs against the same surrogate warm-start from its memo; stats
  // are delta-accounted either way.
  const auto engine =
      sharedEngine_ != nullptr
          ? sharedEngine_
          : std::make_shared<EvalEngine>(*surrogate_, *simulator_, config_.evalEngine);
  const EvalEngineStats engineStatsBefore = engine->stats();
  SurrogateObjective searchObjective(objective, *surrogate_, config_.useSmoothObjective,
                                     engine);
  searchObjective.setUncertaintyPenalty(config_.uncertaintyPenalty);
  AdaptiveWeights weightAdapter(objective, config_.adaptiveWeights);

  const hpo::BinaryCodec codec(space_, config_.coding);
  const std::size_t numBits = codec.totalBits();

  // ---- Stage 1a: Harmonica global exploration (Alg. 1 lines 1-7) ----------
  hpo::HarmonicaConfig harmonicaCfg = config_.harmonica;
  harmonicaCfg.seed = config_.seed * 0x9e3779b97f4a7c15ULL + 0xabcd;
  harmonicaCfg.cancel = config_.cancel;
  const hpo::Harmonica harmonica(harmonicaCfg);

  searchObjective.setRecording(config_.adaptiveWeights.enabled);
  std::vector<em::PerformanceMetrics> batchMetrics;
  std::vector<em::StackupParams> batchDesigns;

  // Samplers draw valid grid points and then apply the current restriction;
  // the overwritten fixed bits can make the pattern decode out of range, so
  // a few rejection rounds keep the evaluated batches dense in valid
  // designs (invalid leftovers are still excluded by the +inf objective).
  auto sampleUnderRestriction = [&](Rng& rng,
                                    std::span<const hpo::FixedBit> fixed) {
    hpo::BitVector bits;
    for (int attempt = 0; attempt < 8; ++attempt) {
      bits = codec.sampleValid(rng);
      hpo::Harmonica::applyFixedBits(fixed, bits);
      if (codec.isValid(bits)) break;
    }
    return bits;
  };

  hpo::HarmonicaResult harmonicaResult;
  {
    obs::StageSpan stageSpan("stage1.harmonica");
    harmonicaResult = harmonica.optimize(
        numBits,
        [&](std::span<const hpo::BitVector> samples, std::span<double> values) {
          searchObjective.evaluateBitsBatch(codec, samples, values);
        },
        sampleUnderRestriction,
        [&](std::size_t iteration, std::span<const hpo::BitVector>, std::span<const double>) {
          if (!config_.adaptiveWeights.enabled) return;
          searchObjective.drainBatch(batchMetrics, batchDesigns);
          weightAdapter.update(batchMetrics, batchDesigns);
          if (obs::convergence().enabled()) {
            obs::AdaptiveWeightsRecord rec;
            rec.iteration = iteration;
            rec.wFom = objective.weights().fom;
            rec.wOc = objective.weights().oc;
            rec.wIc = objective.weights().ic;
            obs::convergence().record(rec.toJson());
          }
          log::debug("isop: after harmonica iteration ", iteration,
                     " wOC[0]=", objective.weights().oc.empty() ? 0.0 : objective.weights().oc[0]);
        },
        [&](const hpo::BitVector& bits) { return codec.isValid(bits); });
  }
  searchObjective.setRecording(false);

  // ---- Stage 1b: seed selection (Alg. 1 line 8) ----------------------------
  Rng seedRng(config_.seed * 0x2545f4914f6cdd1dULL + 0x1234);
  std::vector<em::StackupParams> seeds;
  {
  obs::StageSpan stageSpan("stage1b.seeds");

  auto restrictedSample = [&](Rng& rng) {
    return sampleUnderRestriction(rng, harmonicaResult.fixedBits);
  };

  if (config_.useHyperband) {
    hpo::HyperbandConfig hbCfg = config_.hyperband;
    hbCfg.seed = config_.seed * 0x94d049bb133111ebULL + 0x77;
    hbCfg.cancel = config_.cancel;
    const hpo::Hyperband hyperband(hbCfg);
    // Resource semantics: r units = r random bit-flip hill-climb probes.
    // The base evaluations of a round are batched across arms; the probe
    // chains stay sequential in arm order so the shared probe RNG consumes
    // draws exactly as the per-arm path did.
    Rng probeRng(config_.seed + 0x5151);
    auto eval = [&](std::span<hpo::ScoredConfig> arms, std::size_t resource) {
      std::vector<hpo::BitVector> base(arms.size());
      for (std::size_t i = 0; i < arms.size(); ++i) base[i] = arms[i].bits;
      std::vector<double> baseValues(arms.size());
      searchObjective.evaluateBitsBatch(codec, base, baseValues);
      for (std::size_t i = 0; i < arms.size(); ++i) {
        hpo::ScoredConfig& arm = arms[i];
        double best = baseValues[i];
        for (std::size_t p = 0; p < resource; ++p) {
          hpo::BitVector neighbour = arm.bits;
          for (std::size_t f = 0; f < config_.hyperbandProbeBits; ++f) {
            const auto pos = static_cast<std::size_t>(probeRng.below(neighbour.size()));
            neighbour[pos] ^= 1u;
          }
          hpo::Harmonica::applyFixedBits(harmonicaResult.fixedBits, neighbour);
          const double v = searchObjective.evaluateBits(codec, neighbour);
          if (v < best) {
            best = v;
            arm.bits = neighbour;
          }
        }
        arm.value = best;
      }
    };
    auto picks = hyperband.run(restrictedSample, eval, config_.localSeeds);
    for (const auto& pick : picks) {
      if (auto decoded = codec.decode(pick.bits)) seeds.push_back(*decoded);
    }
  } else {
    // Naive alternative: evaluate a flat batch of random restricted samples
    // and keep the best p (the paper's "naive random sampling" comparator).
    const std::size_t batch = std::max<std::size_t>(config_.localSeeds * 8, 32);
    std::vector<em::StackupParams> sampled;
    sampled.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      hpo::BitVector bits = restrictedSample(seedRng);
      if (auto decoded = codec.decode(bits)) sampled.push_back(*decoded);
    }
    std::vector<double> values(sampled.size());
    searchObjective.evaluateBatch(sampled, values);
    std::vector<std::pair<double, em::StackupParams>> scored;
    scored.reserve(sampled.size());
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      scored.emplace_back(values[i], sampled[i]);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < std::min(config_.localSeeds, scored.size()); ++i) {
      seeds.push_back(scored[i].second);
    }
  }
  // Always include the best Harmonica sample as a seed.
  if (!harmonicaResult.bestBits.empty()) {
    if (auto decoded = codec.decode(harmonicaResult.bestBits)) seeds.push_back(*decoded);
  }
  if (seeds.empty()) {
    // Pathological fallback (e.g. zero-budget configs in tests).
    seeds.push_back(space_.sample(seedRng));
  }
  if (seeds.size() > config_.localSeeds + 1) seeds.resize(config_.localSeeds + 1);
  }  // stage1b.seeds span

  // ---- Stage 2: gradient-descent local exploration (Alg. 1 lines 9-12) ----
  std::vector<em::StackupParams> refined = seeds;
  hpo::RefineConfig refineCfg = config_.refine;
  refineCfg.cancel = config_.cancel;
  if (config_.useGradientStage) {
    obs::StageSpan stageSpan("stage2.refine");
    const hpo::AdamRefiner refiner(refineCfg);
    auto refineResult = refiner.refine(
        space_, seeds,
        [&](std::span<const em::StackupParams> xs, std::span<double> values,
            Matrix& grads) {
          searchObjective.evaluateWithGradientBatch(xs, values, grads);
        });
    refined = std::move(refineResult.refined);
    // The continuous refinement may drift outside feasibility pockets; keep
    // the original seeds as roll-out alternatives too.
    refined.insert(refined.end(), seeds.begin(), seeds.end());
  }

  // ---- Stage 3: candidate roll-out (Alg. 1 lines 13-16) -------------------
  // Snap to valid discrete values, dedupe, score with the surrogate, and
  // send the most promising cand_num designs to the accurate EM simulator.
  // If every validated design misses a constraint, an optional repair round
  // measures the surrogate's bias at the best candidate, shifts the search
  // targets by it, re-runs the local stage, and validates again — the
  // optimizer otherwise tends to exploit exactly the pockets where the
  // surrogate is optimistically wrong.
  auto selectRollout = [&](std::span<const em::StackupParams> pool,
                           const SurrogateObjective& scorer) {
    std::vector<em::StackupParams> rollout;
    std::set<std::string> seen;
    for (const auto& p : pool) {
      em::StackupParams snapped = space_.snap(p);
      std::string key = snapped.toString();
      if (seen.insert(std::move(key)).second) rollout.push_back(snapped);
    }
    // One batched scoring pass instead of an evaluate() per comparison —
    // same ranking, n queries instead of O(n log n).
    std::vector<double> scores(rollout.size());
    scorer.evaluateBatch(rollout, scores);
    std::vector<std::size_t> order(rollout.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
    std::vector<em::StackupParams> ranked;
    ranked.reserve(rollout.size());
    for (std::size_t i : order) ranked.push_back(rollout[i]);
    rollout = std::move(ranked);
    if (rollout.size() <= config_.candNum) return rollout;
    // Diversity-aware selection: surrogate error is spatially correlated, so
    // validating three near-identical designs wastes two EM runs. Greedily
    // keep the best candidate, then prefer candidates that differ from every
    // kept one in at least two parameters by more than one grid step;
    // backfill by rank if diversity runs out.
    auto distance = [&](const em::StackupParams& a, const em::StackupParams& b) {
      std::size_t differing = 0;
      for (std::size_t i = 0; i < space_.dim(); ++i) {
        const double step = space_.range(i).step;
        if (std::abs(a.values[i] - b.values[i]) > 1.5 * step) ++differing;
      }
      return differing;
    };
    std::vector<em::StackupParams> selected{rollout.front()};
    std::vector<bool> used(rollout.size(), false);
    used[0] = true;
    while (selected.size() < config_.candNum) {
      std::size_t pick = rollout.size();
      for (std::size_t i = 1; i < rollout.size(); ++i) {
        if (used[i]) continue;
        bool diverse = true;
        for (const auto& s : selected) {
          if (distance(rollout[i], s) < 2) {
            diverse = false;
            break;
          }
        }
        if (diverse) {
          pick = i;
          break;
        }
      }
      if (pick == rollout.size()) {
        for (std::size_t i = 1; i < rollout.size(); ++i) {
          if (!used[i]) {
            pick = i;
            break;
          }
        }
        if (pick == rollout.size()) break;
      }
      used[pick] = true;
      selected.push_back(rollout[pick]);
    }
    return selected;
  };

  std::size_t rolloutRound = 1;
  auto validate = [&](std::span<const em::StackupParams> designs) {
    // EM validations fan out on the pool through the engine; results come
    // back in submission order, so candidate ranking is unchanged.
    const std::vector<em::PerformanceMetrics> measured = engine->simulateBatch(designs);
    for (std::size_t i = 0; i < designs.size(); ++i) {
      const em::StackupParams& p = designs[i];
      IsopCandidate cand;
      cand.params = p;
      cand.metrics = measured[i];
      // Always scored against the *original* task objective.
      cand.g = objective.gValue(cand.metrics, p);
      cand.fom = objective.fomValue(cand.metrics);
      cand.feasible = objective.feasible(cand.metrics, p);
      if (obs::convergence().enabled()) {
        obs::RolloutValidationRecord rec;
        rec.round = rolloutRound;
        rec.g = cand.g;
        rec.fom = cand.fom;
        rec.feasible = cand.feasible;
        rec.z = cand.metrics.z;
        rec.l = cand.metrics.l;
        rec.next = cand.metrics.next;
        obs::convergence().record(rec.toJson());
      }
      result.candidates.push_back(std::move(cand));
    }
  };

  obs::StageSpan rolloutSpan("stage3.rollout");
  config_.cancel.throwIfCancelled();
  validate(selectRollout(refined, searchObjective));

  const std::size_t maxRounds = std::max<std::size_t>(config_.rolloutRounds, 1);
  Task shiftedTask = task_;
  for (std::size_t round = 1; round < maxRounds; ++round) {
    const bool anyFeasible = std::any_of(
        result.candidates.begin(), result.candidates.end(),
        [](const IsopCandidate& c) { return c.feasible; });
    if (anyFeasible || !config_.useGradientStage) break;

    // Bias at the best-g validated candidate: shift each output-constraint
    // target so the surrogate-space optimum maps onto the true target.
    const auto bestIt = std::min_element(
        result.candidates.begin(), result.candidates.end(),
        [](const IsopCandidate& a, const IsopCandidate& b) { return a.g < b.g; });
    const em::PerformanceMetrics predicted = searchObjective.predict(bestIt->params);
    const auto predictedArr = predicted.asArray();
    const auto measuredArr = bestIt->metrics.asArray();
    for (std::size_t j = 0; j < shiftedTask.spec.outputConstraints.size(); ++j) {
      auto& oc = shiftedTask.spec.outputConstraints[j];
      const auto k = static_cast<std::size_t>(oc.metric);
      const double bias = measuredArr[k] - predictedArr[k];
      oc.target = task_.spec.outputConstraints[j].target - bias;
    }
    log::debug("isop: roll-out repair round ", round, " (bias-shifted targets)");

    Objective shiftedObjective(shiftedTask.spec, config_.objective);
    shiftedObjective.weights() = objective.weights();
    // The repair objective reuses the run's engine: the memo caches model
    // outputs (weight- and target-independent), so search-stage entries are
    // valid here and repair queries stay billed on the same counters.
    const SurrogateObjective repairObjective(shiftedObjective, *surrogate_,
                                             config_.useSmoothObjective, engine);
    std::vector<em::StackupParams> repairSeeds;
    for (const auto& c : result.candidates) repairSeeds.push_back(c.params);
    const hpo::AdamRefiner refiner(refineCfg);
    auto repairResult = refiner.refine(
        space_, repairSeeds,
        [&](std::span<const em::StackupParams> xs, std::span<double> values,
            Matrix& grads) {
          repairObjective.evaluateWithGradientBatch(xs, values, grads);
        });
    // Exclude already-validated designs from the new roll-out set.
    std::set<std::string> validatedKeys;
    for (const auto& c : result.candidates) validatedKeys.insert(c.params.toString());
    std::vector<em::StackupParams> fresh;
    for (const auto& p : repairResult.refined) {
      em::StackupParams snapped = space_.snap(p);
      if (!validatedKeys.count(snapped.toString())) fresh.push_back(snapped);
    }
    if (fresh.empty()) break;
    ++result.rolloutRoundsUsed;
    rolloutRound = result.rolloutRoundsUsed;
    validate(selectRollout(fresh, repairObjective));
  }

  // Rank: feasible first, then by exact g.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const IsopCandidate& a, const IsopCandidate& b) {
              if (a.feasible != b.feasible) return a.feasible;
              return a.g < b.g;
            });
  if (result.candidates.size() > config_.candNum) {
    result.candidates.resize(config_.candNum);
  }

  result.surrogateQueries = surrogate_->queryCount();
  result.simulatorCalls = simulator_->callCount() - simCallsBefore;
  result.evalStats = engine->stats() - engineStatsBefore;
  result.algoSeconds = timer.seconds();
  result.modeledSeconds =
      result.algoSeconds + (simulator_->modeledSeconds() - simSecondsBefore);
  result.finalWeights = objective.weights();
  return result;
}

}  // namespace isop::core
