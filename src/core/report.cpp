#include "core/report.hpp"

#include <fstream>
#include <stdexcept>

namespace isop::core {

json::Value toJson(const em::StackupParams& params) {
  json::Value out = json::Value::object();
  const auto names = em::paramNames();
  for (std::size_t i = 0; i < em::kNumParams; ++i) {
    out.set(std::string(names[i]), json::Value::number(params.values[i]));
  }
  return out;
}

json::Value toJson(const em::PerformanceMetrics& metrics) {
  json::Value out = json::Value::object();
  out.set("Z_ohm", json::Value::number(metrics.z));
  out.set("L_dB_per_inch", json::Value::number(metrics.l));
  out.set("NEXT_mV", json::Value::number(metrics.next));
  return out;
}

json::Value toJson(const IsopCandidate& candidate) {
  json::Value out = json::Value::object();
  out.set("params", toJson(candidate.params));
  out.set("metrics", toJson(candidate.metrics));
  out.set("g", json::Value::number(candidate.g));
  out.set("fom", json::Value::number(candidate.fom));
  out.set("feasible", json::Value::boolean(candidate.feasible));
  return out;
}

json::Value toJson(const IsopResult& result) {
  json::Value out = json::Value::object();
  json::Value candidates = json::Value::array();
  for (const auto& c : result.candidates) candidates.push(toJson(c));
  out.set("candidates", std::move(candidates));
  out.set("surrogate_queries",
          json::Value::integer(static_cast<long long>(result.surrogateQueries)));
  out.set("simulator_calls",
          json::Value::integer(static_cast<long long>(result.simulatorCalls)));
  out.set("rollout_rounds_used",
          json::Value::integer(static_cast<long long>(result.rolloutRoundsUsed)));
  out.set("algo_seconds", json::Value::number(result.algoSeconds));
  out.set("modeled_seconds", json::Value::number(result.modeledSeconds));
  return out;
}

json::Value toJson(const TrialStats& stats) {
  json::Value out = json::Value::object();
  out.set("method", json::Value::string(stats.method));
  out.set("trials", json::Value::integer(static_cast<long long>(stats.trials)));
  out.set("successes", json::Value::integer(static_cast<long long>(stats.successes)));
  out.set("avg_runtime_seconds", json::Value::number(stats.avgRuntime));
  out.set("avg_samples", json::Value::number(stats.avgSamples));
  out.set("dz_mean", json::Value::number(stats.dzMean));
  out.set("dz_stdev", json::Value::number(stats.dzStdev));
  out.set("l_mean", json::Value::number(stats.lMean));
  out.set("l_stdev", json::Value::number(stats.lStdev));
  out.set("next_mean", json::Value::number(stats.nextMean));
  out.set("next_stdev", json::Value::number(stats.nextStdev));
  out.set("fom_mean", json::Value::number(stats.fomMean));
  out.set("fom_stdev", json::Value::number(stats.fomStdev));
  return out;
}

json::Value toJson(const BoardResult& board) {
  json::Value out = json::Value::object();
  json::Value layers = json::Value::array();
  for (const auto& layer : board.layers) {
    json::Value l = json::Value::object();
    l.set("name", json::Value::string(layer.name));
    l.set("feasible", json::Value::boolean(layer.feasible));
    l.set("fom", json::Value::number(layer.fom));
    l.set("result", toJson(layer.optimization));
    layers.push(std::move(l));
  }
  out.set("layers", std::move(layers));
  out.set("feasible_layers",
          json::Value::integer(static_cast<long long>(board.feasibleLayers)));
  out.set("all_feasible", json::Value::boolean(board.allFeasible()));
  out.set("total_algo_seconds", json::Value::number(board.totalAlgoSeconds));
  out.set("total_modeled_seconds", json::Value::number(board.totalModeledSeconds));
  return out;
}

void writeJsonFile(const std::string& path, const json::Value& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("report: cannot open '" + path + "' for writing");
  out << value.dump(2) << '\n';
  if (!out) throw std::runtime_error("report: write failed for '" + path + "'");
}

}  // namespace isop::core
