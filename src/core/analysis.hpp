// Post-optimization design analysis: manufacturing-yield estimation and
// parameter sensitivities.
//
// The paper's output is a single optimized stack-up; the first questions a
// signal-integrity engineer asks of it are "does it survive fab tolerances?"
// and "which knobs is it sensitive to?". Both are cheap against the
// closed-form EM model and round out the inverse-design flow:
//
//   * yieldAnalysis — Monte-Carlo perturbation of the physical dimensions
//     and material properties within given relative tolerances, EM-evaluated
//     and checked against the task's constraints; reports the pass fraction
//     and worst-case metrics.
//   * sensitivityAnalysis — central-difference d(metric)/d(parameter) at the
//     design, scaled per grid step so entries are comparable across the
//     wildly different parameter units.
#pragma once

#include <array>

#include "core/objective.hpp"
#include "em/parameter_space.hpp"
#include "em/simulator.hpp"

namespace isop::core {

struct ToleranceModel {
  /// Relative 3-sigma tolerance applied to the physical dimensions
  /// (W, S, D, E, H*): fab etch/lamination control.
  double dimensionRel = 0.05;
  /// Relative 3-sigma tolerance on material properties (sigma, Dk, Df):
  /// laminate batch variation. Roughness is perturbed additively.
  double materialRel = 0.02;
  /// Additive 3-sigma perturbation on the roughness knob Rt (dB scale).
  double roughnessAbs = 1.0;
};

struct YieldReport {
  std::size_t samples = 0;
  std::size_t passed = 0;
  double yield = 0.0;  ///< passed / samples
  em::PerformanceMetrics nominal{};
  /// Worst observed excursions over the Monte-Carlo set.
  double worstDz = 0.0;       ///< max |Z - Ztarget| (0 if no Z constraint)
  double worstL = 0.0;        ///< most negative L
  double worstNext = 0.0;     ///< most negative NEXT
  double fomMean = 0.0;
  double fomStdev = 0.0;
};

/// Monte-Carlo yield of `design` under the tolerance model, judged by the
/// task's constraints through the EM model (uncounted evaluations).
YieldReport yieldAnalysis(const em::EmSimulator& simulator, const Objective& objective,
                          const em::StackupParams& design,
                          const ToleranceModel& tolerances = {},
                          std::size_t samples = 2000, std::uint64_t seed = 1234);

struct SensitivityRow {
  std::size_t param = 0;   ///< canonical parameter index
  double dZ = 0.0;         ///< per +1 grid step of the given space
  double dL = 0.0;
  double dNext = 0.0;
};

/// Central-difference metric sensitivities at `design`, one grid step of
/// `space` per parameter (the natural "one fab increment" unit).
std::array<SensitivityRow, em::kNumParams> sensitivityAnalysis(
    const em::EmSimulator& simulator, const em::ParameterSpace& space,
    const em::StackupParams& design);

}  // namespace isop::core
