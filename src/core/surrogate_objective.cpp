#include "core/surrogate_objective.hpp"

#include <cassert>
#include <limits>

namespace isop::core {

SurrogateObjective::SurrogateObjective(Objective& objective, const ml::Surrogate& model,
                                       bool smooth, std::shared_ptr<EvalEngine> engine)
    : objective_(&objective),
      model_(&model),
      engine_(std::move(engine)),
      smooth_(smooth) {
  assert(model.inputDim() == em::kNumParams);
  assert(model.outputDim() == em::kNumMetrics);
  if (!engine_) engine_ = std::make_shared<EvalEngine>(model);
  assert(&engine_->model() == model_ && "engine must wrap the same surrogate");
}

em::PerformanceMetrics SurrogateObjective::predict(const em::StackupParams& x) const {
  return engine_->predictOne(x);
}

void SurrogateObjective::setUncertaintyPenalty(double weight) {
  uncertaintyWeight_ = weight;
  ensemble_ = weight > 0.0 ? dynamic_cast<const ml::EnsembleSurrogate*>(model_) : nullptr;
}

double SurrogateObjective::uncertaintyTerm(const em::StackupParams& x) const {
  if (!ensemble_ || uncertaintyWeight_ <= 0.0) return 0.0;
  std::array<double, em::kNumMetrics> mean{}, spread{};
  ensemble_->predictWithSpread(x.asVector(), mean, spread);
  // Scale each metric's disagreement by its constraint tolerance where one
  // exists (an 0.5-ohm disagreement matters for a 1-ohm band, not for FoM).
  std::array<double, em::kNumMetrics> scale{};
  scale.fill(1.0);
  for (const auto& oc : objective_->spec().outputConstraints) {
    scale[static_cast<std::size_t>(oc.metric)] = std::max(oc.tolerance, 1e-9);
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < em::kNumMetrics; ++k) acc += spread[k] / scale[k];
  return uncertaintyWeight_ * acc;
}

double SurrogateObjective::evaluate(const em::StackupParams& x) const {
  const em::PerformanceMetrics m = predict(x);
  if (recording_) {
    MutexLock lock(batchMutex_);
    batchMetrics_.push_back(m);
    batchDesigns_.push_back(x);
  }
  const double base = smooth_ ? objective_->gSmoothValue(m, x) : objective_->gValue(m, x);
  return base + uncertaintyTerm(x);
}

double SurrogateObjective::evaluateBits(const hpo::BinaryCodec& codec,
                                        const hpo::BitVector& bits) const {
  const auto decoded = codec.decode(bits);
  if (!decoded) return std::numeric_limits<double>::infinity();
  return evaluate(*decoded);
}

void SurrogateObjective::evaluateBatch(std::span<const em::StackupParams> xs,
                                       std::span<double> out) const {
  assert(out.size() == xs.size());
  std::vector<em::PerformanceMetrics> metrics;
  engine_->predictMetrics(xs, metrics);
  if (recording_) {
    MutexLock lock(batchMutex_);
    batchMetrics_.insert(batchMetrics_.end(), metrics.begin(), metrics.end());
    batchDesigns_.insert(batchDesigns_.end(), xs.begin(), xs.end());
  }
  if (smooth_) {
    objective_->gSmoothBatch(metrics, xs, out);
  } else {
    objective_->gBatch(metrics, xs, out);
  }
  if (ensemble_ && uncertaintyWeight_ > 0.0) {
    // Batch-aware disagreement: one batched member sweep instead of a
    // per-row predictWithSpread loop. Values match the scalar loop exactly
    // (spreads are bitwise row-equal; the scale vector is row-invariant).
    Matrix x(xs.size(), em::kNumParams);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto src = xs[i].asVector();
      std::copy(src.begin(), src.end(), x.row(i).begin());
    }
    Matrix mean, spread;
    ensemble_->predictWithSpreadBatch(x, mean, spread);
    std::array<double, em::kNumMetrics> scale{};
    scale.fill(1.0);
    for (const auto& oc : objective_->spec().outputConstraints) {
      scale[static_cast<std::size_t>(oc.metric)] = std::max(oc.tolerance, 1e-9);
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < em::kNumMetrics; ++k) acc += spread(i, k) / scale[k];
      out[i] += uncertaintyWeight_ * acc;
    }
  }
}

void SurrogateObjective::evaluateBitsBatch(const hpo::BinaryCodec& codec,
                                           std::span<const hpo::BitVector> bits,
                                           std::span<double> out) const {
  assert(out.size() == bits.size());
  std::vector<em::StackupParams> decoded;
  std::vector<std::size_t> slots;
  decoded.reserve(bits.size());
  slots.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (auto d = codec.decode(bits[i])) {
      decoded.push_back(*d);
      slots.push_back(i);
    } else {
      out[i] = std::numeric_limits<double>::infinity();
    }
  }
  std::vector<double> values(decoded.size());
  evaluateBatch(decoded, values);
  for (std::size_t j = 0; j < slots.size(); ++j) out[slots[j]] = values[j];
}

double SurrogateObjective::evaluateWithGradient(const em::StackupParams& x,
                                                std::span<double> grad) const {
  const em::PerformanceMetrics m = predict(x);
  return objective_->gSmoothWithGradient(
      m, x,
      [&](em::Metric metric, std::span<double> mg) {
        model_->inputGradient(x.asVector(), static_cast<std::size_t>(metric), mg);
      },
      grad);
}

void SurrogateObjective::evaluateWithGradientBatch(std::span<const em::StackupParams> xs,
                                                   std::span<double> values,
                                                   Matrix& grads) const {
  assert(values.size() == xs.size());
  const std::size_t n = xs.size();
  std::vector<em::PerformanceMetrics> metrics;
  engine_->predictMetrics(xs, metrics);

  // Work out which metrics gSmoothWithGradient will ask for anywhere in the
  // batch: FoM terms unconditionally, output constraint j only when its
  // smoothed penalty has nonzero slope for at least one row (the same lazy
  // condition the per-row callback protocol uses). One batched backward pass
  // per needed metric then steps every candidate together — this is what
  // turns the Adam local stage's p per-design backprops into ceil(p/chunk)
  // row-blocked ones.
  std::array<bool, em::kNumMetrics> needed{};
  for (const auto& term : objective_->spec().fom) {
    needed[static_cast<std::size_t>(term.metric)] = true;
  }
  const auto& ocs = objective_->spec().outputConstraints;
  for (std::size_t j = 0; j < ocs.size(); ++j) {
    const std::size_t k = static_cast<std::size_t>(ocs[j].metric);
    if (needed[k]) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (objective_->ocPenaltySmoothDerivative(j, metrics[i]) != 0.0) {
        needed[k] = true;
        break;
      }
    }
  }
  std::array<Matrix, em::kNumMetrics> metricGrads;
  for (std::size_t k = 0; k < em::kNumMetrics; ++k) {
    if (needed[k]) engine_->gradientBatch(xs, k, metricGrads[k]);
  }

  grads.resize(n, em::kNumParams);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = objective_->gSmoothWithGradient(
        metrics[i], xs[i],
        [&](em::Metric metric, std::span<double> mg) {
          // Served from the precomputed batch rows — bitwise what the
          // per-design inputGradient call returned here before.
          const auto row = metricGrads[static_cast<std::size_t>(metric)].row(i);
          std::copy(row.begin(), row.end(), mg.begin());
        },
        grads.row(i));
  }
}

void SurrogateObjective::drainBatch(std::vector<em::PerformanceMetrics>& metrics,
                                    std::vector<em::StackupParams>& designs) const {
  MutexLock lock(batchMutex_);
  metrics = std::move(batchMetrics_);
  designs = std::move(batchDesigns_);
  batchMetrics_.clear();
  batchDesigns_.clear();
}

}  // namespace isop::core
