// Multi-layer board orchestration.
//
// The paper frames stack-up design as choosing "the best combination of
// design parameters for each layer in a PCB's stack-up": a modern HDI board
// carries many signal layers (DDR singles, SerDes differentials, surface
// breakout) each with its own impedance target, constraints and physics.
// BoardDesigner runs the ISOP+ pipeline per layer — each layer gets its own
// simulator configuration (stripline or microstrip, Table II-style task,
// search space) — and aggregates the results into a board report.
//
// Layers are electromagnetically independent in this model (each has its
// own reference planes), matching the per-layer treatment in the paper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/isop.hpp"

namespace isop::core {

struct LayerSpec {
  std::string name;                 ///< e.g. "L3 DDR5 data"
  em::SimulatorConfig simulator{};  ///< layer physics
  em::ParameterSpace space;         ///< per-layer search space
  Task task;                        ///< targets and constraints
};

struct LayerResult {
  std::string name;
  IsopResult optimization;
  bool feasible = false;
  double fom = 0.0;
};

struct BoardResult {
  std::vector<LayerResult> layers;
  std::size_t feasibleLayers = 0;
  double totalAlgoSeconds = 0.0;
  double totalModeledSeconds = 0.0;

  bool allFeasible() const { return feasibleLayers == layers.size(); }
};

class BoardDesigner {
 public:
  /// Builds the search-time performance model for a layer. The default
  /// factory wraps the layer's own simulator as an oracle surrogate
  /// (instant, training-free); production flows can inject trained models.
  using SurrogateFactory = std::function<std::shared_ptr<const ml::Surrogate>(
      const LayerSpec& layer, const em::EmSimulator& simulator)>;

  explicit BoardDesigner(IsopConfig baseConfig = {}, SurrogateFactory factory = {});

  /// Optimizes every layer; layer i uses seed baseConfig.seed + i.
  BoardResult design(std::span<const LayerSpec> layers) const;

 private:
  IsopConfig baseConfig_;
  SurrogateFactory factory_;
};

}  // namespace isop::core
