// Wire protocol of the serve mode: line-delimited JSON on both directions.
//
// Requests (client -> server), one JSON object per line:
//   {"type":"hello"[,"token":SECRET]}                 // TCP authentication
//   {"type":"submit","id":"j1", ...job spec fields...}
//   {"type":"inverse","id":"j1", ...target spec fields...}   // v4
//   {"type":"cancel","id":"j1"}
//   {"type":"status"}
//   {"type":"stats"}                                  // live introspection
//   {"type":"trace","action":"start|stop|status"[,"out":PATH]}
//   {"type":"shutdown"}
//
// Responses (server -> client), one JSON object per line, each carrying an
// "event" discriminator: job lifecycle events (accepted/rejected/started/
// progress/done/cancelled/failed, see Scheduler's JobEvent) plus the
// server-level ready / status / error / shutdown events emitted by
// serve::Server. docs/serving.md documents every field.
//
// Parsing is strict: malformed JSON, missing/mistyped fields, and unknown
// keys are all rejected with a reason (served back as an `error` event) —
// a typo in a knob name must not silently run a default job.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "serve/scheduler.hpp"

namespace isop::serve {

/// Protocol revision announced in the `ready` event; bump on any breaking
/// change to requests or events. v2 adds the stats/trace requests and the
/// submit `trace_out` field (v1 requests are unchanged). v3 adds the
/// `hello` request (TCP authentication), the `eval` block in done results,
/// the session lifecycle in the stats response, and the `listen` field in
/// the ready event (v2 requests are unchanged). v4 adds the additive
/// `inverse` request — amortized spec→design inference with a `"mode":
/// "inverse"` done-result payload — plus the per-session inverse_model /
/// warm_inverse stats columns; every v≤3 request still parses and answers
/// unchanged, and a v≤3 server rejects `inverse` with its regular
/// unknown-request-type error.
inline constexpr int kProtocolVersion = 4;

struct Request {
  enum class Kind { Hello, Submit, Cancel, Status, Stats, Trace, Shutdown };
  Kind kind = Kind::Status;
  JobSpec spec;      ///< Submit only
  std::string id;    ///< Cancel only
  std::string token; ///< Hello only: the shared secret ("" = none given)

  /// Trace only: the span-capture control verb.
  enum class TraceAction { Start, Stop, Status };
  TraceAction traceAction = TraceAction::Status;
  std::string traceOut;  ///< Trace stop: Chrome-trace export path ("" = none)
};

/// Parses one request line. std::nullopt (with *error set, when non-null) on
/// malformed JSON, unknown "type", missing/mistyped fields, unknown keys, or
/// out-of-range values.
std::optional<Request> parseRequest(const std::string& line, std::string* error);

/// Wire encoding of a submit request for `spec`. Inverse of parseSubmit: for
/// any valid spec, parseRequest(submitToJson(spec).dump()) yields an equal
/// spec, and re-encoding that spec reproduces the same JSON — the encode →
/// parse → re-encode fixed point the protocol round-trip test pins down.
/// Optional fields (target/tolerance/trace_out) are omitted when unset.
json::Value submitToJson(const JobSpec& spec);

/// The `hello` response payload (the protocol version is repeated so a
/// client connecting over TCP learns it without seeing the ready event).
json::Value helloToJson(bool authenticated);

/// Wire encoding of one scheduler event (the "result" of a Done event is
/// expanded via resultToJson).
json::Value toJson(const JobEvent& event);

/// The final ranked-designs result of a completed job: per-design EM-validated
/// metrics plus the run's accounting aggregates.
json::Value resultToJson(const core::TrialStats& stats);

/// The done-result payload of an `inverse` job: ranked candidate designs
/// with surrogate-predicted metrics, tagged "mode":"inverse".
json::Value inverseResultToJson(const inverse::InverseResult& result);

/// Wire encoding of an inverse request for `spec` (kind must be Inverse).
/// Same encode → parse → re-encode fixed point as submitToJson.
json::Value inverseToJson(const JobSpec& spec);

/// The `status` response payload.
json::Value statusToJson(const Scheduler::Status& status, std::size_t sessions);

/// The `stats` response payload: the status fields under "queue", the live
/// per-job table under "jobs", the session/memo-cache table under
/// "sessions", the session lifecycle (created/evicted/persisted/loaded)
/// under "session_lifecycle", and the full metrics-registry export under
/// "metrics".
json::Value statsToJson(const Scheduler::Status& status,
                        const std::vector<Scheduler::JobSnapshot>& jobs,
                        const std::vector<SessionManager::SessionInfo>& sessions,
                        const SessionManager::Lifecycle& lifecycle,
                        json::Value metrics);

/// The `trace` response payload: current capture state plus (after a stop
/// with an "out" path) whether the export was written.
json::Value traceToJson(bool enabled, std::size_t events, std::size_t dropped,
                        const std::string& written);

}  // namespace isop::serve
