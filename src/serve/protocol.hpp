// Wire protocol of the serve mode: line-delimited JSON on both directions.
//
// Requests (client -> server), one JSON object per line:
//   {"type":"submit","id":"j1", ...job spec fields...}
//   {"type":"cancel","id":"j1"}
//   {"type":"status"}
//   {"type":"stats"}                                  // live introspection
//   {"type":"trace","action":"start|stop|status"[,"out":PATH]}
//   {"type":"shutdown"}
//
// Responses (server -> client), one JSON object per line, each carrying an
// "event" discriminator: job lifecycle events (accepted/rejected/started/
// progress/done/cancelled/failed, see Scheduler's JobEvent) plus the
// server-level ready / status / error / shutdown events emitted by
// serve::Server. docs/serving.md documents every field.
//
// Parsing is strict: malformed JSON, missing/mistyped fields, and unknown
// keys are all rejected with a reason (served back as an `error` event) —
// a typo in a knob name must not silently run a default job.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "serve/scheduler.hpp"

namespace isop::serve {

/// Protocol revision announced in the `ready` event; bump on any breaking
/// change to requests or events. v2 adds the stats/trace requests and the
/// submit `trace_out` field (v1 requests are unchanged).
inline constexpr int kProtocolVersion = 2;

struct Request {
  enum class Kind { Submit, Cancel, Status, Stats, Trace, Shutdown };
  Kind kind = Kind::Status;
  JobSpec spec;    ///< Submit only
  std::string id;  ///< Cancel only

  /// Trace only: the span-capture control verb.
  enum class TraceAction { Start, Stop, Status };
  TraceAction traceAction = TraceAction::Status;
  std::string traceOut;  ///< Trace stop: Chrome-trace export path ("" = none)
};

/// Parses one request line. std::nullopt (with *error set, when non-null) on
/// malformed JSON, unknown "type", missing/mistyped fields, unknown keys, or
/// out-of-range values.
std::optional<Request> parseRequest(const std::string& line, std::string* error);

/// Wire encoding of one scheduler event (the "result" of a Done event is
/// expanded via resultToJson).
json::Value toJson(const JobEvent& event);

/// The final ranked-designs result of a completed job: per-design EM-validated
/// metrics plus the run's accounting aggregates.
json::Value resultToJson(const core::TrialStats& stats);

/// The `status` response payload.
json::Value statusToJson(const Scheduler::Status& status, std::size_t sessions);

/// The `stats` response payload: the status fields under "queue", the live
/// per-job table under "jobs", the session/memo-cache table under
/// "sessions", and the full metrics-registry export under "metrics".
json::Value statsToJson(const Scheduler::Status& status,
                        const std::vector<Scheduler::JobSnapshot>& jobs,
                        const std::vector<SessionManager::SessionInfo>& sessions,
                        json::Value metrics);

/// The `trace` response payload: current capture state plus (after a stop
/// with an "out" path) whether the export was written.
json::Value traceToJson(bool enabled, std::size_t events, std::size_t dropped,
                        const std::string& written);

}  // namespace isop::serve
