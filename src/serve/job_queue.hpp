// Bounded priority queue feeding the scheduler's worker pool.
//
// Ordering is deterministic: higher priority first, FIFO (admission order)
// within a priority. Admission past `capacity` is rejected with a reason
// string rather than blocking the client — backpressure surfaces as a
// `rejected` protocol event, never as an unbounded queue or a stalled
// submitter.
#pragma once

#include <condition_variable>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/job.hpp"

namespace isop::serve {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits `job` (assigning its admission sequence number) unless the queue
  /// is closed or full; on rejection returns false and, when `reason` is
  /// non-null, sets the human-readable cause.
  bool push(const std::shared_ptr<Job>& job, std::string* reason);

  /// Blocks until a job is available or the queue is closed; returns the
  /// highest-priority / oldest job, or nullptr once closed and empty.
  std::shared_ptr<Job> pop();

  /// Removes a still-queued job by id (cancellation of a queued job). False
  /// when the job is not in the queue — e.g. a worker already popped it.
  bool remove(const std::string& id);

  /// Closes admission and returns every still-queued job in pop order
  /// (highest priority first). pop() returns nullptr to all waiters.
  std::vector<std::shared_ptr<Job>> close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  // Deterministic pop order: priority descending, admission sequence
  // ascending. The sequence number is unique, so this is a strict weak
  // ordering and std::set iteration order is the pop order.
  struct Order {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const {
      if (a->spec.priority != b->spec.priority) {
        return a->spec.priority > b->spec.priority;
      }
      return a->seq < b->seq;
    }
  };

  const std::size_t capacity_;
  mutable AnnotatedMutex mutex_{"serve.job_queue", lock_order::rank::kJobQueue};
  std::condition_variable_any available_;
  std::set<std::shared_ptr<Job>, Order> queue_ ISOP_GUARDED_BY(mutex_);
  std::uint64_t nextSeq_ ISOP_GUARDED_BY(mutex_) = 0;
  bool closed_ ISOP_GUARDED_BY(mutex_) = false;
};

}  // namespace isop::serve
