// Identity of a serve session, shared by the session manager (map key) and
// the session store (state-file naming).
#pragma once

#include <string>

namespace isop::serve {

/// Which model answers queries over which space and layer physics. Jobs with
/// equal keys share one session Context. The fields are the validated
/// protocol enum strings, so they are safe as state-file name components.
struct SessionKey {
  std::string surrogate;  ///< oracle|cnn|mlp
  std::string space;      ///< S1|S2|S1p
  std::string layer;      ///< stripline|microstrip

  bool operator<(const SessionKey& other) const {
    if (surrogate != other.surrogate) return surrogate < other.surrogate;
    if (space != other.space) return space < other.space;
    return layer < other.layer;
  }
  bool operator==(const SessionKey& other) const {
    return surrogate == other.surrogate && space == other.space &&
           layer == other.layer;
  }
  bool operator!=(const SessionKey& other) const { return !(*this == other); }
};

}  // namespace isop::serve
