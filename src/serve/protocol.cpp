#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/report.hpp"
#include "inverse/inverse_designer.hpp"

namespace isop::serve {

namespace {

// Typed field readers. Each returns false (setting *error) on a kind
// mismatch; absence is not an error — the spec default stays.
bool readString(const json::Value& v, const char* key, std::string* out,
                std::string* error) {
  const json::Value* field = v.find(key);
  if (!field) return true;
  if (field->kind() != json::Value::Kind::String) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = field->asString();
  return true;
}

bool readBool(const json::Value& v, const char* key, bool* out, std::string* error) {
  const json::Value* field = v.find(key);
  if (!field) return true;
  if (field->kind() != json::Value::Kind::Bool) {
    *error = std::string("field '") + key + "' must be a boolean";
    return false;
  }
  *out = field->asBool();
  return true;
}

bool readNumber(const json::Value& v, const char* key, std::optional<double>* out,
                std::string* error) {
  const json::Value* field = v.find(key);
  if (!field) return true;
  if (!field->isNumeric()) {
    *error = std::string("field '") + key + "' must be a number";
    return false;
  }
  *out = field->asNumber();
  return true;
}

bool readCount(const json::Value& v, const char* key, std::size_t* out,
               std::string* error, long long min = 0) {
  const json::Value* field = v.find(key);
  if (!field) return true;
  if (field->kind() != json::Value::Kind::Integer || field->asInteger() < min) {
    *error = std::string("field '") + key + "' must be an integer >= " +
             std::to_string(min);
    return false;
  }
  *out = static_cast<std::size_t>(field->asInteger());
  return true;
}

bool readU64(const json::Value& v, const char* key, std::uint64_t* out,
             std::string* error) {
  std::size_t value = 0;
  bool present = v.find(key) != nullptr;
  if (!readCount(v, key, &value, error)) return false;
  if (present) *out = value;
  return true;
}

bool readPriority(const json::Value& v, const char* key, long long* out,
                  std::string* error) {
  const json::Value* field = v.find(key);
  if (!field) return true;
  if (field->kind() != json::Value::Kind::Integer) {
    *error = std::string("field '") + key + "' must be an integer";
    return false;
  }
  *out = field->asInteger();
  return true;
}

const std::set<std::string>& submitKeys() {
  static const std::set<std::string> keys = {
      "type",          "id",           "task",
      "space",         "layer",        "surrogate",
      "target",        "tolerance",    "table_ix_constraints",
      "budget",        "iterations",   "local_seeds",
      "refine_epochs", "hyperband_resource", "candidates",
      "trials",        "seed",         "priority",
      "timeout_ms",    "deadline_ms",  "trace_out"};
  return keys;
}

bool checkKeys(const json::Value& v, const std::set<std::string>& known,
               std::string* error) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (known.count(v.keyAt(i)) == 0) {
      *error = "unknown field '" + v.keyAt(i) + "'";
      return false;
    }
  }
  return true;
}

std::optional<Request> parseSubmit(const json::Value& v, std::string* error) {
  Request req;
  req.kind = Request::Kind::Submit;
  JobSpec& spec = req.spec;
  if (!checkKeys(v, submitKeys(), error)) return std::nullopt;
  if (!readString(v, "id", &spec.id, error)) return std::nullopt;
  if (!readString(v, "task", &spec.task, error)) return std::nullopt;
  if (!readString(v, "space", &spec.space, error)) return std::nullopt;
  if (!readString(v, "layer", &spec.layer, error)) return std::nullopt;
  if (!readString(v, "surrogate", &spec.surrogate, error)) return std::nullopt;
  if (!readNumber(v, "target", &spec.target, error)) return std::nullopt;
  if (!readNumber(v, "tolerance", &spec.tolerance, error)) return std::nullopt;
  if (!readBool(v, "table_ix_constraints", &spec.tableIxConstraints, error)) {
    return std::nullopt;
  }
  if (!readCount(v, "budget", &spec.budget, error, 1)) return std::nullopt;
  if (!readCount(v, "iterations", &spec.iterations, error, 1)) return std::nullopt;
  if (!readCount(v, "local_seeds", &spec.localSeeds, error, 1)) return std::nullopt;
  if (!readCount(v, "refine_epochs", &spec.refineEpochs, error)) return std::nullopt;
  if (!readCount(v, "hyperband_resource", &spec.hyperbandResource, error, 1)) {
    return std::nullopt;
  }
  if (!readCount(v, "candidates", &spec.candidates, error, 1)) return std::nullopt;
  if (!readCount(v, "trials", &spec.trials, error, 1)) return std::nullopt;
  if (!readU64(v, "seed", &spec.seed, error)) return std::nullopt;
  if (!readPriority(v, "priority", &spec.priority, error)) return std::nullopt;
  if (!readU64(v, "timeout_ms", &spec.timeoutMs, error)) return std::nullopt;
  if (!readU64(v, "deadline_ms", &spec.deadlineMs, error)) return std::nullopt;
  if (!readString(v, "trace_out", &spec.traceOut, error)) return std::nullopt;
  // Name/range checks (task, space, surrogate, ...) deliberately run in
  // Scheduler::submit via validateSpec so direct (non-protocol) submitters
  // get the same errors; the parse layer only enforces shape.
  return req;
}

const std::set<std::string>& inverseKeys() {
  static const std::set<std::string> keys = {
      "type",      "id",         "task",          "space",
      "layer",     "surrogate",  "target",        "tolerance",
      "l_target",  "next_target", "candidates",   "refine_epochs",
      "seed",      "priority",   "timeout_ms",    "deadline_ms",
      "trace_out"};
  return keys;
}

std::optional<Request> parseInverse(const json::Value& v, std::string* error) {
  Request req;
  req.kind = Request::Kind::Submit;  // admission path is shared with submit
  JobSpec& spec = req.spec;
  spec.kind = JobKind::Inverse;
  // Refinement is opt-in for inverse jobs — the amortized answer is the
  // product; the submit default (60 epochs) would silently re-add a local
  // optimization stage to every microsecond-latency query.
  spec.refineEpochs = 0;
  if (!checkKeys(v, inverseKeys(), error)) return std::nullopt;
  if (!readString(v, "id", &spec.id, error)) return std::nullopt;
  if (!readString(v, "task", &spec.task, error)) return std::nullopt;
  if (!readString(v, "space", &spec.space, error)) return std::nullopt;
  if (!readString(v, "layer", &spec.layer, error)) return std::nullopt;
  if (!readString(v, "surrogate", &spec.surrogate, error)) return std::nullopt;
  if (!readNumber(v, "target", &spec.target, error)) return std::nullopt;
  if (!readNumber(v, "tolerance", &spec.tolerance, error)) return std::nullopt;
  if (!readNumber(v, "l_target", &spec.lTarget, error)) return std::nullopt;
  if (!readNumber(v, "next_target", &spec.nextTarget, error)) return std::nullopt;
  if (!readCount(v, "candidates", &spec.candidates, error, 1)) return std::nullopt;
  if (!readCount(v, "refine_epochs", &spec.refineEpochs, error)) return std::nullopt;
  if (!readU64(v, "seed", &spec.seed, error)) return std::nullopt;
  if (!readPriority(v, "priority", &spec.priority, error)) return std::nullopt;
  if (!readU64(v, "timeout_ms", &spec.timeoutMs, error)) return std::nullopt;
  if (!readU64(v, "deadline_ms", &spec.deadlineMs, error)) return std::nullopt;
  if (!readString(v, "trace_out", &spec.traceOut, error)) return std::nullopt;
  return req;
}

}  // namespace

std::optional<Request> parseRequest(const std::string& line, std::string* error) {
  std::string localError;
  std::string* err = error ? error : &localError;
  const std::optional<json::Value> parsed = json::Value::parse(line);
  if (!parsed) {
    *err = "malformed JSON";
    return std::nullopt;
  }
  if (!parsed->isObject()) {
    *err = "request must be a JSON object";
    return std::nullopt;
  }
  const json::Value* type = parsed->find("type");
  if (!type || type->kind() != json::Value::Kind::String) {
    *err = "missing string field 'type'";
    return std::nullopt;
  }
  const std::string& kind = type->asString();
  if (kind == "hello") {
    static const std::set<std::string> keys = {"type", "token"};
    if (!checkKeys(*parsed, keys, err)) return std::nullopt;
    Request req;
    req.kind = Request::Kind::Hello;
    if (!readString(*parsed, "token", &req.token, err)) return std::nullopt;
    return req;
  }
  if (kind == "submit") return parseSubmit(*parsed, err);
  if (kind == "inverse") return parseInverse(*parsed, err);
  if (kind == "cancel") {
    static const std::set<std::string> keys = {"type", "id"};
    if (!checkKeys(*parsed, keys, err)) return std::nullopt;
    Request req;
    req.kind = Request::Kind::Cancel;
    if (!readString(*parsed, "id", &req.id, err)) return std::nullopt;
    if (req.id.empty()) {
      *err = "cancel requires a non-empty 'id'";
      return std::nullopt;
    }
    return req;
  }
  if (kind == "status" || kind == "stats" || kind == "shutdown") {
    static const std::set<std::string> keys = {"type"};
    if (!checkKeys(*parsed, keys, err)) return std::nullopt;
    Request req;
    req.kind = kind == "status"  ? Request::Kind::Status
               : kind == "stats" ? Request::Kind::Stats
                                 : Request::Kind::Shutdown;
    return req;
  }
  if (kind == "trace") {
    static const std::set<std::string> keys = {"type", "action", "out"};
    if (!checkKeys(*parsed, keys, err)) return std::nullopt;
    Request req;
    req.kind = Request::Kind::Trace;
    std::string action;
    if (!readString(*parsed, "action", &action, err)) return std::nullopt;
    if (action == "start") {
      req.traceAction = Request::TraceAction::Start;
    } else if (action == "stop") {
      req.traceAction = Request::TraceAction::Stop;
    } else if (action == "status") {
      req.traceAction = Request::TraceAction::Status;
    } else {
      *err = "trace 'action' must be one of start|stop|status";
      return std::nullopt;
    }
    if (!readString(*parsed, "out", &req.traceOut, err)) return std::nullopt;
    return req;
  }
  *err = "unknown request type '" + kind + "'";
  return std::nullopt;
}

json::Value submitToJson(const JobSpec& spec) {
  const auto count = [](std::size_t v) {
    return json::Value::integer(static_cast<long long>(v));
  };
  json::Value out = json::Value::object();
  out.set("type", json::Value::string("submit"));
  out.set("id", json::Value::string(spec.id));
  out.set("task", json::Value::string(spec.task));
  out.set("space", json::Value::string(spec.space));
  out.set("layer", json::Value::string(spec.layer));
  out.set("surrogate", json::Value::string(spec.surrogate));
  if (spec.target) out.set("target", json::Value::number(*spec.target));
  if (spec.tolerance) out.set("tolerance", json::Value::number(*spec.tolerance));
  out.set("table_ix_constraints", json::Value::boolean(spec.tableIxConstraints));
  out.set("budget", count(spec.budget));
  out.set("iterations", count(spec.iterations));
  out.set("local_seeds", count(spec.localSeeds));
  out.set("refine_epochs", count(spec.refineEpochs));
  out.set("hyperband_resource", count(spec.hyperbandResource));
  out.set("candidates", count(spec.candidates));
  out.set("trials", count(spec.trials));
  out.set("seed", count(static_cast<std::size_t>(spec.seed)));
  out.set("priority", json::Value::integer(spec.priority));
  out.set("timeout_ms", count(static_cast<std::size_t>(spec.timeoutMs)));
  out.set("deadline_ms", count(static_cast<std::size_t>(spec.deadlineMs)));
  if (!spec.traceOut.empty()) {
    out.set("trace_out", json::Value::string(spec.traceOut));
  }
  return out;
}

json::Value inverseToJson(const JobSpec& spec) {
  const auto count = [](std::size_t v) {
    return json::Value::integer(static_cast<long long>(v));
  };
  json::Value out = json::Value::object();
  out.set("type", json::Value::string("inverse"));
  out.set("id", json::Value::string(spec.id));
  out.set("task", json::Value::string(spec.task));
  out.set("space", json::Value::string(spec.space));
  out.set("layer", json::Value::string(spec.layer));
  out.set("surrogate", json::Value::string(spec.surrogate));
  if (spec.target) out.set("target", json::Value::number(*spec.target));
  if (spec.tolerance) out.set("tolerance", json::Value::number(*spec.tolerance));
  if (spec.lTarget) out.set("l_target", json::Value::number(*spec.lTarget));
  if (spec.nextTarget) {
    out.set("next_target", json::Value::number(*spec.nextTarget));
  }
  out.set("candidates", count(spec.candidates));
  out.set("refine_epochs", count(spec.refineEpochs));
  out.set("seed", count(static_cast<std::size_t>(spec.seed)));
  out.set("priority", json::Value::integer(spec.priority));
  out.set("timeout_ms", count(static_cast<std::size_t>(spec.timeoutMs)));
  out.set("deadline_ms", count(static_cast<std::size_t>(spec.deadlineMs)));
  if (!spec.traceOut.empty()) {
    out.set("trace_out", json::Value::string(spec.traceOut));
  }
  return out;
}

json::Value helloToJson(bool authenticated) {
  json::Value out = json::Value::object();
  out.set("event", json::Value::string("hello"));
  out.set("protocol", json::Value::integer(kProtocolVersion));
  out.set("authenticated", json::Value::boolean(authenticated));
  return out;
}

json::Value resultToJson(const core::TrialStats& stats) {
  json::Value out = json::Value::object();
  out.set("trials", json::Value::integer(static_cast<long long>(stats.trials)));
  out.set("successes",
          json::Value::integer(static_cast<long long>(stats.successes)));
  out.set("avg_samples", json::Value::number(stats.avgSamples));
  out.set("avg_em_calls", json::Value::number(stats.avgEmCalls));
  out.set("avg_runtime_seconds", json::Value::number(stats.avgRuntime));
  out.set("fom_mean", json::Value::number(stats.fomMean));

  // Engine traffic across all trials. memo_hits > 0 on a job's first batch
  // is the observable proof of a warm start — designs and samples-seen stay
  // identical (hits return the exact cached model output and are still
  // billed as queries); only this accounting and wall time move.
  {
    std::size_t rows = 0, memoHits = 0, emCalls = 0;
    for (const core::TrialOutcome& outcome : stats.outcomes) {
      rows += outcome.evalStats.rows;
      memoHits += outcome.evalStats.memoHits;
      emCalls += outcome.emCalls;
    }
    json::Value eval = json::Value::object();
    eval.set("rows", json::Value::integer(static_cast<long long>(rows)));
    eval.set("memo_hits", json::Value::integer(static_cast<long long>(memoHits)));
    eval.set("em_calls", json::Value::integer(static_cast<long long>(emCalls)));
    out.set("eval", std::move(eval));
  }

  // Ranked designs. A single trial exposes its full EM-validated roll-out
  // list; a multi-trial job ranks the per-trial winners (feasible first,
  // ascending g; FIFO by trial on ties — stable sort keeps it
  // deterministic).
  json::Value ranked = json::Value::array();
  const auto pushDesign = [&ranked](const core::IsopCandidate& c, std::size_t trial) {
    json::Value d = json::Value::object();
    d.set("rank", json::Value::integer(static_cast<long long>(ranked.size() + 1)));
    d.set("trial", json::Value::integer(static_cast<long long>(trial)));
    d.set("feasible", json::Value::boolean(c.feasible));
    d.set("g", json::Value::number(c.g));
    d.set("fom", json::Value::number(c.fom));
    d.set("metrics", core::toJson(c.metrics));
    d.set("params", core::toJson(c.params));
    ranked.push(std::move(d));
  };
  if (stats.outcomes.size() == 1) {
    const core::TrialOutcome& outcome = stats.outcomes.front();
    if (!outcome.candidates.empty()) {
      for (const core::IsopCandidate& c : outcome.candidates) pushDesign(c, 0);
    } else {
      core::IsopCandidate best;  // baseline methods: one validated design
      best.params = outcome.params;
      best.metrics = outcome.metrics;
      best.g = outcome.g;
      best.fom = outcome.fom;
      best.feasible = outcome.success;
      pushDesign(best, 0);
    }
  } else {
    std::vector<std::pair<std::size_t, core::IsopCandidate>> winners;
    winners.reserve(stats.outcomes.size());
    for (std::size_t t = 0; t < stats.outcomes.size(); ++t) {
      const core::TrialOutcome& outcome = stats.outcomes[t];
      core::IsopCandidate best;
      if (!outcome.candidates.empty()) {
        best = outcome.candidates.front();
      } else {
        best.params = outcome.params;
        best.metrics = outcome.metrics;
        best.g = outcome.g;
        best.fom = outcome.fom;
        best.feasible = outcome.success;
      }
      winners.emplace_back(t, best);
    }
    std::stable_sort(winners.begin(), winners.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second.feasible != b.second.feasible) {
                         return a.second.feasible;
                       }
                       return a.second.g < b.second.g;
                     });
    for (const auto& [trial, c] : winners) pushDesign(c, trial);
  }
  out.set("ranked", std::move(ranked));
  return out;
}

json::Value inverseResultToJson(const inverse::InverseResult& result) {
  json::Value out = json::Value::object();
  out.set("mode", json::Value::string("inverse"));
  out.set("solve_seconds", json::Value::number(result.solveSeconds));
  out.set("plan", json::Value::string(result.planSummary));
  json::Value ranked = json::Value::array();
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const inverse::InverseCandidate& c = result.ranked[i];
    json::Value d = json::Value::object();
    d.set("rank", json::Value::integer(static_cast<long long>(i + 1)));
    d.set("feasible", json::Value::boolean(c.feasible));
    d.set("refined", json::Value::boolean(c.refined));
    d.set("g", json::Value::number(c.g));
    d.set("fom", json::Value::number(c.fom));
    d.set("metrics", core::toJson(c.predicted));
    d.set("params", core::toJson(c.params));
    ranked.push(std::move(d));
  }
  out.set("ranked", std::move(ranked));
  return out;
}

json::Value toJson(const JobEvent& event) {
  json::Value out = json::Value::object();
  out.set("event", json::Value::string(jobEventName(event.kind)));
  out.set("id", json::Value::string(event.jobId));
  switch (event.kind) {
    case JobEvent::Kind::Accepted:
      out.set("queue_depth",
              json::Value::integer(static_cast<long long>(event.queueDepth)));
      break;
    case JobEvent::Kind::Rejected:
      out.set("reason", json::Value::string(event.reason));
      break;
    case JobEvent::Kind::Started:
      out.set("queue_wait_seconds", json::Value::number(event.queueWaitSeconds));
      break;
    case JobEvent::Kind::Progress:
      out.set("record", event.payload);
      break;
    case JobEvent::Kind::Done:
      out.set("run_seconds", json::Value::number(event.runSeconds));
      out.set("latency_seconds", json::Value::number(event.latencySeconds));
      if (event.inverseResult) {
        out.set("result", inverseResultToJson(*event.inverseResult));
      } else {
        out.set("result", event.result ? resultToJson(*event.result)
                                       : json::Value::null());
      }
      break;
    case JobEvent::Kind::Cancelled:
      out.set("reason", json::Value::string(event.reason));
      out.set("latency_seconds", json::Value::number(event.latencySeconds));
      break;
    case JobEvent::Kind::Failed:
      out.set("error", json::Value::string(event.reason));
      out.set("latency_seconds", json::Value::number(event.latencySeconds));
      break;
  }
  return out;
}

json::Value statsToJson(const Scheduler::Status& status,
                        const std::vector<Scheduler::JobSnapshot>& jobs,
                        const std::vector<SessionManager::SessionInfo>& sessions,
                        const SessionManager::Lifecycle& lifecycle,
                        json::Value metrics) {
  json::Value out = json::Value::object();
  out.set("event", json::Value::string("stats"));

  json::Value queue = json::Value::object();
  queue.set("depth", json::Value::integer(static_cast<long long>(status.queueDepth)));
  queue.set("capacity",
            json::Value::integer(static_cast<long long>(status.queueCapacity)));
  queue.set("running", json::Value::integer(static_cast<long long>(status.running)));
  queue.set("draining", json::Value::boolean(status.draining));
  queue.set("submitted",
            json::Value::integer(static_cast<long long>(status.submitted)));
  queue.set("admitted", json::Value::integer(static_cast<long long>(status.admitted)));
  queue.set("rejected", json::Value::integer(static_cast<long long>(status.rejected)));
  queue.set("completed",
            json::Value::integer(static_cast<long long>(status.completed)));
  queue.set("cancelled",
            json::Value::integer(static_cast<long long>(status.cancelled)));
  queue.set("failed", json::Value::integer(static_cast<long long>(status.failed)));

  // Per-priority occupancy of the queued jobs (priority -> count), keyed by
  // the priority's decimal string.
  json::Value byPriority = json::Value::object();
  std::map<long long, std::size_t> priorityCounts;
  for (const Scheduler::JobSnapshot& job : jobs) {
    if (job.state == JobState::Queued) ++priorityCounts[job.priority];
  }
  for (const auto& [priority, count] : priorityCounts) {
    byPriority.set(std::to_string(priority),
                   json::Value::integer(static_cast<long long>(count)));
  }
  queue.set("queued_by_priority", std::move(byPriority));
  out.set("queue", std::move(queue));

  json::Value jobList = json::Value::array();
  for (const Scheduler::JobSnapshot& job : jobs) {
    json::Value j = json::Value::object();
    j.set("id", json::Value::string(job.id));
    j.set("state", json::Value::string(jobStateName(job.state)));
    j.set("priority", json::Value::integer(job.priority));
    j.set("age_seconds", json::Value::number(job.ageSeconds));
    j.set("queue_wait_seconds", json::Value::number(job.queueWaitSeconds));
    j.set("run_seconds", json::Value::number(job.runSeconds));
    // Omitted (not null) when the job has no deadline: +inf is not JSON.
    if (std::isfinite(job.deadlineRemainingSeconds)) {
      j.set("deadline_remaining_seconds",
            json::Value::number(job.deadlineRemainingSeconds));
    }
    jobList.push(std::move(j));
  }
  out.set("jobs", std::move(jobList));

  json::Value sessionList = json::Value::array();
  for (const SessionManager::SessionInfo& info : sessions) {
    json::Value s = json::Value::object();
    s.set("surrogate", json::Value::string(info.key.surrogate));
    s.set("space", json::Value::string(info.key.space));
    s.set("layer", json::Value::string(info.key.layer));
    s.set("cache_size", json::Value::integer(static_cast<long long>(info.cacheSize)));
    s.set("evictions", json::Value::integer(static_cast<long long>(info.evictions)));
    s.set("rows", json::Value::integer(static_cast<long long>(info.rows)));
    s.set("memo_hits", json::Value::integer(static_cast<long long>(info.memoHits)));
    s.set("hit_rate", json::Value::number(info.hitRate));
    s.set("active_jobs",
          json::Value::integer(static_cast<long long>(info.activeJobs)));
    s.set("warm_model", json::Value::boolean(info.warmModel));
    s.set("warm_memo", json::Value::boolean(info.warmMemo));
    s.set("inverse_model", json::Value::boolean(info.inverseModel));
    s.set("warm_inverse", json::Value::boolean(info.warmInverse));
    s.set("estimated_bytes",
          json::Value::integer(static_cast<long long>(info.estimatedBytes)));
    s.set("plan", json::Value::string(info.plan));
    sessionList.push(std::move(s));
  }
  out.set("sessions", std::move(sessionList));

  json::Value life = json::Value::object();
  life.set("created", json::Value::integer(static_cast<long long>(lifecycle.created)));
  life.set("evicted", json::Value::integer(static_cast<long long>(lifecycle.evicted)));
  life.set("persisted",
           json::Value::integer(static_cast<long long>(lifecycle.persisted)));
  life.set("loaded", json::Value::integer(static_cast<long long>(lifecycle.loaded)));
  life.set("load_failures",
           json::Value::integer(static_cast<long long>(lifecycle.loadFailures)));
  out.set("session_lifecycle", std::move(life));

  out.set("metrics", std::move(metrics));
  return out;
}

json::Value traceToJson(bool enabled, std::size_t events, std::size_t dropped,
                        const std::string& written) {
  json::Value out = json::Value::object();
  out.set("event", json::Value::string("trace"));
  out.set("enabled", json::Value::boolean(enabled));
  out.set("events", json::Value::integer(static_cast<long long>(events)));
  out.set("dropped", json::Value::integer(static_cast<long long>(dropped)));
  if (!written.empty()) out.set("written", json::Value::string(written));
  return out;
}

json::Value statusToJson(const Scheduler::Status& status, std::size_t sessions) {
  json::Value out = json::Value::object();
  out.set("event", json::Value::string("status"));
  out.set("queue_depth",
          json::Value::integer(static_cast<long long>(status.queueDepth)));
  out.set("queue_capacity",
          json::Value::integer(static_cast<long long>(status.queueCapacity)));
  out.set("running", json::Value::integer(static_cast<long long>(status.running)));
  out.set("draining", json::Value::boolean(status.draining));
  out.set("submitted",
          json::Value::integer(static_cast<long long>(status.submitted)));
  out.set("admitted", json::Value::integer(static_cast<long long>(status.admitted)));
  out.set("rejected", json::Value::integer(static_cast<long long>(status.rejected)));
  out.set("completed",
          json::Value::integer(static_cast<long long>(status.completed)));
  out.set("cancelled",
          json::Value::integer(static_cast<long long>(status.cancelled)));
  out.set("failed", json::Value::integer(static_cast<long long>(status.failed)));
  out.set("sessions", json::Value::integer(static_cast<long long>(sessions)));
  return out;
}

}  // namespace isop::serve
