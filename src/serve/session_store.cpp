#include "serve/session_store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "data/cache.hpp"
#include "em/stackup.hpp"
#include "ml/neural_regressor.hpp"

namespace isop::serve {

namespace fs = std::filesystem;

namespace {

// Envelope layout (little-endian, host order — state files are host-local):
//   u32 magic, u32 version, u8 kind, u64 payloadSize, u64 fnv1a64(payload),
//   payload bytes.
constexpr std::uint32_t kMagic = 0x49535354;  // "ISST"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kKindModel = 1;
constexpr std::uint8_t kKindMemo = 2;
constexpr std::uint8_t kKindInverse = 3;
// Model payload discriminator (first payload byte).
constexpr std::uint8_t kModelMlp = 1;
constexpr std::uint8_t kModelCnn = 2;

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void appendPod(std::string* out, const T& v) {
  const char* bytes = reinterpret_cast<const char*>(&v);
  out->append(bytes, sizeof v);
}

template <typename T>
bool readPodAt(const std::string& in, std::size_t* off, T* out) {
  if (*off + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

std::string keyStem(const SessionKey& key) {
  return key.surrogate + "_" + key.space + "_" + key.layer + ".state";
}

// Memo payload: u64 count + entries for the predict cache, then the same
// for the simulate cache. Entries are the raw (design, metrics) doubles.
std::string encodeMemo(const core::EvalEngine::MemoSnapshot& snapshot) {
  std::string payload;
  const auto appendEntries =
      [&payload](const std::vector<core::MemoCache::Entry>& entries) {
        appendPod(&payload, static_cast<std::uint64_t>(entries.size()));
        for (const core::MemoCache::Entry& e : entries) {
          for (double v : e.first) appendPod(&payload, v);
          for (double v : e.second) appendPod(&payload, v);
        }
      };
  appendEntries(snapshot.predict);
  appendEntries(snapshot.sim);
  return payload;
}

bool decodeMemo(const std::string& payload, core::EvalEngine::MemoSnapshot* out) {
  std::size_t off = 0;
  const auto readEntries = [&](std::vector<core::MemoCache::Entry>* entries) {
    std::uint64_t count = 0;
    if (!readPodAt(payload, &off, &count)) return false;
    constexpr std::size_t kEntryBytes =
        sizeof(double) * (em::kNumParams + em::kNumMetrics);
    if (count > (payload.size() - off) / kEntryBytes) return false;
    entries->reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      core::MemoCache::Entry e;
      for (double& v : e.first) {
        if (!readPodAt(payload, &off, &v)) return false;
      }
      for (double& v : e.second) {
        if (!readPodAt(payload, &off, &v)) return false;
      }
      entries->push_back(e);
    }
    return true;
  };
  if (!readEntries(&out->predict)) return false;
  if (!readEntries(&out->sim)) return false;
  return off == payload.size();
}

}  // namespace

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best effort; save errors surface later
}

std::string SessionStore::modelPath(const SessionKey& key) const {
  return dir_ + "/model_" + keyStem(key);
}

std::string SessionStore::memoPath(const SessionKey& key) const {
  return dir_ + "/memo_" + keyStem(key);
}

std::string SessionStore::inversePath(const SessionKey& key) const {
  return dir_ + "/inverse_" + keyStem(key);
}

bool SessionStore::readEnvelope(const std::string& path, std::uint8_t kind,
                                std::string* payload) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // absent: normal cold start
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();

  const auto invalid = [&](const char* why) {
    log::warn("session store: ignoring '", path, "' (", why, ")");
    loadFailures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  };

  std::size_t off = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint8_t fileKind = 0;
  std::uint64_t size = 0, checksum = 0;
  if (!readPodAt(raw, &off, &magic) || !readPodAt(raw, &off, &version) ||
      !readPodAt(raw, &off, &fileKind) || !readPodAt(raw, &off, &size) ||
      !readPodAt(raw, &off, &checksum)) {
    return invalid("truncated header");
  }
  if (magic != kMagic) return invalid("bad magic");
  if (version != kVersion) return invalid("unknown version");
  if (fileKind != kind) return invalid("wrong kind");
  if (raw.size() - off != size) return invalid("truncated payload");
  if (fnv1a64(raw.data() + off, size) != checksum) return invalid("checksum mismatch");
  payload->assign(raw, off, size);
  return true;
}

bool SessionStore::writeEnvelope(const std::string& path, std::uint8_t kind,
                                 const std::string& payload) const {
  std::string file;
  file.reserve(payload.size() + 32);
  appendPod(&file, kMagic);
  appendPod(&file, kVersion);
  appendPod(&file, kind);
  appendPod(&file, static_cast<std::uint64_t>(payload.size()));
  appendPod(&file, fnv1a64(payload.data(), payload.size()));
  file += payload;
  try {
    data::atomicSave(path, [&file](const std::string& tmp) {
      std::ofstream out(tmp, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
      out.write(file.data(), static_cast<std::streamsize>(file.size()));
      if (!out) throw std::runtime_error("write failed for '" + tmp + "'");
    });
  } catch (const std::exception& e) {
    log::warn("session store: could not persist '", path, "': ", e.what());
    return false;
  }
  persisted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const ml::Surrogate> SessionStore::loadModel(
    const SessionKey& key) const {
  const std::string path = modelPath(key);
  std::string payload;
  if (!readEnvelope(path, kKindModel, &payload)) return nullptr;
  if (payload.empty()) {
    log::warn("session store: ignoring '", path, "' (empty model payload)");
    loadFailures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::uint8_t modelKind = static_cast<std::uint8_t>(payload[0]);
  std::istringstream in(payload.substr(1), std::ios::binary);
  try {
    std::shared_ptr<const ml::Surrogate> model;
    if (modelKind == kModelMlp && key.surrogate == "mlp") {
      model = ml::MlpRegressor::load(in, path);
    } else if (modelKind == kModelCnn && key.surrogate == "cnn") {
      model = ml::Cnn1dRegressor::load(in, path);
    } else {
      throw std::runtime_error("model kind does not match session key");
    }
    loaded_.fetch_add(1, std::memory_order_relaxed);
    return model;
  } catch (const std::exception& e) {
    // The checksum already rejected disk corruption; this covers a payload
    // written by an incompatible build. Cold-start instead of crashing.
    log::warn("session store: ignoring '", path, "' (", e.what(), ")");
    loadFailures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
}

bool SessionStore::saveModel(const SessionKey& key, const ml::Surrogate& model) const {
  std::ostringstream out(std::ios::binary);
  std::uint8_t modelKind = 0;
  if (const auto* mlp = dynamic_cast<const ml::MlpRegressor*>(&model)) {
    modelKind = kModelMlp;
    mlp->save(out, "state-dir payload");
  } else if (const auto* cnn = dynamic_cast<const ml::Cnn1dRegressor*>(&model)) {
    modelKind = kModelCnn;
    cnn->save(out, "state-dir payload");
  } else {
    return false;  // oracle and friends have no weights to persist
  }
  std::string payload(1, static_cast<char>(modelKind));
  payload += out.str();
  return writeEnvelope(modelPath(key), kKindModel, payload);
}

bool SessionStore::loadMemo(const SessionKey& key, core::EvalEngine& engine) const {
  const std::string path = memoPath(key);
  std::string payload;
  if (!readEnvelope(path, kKindMemo, &payload)) return false;
  core::EvalEngine::MemoSnapshot snapshot;
  if (!decodeMemo(payload, &snapshot)) {
    log::warn("session store: ignoring '", path, "' (malformed memo payload)");
    loadFailures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  engine.restoreMemo(snapshot);
  loaded_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SessionStore::saveMemo(const SessionKey& key, const core::EvalEngine& engine) const {
  return writeEnvelope(memoPath(key), kKindMemo, encodeMemo(engine.memoSnapshot()));
}

std::shared_ptr<const inverse::InverseModel> SessionStore::loadInverse(
    const SessionKey& key) const {
  const std::string path = inversePath(key);
  std::string payload;
  if (!readEnvelope(path, kKindInverse, &payload)) return nullptr;
  const auto invalid = [&](const std::string& why) {
    log::warn("session store: ignoring '", path, "' (", why, ")");
    loadFailures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  };
  try {
    std::istringstream in(payload, std::ios::binary);
    std::string why;
    std::shared_ptr<const inverse::InverseModel> model =
        inverse::InverseModel::load(in, em::spaceByName(key.space), &why);
    if (!model) return invalid(why);
    loaded_.fetch_add(1, std::memory_order_relaxed);
    return model;
  } catch (const std::exception& e) {
    // The checksum already rejected disk corruption; this covers a payload
    // from an incompatible build (or an unknown space name). Cold-start.
    return invalid(e.what());
  }
}

bool SessionStore::saveInverse(const SessionKey& key,
                               const inverse::InverseModel& model) const {
  std::ostringstream out(std::ios::binary);
  model.save(out);
  return writeEnvelope(inversePath(key), kKindInverse, out.str());
}

}  // namespace isop::serve
