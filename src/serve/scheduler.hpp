// Job scheduler for the optimization service: a fixed worker pool draining
// the bounded priority JobQueue, running each job through TrialRunner with
// the session's shared EvalEngine, and reporting every lifecycle transition
// as a JobEvent to the submitting client's sink.
//
// Event-order guarantees, per job:
//   accepted -> started -> progress* -> exactly one of {done, cancelled,
//   failed}; or accepted -> cancelled (cancelled while queued); or a lone
//   rejected. `accepted` is emitted before the job becomes poppable, so no
//   event can precede it, and the terminal event is emitted exactly once
//   (the Queued -> Running state CAS arbitrates between a cancelling client
//   and a worker that already popped the job).
//
// Determinism: a job's result depends only on its spec (makeMethod/makeTask
// are pure, the shared engine's memo cache is result-neutral), never on
// queue timing, worker count, or other jobs — asserted bitwise by
// tests/serve/test_serve.cpp against a direct TrialRunner run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/session_manager.hpp"

namespace isop::serve {

/// One lifecycle notification. Which fields are meaningful depends on kind;
/// protocol.cpp defines the wire encoding.
struct JobEvent {
  enum class Kind { Accepted, Rejected, Started, Progress, Done, Cancelled, Failed };

  Kind kind = Kind::Accepted;
  std::string jobId;
  std::string reason;            ///< Rejected / Cancelled cause, Failed error
  json::Value payload;           ///< Progress: one obs convergence record
  std::shared_ptr<const core::TrialStats> result;  ///< Done only (optimize)
  std::shared_ptr<const inverse::InverseResult> inverseResult;  ///< Done only (inverse)
  std::size_t queueDepth = 0;        ///< Accepted: depth including this job
  double queueWaitSeconds = 0.0;     ///< Started and terminal events
  double runSeconds = 0.0;           ///< terminal events: running time
  double latencySeconds = 0.0;       ///< terminal events: admission -> terminal
};

const char* jobEventName(JobEvent::Kind kind);

struct SchedulerConfig {
  std::size_t workers = 2;        ///< concurrent jobs
  std::size_t queueCapacity = 16; ///< queued (not yet running) jobs
};

class Scheduler {
 public:
  /// Receives every event for a job. Called from submitter threads
  /// (Accepted/Rejected, queued-cancel) and worker threads (the rest);
  /// sinks must be thread-safe. Events for one job are never concurrent
  /// with each other.
  using EventSink = std::function<void(const JobEvent&)>;

  /// `sessions` must outlive the scheduler. `defaultSink` receives events of
  /// jobs submitted without their own sink; may be null (events dropped).
  Scheduler(SessionManager& sessions, SchedulerConfig config,
            EventSink defaultSink = nullptr);
  ~Scheduler();  ///< drains (running jobs finish, queued jobs are rejected)

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validates and admits a job. Emits `accepted` (and returns true) or
  /// `rejected` with a reason: invalid spec, duplicate live id, queue full
  /// (backpressure), or draining. The job's deadline_ms starts now.
  bool submit(const JobSpec& spec, EventSink sink = nullptr);

  /// Cooperatively cancels a live job. A queued job is removed and emits
  /// `cancelled` immediately; a running job observes its token within one
  /// optimizer iteration and emits `cancelled` from its worker. False when
  /// the id is not live (unknown or already terminal).
  bool cancel(const std::string& id, const std::string& reason = "cancelled by client");

  /// Stops admission, rejects every still-queued job (in deterministic pop
  /// order, reason "server draining"), lets running jobs finish, and joins
  /// the workers. Idempotent; also called by the destructor.
  void drain();

  struct Status {
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    std::size_t running = 0;
    bool draining = false;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
  };
  Status status() const;

  /// Point-in-time view of one live (queued or running) job, as reported by
  /// the serve `stats` request.
  struct JobSnapshot {
    std::string id;
    JobState state = JobState::Queued;
    long long priority = 0;
    double ageSeconds = 0.0;        ///< since admission
    double queueWaitSeconds = 0.0;  ///< so far when queued, final when running
    double runSeconds = 0.0;        ///< so far; 0 when still queued
    /// Seconds until the job's armed deadline (negative once past);
    /// +infinity when the job has no deadline.
    double deadlineRemainingSeconds = 0.0;
  };

  /// Snapshots every live job, ordered by id (deterministic wire output).
  std::vector<JobSnapshot> jobs() const;

 private:
  struct LiveJob {
    std::shared_ptr<Job> job;
    EventSink sink;  ///< null -> defaultSink_
  };

  void workerLoop();
  void runJob(const std::shared_ptr<Job>& job, const EventSink& sink);
  /// The inverse fast path: resolve the session's (lazily trained or
  /// warm-loaded) inverse model, then one amortized solve.
  void runInverseJob(const std::shared_ptr<Job>& job);
  void emit(const EventSink& sink, const JobEvent& event) const;
  void finish(const std::shared_ptr<Job>& job, const EventSink& sink,
              JobEvent event);
  EventSink sinkFor(const std::string& id) const;
  void updateQueueGauge() const;
  void exportJobTrace(const std::shared_ptr<Job>& job) const;

  SessionManager* sessions_;
  const SchedulerConfig config_;
  const EventSink defaultSink_;
  JobQueue queue_;

  mutable AnnotatedMutex mutex_{"serve.scheduler", lock_order::rank::kScheduler};
  std::map<std::string, LiveJob> live_ ISOP_GUARDED_BY(mutex_);  ///< queued + running
  bool draining_ ISOP_GUARDED_BY(mutex_) = false;

  std::atomic<std::size_t> running_{0};
  std::atomic<std::size_t> drainPending_{0};  ///< queued jobs awaiting drain rejection
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace isop::serve
