#include "serve/session_manager.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "core/simulator_surrogate.hpp"
#include "data/cache.hpp"
#include "em/stackup.hpp"
#include "ml/neural_regressor.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace isop::serve {

namespace {
// Rough resident cost of one memo entry: the (design, metrics) doubles plus
// list/map node overhead. Only feeds the eviction budget, so precision does
// not matter — being consistently wrong by a factor keeps the LRU order.
constexpr std::size_t kMemoEntryBytes =
    sizeof(double) * (em::kNumParams + em::kNumMetrics) + 112;
}  // namespace

SessionManager::SessionManager(SessionManagerConfig config)
    : config_(std::move(config)),
      store_(config_.stateDir.empty()
                 ? nullptr
                 : std::make_unique<SessionStore>(config_.stateDir)) {}

SessionPin SessionManager::acquire(const SessionKey& key) {
  std::vector<Victim> victims;
  SessionPin pin;
  {
    MutexLock lock(mutex_);
    ++useClock_;
    auto it = sessions_.find(key);
    if (it != sessions_.end()) {
      it->second->lastUse.store(useClock_, std::memory_order_relaxed);
      // Pinned before the lock drops: a concurrent acquire of another key
      // can never pick this session as an eviction victim in the window
      // between returning it and the caller's job starting.
      return SessionPin(it->second);
    }
    std::shared_ptr<Context> ctx = build(key);
    ctx->lastUse.store(useClock_, std::memory_order_relaxed);
    sessions_.emplace(key, ctx);
    ++created_;
    pin = SessionPin(std::move(ctx));  // eviction-exempt from here on
    evictOverBudget(&victims);
    if (obs::metricsEnabled()) {
      auto& reg = obs::registry();
      reg.counter("serve.sessions.created").add();
      if (!victims.empty()) {
        reg.counter("serve.sessions.evicted").add(victims.size());
      }
      reg.gauge("serve.sessions.active").set(static_cast<double>(sessions_.size()));
    }
  }
  persistVictims(victims);
  return pin;
}

void SessionManager::evictOverBudget(std::vector<Victim>* victims) {
  const auto overBudget = [this]() ISOP_REQUIRES(mutex_) {
    if (config_.maxSessions > 0 && sessions_.size() > config_.maxSessions) {
      return true;
    }
    if (config_.memoryBudgetBytes > 0) {
      std::size_t total = 0;
      for (const auto& [key, ctx] : sessions_) total += estimatedBytes(*ctx);
      if (total > config_.memoryBudgetBytes) return true;
    }
    return false;
  };
  while (overBudget()) {
    auto victim = sessions_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      // Pinned sessions — including the one acquire() is about to return —
      // are never victims.
      if (it->second->activeJobs.load(std::memory_order_relaxed) > 0) continue;
      const std::uint64_t use = it->second->lastUse.load(std::memory_order_relaxed);
      if (use < oldest) {
        oldest = use;
        victim = it;
      }
    }
    if (victim == sessions_.end()) return;  // everything else is running jobs
    victims->emplace_back(victim->first, victim->second);
    sessions_.erase(victim);
    ++evicted_;
  }
}

void SessionManager::persistVictims(const std::vector<Victim>& victims) {
  if (!store_) return;
  // Outside the manager lock: the shared_ptr keeps each evicted context
  // alive, and nothing else can reach it any more — its memo cache is
  // quiescent (activeJobs was 0, and every acquire() hands its session out
  // already pinned, so no not-yet-pinned job can be touching a victim) and
  // the snapshot is stable.
  for (const auto& [key, ctx] : victims) store_->saveMemo(key, *ctx->engine);
}

std::shared_ptr<SessionManager::Context> SessionManager::build(
    const SessionKey& key) const {
  em::SimulatorConfig simCfg;
  if (key.layer == "microstrip") {
    simCfg.layerType = em::LayerType::Microstrip;
  } else if (key.layer != "stripline") {
    throw std::invalid_argument("unknown layer '" + key.layer + "'");
  }

  auto ctx = std::make_shared<Context>();
  ctx->simulator = std::make_unique<em::EmSimulator>(simCfg);
  ctx->space = em::spaceByName(key.space);

  if (key.surrogate == "oracle") {
    ctx->surrogate = std::make_shared<core::SimulatorSurrogate>(*ctx->simulator);
  } else if (key.surrogate == "cnn" || key.surrogate == "mlp") {
    // Warm start: persisted weights from a previous run of this server (or a
    // replica sharing the state dir) beat retraining and even the data cache
    // — the state file is this exact session's model.
    if (store_) {
      ctx->surrogate = store_->loadModel(key);
      ctx->warmModel = ctx->surrogate != nullptr;
    }
    if (!ctx->surrogate) {
      // Same dataset/training settings as isop_cli's one-shot path, so the
      // disk cache under ISOP_CACHE_DIR is shared between serve and one-shot
      // runs and a pre-warmed model loads instantly here.
      data::GenerationConfig gen;
      ml::nn::TrainConfig train;
      train.epochs = 80;
      train.learningRate = 3e-3;
      train.lrDecay = 0.98;
      ctx->surrogate =
          key.surrogate == "cnn"
              ? std::shared_ptr<const ml::Surrogate>(
                    data::getOrTrainCnnSurrogate(*ctx->simulator, gen, train))
              : std::shared_ptr<const ml::Surrogate>(
                    data::getOrTrainMlpSurrogate(*ctx->simulator, gen, train));
      // Model weights are immutable once trained, so one save at build time
      // is all the persistence a model ever needs.
      if (store_) store_->saveModel(key, *ctx->surrogate);
    }
  } else {
    throw std::invalid_argument("unknown surrogate '" + key.surrogate + "'");
  }

  ctx->engine = std::make_shared<core::EvalEngine>(*ctx->surrogate,
                                                   *ctx->simulator, config_.engine);
  if (store_) ctx->warmMemo = store_->loadMemo(key, *ctx->engine);
  return ctx;
}

void SessionManager::persistAfterJob(const SessionKey& key) {
  if (!store_) return;
  std::shared_ptr<Context> ctx;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(key);
    if (it == sessions_.end()) return;  // evicted since; state already saved
    ctx = it->second;
  }
  store_->saveMemo(key, *ctx->engine);
}

void SessionManager::persistAll() {
  if (!store_) return;
  std::vector<Victim> live;
  {
    MutexLock lock(mutex_);
    live.reserve(sessions_.size());
    for (const auto& [key, ctx] : sessions_) live.emplace_back(key, ctx);
  }
  for (const auto& [key, ctx] : live) store_->saveMemo(key, *ctx->engine);
}

std::size_t SessionManager::size() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::estimatedBytes(const Context& ctx) const {
  std::size_t bytes = 0;
  if (const auto* neural =
          dynamic_cast<const ml::NeuralRegressor*>(ctx.surrogate.get())) {
    bytes += neural->parameterCount() * sizeof(double);
  }
  {
    // kInverseModel ranks below kSessionManager, so taking it with the
    // manager lock held (eviction math, stats) is in order.
    MutexLock lock(ctx.inverseMutex);
    if (ctx.inverseModel) {
      bytes += ctx.inverseModel->parameterCount() * sizeof(double);
    }
  }
  bytes += ctx.engine->cacheSize() * kMemoEntryBytes;
  return bytes;
}

std::shared_ptr<const inverse::InverseModel> SessionManager::inverseModelFor(
    const SessionKey& key, const std::shared_ptr<Context>& ctx) {
  // The caller holds a SessionPin, not the manager lock, so a slow first
  // training run never stalls acquires of other sessions. Double-checked
  // under the context's own mutex: concurrent first inverse jobs on one
  // session block here and all leave with the one model.
  MutexLock lock(ctx->inverseMutex);
  if (ctx->inverseModel) return ctx->inverseModel;

  if (store_) {
    if (auto warm = store_->loadInverse(key)) {
      ctx->inverseModel = std::move(warm);
      ctx->warmInverse = true;
      if (obs::metricsEnabled()) {
        obs::registry().counter("serve.inverse.warm_loads").add();
      }
      return ctx->inverseModel;
    }
  }

  // Cold path: train against the session's frozen forward surrogate. A
  // private non-memoizing engine keeps the thousands of training-time
  // predictions from flushing the session's shared memo cache — and keeps
  // the shared engine's stats meaningful.
  obs::Span span("serve.inverse.train");
  Timer timer;
  core::EvalEngineConfig engineCfg = config_.engine;
  engineCfg.memoize = false;
  core::EvalEngine trainEngine(*ctx->surrogate, *ctx->simulator, engineCfg);
  std::shared_ptr<const inverse::InverseModel> model =
      inverse::trainInverseModel(trainEngine, ctx->space, config_.inverseTrain);
  if (obs::metricsEnabled()) {
    obs::registry().counter("serve.inverse.trained").add();
    obs::registry().histogram("serve.inverse.train.seconds").record(timer.seconds());
  }
  // Like forward-surrogate weights: immutable once trained, so one save at
  // training time is all the persistence an inverse model ever needs.
  if (store_) store_->saveInverse(key, *model);
  ctx->inverseModel = model;
  return model;
}

SessionManager::Lifecycle SessionManager::lifecycle() const {
  Lifecycle out;
  {
    MutexLock lock(mutex_);
    out.created = created_;
    out.evicted = evicted_;
  }
  if (store_) {
    out.persisted = store_->persisted();
    out.loaded = store_->loaded();
    out.loadFailures = store_->loadFailures();
  }
  return out;
}

std::vector<SessionManager::SessionInfo> SessionManager::table() const {
  std::vector<SessionInfo> out;
  MutexLock lock(mutex_);
  out.reserve(sessions_.size());
  // sessions_ is keyed by SessionKey, so iteration order is deterministic.
  for (const auto& [key, ctx] : sessions_) {
    const core::EvalEngineStats stats = ctx->engine->stats();
    SessionInfo info;
    info.key = key;
    info.cacheSize = ctx->engine->cacheSize();
    info.evictions = stats.evictions;
    info.rows = stats.rows;
    info.memoHits = stats.memoHits;
    info.hitRate = stats.hitRate();
    info.activeJobs =
        static_cast<std::size_t>(ctx->activeJobs.load(std::memory_order_relaxed));
    info.warmModel = ctx->warmModel;
    info.warmMemo = ctx->warmMemo;
    {
      MutexLock inverseLock(ctx->inverseMutex);
      info.inverseModel = ctx->inverseModel != nullptr;
      info.warmInverse = ctx->warmInverse;
    }
    info.estimatedBytes = estimatedBytes(*ctx);
    if (const auto* neural =
            dynamic_cast<const ml::NeuralRegressor*>(ctx->surrogate.get())) {
      info.plan = neural->planSummary();
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace isop::serve
