#include "serve/session_manager.hpp"

#include <stdexcept>

#include "core/simulator_surrogate.hpp"
#include "data/cache.hpp"
#include "ml/neural_regressor.hpp"
#include "obs/obs.hpp"

namespace isop::serve {

SessionManager::SessionManager(core::EvalEngineConfig engineConfig)
    : engineConfig_(engineConfig) {}

std::shared_ptr<SessionManager::Context> SessionManager::acquire(
    const SessionKey& key) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(key);
  if (it != sessions_.end()) return it->second;
  std::shared_ptr<Context> ctx = build(key);
  sessions_.emplace(key, ctx);
  if (obs::metricsEnabled()) {
    auto& reg = obs::registry();
    reg.counter("serve.sessions.created").add();
    reg.gauge("serve.sessions.active").set(static_cast<double>(sessions_.size()));
  }
  return ctx;
}

std::shared_ptr<SessionManager::Context> SessionManager::build(
    const SessionKey& key) const {
  em::SimulatorConfig simCfg;
  if (key.layer == "microstrip") {
    simCfg.layerType = em::LayerType::Microstrip;
  } else if (key.layer != "stripline") {
    throw std::invalid_argument("unknown layer '" + key.layer + "'");
  }

  auto ctx = std::make_shared<Context>();
  ctx->simulator = std::make_unique<em::EmSimulator>(simCfg);
  ctx->space = em::spaceByName(key.space);

  if (key.surrogate == "oracle") {
    ctx->surrogate = std::make_shared<core::SimulatorSurrogate>(*ctx->simulator);
  } else if (key.surrogate == "cnn" || key.surrogate == "mlp") {
    // Same dataset/training settings as isop_cli's one-shot path, so the
    // disk cache under ISOP_CACHE_DIR is shared between serve and one-shot
    // runs and a pre-warmed model loads instantly here.
    data::GenerationConfig gen;
    ml::nn::TrainConfig train;
    train.epochs = 80;
    train.learningRate = 3e-3;
    train.lrDecay = 0.98;
    ctx->surrogate =
        key.surrogate == "cnn"
            ? std::shared_ptr<const ml::Surrogate>(
                  data::getOrTrainCnnSurrogate(*ctx->simulator, gen, train))
            : std::shared_ptr<const ml::Surrogate>(
                  data::getOrTrainMlpSurrogate(*ctx->simulator, gen, train));
  } else {
    throw std::invalid_argument("unknown surrogate '" + key.surrogate + "'");
  }

  ctx->engine = std::make_shared<core::EvalEngine>(*ctx->surrogate,
                                                   *ctx->simulator, engineConfig_);
  return ctx;
}

std::size_t SessionManager::size() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

std::vector<SessionManager::SessionInfo> SessionManager::table() const {
  std::vector<SessionInfo> out;
  MutexLock lock(mutex_);
  out.reserve(sessions_.size());
  // sessions_ is keyed by SessionKey, so iteration order is deterministic.
  for (const auto& [key, ctx] : sessions_) {
    const core::EvalEngineStats stats = ctx->engine->stats();
    SessionInfo info;
    info.key = key;
    info.cacheSize = ctx->engine->cacheSize();
    info.evictions = stats.evictions;
    info.rows = stats.rows;
    info.memoHits = stats.memoHits;
    info.hitRate = stats.hitRate();
    if (const auto* neural =
            dynamic_cast<const ml::NeuralRegressor*>(ctx->surrogate.get())) {
      info.plan = neural->planSummary();
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace isop::serve
