#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace isop::serve {

namespace {

// Self-pipe write end of the currently running server; the signal handler
// may only touch async-signal-safe machinery, so it just pokes this fd.
std::atomic<int> gSignalFd{-1};

// Request lines are capped: a line this long is never a legitimate request
// (the largest submit is well under a kilobyte), so treat it as a broken or
// hostile client instead of buffering without bound.
constexpr std::size_t kMaxRequestBytes = 1 << 20;  // 1 MiB

// How long the accept loop sleeps in poll() between sweeps of finished
// connections. A disconnect is reaped within roughly this bound even when no
// new client ever connects.
constexpr int kReapPollMs = 500;

/// Constant-time string equality for the TCP auth token. operator== bails at
/// the first differing byte, which hands a remote client a timing oracle for
/// guessing the shared secret one prefix byte at a time; this compares every
/// byte of both strings regardless of where (or whether) they diverge.
bool constantTimeEquals(const std::string& a, const std::string& b) {
  unsigned diff = static_cast<unsigned>(a.size() ^ b.size());
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    diff |= static_cast<unsigned>(ca ^ cb);
  }
  return diff == 0;
}

void onShutdownSignal(int) {
  const int fd = gSignalFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // A full pipe means a wake-up is already pending; ignore the result.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

json::Value errorEvent(const std::string& message) {
  json::Value v = json::Value::object();
  v.set("event", json::Value::string("error"));
  v.set("error", json::Value::string(message));
  return v;
}

/// Binds a listening unix socket at `path` (unlinking a stale one first).
/// Returns the fd, or -1 with *error set.
int openUnixListener(const std::string& path, std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket() failed: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale path from a crashed server
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    *error = "cannot listen on '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Binds a listening TCP socket for "host:port" (empty host = all
/// interfaces; port 0 = kernel-assigned, reported back via *boundPort and
/// *resolved). Returns the fd, or -1 with *error set.
int openTcpListener(const std::string& address, std::uint16_t* boundPort,
                    std::string* resolved, std::string* error) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *error = "listen address must be host:port, got '" + address + "'";
    return -1;
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);

  addrinfo hints;
  std::memset(&hints, 0, sizeof hints);
  hints.ai_family = AF_INET;  // deterministic: v4 only, no dual-stack surprises
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* info = nullptr;
  const int rc =
      ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(), &hints, &info);
  if (rc != 0 || !info) {
    *error = "cannot resolve '" + address + "': " + ::gai_strerror(rc);
    return -1;
  }

  int fd = -1;
  for (const addrinfo* ai = info; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 8) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  if (fd < 0) {
    *error = "cannot listen on '" + address + "': " + std::strerror(errno);
    return -1;
  }

  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    char ip[INET_ADDRSTRLEN] = "0.0.0.0";
    ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof ip);
    *boundPort = ntohs(bound.sin_port);
    *resolved = std::string(ip) + ":" + std::to_string(*boundPort);
  } else {
    *boundPort = 0;
    *resolved = address;
  }
  return fd;
}

}  // namespace

/// Serializes whole JSONL lines onto one stream from many threads (the
/// scheduler's workers and the request reader share a client's writer).
/// A failed write — EPIPE/ECONNRESET from a vanished client, or a
/// SO_SNDTIMEO expiry from a stuck one — marks the writer dead and later
/// writes are dropped: a client that went away must not take the server
/// down (fd writes use MSG_NOSIGNAL to suppress SIGPIPE). dead() lets event
/// producers skip serialization work for such clients entirely.
class LineWriter {
 public:
  explicit LineWriter(std::FILE* file) : file_(file) {}
  explicit LineWriter(int fd) : fd_(fd) {}

  void write(const json::Value& value) {
    const std::string line = value.dump() + "\n";
    MutexLock lock(mutex_);
    if (dead_) return;
    if (file_) {
      if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||  // lint-ok(L3): serializing whole-line writes onto the stream is this lock's purpose
          std::fflush(file_) != 0) {  // lint-ok(L3): flush belongs to the same serialized write
        dead_ = true;
      }
      return;
    }
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);  // lint-ok(L3): serializing whole-line writes onto the socket is this lock's purpose
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // EPIPE/ECONNRESET (client gone) or EAGAIN (SO_SNDTIMEO expired on
        // a stuck reader): either way this client stops receiving events.
        dead_ = true;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// True once a write failed; the client can never receive again.
  bool dead() const {
    MutexLock lock(mutex_);
    return dead_;
  }

 private:
  std::FILE* file_ = nullptr;
  int fd_ = -1;
  // Ranked under the scheduler: accepted/rejected events are written while
  // the scheduler lock is held (Scheduler::submit admits under its lock by
  // design, so no later event can precede the accepted).
  mutable AnnotatedMutex mutex_{"serve.line_writer", lock_order::rank::kLineWriter};
  bool dead_ ISOP_GUARDED_BY(mutex_) = false;
};

/// One accepted socket client: a reader thread feeding handleLine(), and a
/// LineWriter all of this client's job events are routed to.
class Server::Connection {
 public:
  Connection(Server& server, int fd, bool requireAuth)
      : server_(&server), fd_(fd), writer_(std::make_shared<LineWriter>(fd)) {
    state_.requireAuth = requireAuth;
  }

  ~Connection() {
    join();
    ::close(fd_);
  }

  void start() {
    thread_ = std::thread([this] {
      readLoop();
      done_.store(true, std::memory_order_release);
    });
  }

  /// Stops the reader (read() returns 0) without tearing down the write
  /// side — events of still-running jobs keep flowing during the drain.
  void stopReading() { ::shutdown(fd_, SHUT_RD); }

  /// True once this connection can be torn down: the reader has exited, and
  /// no in-flight job still holds the writer. Each submit's event sink keeps
  /// a reference to the writer until its terminal event has been emitted, so
  /// a half-closed client (shutdown(SHUT_WR) after submitting) still
  /// receives its remaining job events before the accept loop reaps the
  /// connection. Once done_ is set no new writer references can be handed
  /// out (only readLoop creates them), so a use_count of one — our own — is
  /// stable and destruction is safe.
  bool reapable() const {
    return done_.load(std::memory_order_acquire) && writer_.use_count() == 1;
  }

 private:
  void readLoop() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF mid-line: the truncated frame is ignored
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        server_->handleLine(line, writer_, &state_);
        if (state_.closeRequested.load(std::memory_order_relaxed)) {
          // Failed authentication: make the client see EOF immediately.
          ::shutdown(fd_, SHUT_RDWR);
          return;
        }
      }
      if (buffer.size() > kMaxRequestBytes) {
        // A socket client streaming an unbounded line is broken or hostile;
        // answer once and disconnect (stdio discards instead — see run()).
        writer_->write(errorEvent("request line exceeds 1 MiB limit"));
        ::shutdown(fd_, SHUT_RDWR);
        return;
      }
    }
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  Server* server_;
  int fd_;
  std::shared_ptr<LineWriter> writer_;
  ConnState state_;
  std::thread thread_;
  std::atomic<bool> done_{false};  ///< reader thread has exited
};

Server::Server(ServerConfig config, std::FILE* in, std::FILE* out)
    : config_(std::move(config)),
      in_(in),
      out_(out),
      sessions_(SessionManagerConfig{config_.engine, config_.maxSessions,
                                     config_.sessionMemoryBudgetBytes,
                                     config_.stateDir,
                                     config_.inverseTrain}) {}

Server::~Server() {
  // run() tears everything down before returning; this only covers a Server
  // that was never run.
  for (const Listener& listener : listeners_) {
    if (listener.fd >= 0) ::close(listener.fd);
  }
  for (int fd : shutdownPipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::installSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = onShutdownSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A vanished client must surface as a failed write, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::beginShutdown() {
  if (shutdownRequested_.exchange(true)) return;
  const int fd = shutdownPipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::handleLine(const std::string& line,
                        const std::shared_ptr<LineWriter>& writer,
                        ConnState* state) {
  std::string error;
  const std::optional<Request> request = parseRequest(line, &error);
  if (!request) {
    writer->write(errorEvent(error));
    return;
  }
  if (request->kind == Request::Kind::Hello) {
    // Trusted transports (stdio, unix socket) accept any hello; a TCP
    // client with an auth token configured must present it here.
    if (!state->requireAuth || constantTimeEquals(request->token, config_.authToken)) {
      state->authenticated.store(true, std::memory_order_relaxed);
      writer->write(helloToJson(true));
    } else {
      writer->write(errorEvent("hello: invalid token"));
      state->closeRequested.store(true, std::memory_order_relaxed);
    }
    return;
  }
  if (state->requireAuth && !state->authenticated.load(std::memory_order_relaxed)) {
    writer->write(errorEvent("authentication required: send {\"type\":\"hello\",\"token\":...} first"));
    state->closeRequested.store(true, std::memory_order_relaxed);
    return;
  }
  switch (request->kind) {
    case Request::Kind::Hello:
      break;  // handled above
    case Request::Kind::Submit: {
      const std::shared_ptr<LineWriter> sink = writer;
      scheduler_->submit(request->spec, [sink](const JobEvent& event) {
        // A dead client (disconnected mid-job, or timed out as a slow
        // reader) stops costing progress serialization; the job itself is
        // untouched and terminal events still settle the accounting
        // through write()'s own dead-check.
        if (event.kind == JobEvent::Kind::Progress && sink->dead()) return;
        sink->write(toJson(event));
      });
      break;
    }
    case Request::Kind::Cancel:
      if (!scheduler_->cancel(request->id)) {
        writer->write(errorEvent("cancel: no live job '" + request->id + "'"));
      }
      break;
    case Request::Kind::Status:
      writer->write(statusToJson(scheduler_->status(), sessions_.size()));
      break;
    case Request::Kind::Stats:
      writer->write(statsToJson(scheduler_->status(), scheduler_->jobs(),
                                sessions_.table(), sessions_.lifecycle(),
                                obs::registry().toJson()));
      break;
    case Request::Kind::Trace: {
      obs::Tracer& tracer = obs::tracer();
      std::string written;
      switch (request->traceAction) {
        case Request::TraceAction::Start:
          tracer.clear();
          tracer.setEnabled(true);
          break;
        case Request::TraceAction::Stop:
          tracer.setEnabled(false);
          if (!request->traceOut.empty()) {
            if (tracer.writeChromeTrace(request->traceOut)) {
              written = request->traceOut;
            } else {
              writer->write(errorEvent("trace: cannot write '" +
                                       request->traceOut + "'"));
              return;
            }
          }
          break;
        case Request::TraceAction::Status:
          break;
      }
      writer->write(traceToJson(tracer.enabled(), tracer.eventCount(),
                                tracer.droppedEvents(), written));
      break;
    }
    case Request::Kind::Shutdown:
      beginShutdown();
      break;
  }
}

void Server::reapConnections() {
  // A connect/disconnect must not leak its fd, exited reader thread, and
  // Connection object until shutdown — a long-running server would hit fd
  // exhaustion from ordinary client churn. Collect reapable connections
  // under the lock, destroy them outside it: ~Connection joins the (already
  // exited) reader and closes the fd, and joining under connectionsMutex_ is
  // the lock-hold hazard lint rule L3 exists to flag.
  std::vector<std::shared_ptr<Connection>> doomed;
  std::size_t active = 0;
  {
    MutexLock lock(connectionsMutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->reapable()) {
        doomed.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    active = connections_.size();
  }
  if (doomed.empty()) return;
  const std::size_t reaped = doomed.size();
  doomed.clear();  // joins readers, closes fds
  if (obs::metricsEnabled()) {
    auto& reg = obs::registry();
    reg.counter("serve.connections.reaped").add(reaped);
    reg.gauge("serve.connections.active").set(static_cast<double>(active));
  }
}

void Server::acceptLoop() {
  std::vector<pollfd> fds(listeners_.size() + 1);
  for (;;) {
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      fds[i] = {listeners_[i].fd, POLLIN, 0};
    }
    fds.back() = {shutdownPipe_[0], POLLIN, 0};
    // Bounded wait so disconnected clients are swept even when no new
    // connection ever arrives to wake the loop.
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kReapPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds.back().revents != 0) return;  // shutdown (the byte stays for run())
    for (std::size_t i = 0; rc > 0 && i < listeners_.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int fd = ::accept(listeners_[i].fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;
      }
      if (config_.writeTimeoutMs > 0) {
        timeval tv;
        tv.tv_sec = static_cast<time_t>(config_.writeTimeoutMs / 1000);
        tv.tv_usec = static_cast<suseconds_t>((config_.writeTimeoutMs % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
      }
      const bool requireAuth = listeners_[i].tcp && !config_.authToken.empty();
      auto connection = std::make_shared<Connection>(*this, fd, requireAuth);
      std::size_t active = 0;
      {
        MutexLock lock(connectionsMutex_);
        connections_.push_back(connection);
        active = connections_.size();
      }
      connection->start();
      if (obs::metricsEnabled()) {
        auto& reg = obs::registry();
        reg.counter("serve.connections.accepted").add();
        reg.gauge("serve.connections.active").set(static_cast<double>(active));
      }
    }
    reapConnections();
  }
}

int Server::run() {
  if (::pipe(shutdownPipe_) != 0) {
    log::error("serve: pipe() failed: ", std::strerror(errno));
    return 1;
  }
  gSignalFd.store(shutdownPipe_[1], std::memory_order_relaxed);

  std::string tcpResolved;
  if (!config_.socketPath.empty()) {
    std::string error;
    const int fd = openUnixListener(config_.socketPath, &error);
    if (fd < 0) {
      log::error("serve: ", error);
      return 1;
    }
    listeners_.push_back({fd, false, config_.socketPath});
  }
  if (!config_.listenAddress.empty()) {
    std::string error;
    std::uint16_t port = 0;
    const int fd = openTcpListener(config_.listenAddress, &port, &tcpResolved, &error);
    if (fd < 0) {
      log::error("serve: ", error);
      for (const Listener& listener : listeners_) ::close(listener.fd);
      listeners_.clear();
      return 1;
    }
    listeners_.push_back({fd, true, tcpResolved});
    boundTcpPort_.store(port, std::memory_order_release);
  }

  // A service answers stats requests for its whole lifetime, so serve mode
  // keeps the metrics registry recording regardless of the one-shot obs
  // flags; the previous state is restored when run() returns.
  prevMetricsEnabled_ = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  if (config_.metricsIntervalMs > 0) {
    obs::MetricsSamplerConfig samplerCfg;
    samplerCfg.interval = std::chrono::milliseconds(config_.metricsIntervalMs);
    samplerCfg.path = config_.metricsSeriesPath;
    sampler_ = std::make_unique<obs::MetricsSampler>(obs::registry(), samplerCfg);
    sampler_->start();
  }

  stdioWriter_ = std::make_shared<LineWriter>(out_);
  scheduler_ = std::make_unique<Scheduler>(
      sessions_, config_.scheduler,
      [writer = stdioWriter_](const JobEvent& event) { writer->write(toJson(event)); });
  if (!listeners_.empty()) {
    acceptThread_ = std::thread([this] { acceptLoop(); });
  }

  {
    json::Value ready = json::Value::object();
    ready.set("event", json::Value::string("ready"));
    ready.set("protocol", json::Value::integer(kProtocolVersion));
    ready.set("workers", json::Value::integer(
                             static_cast<long long>(config_.scheduler.workers)));
    ready.set("queue_capacity",
              json::Value::integer(
                  static_cast<long long>(config_.scheduler.queueCapacity)));
    if (!tcpResolved.empty()) {
      ready.set("listen", json::Value::string(tcpResolved));
    }
    if (!config_.stateDir.empty()) {
      ready.set("state_dir", json::Value::string(config_.stateDir));
    }
    stdioWriter_->write(ready);
  }

  const int inFd = ::fileno(in_);
  std::string buffer;
  bool discarding = false;  // inside an oversize stdio line, until newline
  while (!shutdownRequested_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{inFd, POLLIN, 0}, {shutdownPipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // signal or shutdown request
    if (fds[0].revents == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(inFd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // stdin EOF: batch mode finished submitting
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (discarding) {
        discarding = false;  // the oversize line's tail ends here
        continue;
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      handleLine(line, stdioWriter_, &stdioState_);
      if (shutdownRequested_.load(std::memory_order_relaxed)) break;
    }
    if (discarding) {
      // Still inside the oversize line (no newline yet): drop what arrived
      // instead of buffering it, or an endless line would grow the buffer
      // without bound — the exact blow-up the cap exists to prevent.
      buffer.clear();
    } else if (buffer.size() > kMaxRequestBytes) {
      // Unlike a socket client, stdio cannot be dropped without draining
      // the whole server, so the oversize line is answered and discarded.
      stdioWriter_->write(errorEvent("request line exceeds 1 MiB limit"));
      buffer.clear();
      discarding = true;
    }
  }
  beginShutdown();

  // Stop intake: no new connections, no new requests from existing ones.
  if (acceptThread_.joinable()) acceptThread_.join();
  for (Listener& listener : listeners_) {
    ::close(listener.fd);
    if (!listener.tcp) ::unlink(listener.describe.c_str());
    listener.fd = -1;
  }
  listeners_.clear();
  {
    MutexLock lock(connectionsMutex_);
    for (const auto& connection : connections_) connection->stopReading();
  }

  // Drain: queued jobs are rejected ("server draining"), running jobs finish
  // and stream their remaining events to their clients.
  const Scheduler::Status finalStatus = scheduler_->status();
  scheduler_->drain();

  // Warm-start durability: with every job settled, snapshot all sessions so
  // the next process (or a replica sharing the state dir) starts hot.
  sessions_.persistAll();

  // The sampler's stop() takes a final sample, so the series always ends
  // with the post-drain state.
  if (sampler_) sampler_->stop();

  {
    json::Value done = json::Value::object();
    done.set("event", json::Value::string("shutdown"));
    done.set("jobs_completed",
             json::Value::integer(
                 static_cast<long long>(scheduler_->status().completed)));
    done.set("jobs_running_at_drain",
             json::Value::integer(static_cast<long long>(finalStatus.running)));
    stdioWriter_->write(done);
  }

  {
    // Swap the registry out under the lock, destroy outside it: Connection's
    // destructor joins the reader thread, and joining while holding
    // connectionsMutex_ is exactly the lock-hold hazard lint rule L3 exists
    // to flag (a reader stuck in handleLine() would deadlock the drain).
    std::vector<std::shared_ptr<Connection>> doomed;
    {
      MutexLock lock(connectionsMutex_);
      doomed.swap(connections_);
    }
    doomed.clear();  // joins readers, closes fds
  }
  gSignalFd.store(-1, std::memory_order_relaxed);
  ::close(shutdownPipe_[0]);
  ::close(shutdownPipe_[1]);
  shutdownPipe_[0] = shutdownPipe_[1] = -1;
  obs::setMetricsEnabled(prevMetricsEnabled_);
  return 0;
}

}  // namespace isop::serve
