#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace isop::serve {

namespace {

// Self-pipe write end of the currently running server; the signal handler
// may only touch async-signal-safe machinery, so it just pokes this fd.
std::atomic<int> gSignalFd{-1};

void onShutdownSignal(int) {
  const int fd = gSignalFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // A full pipe means a wake-up is already pending; ignore the result.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

json::Value errorEvent(const std::string& message) {
  json::Value v = json::Value::object();
  v.set("event", json::Value::string("error"));
  v.set("error", json::Value::string(message));
  return v;
}

}  // namespace

/// Serializes whole JSONL lines onto one stream from many threads (the
/// scheduler's workers and the request reader share a client's writer).
/// A failed write marks the writer dead and later writes are dropped — a
/// client that went away must not take the server down (fd writes use
/// MSG_NOSIGNAL to suppress SIGPIPE).
class LineWriter {
 public:
  explicit LineWriter(std::FILE* file) : file_(file) {}
  explicit LineWriter(int fd) : fd_(fd) {}

  void write(const json::Value& value) {
    const std::string line = value.dump() + "\n";
    MutexLock lock(mutex_);
    if (dead_) return;
    if (file_) {
      if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||  // lint-ok(L3): serializing whole-line writes onto the stream is this lock's purpose
          std::fflush(file_) != 0) {  // lint-ok(L3): flush belongs to the same serialized write
        dead_ = true;
      }
      return;
    }
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);  // lint-ok(L3): serializing whole-line writes onto the socket is this lock's purpose
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead_ = true;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  std::FILE* file_ = nullptr;
  int fd_ = -1;
  // Ranked under the scheduler: accepted/rejected events are written while
  // the scheduler lock is held (Scheduler::submit admits under its lock by
  // design, so no later event can precede the accepted).
  AnnotatedMutex mutex_{"serve.line_writer", lock_order::rank::kLineWriter};
  bool dead_ ISOP_GUARDED_BY(mutex_) = false;
};

/// One accepted socket client: a reader thread feeding handleLine(), and a
/// LineWriter all of this client's job events are routed to.
class Server::Connection {
 public:
  Connection(Server& server, int fd)
      : server_(&server), fd_(fd), writer_(std::make_shared<LineWriter>(fd)) {}

  ~Connection() {
    join();
    ::close(fd_);
  }

  void start() {
    thread_ = std::thread([this] { readLoop(); });
  }

  /// Stops the reader (read() returns 0) without tearing down the write
  /// side — events of still-running jobs keep flowing during the drain.
  void stopReading() { ::shutdown(fd_, SHUT_RD); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  void readLoop() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        server_->handleLine(line, writer_);
      }
    }
  }

  Server* server_;
  int fd_;
  std::shared_ptr<LineWriter> writer_;
  std::thread thread_;
};

Server::Server(ServerConfig config, std::FILE* in, std::FILE* out)
    : config_(std::move(config)), in_(in), out_(out), sessions_(config_.engine) {}

Server::~Server() {
  // run() tears everything down before returning; this only covers a Server
  // that was never run.
  if (listenFd_ >= 0) ::close(listenFd_);
  for (int fd : shutdownPipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::installSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = onShutdownSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A vanished client must surface as a failed write, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::beginShutdown() {
  if (shutdownRequested_.exchange(true)) return;
  const int fd = shutdownPipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::handleLine(const std::string& line,
                        const std::shared_ptr<LineWriter>& writer) {
  std::string error;
  const std::optional<Request> request = parseRequest(line, &error);
  if (!request) {
    writer->write(errorEvent(error));
    return;
  }
  switch (request->kind) {
    case Request::Kind::Submit: {
      const std::shared_ptr<LineWriter> sink = writer;
      scheduler_->submit(request->spec, [sink](const JobEvent& event) {
        sink->write(toJson(event));
      });
      break;
    }
    case Request::Kind::Cancel:
      if (!scheduler_->cancel(request->id)) {
        writer->write(errorEvent("cancel: no live job '" + request->id + "'"));
      }
      break;
    case Request::Kind::Status:
      writer->write(statusToJson(scheduler_->status(), sessions_.size()));
      break;
    case Request::Kind::Stats:
      writer->write(statsToJson(scheduler_->status(), scheduler_->jobs(),
                                sessions_.table(), obs::registry().toJson()));
      break;
    case Request::Kind::Trace: {
      obs::Tracer& tracer = obs::tracer();
      std::string written;
      switch (request->traceAction) {
        case Request::TraceAction::Start:
          tracer.clear();
          tracer.setEnabled(true);
          break;
        case Request::TraceAction::Stop:
          tracer.setEnabled(false);
          if (!request->traceOut.empty()) {
            if (tracer.writeChromeTrace(request->traceOut)) {
              written = request->traceOut;
            } else {
              writer->write(errorEvent("trace: cannot write '" +
                                       request->traceOut + "'"));
              return;
            }
          }
          break;
        case Request::TraceAction::Status:
          break;
      }
      writer->write(traceToJson(tracer.enabled(), tracer.eventCount(),
                                tracer.droppedEvents(), written));
      break;
    }
    case Request::Kind::Shutdown:
      beginShutdown();
      break;
  }
}

void Server::acceptLoop(int listenFd) {
  for (;;) {
    pollfd fds[2] = {{listenFd, POLLIN, 0}, {shutdownPipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // shutdown (the byte stays for run())
    if (fds[0].revents == 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    auto connection = std::make_shared<Connection>(*this, fd);
    {
      MutexLock lock(connectionsMutex_);
      connections_.push_back(connection);
    }
    connection->start();
  }
}

int Server::run() {
  if (::pipe(shutdownPipe_) != 0) {
    log::error("serve: pipe() failed: ", std::strerror(errno));
    return 1;
  }
  gSignalFd.store(shutdownPipe_[1], std::memory_order_relaxed);

  if (!config_.socketPath.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof addr.sun_path) {
      log::error("serve: socket path too long: ", config_.socketPath);
      return 1;
    }
    std::strncpy(addr.sun_path, config_.socketPath.c_str(), sizeof addr.sun_path - 1);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      log::error("serve: socket() failed: ", std::strerror(errno));
      return 1;
    }
    ::unlink(config_.socketPath.c_str());  // stale path from a crashed server
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listenFd_, 8) != 0) {
      log::error("serve: cannot listen on '", config_.socketPath,
                 "': ", std::strerror(errno));
      ::close(listenFd_);
      listenFd_ = -1;
      return 1;
    }
  }

  // A service answers stats requests for its whole lifetime, so serve mode
  // keeps the metrics registry recording regardless of the one-shot obs
  // flags; the previous state is restored when run() returns.
  prevMetricsEnabled_ = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  if (config_.metricsIntervalMs > 0) {
    obs::MetricsSamplerConfig samplerCfg;
    samplerCfg.interval = std::chrono::milliseconds(config_.metricsIntervalMs);
    samplerCfg.path = config_.metricsSeriesPath;
    sampler_ = std::make_unique<obs::MetricsSampler>(obs::registry(), samplerCfg);
    sampler_->start();
  }

  stdioWriter_ = std::make_shared<LineWriter>(out_);
  scheduler_ = std::make_unique<Scheduler>(
      sessions_, config_.scheduler,
      [writer = stdioWriter_](const JobEvent& event) { writer->write(toJson(event)); });
  if (listenFd_ >= 0) {
    acceptThread_ = std::thread([this, fd = listenFd_] { acceptLoop(fd); });
  }

  {
    json::Value ready = json::Value::object();
    ready.set("event", json::Value::string("ready"));
    ready.set("protocol", json::Value::integer(kProtocolVersion));
    ready.set("workers", json::Value::integer(
                             static_cast<long long>(config_.scheduler.workers)));
    ready.set("queue_capacity",
              json::Value::integer(
                  static_cast<long long>(config_.scheduler.queueCapacity)));
    stdioWriter_->write(ready);
  }

  const int inFd = ::fileno(in_);
  std::string buffer;
  while (!shutdownRequested_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{inFd, POLLIN, 0}, {shutdownPipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // signal or shutdown request
    if (fds[0].revents == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(inFd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // stdin EOF: batch mode finished submitting
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      handleLine(line, stdioWriter_);
      if (shutdownRequested_.load(std::memory_order_relaxed)) break;
    }
  }
  beginShutdown();

  // Stop intake: no new connections, no new requests from existing ones.
  if (acceptThread_.joinable()) acceptThread_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    ::unlink(config_.socketPath.c_str());
    listenFd_ = -1;
  }
  {
    MutexLock lock(connectionsMutex_);
    for (const auto& connection : connections_) connection->stopReading();
  }

  // Drain: queued jobs are rejected ("server draining"), running jobs finish
  // and stream their remaining events to their clients.
  const Scheduler::Status finalStatus = scheduler_->status();
  scheduler_->drain();

  // The sampler's stop() takes a final sample, so the series always ends
  // with the post-drain state.
  if (sampler_) sampler_->stop();

  {
    json::Value done = json::Value::object();
    done.set("event", json::Value::string("shutdown"));
    done.set("jobs_completed",
             json::Value::integer(
                 static_cast<long long>(scheduler_->status().completed)));
    done.set("jobs_running_at_drain",
             json::Value::integer(static_cast<long long>(finalStatus.running)));
    stdioWriter_->write(done);
  }

  {
    // Swap the registry out under the lock, destroy outside it: Connection's
    // destructor joins the reader thread, and joining while holding
    // connectionsMutex_ is exactly the lock-hold hazard lint rule L3 exists
    // to flag (a reader stuck in handleLine() would deadlock the drain).
    std::vector<std::shared_ptr<Connection>> doomed;
    {
      MutexLock lock(connectionsMutex_);
      doomed.swap(connections_);
    }
    doomed.clear();  // joins readers, closes fds
  }
  gSignalFd.store(-1, std::memory_order_relaxed);
  ::close(shutdownPipe_[0]);
  ::close(shutdownPipe_[1]);
  shutdownPipe_[0] = shutdownPipe_[1] = -1;
  obs::setMetricsEnabled(prevMetricsEnabled_);
  return 0;
}

}  // namespace isop::serve
